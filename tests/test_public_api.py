"""Tests for the top-level public API surface."""

import numpy as np
import pytest

import repro
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import AppObservation, FeatureMode, FeatureSpace


#: The locked public contract: removing a name (or forgetting to list a
#: new one here AND in ``repro.__all__``) is a breaking change and must
#: fail loudly.
PUBLIC_API = frozenset(
    {
        "AndroidSdk",
        "ApiChecker",
        "ApiMethod",
        "Apk",
        "AppCorpus",
        "AppObservation",
        "AttackWave",
        "BehaviorReport",
        "Campaign",
        "CampaignReport",
        "CampaignRunner",
        "CorpusGenerator",
        "DaySlice",
        "DriftDayReport",
        "DriftEvent",
        "DriftMonitorBank",
        "DriftTriggeredPolicy",
        "DriftYearReport",
        "DriftYearRunner",
        "DriftingMarket",
        "DriftingMarketStream",
        "DynamicAnalysisEngine",
        "ERROR_CODES",
        "EngineStats",
        "EvolutionLoop",
        "FeatureMode",
        "FeatureSpace",
        "FutureLeakageError",
        "HybridPolicy",
        "KeyApiSelection",
        "MarketStream",
        "MetricsRegistry",
        "MinedRuleset",
        "ModelRegistry",
        "MonthlyPolicy",
        "NeverPolicy",
        "ObservationCache",
        "OnlineVettingService",
        "PsiMonitor",
        "QueueFullError",
        "RandomForest",
        "RetrainDecision",
        "RetrainPolicy",
        "ReviewPipeline",
        "RollingF1Monitor",
        "RuleEvaluator",
        "RuleHit",
        "RuleSpec",
        "RulesetRegistry",
        "SdkSpec",
        "SemesterSlice",
        "ShadowAgreementMonitor",
        "ShadowPromotionGate",
        "ShardRouter",
        "ShardUnavailableError",
        "SpanSink",
        "SubmissionQueue",
        "TMarket",
        "TriageCenter",
        "VetVerdict",
        "VettingPipeline",
        "VettingService",
        "WrongShardError",
        "assert_no_future_leakage",
        "builtin_ruleset",
        "bundled_campaigns",
        "campaign_by_name",
        "chronological_split",
        "default_registry",
        "diff_rulesets",
        "lint_ruleset",
        "load_generated_ruleset",
        "load_ruleset",
        "make_router_server",
        "make_server",
        "mine_ruleset",
        "poison_labels",
        "replay_drift_year",
        "rolling_time_windows",
        "run_campaign",
        "select_key_apis",
        "semester_slices",
        "shard_of",
        "span",
    }
)


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_public_api_contract_is_locked():
    assert set(repro.__all__) == PUBLIC_API


def test_all_is_sorted_and_unique():
    assert sorted(repro.__all__) == list(repro.__all__)
    assert len(set(repro.__all__)) == len(repro.__all__)


def test_error_envelope_wire_contract_is_locked():
    """The /v1 error codes are a frozen wire contract.

    Adding a code is a versioned API change; removing or renaming one
    breaks deployed clients.  Either must update this lock AND
    ``docs/serving.md`` deliberately.
    """
    from repro import ERROR_CODES
    from repro.serve.http import error_body

    assert ERROR_CODES == frozenset(
        {
            "bad_request",
            "not_found",
            "wrong_shard",
            "queue_full",
            "shard_unavailable",
        }
    )
    body = error_body("not_found", "missing", md5="abcd")
    assert body == {
        "error": {"code": "not_found", "message": "missing", "md5": "abcd"}
    }
    assert "md5" not in error_body("bad_request", "nope")["error"]
    with pytest.raises(ValueError):
        error_body("made_up_code", "boom")


def test_v1_route_table_is_locked():
    """The /v1 route surface is a frozen wire contract.

    Adding a route (as PR 9 did with the ruleset admin push) must
    update this lock deliberately; removing one breaks clients.
    """
    from repro.serve.http import ROUTES

    md5 = r"(?P<md5>[0-9a-fA-F]{4,64})"
    assert {(r.method, r.pattern.pattern) for r in ROUTES} == {
        ("POST", r"^/v1/submit$"),
        ("GET", rf"^/v1/result/{md5}$"),
        ("GET", rf"^/v1/explain/{md5}$"),
        ("POST", r"^/v1/admin/ruleset$"),
        ("GET", r"^/v1/healthz$"),
        ("GET", r"^/v1/metrics$"),
        ("GET", r"^/v1/metrics\.json$"),
    }


def test_legacy_alias_shims_stay_removed():
    """The unprefixed-path 301 grace window closed in 1.6.0.

    Two locks: every surviving route is versioned under ``/v1/``, and
    no redirect machinery (``Deprecation``/``successor-version``
    headers, 301 handling) lingers anywhere in the serving tier.
    Re-adding either is a deliberate, reviewed decision — not drift.
    """
    from pathlib import Path

    from repro.serve.http import ROUTES

    for route in ROUTES:
        assert route.pattern.pattern.startswith(r"^/v1/"), (
            f"unversioned route crept back in: {route.pattern.pattern}"
        )
    serve_dir = Path(repro.__file__).resolve().parent / "serve"
    offenders = []
    for path in sorted(serve_dir.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for needle in ("Deprecation", "successor-version", "301"):
            if needle in text:
                offenders.append(f"{path.name}: {needle!r}")
    assert not offenders, (
        "legacy alias machinery resurfaced:\n" + "\n".join(offenders)
    )


def test_observability_surface_reexported():
    """The obs layer's public surface is reachable from the top level."""
    from repro import EngineStats, MetricsRegistry, span
    from repro.obs import MetricsRegistry as ObsRegistry

    assert MetricsRegistry is ObsRegistry
    reg = MetricsRegistry()
    with span("api_probe", registry=reg):
        pass
    assert reg.histogram("api_probe_seconds").count == 1
    stats = EngineStats.from_registry(reg)
    assert stats.submissions == 0 and stats.settled


def test_no_in_tree_use_of_removed_stats_dicts():
    """The removed ``.stats`` dict views must not creep back in.

    Static sweep: no module under ``src/repro`` or ``benchmarks``
    reads ``engine.stats`` / ``vetter.stats`` (``ml.stats`` and
    ``stats_view`` are unrelated).  Anything new should go through the
    typed views or the registry.
    """
    import re
    from pathlib import Path

    root = Path(repro.__file__).resolve().parent
    bench = root.parent.parent / "benchmarks"
    # A removed-style read looks like `<obj>.stats` NOT followed by a
    # word character (stats_view) and not the ml.stats module path.
    pattern = re.compile(r"\b(\w+)\.stats\b(?!\w)")
    offenders = []
    for base in (root, bench):
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(base.parent)
            for line_no, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                for match in pattern.finditer(line):
                    obj = match.group(1)
                    if obj in ("ml", "repro"):
                        # ml.stats is a module, not the removed view.
                        continue
                    offenders.append(f"{rel}:{line_no}: {line.strip()}")
    assert not offenders, (
        "removed .stats dict view used in-tree:\n" + "\n".join(offenders)
    )


def test_removed_stats_properties_stay_removed(fitted_checker):
    """``engine.stats`` / ``vetter.stats`` were removed; keep them out."""
    from repro.core.diffvet import DiffVetter

    assert not hasattr(fitted_checker.production_engine, "stats")
    assert not hasattr(DiffVetter(fitted_checker), "stats")


def test_vetting_paths_raise_no_deprecation_warnings(
    generator, fitted_checker
):
    """Exercising the main vetting surfaces must be warning-clean."""
    import warnings

    from repro.core.diffvet import DiffVetter
    from repro.core.pipeline import VettingPipeline

    apps = [generator.sample_app(malicious=False) for _ in range(3)]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        pipeline = VettingPipeline(
            fitted_checker.production_engine, workers=2
        )
        result = pipeline.run(apps)
        assert not result.failures
        _ = fitted_checker.production_engine.stats_view
        vetter = DiffVetter(fitted_checker)
        vetter.vet(apps[0])
        _ = vetter.stats_view
        _ = vetter.fast_path_fraction


def test_readme_quickstart_snippet_runs():
    """Keep the README example honest."""
    from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec

    sdk = AndroidSdk.generate(SdkSpec(n_apis=900, seed=77))
    gen = CorpusGenerator(sdk, seed=78)
    train, fresh = gen.generate(260), gen.generate(60)
    checker = ApiChecker(sdk, seed=79).fit(train)
    assert checker.key_api_ids.size > 0
    report = checker.evaluate(fresh)
    assert 0.0 <= report.f1 <= 1.0
    verdict = checker.vet(fresh[0])
    assert verdict.analysis_minutes > 0


# -- property-based checks on the feature space ---------------------------


@given(
    api_ids=st.lists(st.integers(0, 899), min_size=0, max_size=40),
    n_perms=st.integers(0, 5),
    n_intents=st.integers(0, 5),
)
@settings(max_examples=30, deadline=None)
def test_encode_is_bounded_and_idempotent(
    sdk, api_ids, n_perms, n_intents
):
    space = FeatureSpace(sdk, [1, 5, 9, 20], FeatureMode.API)
    obs = AppObservation(
        apk_md5="h",
        invoked_api_ids=tuple(api_ids),
        permissions=tuple(sdk.permissions.names[:n_perms]),
        intents=tuple(sdk.intents.names[:n_intents]),
    )
    a = space.encode(obs)
    b = space.encode(obs)
    assert np.array_equal(a, b)
    assert a.shape == (space.n_features,)
    assert set(np.unique(a).tolist()) <= {0, 1}
    # Permission/intent bits match exactly what was requested.
    assert a[len(space.api_ids):].sum() == n_perms + n_intents


@given(st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_encode_batch_matches_single(sdk, n):
    space = FeatureSpace(sdk, [2, 3], FeatureMode.API)
    observations = [
        AppObservation(
            apk_md5=str(i),
            invoked_api_ids=(2,) if i % 2 else (3,),
            permissions=(),
            intents=(),
        )
        for i in range(n)
    ]
    X = space.encode_batch(observations)
    for i, obs in enumerate(observations):
        assert np.array_equal(X[i], space.encode(obs))
