"""Tests for the time-sliced drifting market (repro.drift.market)."""

import numpy as np
import pytest

from repro.drift import DriftingMarket, DriftingMarketStream


def _market(sdk, **kwargs):
    defaults = dict(
        seed=77,
        apps_per_day=6,
        days=60,
        sdk_release_every=20,
        sdk_growth=40,
        new_family_days=(30,),
        fashion_shift_every=15,
        semester_days=30,
    )
    defaults.update(kwargs)
    return DriftingMarket(sdk, **defaults)


def _digest(market, days):
    out = []
    for day in days:
        sl = market.day_slice(day)
        out.append(
            (
                tuple(apk.md5 for apk in sl.corpus),
                tuple(np.asarray(sl.market_labels, dtype=bool).tolist()),
            )
        )
    return out


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def test_same_seed_markets_are_byte_identical(sdk):
    days = [0, 7, 20, 30, 45]
    a = _digest(_market(sdk), days)
    b = _digest(_market(sdk), days)
    assert a == b


def test_access_order_does_not_change_slices(sdk):
    forward = _market(sdk)
    scattered = _market(sdk)
    want = _digest(forward, range(40))
    # Random-order and repeated access must see the same bytes.
    order = [31, 2, 2, 39, 17, 0, 25, 31]
    for day in order:
        scattered.day_slice(day)
    assert _digest(scattered, range(40)) == want


def test_bootstrap_is_part_of_the_stream(sdk):
    a = _market(sdk)
    b = _market(sdk)
    boot_a = a.bootstrap(40)
    boot_b = b.bootstrap(40)
    assert [x.md5 for x in boot_a] == [x.md5 for x in boot_b]
    # Identical bootstraps leave identical tails.
    assert _digest(a, [0, 10]) == _digest(b, [0, 10])


def test_bootstrap_after_slices_is_rejected(sdk):
    market = _market(sdk)
    market.day_slice(0)
    with pytest.raises(RuntimeError):
        market.bootstrap(10)


def test_different_seeds_diverge(sdk):
    assert _digest(_market(sdk), [0]) != _digest(
        _market(sdk, seed=78), [0]
    )


# ----------------------------------------------------------------------
# The drift schedule
# ----------------------------------------------------------------------


def test_events_fire_on_schedule(sdk):
    market = _market(sdk)
    market.day_slice(59)  # generate the whole horizon
    by_kind = {}
    for event in market.events:
        by_kind.setdefault(event.kind, []).append(event.day)
    assert by_kind["sdk_release"] == [20, 40]
    assert by_kind["new_family"] == [30]
    # Only release days subsume the fashion shift (none land on 20/40).
    assert by_kind["fashion_shift"] == [15, 30, 45]
    assert all(d in (20, 40) for d in by_kind["signature_mutation"])


def test_sdk_grows_and_slices_carry_their_sdk(sdk):
    market = _market(sdk)
    early = market.day_slice(5)
    late = market.day_slice(45)
    assert len(early.sdk) == len(sdk)
    assert len(late.sdk) == len(sdk) + 2 * 40
    assert market.day_slice(45) is late  # cached


def test_day_slice_contents(sdk):
    market = _market(sdk)
    sl = market.day_slice(12)
    assert sl.day == 12
    assert len(sl.corpus) == 6
    assert sl.market_labels.shape == (6,)
    assert all(apk.submitted_day == 12 for apk in sl.corpus)


def test_emergent_family_enters_traffic(sdk):
    market = _market(
        sdk, apps_per_day=30, days=45, new_family_days=(10,),
        sdk_release_every=0, fashion_shift_every=0,
    )
    market.day_slice(44)
    catalog = market.generator.catalog
    assert "emergent_1" in catalog.malware_names
    families = {
        apk.family
        for sl in market.day_slices(10, 44)
        for apk in sl.corpus
        if apk.is_malicious
    }
    assert "emergent_1" in families
    # And never before its debut.
    pre = {
        apk.family
        for sl in market.day_slices(0, 9)
        for apk in sl.corpus
    }
    assert "emergent_1" not in pre


def test_emergent_signature_prefers_unused_apis(sdk):
    # Debut after a release so the grown discriminative pool has APIs
    # no existing family uses yet.
    market = _market(
        sdk, new_family_days=(25,), sdk_release_every=20,
        mutation_fraction=0.0, sdk_growth=80,
    )
    catalog = market.generator.catalog
    market.day_slice(24)
    pool = market.sdk.discriminative_api_ids
    used_before = np.unique(
        np.concatenate(list(catalog.signatures.values()))
    )
    n_fresh = int(np.sum(~np.isin(pool, used_before)))
    market.day_slice(25)
    signature = catalog.signature_of("emergent_1")
    assert signature.size > 0
    # Every available unused API is preferred before any reuse.
    n_unused_taken = int(np.sum(~np.isin(signature, used_before)))
    assert n_unused_taken == min(signature.size, n_fresh)
    assert n_unused_taken > 0


def test_horizon_and_argument_validation(sdk):
    market = _market(sdk)
    with pytest.raises(ValueError):
        market.day_slice(60)
    with pytest.raises(ValueError):
        market.day_slice(-1)
    with pytest.raises(ValueError):
        _market(sdk, new_family_days=(60,))
    with pytest.raises(ValueError):
        _market(sdk, apps_per_day=0)
    with pytest.raises(ValueError):
        _market(sdk, mutation_fraction=1.5)


# ----------------------------------------------------------------------
# Semesters
# ----------------------------------------------------------------------


def test_semester_concatenates_days(sdk):
    market = _market(sdk)
    assert market.n_semesters == 2
    second = market.semester(1)
    assert (second.first_day, second.last_day) == (30, 59)
    assert len(second.corpus) == 30 * 6
    want = [
        apk.md5 for sl in market.day_slices(30, 59) for apk in sl.corpus
    ]
    assert [apk.md5 for apk in second.corpus] == want
    with pytest.raises(ValueError):
        market.semester(2)


# ----------------------------------------------------------------------
# The stream adapter
# ----------------------------------------------------------------------


def test_stream_periods_match_day_slices(sdk):
    stream = DriftingMarketStream(_market(sdk), period_days=20)
    assert stream.n_periods == 3
    batch = stream.next_month()
    assert batch.month_index == 1
    assert len(batch.corpus) == 20 * 6
    reference = _market(sdk)
    want = [
        apk.md5 for sl in reference.day_slices(0, 19) for apk in sl.corpus
    ]
    assert [apk.md5 for apk in batch.corpus] == want


def test_stream_exhausts_at_horizon(sdk):
    stream = DriftingMarketStream(_market(sdk), period_days=30)
    stream.next_month()
    stream.next_month()
    with pytest.raises(StopIteration):
        stream.next_month()


def test_stream_surfaces_drift_events(sdk):
    stream = DriftingMarketStream(_market(sdk), period_days=30)
    first = stream.next_month()
    assert first.sdk is stream.sdk
    kinds = {e.kind for e in stream.last_events}
    assert "sdk_release" in kinds  # day 20 release rode period 1
