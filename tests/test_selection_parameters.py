"""Tests for selection thresholds and their sensitivity."""

import numpy as np
import pytest

from repro.core.selection import (
    FREQUENT_USAGE_FRACTION,
    SELDOM_USAGE_FRACTION,
    SRC_THRESHOLD,
    invocation_matrix,
    mine_set_c,
    select_key_apis,
)


def test_paper_thresholds():
    assert SRC_THRESHOLD == 0.2
    assert SELDOM_USAGE_FRACTION == 0.001
    assert FREQUENT_USAGE_FRACTION == 0.5


@pytest.fixture(scope="module")
def mining_inputs(sdk, corpus, study_observations):
    X = invocation_matrix(study_observations, len(sdk))
    return X, corpus.labels.astype(np.uint8)


def test_higher_threshold_shrinks_set_c(mining_inputs):
    X, y = mining_inputs
    loose, _, _ = mine_set_c(X, y, src_threshold=0.15)
    strict, _, _ = mine_set_c(X, y, src_threshold=0.3)
    assert set(strict.tolist()) <= set(loose.tolist())
    assert strict.size < loose.size


def test_seldom_filter_prunes_rare_apis(mining_inputs):
    X, y = mining_inputs
    permissive, _, usage = mine_set_c(X, y, seldom_fraction=0.0)
    filtered, _, _ = mine_set_c(X, y, seldom_fraction=0.05)
    assert set(filtered.tolist()) <= set(permissive.tolist())
    # Everything surviving the stricter filter is above its usage bar
    # or a frequent negative member.
    for api_id in filtered:
        assert usage[api_id] >= 0.05 or usage[api_id] >= 0.5


def test_frequent_cut_controls_negative_band(mining_inputs):
    X, y = mining_inputs
    lenient, src, usage = mine_set_c(X, y, frequent_fraction=0.2)
    strict, _, _ = mine_set_c(X, y, frequent_fraction=0.95)
    lenient_neg = [i for i in lenient if src[i] < 0]
    strict_neg = [i for i in strict if src[i] < 0]
    assert set(strict_neg) <= set(lenient_neg)


def test_select_key_apis_threshold_passthrough(sdk, mining_inputs):
    X, y = mining_inputs
    default = select_key_apis(X, y, sdk)
    strict = select_key_apis(X, y, sdk, src_threshold=0.4)
    assert strict.set_c.size < default.set_c.size
    # The fixed sets are untouched by mining thresholds.
    assert np.array_equal(strict.set_p, default.set_p)
    assert np.array_equal(strict.set_s, default.set_s)


def test_union_is_monotone_in_set_c(sdk, mining_inputs):
    X, y = mining_inputs
    default = select_key_apis(X, y, sdk)
    strict = select_key_apis(X, y, sdk, src_threshold=0.4)
    assert strict.n_keys <= default.n_keys
