"""Tests for the behavioral rule engine (repro.rules).

Covers the declarative spec layer, compilation against an SDK + hook
set, the five-stage confidence ladder, evidence-carrying reports, lint,
metrics, and the triage/vetting integration — ending with the seeded
family-separation acceptance check: on a fresh vetting day, each
malware family's flagged apps are mostly explained by the rule(s)
profiling that family.
"""

import json

import numpy as np
import pytest

from repro.rules import (
    BehaviorReport,
    N_STAGES,
    RuleCompileError,
    RuleCompiler,
    RuleEvaluator,
    RuleHit,
    RuleSpec,
    STAGE_CONFIDENCE,
    builtin_ruleset,
    lint_ruleset,
    load_ruleset,
)
from repro.core.features import AppObservation


@pytest.fixture(scope="module")
def specs():
    return {s.behavior: s for s in builtin_ruleset()}


def _ids(sdk, names):
    return tuple(int(sdk.by_name(n).api_id) for n in names)


def _obs(md5="a" * 32, apis=(), perms=(), intents=(), counts=()):
    return AppObservation(
        apk_md5=md5,
        invoked_api_ids=tuple(apis),
        permissions=tuple(perms),
        intents=tuple(intents),
        invoked_api_counts=tuple(counts),
    )


# -- spec / load ---------------------------------------------------------


def test_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown keys"):
        RuleSpec.from_dict(
            {"behavior": "x", "apis": ["a.b.c"], "typo_key": 1}
        )


def test_spec_requires_apis_and_positive_weight():
    with pytest.raises(ValueError, match="at least one required API"):
        RuleSpec(behavior="x", apis=())
    with pytest.raises(ValueError, match="weight must be positive"):
        RuleSpec(behavior="x", apis=("a.b.c",), weight=0.0)


def test_spec_round_trips_through_dict():
    spec = RuleSpec(
        behavior="x",
        apis=("a.b.c",),
        description="d",
        permissions=("P",),
        intents=("I",),
        families=("botnet",),
        weight=2.0,
    )
    assert RuleSpec.from_dict(spec.to_dict()) == spec


def test_load_ruleset_accepts_versioned_and_bare_json():
    entry = {"behavior": "x", "apis": ["a.b.c"]}
    bare = json.dumps([entry])
    versioned = json.dumps({"version": 1, "rules": [entry]})
    assert load_ruleset(bare) == load_ruleset(versioned)
    with pytest.raises(ValueError, match="unsupported ruleset version"):
        load_ruleset(json.dumps({"version": 2, "rules": [entry]}))


def test_load_ruleset_rejects_duplicate_behaviors():
    entry = {"behavior": "x", "apis": ["a.b.c"]}
    with pytest.raises(ValueError, match="duplicate rule behaviors"):
        load_ruleset([entry, entry])


def test_load_ruleset_from_file(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(json.dumps([{"behavior": "x", "apis": ["a.b.c"]}]))
    (loaded,) = load_ruleset(path)
    assert loaded.behavior == "x"


def test_builtin_ruleset_parses_and_lints_clean(sdk):
    specs = builtin_ruleset()
    assert len(specs) >= 6
    issues = lint_ruleset(specs, sdk)
    assert [i for i in issues if i.severity == "error"] == []


# -- compiler ------------------------------------------------------------


def test_compiler_collects_all_errors(sdk):
    bad = (
        RuleSpec(behavior="a", apis=("no.such.Api",)),
        RuleSpec(
            behavior="b",
            apis=(sdk.api_names[0],),
            permissions=("NO_SUCH_PERM",),
            intents=("NO_SUCH_INTENT",),
        ),
    )
    with pytest.raises(RuleCompileError) as err:
        RuleCompiler(sdk).compile(bad)
    msg = str(err.value)
    assert "3 rule compilation error(s)" in msg
    assert "no.such.Api" in msg
    assert "NO_SUCH_PERM" in msg and "NO_SUCH_INTENT" in msg


def test_compiler_drop_policy_records_untracked(sdk):
    tracked_name, untracked_name = sdk.api_names[0], sdk.api_names[1]
    spec = RuleSpec(behavior="a", apis=(tracked_name, untracked_name))
    compiler = RuleCompiler(
        sdk, tracked_api_ids=_ids(sdk, [tracked_name]), on_untracked="drop"
    )
    ruleset = compiler.compile([spec])
    (rule,) = ruleset.rules
    assert rule.api_names == (tracked_name,)
    assert rule.dropped_apis == (untracked_name,)


def test_compiler_error_policy_rejects_untracked(sdk):
    spec = RuleSpec(behavior="a", apis=(sdk.api_names[1],))
    compiler = RuleCompiler(
        sdk, tracked_api_ids=[0], on_untracked="error"
    )
    with pytest.raises(RuleCompileError, match="not in the tracked"):
        compiler.compile([spec])


def test_compiler_drops_fully_untracked_rule(sdk):
    spec = RuleSpec(behavior="gone", apis=(sdk.api_names[1],))
    ruleset = RuleCompiler(sdk, tracked_api_ids=[0]).compile([spec])
    assert len(ruleset) == 0
    assert ruleset.dropped_rules[0][0] == "gone"


def test_builtin_ruleset_survives_mined_key_set(fitted_checker):
    """Every bundled rule's API evidence is inside the mined hook set."""
    evaluator = RuleEvaluator.builtin(
        fitted_checker.sdk, tracked_api_ids=fitted_checker.key_api_ids
    )
    assert evaluator.ruleset.dropped_rules == ()
    for rule in evaluator.ruleset.rules:
        assert rule.dropped_apis == ()
        assert rule.api_ids  # still has concrete API requirements


# -- the confidence ladder -----------------------------------------------


def test_ladder_stages_climb_with_evidence(sdk, specs):
    spec = specs["sms_fraud"]
    assert len(spec.apis) == 2 and len(spec.permissions) == 2
    api_ids = _ids(sdk, spec.apis)
    evaluator = RuleEvaluator.from_specs([spec], sdk)
    cases = [
        (_obs(apis=(), perms=(), intents=()), 0),
        (_obs(perms=spec.permissions[:1]), 1),
        (_obs(apis=api_ids[:1], perms=spec.permissions[:1]), 2),
        (_obs(apis=api_ids, perms=spec.permissions[:1]), 3),
        (_obs(apis=api_ids, perms=spec.permissions), 4),
        (_obs(apis=api_ids, perms=spec.permissions,
              intents=spec.intents), 5),
    ]
    for obs, want_stage in cases:
        report = evaluator.evaluate_one(obs)
        if want_stage == 0:
            assert report.hits == ()
            continue
        (hit,) = report.hits
        assert hit.stage == want_stage
        assert hit.confidence == STAGE_CONFIDENCE[want_stage]
        assert hit.score == spec.weight * hit.confidence


def test_stage5_is_never_vacuous(sdk, specs):
    """An intent-less rule caps at stage 4 even on full evidence."""
    spec = specs["privilege_probing"]
    assert spec.intents == ()
    evaluator = RuleEvaluator.from_specs([spec], sdk)
    report = evaluator.evaluate_one(
        _obs(apis=_ids(sdk, spec.apis), perms=spec.permissions)
    )
    (hit,) = report.hits
    assert hit.stage == 4
    assert hit.confidence == STAGE_CONFIDENCE[4] < 1.0


def test_vacuous_stage1_without_evidence_stays_silent(sdk):
    """A permission-less rule must not fire on an empty observation."""
    spec = RuleSpec(behavior="api_only", apis=(sdk.api_names[0],))
    evaluator = RuleEvaluator.from_specs([spec], sdk)
    assert evaluator.evaluate_one(_obs()).hits == ()
    # ...but climbs straight to stage 4 once its API shows up.
    report = evaluator.evaluate_one(_obs(apis=_ids(sdk, spec.apis)))
    assert report.hits[0].stage == 4


def test_hit_evidence_names_exact_matches(sdk, specs):
    spec = specs["sms_fraud"]
    api_ids = _ids(sdk, spec.apis)
    evaluator = RuleEvaluator.from_specs([spec], sdk)
    report = evaluator.evaluate_one(
        _obs(
            apis=api_ids[:1],
            perms=spec.permissions[:1],
            counts=((api_ids[0], 17),),
        )
    )
    (hit,) = report.hits
    assert hit.matched_apis == spec.apis[:1]
    assert hit.missing_apis == spec.apis[1:]
    assert hit.matched_permissions == spec.permissions[:1]
    assert hit.matched_api_calls == 17
    assert hit.n_required == (
        len(spec.apis) + len(spec.permissions) + len(spec.intents)
    )
    assert 0.0 < hit.matched_fraction < 1.0


def test_hits_rank_by_score_then_coverage_then_name(sdk):
    a = RuleSpec(behavior="aaa", apis=(sdk.api_names[0],))
    b = RuleSpec(
        behavior="bbb", apis=(sdk.api_names[0],), permissions=("android.permission.INTERNET",)
    )
    evaluator = RuleEvaluator.from_specs([a, b], sdk)
    report = evaluator.evaluate_one(
        _obs(apis=_ids(sdk, [sdk.api_names[0]]), perms=("android.permission.INTERNET",))
    )
    # Both reach stage 4 (same score); "bbb" covered 2/2 items while
    # "aaa" covered 1/1 — equal fractions tie-break alphabetically.
    assert [h.behavior for h in report.hits] == ["aaa", "bbb"]
    assert report.hits[0].score == report.hits[1].score


# -- reports -------------------------------------------------------------


def test_behavior_report_round_trips_json(sdk, specs):
    spec = specs["botnet_c2"]
    evaluator = RuleEvaluator.from_specs([spec], sdk)
    report = evaluator.evaluate_one(
        _obs(
            apis=_ids(sdk, spec.apis),
            perms=spec.permissions,
            intents=spec.intents,
        )
    )
    clone = BehaviorReport.from_dict(
        json.loads(json.dumps(report.to_dict()))
    )
    assert clone == report
    assert clone.top_behavior == "botnet_c2"
    assert clone.max_stage == 5 == N_STAGES


def test_report_summary_is_analyst_readable(sdk, specs):
    spec = specs["sms_fraud"]
    evaluator = RuleEvaluator.from_specs([spec], sdk)
    silent = evaluator.evaluate_one(_obs())
    assert "no behavior evidence" in silent.summary()
    loud = evaluator.evaluate_one(
        _obs(apis=_ids(sdk, spec.apis), perms=spec.permissions,
             intents=spec.intents)
    )
    assert "sms_fraud" in loud.summary()
    assert "stage 5/5" in loud.summary()


def test_rule_hit_rejects_out_of_range_stage():
    with pytest.raises(ValueError, match="stage must be"):
        RuleHit(
            behavior="x", stage=6, confidence=1.0, score=1.0, weight=1.0
        )


# -- lint ----------------------------------------------------------------


def test_lint_flags_empty_ruleset():
    (issue,) = lint_ruleset([])
    assert issue.severity == "error"


def test_lint_warns_on_bare_api_rules_and_unknown_family():
    spec = RuleSpec(
        behavior="x", apis=("a.b.c",), families=("no_such_family",)
    )
    issues = lint_ruleset([spec])
    messages = [i.message for i in issues]
    assert any("no permissions and no intents" in m for m in messages)
    assert any("no_such_family" in m for m in messages)
    assert all(i.severity == "warning" for i in issues)


def test_lint_resolves_names_against_sdk(sdk):
    spec = RuleSpec(
        behavior="x",
        apis=("no.such.Api",),
        permissions=("NO_SUCH_PERM",),
        intents=("NO_SUCH_INTENT",),
        description="d",
    )
    issues = lint_ruleset([spec], sdk)
    errors = [i for i in issues if i.severity == "error"]
    assert len(errors) == 3


def test_lint_warns_on_identical_api_sets():
    a = RuleSpec(behavior="a", apis=("x.y.z", "a.b.c"), description="d")
    b = RuleSpec(behavior="b", apis=("a.b.c", "x.y.z"), description="d")
    issues = lint_ruleset([a, b])
    assert any("identical" in i.message for i in issues)


# -- metrics -------------------------------------------------------------


def test_evaluator_reports_through_registry(sdk, specs):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    spec = specs["sms_fraud"]
    evaluator = RuleEvaluator.from_specs([spec], sdk, registry=registry)
    full = _obs(
        apis=_ids(sdk, spec.apis),
        perms=spec.permissions,
        intents=spec.intents,
    )
    evaluator.evaluate([full, _obs(md5="b" * 32)])
    assert registry.value("rules_batches_total") == 1
    assert registry.value("rules_evaluations_total") == 2
    assert registry.value("rules_hits_total") == 1
    assert (
        registry.value("rules_top_behavior_total", behavior="sms_fraud")
        == 1
    )
    assert registry.histogram("rules_evaluate_seconds").count == 1


# -- triage + vetting integration ----------------------------------------


def _family_profiles():
    """behavior-name profile per corpus family, from the bundled rules."""
    profiles: dict[str, set[str]] = {}
    for spec in builtin_ruleset():
        for family in spec.families:
            profiles.setdefault(family, set()).add(spec.behavior)
    return profiles


def test_triage_flagged_carries_behavior_reports(
    sdk, generator, fitted_checker
):
    from repro.core.triage import TriageCenter

    apps = [generator.sample_app(malicious=True) for _ in range(6)]
    engine = fitted_checker.production_engine
    observations = [engine.analyze(a).observation for a in apps]
    verdicts = [
        fitted_checker.verdict_from_observation(obs)
        for obs in observations
    ]
    rules = RuleEvaluator.builtin(
        sdk, tracked_api_ids=fitted_checker.key_api_ids
    )
    triage = TriageCenter(fitted_checker.key_api_ids)
    report = triage.triage_flagged(
        apps,
        verdicts,
        np.ones(len(apps), dtype=bool),
        observations=observations,
        rules=rules,
    )
    assert len(report.behavior_reports) == report.n_flagged
    flagged_md5s = [
        a.md5 for a, v in zip(apps, verdicts) if v.malicious
    ]
    assert [r.apk_md5 for r in report.behavior_reports] == flagged_md5s


def test_triage_user_reports_carry_behavior_reports(
    sdk, generator, fitted_checker
):
    from repro.core.triage import TriageCenter

    apps = [generator.sample_app(malicious=True) for _ in range(10)]
    engine = fitted_checker.production_engine
    observations = [engine.analyze(a).observation for a in apps]
    rules = RuleEvaluator.builtin(
        sdk, tracked_api_ids=fitted_checker.key_api_ids
    )
    triage = TriageCenter(
        fitted_checker.key_api_ids, user_report_prob=1.0
    )
    report = triage.triage_user_reports(
        apps,
        np.ones(len(apps), dtype=bool),
        observations=observations,
        rules=rules,
    )
    assert report.n_reports == len(apps)
    assert len(report.behavior_reports) == len(apps)


def test_vetting_day_attaches_explanations(sdk, catalog, fitted_checker):
    from repro.core.vetting import VettingService
    from repro.corpus.generator import CorpusGenerator
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    gen = CorpusGenerator(sdk, seed=4242, catalog=catalog)
    day = gen.generate(60, malware_rate=0.4)
    service = VettingService(fitted_checker, registry=registry)
    report = service.process_day(day, true_labels=day.labels)
    assert report.n_flagged > 0
    assert len(report.behavior_reports) == report.n_flagged
    # Reports align with the flagged verdicts, in submission order.
    flagged_md5s = [
        v.apk_md5 for v in report.verdicts if v.malicious
    ]
    assert [r.apk_md5 for r in report.behavior_reports] == flagged_md5s
    assert report.explanation_for(flagged_md5s[0]) is not None
    assert report.explanation_for("f" * 32) is None
    # The FP-triage report shares the same (single) evaluation.
    assert report.fp_report is not None
    assert report.fp_report.behavior_reports == report.behavior_reports
    assert registry.value("rules_evaluations_total") == report.n_flagged


def test_vetting_rules_opt_out(sdk, catalog, fitted_checker):
    from repro.core.vetting import VettingService
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=4243, catalog=catalog)
    day = gen.generate(30, malware_rate=0.4)
    service = VettingService(fitted_checker, rules=False)
    assert service.rules is None
    report = service.process_day(day, true_labels=day.labels)
    assert report.behavior_reports == ()


# -- seeded family-separation acceptance ---------------------------------


def test_flagged_families_match_their_rule_profiles(
    sdk, catalog, fitted_checker
):
    """On a fresh vetting day, each malware family's flagged apps are
    mostly explained by the rule(s) profiling that family.

    ``update_fraction=0`` keeps the day's families independent (update
    chains collapse a day into a few correlated packages); families
    with fewer than 5 flagged apps are too small to call a majority.
    """
    from repro.corpus.generator import CorpusGenerator

    profiles = _family_profiles()
    gen = CorpusGenerator(sdk, seed=103, catalog=catalog)
    day = gen.generate(600, malware_rate=0.3, update_fraction=0.0)
    engine = fitted_checker.production_engine
    rules = RuleEvaluator.builtin(
        sdk, tracked_api_ids=fitted_checker.key_api_ids
    )
    by_family: dict[str, list[str | None]] = {}
    for apk in day.apps:
        if not apk.is_malicious or apk.family not in profiles:
            continue
        obs = engine.analyze(apk).observation
        if not fitted_checker.verdict_from_observation(obs).malicious:
            continue
        top = rules.evaluate_one(obs).top_behavior
        by_family.setdefault(apk.family, []).append(top)
    assert len(by_family) >= 5  # the day must exercise most families
    misses = []
    for family, tops in sorted(by_family.items()):
        if len(tops) < 5:
            continue
        ok = sum(top in profiles[family] for top in tops)
        if ok <= len(tops) / 2:
            misses.append(f"{family}: {ok}/{len(tops)} ({tops[:8]})")
    assert not misses, "family profile mismatches:\n" + "\n".join(misses)
