"""Tests for the versioned ruleset registry and live ruleset hot swap."""

import json
import threading
import time

import pytest

from repro.rules import builtin_ruleset, load_ruleset
from repro.serve.registry import IntegrityError, ModelRegistry
from repro.serve.rulesets import (
    BUILTIN_RULESET_VERSION,
    RulesetRegistry,
)
from repro.serve.service import OnlineVettingService


def _renamed_ruleset(suffix: str) -> bytes:
    """The bundled rules with every behavior renamed ``<name><suffix>``.

    Same evidence, distinguishable provenance: any hit's behavior name
    tells exactly which ruleset version explained it.
    """
    rules = [
        {**spec.to_dict(), "behavior": spec.behavior + suffix}
        for spec in builtin_ruleset()
    ]
    return json.dumps({"version": 1, "rules": rules}).encode("utf-8")


@pytest.fixture()
def models(tmp_path, fitted_checker):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(
        fitted_checker, metadata={"source": "test"}, activate=True
    )
    return registry


def _service(models, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch_size", 4)
    return OnlineVettingService(models, **kwargs)


# ----------------------------------------------------------------------
# RulesetRegistry
# ----------------------------------------------------------------------


def test_fresh_registry_serves_builtin_as_v0(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    assert registry.active_version == BUILTIN_RULESET_VERSION
    assert registry.active_specs() == builtin_ruleset()
    assert registry.load(0) == builtin_ruleset()
    assert registry.metrics.value("serve_active_ruleset_version") == 0


def test_publish_assigns_versions_and_persists(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    v1 = registry.publish(_renamed_ruleset("_a"))
    v2 = registry.publish(_renamed_ruleset("_b"))
    assert (v1.version, v2.version) == (1, 2)
    assert (tmp_path / "r" / v1.filename).exists()
    assert (tmp_path / "r" / "ruleset_manifest.json").exists()
    assert registry.active_version == 0  # publish alone never serves
    assert v1.state == "archived"
    assert v1.n_rules == len(builtin_ruleset())
    assert registry.metrics.value("serve_rulesets_published_total") == 2


def test_publish_preserves_pushed_bytes_and_hash(tmp_path):
    import hashlib

    blob = _renamed_ruleset("_x")
    registry = RulesetRegistry(tmp_path / "r")
    rv = registry.publish(blob)
    assert rv.sha256 == hashlib.sha256(blob).hexdigest()
    assert (tmp_path / "r" / rv.filename).read_bytes() == blob


def test_publish_rejects_unparseable_ruleset(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    with pytest.raises(ValueError):
        registry.publish(b"this is not json")
    assert registry.versions == {}


def test_activate_swaps_and_archives(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    registry.publish(_renamed_ruleset("_a"), activate=True)
    registry.publish(_renamed_ruleset("_b"), activate=True)
    assert registry.active_version == 2
    assert registry.versions[1].state == "archived"
    assert registry.versions[2].state == "active"
    assert registry.metrics.value("ruleset_swap_total") == 2
    assert registry.metrics.value("serve_active_ruleset_version") == 2
    assert {s.behavior for s in registry.active_specs()} == {
        s.behavior + "_b" for s in builtin_ruleset()
    }


def test_activate_unknown_version(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    with pytest.raises(KeyError, match="unknown ruleset version"):
        registry.activate(42)


def test_tampered_artifact_fails_integrity_check(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    rv = registry.publish(_renamed_ruleset("_a"))
    artifact = tmp_path / "r" / rv.filename
    blob = bytearray(artifact.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    artifact.write_bytes(bytes(blob))
    with pytest.raises(IntegrityError, match="hash mismatch"):
        registry.activate(1)
    # The corrupted version never became active.
    assert registry.active_version == 0


def test_reopen_restores_active_version(tmp_path):
    root = tmp_path / "r"
    registry = RulesetRegistry(root)
    registry.publish(_renamed_ruleset("_a"), activate=True)
    registry.publish(_renamed_ruleset("_b"))

    reopened = RulesetRegistry(root)
    assert reopened.active_version == 1
    assert len(reopened.versions) == 2
    assert {s.behavior for s in reopened.active_specs()} == {
        s.behavior + "_a" for s in builtin_ruleset()
    }


def test_in_memory_mode_needs_no_disk():
    registry = RulesetRegistry(root=None)
    rv = registry.publish(_renamed_ruleset("_m"), activate=True)
    assert registry.active_version == rv.version == 1
    assert registry.load(1)[0].behavior.endswith("_m")


def test_lease_yields_consistent_pair(tmp_path):
    registry = RulesetRegistry(tmp_path / "r")
    registry.publish(_renamed_ruleset("_a"), activate=True)
    with registry.lease() as (version, specs):
        assert version == 1
        assert all(s.behavior.endswith("_a") for s in specs)


def test_hot_swap_never_yields_mixed_lease(tmp_path):
    """Concurrent leases during repeated swaps stay version-consistent.

    Reader threads hammer :meth:`RulesetRegistry.lease` while the main
    thread keeps flipping the active version; every lease must yield a
    ``(version, specs)`` pair whose behavior suffixes all agree with
    the leased version — never a half-swapped state.
    """
    registry = RulesetRegistry(tmp_path / "r")
    registry.publish(_renamed_ruleset("__v1"))
    registry.publish(_renamed_ruleset("__v2"))
    registry.activate(1)

    stop = threading.Event()
    seen: list[tuple[int, frozenset]] = []
    errors: list[Exception] = []

    def reader():
        try:
            while not stop.is_set():
                with registry.lease() as (version, specs):
                    seen.append(
                        (version, frozenset(s.behavior for s in specs))
                    )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for _ in range(6):
        registry.activate(2)
        registry.activate(1)
    stop.set()
    for t in threads:
        t.join(10.0)
    assert not errors
    assert len(seen) > 0
    for version, behaviors in seen:
        assert version in (1, 2)
        suffix = f"__v{version}"
        assert all(b.endswith(suffix) for b in behaviors)


# ----------------------------------------------------------------------
# Service integration: push, validation, explain/healthz surfacing
# ----------------------------------------------------------------------


def test_push_ruleset_validates_and_activates(models, generator):
    apps = [generator.sample_app(malicious=True) for _ in range(6)]
    with _service(models) as service:
        assert service.healthz()["ruleset_version"] == 0
        receipt = service.push_ruleset(_renamed_ruleset("__v1"))
        assert receipt["ruleset_version"] == 1
        assert receipt["n_rules"] == len(builtin_ruleset())
        assert service.healthz()["ruleset_version"] == 1

        for apk in apps:
            service.submit(apk)
        assert service.drain(60.0)
        for apk in apps:
            outcome = service.result(apk.md5)
            assert outcome["status"] == "done"
            assert outcome["ruleset_version"] == 1
            explained = service.explain(apk.md5)
            assert explained["ruleset_version"] == 1
            if explained["explanation"]:
                behaviors = {
                    h["behavior"]
                    for h in explained["explanation"]["hits"]
                }
                assert all(b.endswith("__v1") for b in behaviors)


def test_push_rejects_lint_errors(models):
    empty = json.dumps({"version": 1, "rules": []})
    with _service(models) as service:
        with pytest.raises(ValueError, match="lint.*empty"):
            service.push_ruleset(empty)
        # Duplicate behaviors are rejected at parse time, before lint.
        spec = builtin_ruleset()[0].to_dict()
        with pytest.raises(ValueError, match="duplicate"):
            service.push_ruleset(
                json.dumps({"version": 1, "rules": [spec, spec]})
            )
        assert service.healthz()["ruleset_version"] == 0
        assert not service.rulesets.versions  # nothing published


def test_push_rejects_unparseable_body(models):
    with _service(models) as service:
        with pytest.raises(ValueError):
            service.push_ruleset(b"{not json")
        assert service.healthz()["ruleset_version"] == 0


def test_ruleset_hot_swap_never_yields_mixed_explanations(
    models, generator
):
    """In-flight submissions during swaps see exactly one ruleset each.

    Mirrors ``test_serve_registry.py::
    test_hot_swap_never_yields_mixed_versions`` one layer up: traffic
    flows while the active ruleset keeps flipping between two pushed
    versions whose behavior names are suffix-tagged, so a mixed-version
    ``BehaviorReport`` would be visible as a suffix clash against the
    outcome's recorded ``ruleset_version``.
    """
    apps = [generator.sample_app(malicious=True) for _ in range(24)]
    with _service(models) as service:
        service.push_ruleset(_renamed_ruleset("__v1"))
        service.push_ruleset(_renamed_ruleset("__v2"))
        for i, apk in enumerate(apps):
            service.submit(apk)
            if i % 3 == 2:
                service.rulesets.activate(1 + (i // 3) % 2)
                time.sleep(0.01)
        assert service.drain(120.0)

        suffixes = {1: "__v1", 2: "__v2"}
        for apk in apps:
            outcome = service.result(apk.md5)
            assert outcome["status"] == "done"
            version = outcome["ruleset_version"]
            assert version in (1, 2)
            explained = service.explain(apk.md5)
            assert explained["ruleset_version"] == version
            if explained["explanation"]:
                behaviors = {
                    h["behavior"]
                    for h in explained["explanation"]["hits"]
                }
                # every hit in one report from exactly one version
                assert all(
                    b.endswith(suffixes[version]) for b in behaviors
                )


def test_spool_backed_service_persists_rulesets(
    tmp_path, models, generator
):
    """A durable service keeps its pushed ruleset across restarts."""
    spool = tmp_path / "spool"
    with _service(models, spool_dir=spool) as service:
        service.push_ruleset(_renamed_ruleset("__v1"))
        assert service.healthz()["ruleset_version"] == 1
    assert (spool / "rulesets" / "ruleset_manifest.json").exists()

    with _service(models, spool_dir=spool) as reopened:
        assert reopened.healthz()["ruleset_version"] == 1
        assert all(
            s.behavior.endswith("__v1")
            for s in reopened.rulesets.active_specs()
        )
