"""Tests for the corpus generator and blueprints."""

import numpy as np
import pytest

from repro.corpus.behavior import AppBlueprint
from repro.corpus.generator import PAPER_MALWARE_RATE, CorpusGenerator


def test_paper_malware_rate_constant():
    assert abs(PAPER_MALWARE_RATE - 38_698 / 501_971) < 1e-12


def test_generate_validates_args(generator):
    with pytest.raises(ValueError):
        generator.generate(0)
    with pytest.raises(ValueError):
        generator.generate(10, malware_rate=1.5)


def test_labels_match_archetype_class(generator):
    corpus = generator.generate(150)
    for apk in corpus:
        assert apk.is_malicious == generator.catalog.get(apk.family).malicious


def test_malware_rate_approximately_honored(generator):
    corpus = generator.generate(800, malware_rate=0.2)
    assert 0.12 < corpus.labels.mean() < 0.28


def test_update_fraction_tracked(generator):
    corpus = generator.generate(600, update_fraction=0.85)
    # Early draws have no parents, so the realized rate sits below 0.85.
    assert 0.5 < corpus.update_fraction() < 0.9
    no_updates = CorpusGenerator(corpus.sdk, seed=123).generate(
        100, update_fraction=0.0
    )
    assert no_updates.update_fraction() == 0.0


def test_updates_share_package_and_bump_version(generator):
    corpus = generator.generate(500, update_fraction=0.9)
    by_package = {}
    for apk in corpus:
        by_package.setdefault(apk.package_name, []).append(apk)
    multi = [apps for apps in by_package.values() if len(apps) > 1]
    assert multi, "expected at least one updated package"
    for apps in multi:
        versions = [a.manifest.version_code for a in apps]
        assert len(set(versions)) == len(versions)
        assert len({a.md5 for a in apps}) == len(apps)
        assert len({a.is_malicious for a in apps}) == 1


def test_permissions_cover_code_needs(generator, sdk):
    corpus = generator.generate(120)
    for apk in corpus:
        for api_id in apk.dex.direct_api_ids + apk.dex.reflection_api_ids:
            perm = sdk.api(api_id).permission
            if perm is not None:
                assert apk.manifest.requests(perm), (
                    f"{apk.package_name} calls {sdk.api(api_id).name} "
                    f"without requesting {perm}"
                )


def test_reflection_hidden_apis_not_direct(generator):
    corpus = generator.generate(300)
    for apk in corpus:
        assert not set(apk.dex.direct_api_ids) & set(
            apk.dex.reflection_api_ids
        )


def test_malware_hides_more_than_benign(generator):
    corpus = generator.generate(900)
    mal_hidden = np.mean(
        [len(a.dex.reflection_api_ids) for a in corpus if a.is_malicious]
    )
    ben_hidden = np.mean(
        [len(a.dex.reflection_api_ids) for a in corpus if not a.is_malicious]
    )
    assert mal_hidden > ben_hidden


def test_sample_fraction(generator, rng):
    corpus = generator.generate(200)
    sub = corpus.sample_fraction(0.1, rng)
    assert len(sub) == 20
    with pytest.raises(ValueError):
        corpus.sample_fraction(0.0, rng)


def test_subset_preserves_labels(generator):
    corpus = generator.generate(100)
    sub = corpus.subset([0, 5, 7])
    assert len(sub) == 3
    assert sub.labels[1] == corpus.labels[5]


def test_blueprint_merge_on_duplicate_add():
    bp = AppBlueprint(package_name="p", archetype="tool", malicious=False)
    bp.add_direct_call(4, 1.0, 0.5)
    bp.add_direct_call(4, 2.0, 0.3)
    assert bp.direct_calls[4] == (3.0, 0.3)


def test_blueprint_hide_and_delegate():
    bp = AppBlueprint(package_name="p", archetype="tool", malicious=False)
    bp.add_direct_call(4, 1.0, 0.5)
    bp.hide_behind_reflection(4)
    assert 4 not in bp.direct_calls and 4 in bp.reflection_apis
    bp.add_direct_call(5, 1.0, 0.5)
    bp.delegate_over_intent(5, "android.intent.action.SEND")
    assert 5 not in bp.direct_calls
    assert "android.intent.action.SEND" in bp.sent_intents


def test_updated_copy_is_light_churn(generator, rng):
    bp = generator.sample_blueprint("tool")
    new = bp.updated_copy(rng)
    assert new.version_code == bp.version_code + 1
    assert new.package_name == bp.package_name
    common = set(bp.direct_calls) & set(new.direct_calls)
    assert len(common) >= 0.9 * len(bp.direct_calls)


def test_benign_engagement_exceeds_malware(generator, sdk):
    corpus = generator.generate(900)
    common = set(sdk.common_ops_api_ids.tolist())

    def common_ops_count(apk):
        return len(common & set(apk.dex.direct_api_ids))

    mal = np.mean([common_ops_count(a) for a in corpus if a.is_malicious])
    ben = np.mean(
        [
            common_ops_count(a)
            for a in corpus
            if not a.is_malicious and a.family != "adlib_heavy"
        ]
    )
    assert ben > mal
