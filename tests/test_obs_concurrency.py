"""Observability under concurrency: exact counters at any worker count.

The registry is the measurement backbone for the scaling work; these
tests pin that N-worker pipeline runs produce *exact, deterministic*
counter totals — cache hits + emulations == submissions — and that
histogram counts only ever grow.
"""

import pytest

from repro.core.engine import DynamicAnalysisEngine, EngineStats
from repro.core.pipeline import ObservationCache, VettingPipeline
from repro.obs import MetricsRegistry, SpanSink

N_APPS = 40
DUPLICATES = 10


@pytest.fixture()
def apps(generator):
    batch = [generator.sample_app(malicious=i % 5 == 0)
             for i in range(N_APPS)]
    # Resubmission traffic: the tail repeats the head's md5s.
    return batch + batch[:DUPLICATES]


def _run(sdk, apps, workers, cache=None, sink=None):
    registry = MetricsRegistry()
    engine = DynamicAnalysisEngine(
        sdk, [], seed=9, registry=registry, sink=sink
    )
    pipeline = VettingPipeline(
        engine, workers=workers, cache=cache, registry=registry
    )
    result = pipeline.run(apps)
    return registry, result


@pytest.mark.parametrize("workers", [1, 3, 8])
def test_counters_conserve_submissions(sdk, apps, workers):
    registry, result = _run(sdk, apps, workers,
                            cache=ObservationCache())
    counts = registry.counters()
    assert counts["pipeline_submissions_total"] == len(apps)
    assert (
        counts["pipeline_analyzed_total"]
        + counts.get("pipeline_cached_total", 0)
        + counts.get("pipeline_failed_total", 0)
        == counts["pipeline_submissions_total"]
    )
    # Within-batch duplicates are served from the cache, exactly.
    assert counts["pipeline_analyzed_total"] == N_APPS
    assert counts["pipeline_cached_total"] == DUPLICATES
    # Registry counters agree with the result's own counts.
    d = result.as_dict()
    assert counts["pipeline_analyzed_total"] == d["analyzed"]
    assert counts["pipeline_cached_total"] == d["cached"]
    assert counts["pipeline_cache_hits_total"] == d["cache_hits"]
    assert counts["pipeline_cache_misses_total"] == d["cache_misses"]


def test_counter_totals_identical_across_worker_counts(sdk, apps):
    snapshots = []
    for workers in (1, 2, 5):
        registry, _ = _run(sdk, apps, workers, cache=ObservationCache())
        # Every counter — including the simulated-minute totals — is a
        # pure function of the submissions, never of the pool size.
        snapshots.append(registry.counters())
    # Exact for every integer counter; approx only absorbs float
    # summation order in the *_minutes totals.
    assert snapshots[1] == pytest.approx(snapshots[0])
    assert snapshots[2] == pytest.approx(snapshots[0])


def test_engine_stats_view_matches_registry(sdk, apps):
    registry, result = _run(sdk, apps, 4)
    engine_stats = EngineStats.from_registry(registry)
    assert engine_stats.settled
    assert engine_stats.analyzed == result.n_analyzed
    assert engine_stats.submissions == len(apps)  # no cache: all emulate
    assert engine_stats.as_dict()["analyzed"] == engine_stats.analyzed


def test_histograms_are_monotone_across_runs(sdk, apps):
    registry = MetricsRegistry()
    engine = DynamicAnalysisEngine(sdk, [], seed=9, registry=registry)
    pipeline = VettingPipeline(engine, workers=4, registry=registry)
    counts = []
    for _ in range(3):
        pipeline.run(apps)
        counts.append(
            {
                name: registry.histogram_count(name)
                for name in (
                    "pipeline_task_minutes",
                    "pipeline_queue_wait_seconds",
                    "pipeline_attempt_seconds",
                    "engine_attempt_seconds",
                    "engine_emulation_minutes",
                    "pipeline_run_seconds",
                )
            }
        )
    for before, after in zip(counts, counts[1:]):
        for name in before:
            assert after[name] >= before[name], name
    # Every run emulates each app at least once (no cache attached).
    assert counts[-1]["pipeline_task_minutes"] >= 3 * len(apps)
    assert counts[-1]["pipeline_run_seconds"] == 3


def test_parallel_sink_captures_every_task_span(sdk, apps):
    sink = SpanSink(capacity=100_000)
    registry, result = _run(sdk, apps, 6, sink=sink)
    task_events = [e for e in sink.events("pipeline_task")]
    assert len(task_events) == result.n_analyzed
    assert all(e.clock == "sim" for e in task_events)
    # The recorded sim spans cover exactly the executed timeline.
    total_span_minutes = sum(e.duration for e in task_events)
    total_busy = float(result.schedule.slot_busy_minutes.sum())
    assert total_span_minutes == pytest.approx(total_busy)
