"""Tests for capacity planning."""

import numpy as np
import pytest

from repro.core.capacity import (
    AnalysisLoadModel,
    CapacityPlanner,
    MINUTES_PER_DAY,
)
from repro.emulator.cluster import AnalysisServer


@pytest.fixture()
def load():
    # The deployed operating point: ~1.92 min/app end-to-end, skewed.
    return AnalysisLoadModel(mean_minutes=1.92, cv2=0.5)


def test_load_model_validation():
    with pytest.raises(ValueError):
        AnalysisLoadModel(mean_minutes=0, cv2=0.1)
    with pytest.raises(ValueError):
        AnalysisLoadModel(mean_minutes=1, cv2=-1)


def test_load_model_from_samples(rng):
    samples = rng.lognormal(np.log(1.8), 0.4, size=500)
    model = AnalysisLoadModel.from_samples(samples)
    assert abs(model.mean_minutes - samples.mean()) < 1e-9
    assert model.cv2 > 0
    with pytest.raises(ValueError):
        AnalysisLoadModel.from_samples([1.0])
    with pytest.raises(ValueError):
        AnalysisLoadModel.from_samples([1.0, -1.0])


def test_paper_deployment_point(load):
    """One 16-slot server handles ~10K apps/day (§5.2)."""
    planner = CapacityPlanner(load, max_utilization=0.9)
    assert planner.servers_needed(10_000) == 1
    assert planner.max_daily_volume(1) > 10_000


def test_slots_scale_linearly(load):
    planner = CapacityPlanner(load)
    one = planner.slots_needed(5_000)
    ten = planner.slots_needed(50_000)
    assert 9 * one <= ten <= 11 * one


def test_utilization_matches_definition(load):
    planner = CapacityPlanner(load)
    rho = planner.utilization(10_000, servers=1)
    assert rho == pytest.approx(
        10_000 * 1.92 / (16 * MINUTES_PER_DAY)
    )


def test_wait_grows_with_load(load):
    planner = CapacityPlanner(load)
    light = planner.mean_wait_minutes(4_000, servers=1)
    heavy = planner.mean_wait_minutes(11_000, servers=1)
    assert 0 <= light < heavy
    # Saturated systems wait forever.
    assert planner.mean_wait_minutes(20_000, servers=1) == float("inf")


def test_wait_shrinks_with_servers(load):
    planner = CapacityPlanner(load)
    one = planner.mean_wait_minutes(11_000, servers=1)
    two = planner.mean_wait_minutes(11_000, servers=2)
    assert two < one


def test_variance_increases_wait(load):
    smooth = CapacityPlanner(AnalysisLoadModel(1.92, cv2=0.0))
    spiky = CapacityPlanner(AnalysisLoadModel(1.92, cv2=2.0))
    assert spiky.mean_wait_minutes(11_000, 1) > smooth.mean_wait_minutes(
        11_000, 1
    )


def test_plan_fields(load):
    planner = CapacityPlanner(load, max_utilization=0.85)
    plan = planner.plan(30_000)
    assert plan.servers >= 1
    assert plan.slots == plan.servers * 16
    assert plan.utilization <= 0.85 + 1e-9
    assert plan.headroom_apps_per_day >= 0
    assert plan.mean_turnaround_minutes >= plan.mean_wait_minutes


def test_custom_server_shape(load):
    small = AnalysisServer(cores=10, emulator_slots=8)
    planner = CapacityPlanner(load, server=small)
    assert planner.servers_needed(10_000) == 2


def test_validation(load):
    planner = CapacityPlanner(load)
    with pytest.raises(ValueError):
        planner.slots_needed(0)
    with pytest.raises(ValueError):
        planner.utilization(100, servers=0)
    with pytest.raises(ValueError):
        planner.max_daily_volume(0)
    with pytest.raises(ValueError):
        CapacityPlanner(load, max_utilization=1.0)
