"""Tests for the static-analysis substrate."""

import numpy as np
import pytest

from repro.staticanalysis.api_extractor import StaticApiExtractor
from repro.staticanalysis.coverage import (
    build_call_graph,
    dependency_coverage,
)
from repro.staticanalysis.manifest_scanner import (
    ObfuscatedApkError,
    scan_corpus_referenced_fraction,
    scan_referenced_activities,
)


def test_reference_scan_counts(generator):
    apk = None
    for _ in range(50):
        candidate = generator.sample_app(malicious=False)
        if not candidate.dex.obfuscated:
            apk = candidate
            break
    assert apk is not None
    scan = scan_referenced_activities(apk)
    assert scan.declared == apk.manifest.declared_activity_count
    assert 0 < scan.referenced <= scan.declared
    assert 0 < scan.referenced_fraction <= 1.0


def test_reference_scan_rejects_obfuscated(generator):
    for _ in range(300):
        apk = generator.sample_app(malicious=True)
        if apk.dex.obfuscated:
            with pytest.raises(ObfuscatedApkError):
                scan_referenced_activities(apk)
            return
    pytest.fail("no obfuscated app generated")


def test_corpus_referenced_fraction_near_paper(corpus):
    # §4.2: on average only ~88% of declared Activities are referenced.
    frac, n_scanned, skipped = scan_corpus_referenced_fraction(corpus)
    assert 0.82 < frac < 0.94
    assert n_scanned + skipped <= len(corpus)
    assert skipped > 0  # obfuscated apps exist and are skipped


def test_static_extractor_sees_direct_but_not_reflection(sdk, generator):
    extractor = StaticApiExtractor(sdk)
    for _ in range(300):
        apk = generator.sample_app(malicious=True)
        if apk.dex.reflection_api_ids:
            break
    else:
        pytest.fail("no reflection-hiding app generated")
    ids = extractor.api_ids(apk)
    assert set(ids) == set(apk.dex.direct_api_ids)
    assert not set(ids) & set(apk.dex.reflection_api_ids)


def test_usage_matrix_alignment(sdk, corpus):
    extractor = StaticApiExtractor(sdk)
    api_ids = np.array([1, 5, 9])
    X = extractor.usage_matrix(list(corpus)[:20], api_ids)
    assert X.shape == (20, 3)
    for i, apk in enumerate(list(corpus)[:20]):
        direct = set(apk.dex.direct_api_ids)
        for j, api_id in enumerate(api_ids):
            assert X[i, j] == (int(api_id) in direct)


def test_permission_and_intent_matrices(sdk, corpus):
    extractor = StaticApiExtractor(sdk)
    apps = list(corpus)[:10]
    P = extractor.permission_matrix(apps)
    I = extractor.intent_matrix(apps)
    assert P.shape == (10, len(sdk.permissions))
    assert I.shape == (10, len(sdk.intents))
    assert P.sum() > 0 and I.sum() > 0


def test_call_graph_structure(sdk):
    graph = build_call_graph(sdk)
    assert graph.number_of_nodes() == len(sdk)
    assert graph.number_of_edges() >= len(sdk.internal_calls)


def test_dependency_coverage_counts(sdk):
    keys = np.unique(
        np.concatenate(
            [
                sdk.restricted_api_ids,
                sdk.sensitive_api_ids,
                sdk.discriminative_api_ids,
            ]
        )
    )
    cov = dependency_coverage(sdk, keys)
    assert cov.n_keys == keys.size
    assert 0 < cov.n_dependent < len(sdk)
    assert cov.covered_fraction > cov.key_fraction
    # The generator wires ~9.6% of non-key APIs to the key set.
    expected = sdk.spec.dependency_fraction
    measured = cov.n_dependent / (len(sdk) - keys.size)
    assert abs(measured - expected) < 0.05


def test_dependency_coverage_validation(sdk):
    with pytest.raises(ValueError):
        dependency_coverage(sdk, np.array([], dtype=int))
    with pytest.raises(ValueError):
        dependency_coverage(sdk, np.array([len(sdk) + 5]))
