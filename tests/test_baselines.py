"""Tests for the Table 1 related-work baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    Drebin,
    DroidApiMiner,
    DroidCat,
    DroidDolphin,
    SharmaEnsemble,
    YangDynamic,
)

_STATIC = (SharmaEnsemble, DroidApiMiner, Drebin)
_DYNAMIC = (YangDynamic, DroidDolphin)


@pytest.fixture(scope="module")
def split(corpus):
    apps = list(corpus)
    labels = corpus.labels
    cut = int(0.7 * len(apps))
    return apps[:cut], labels[:cut], apps[cut:], labels[cut:]


@pytest.mark.parametrize("cls", _STATIC)
def test_static_baseline_learns(sdk, split, cls):
    train, ytr, test, yte = split
    detector = cls(sdk, seed=1).fit(train, ytr)
    report = detector.evaluate(test, yte)
    assert report.f1 > 0.3, f"{cls.__name__}: {report}"


@pytest.mark.parametrize("cls", ALL_BASELINES)
def test_baseline_metadata(sdk, cls):
    detector = cls(sdk)
    assert detector.system_name
    assert detector.analysis_method in (
        "static", "dynamic", "semi-dynamic"
    )
    assert detector.n_apis > 0


@pytest.mark.parametrize("cls", _STATIC)
def test_static_analysis_is_fast(sdk, split, cls):
    train, ytr, test, _ = split
    detector = cls(sdk, seed=1).fit(train, ytr)
    # Static tools analyze apps in seconds, not minutes.
    assert detector.analysis_seconds(test) < 120


def test_dynamic_baseline_is_slow(sdk, split):
    train, ytr, test, yte = split
    detector = YangDynamic(sdk, seed=2).fit(train[:60], ytr[:60])
    # Yang et al. emulate for ~18 minutes per app.
    assert detector.analysis_seconds(test[:10]) > 8 * 60


def test_predict_before_fit_raises(sdk, split):
    _, _, test, _ = split
    with pytest.raises(RuntimeError):
        DroidApiMiner(sdk).predict(test)


def test_droidapiminer_requires_both_classes(sdk, split):
    train, _, _, _ = split
    with pytest.raises(ValueError):
        DroidApiMiner(sdk).fit(train, np.zeros(len(train)))


def test_table_row_fields(sdk, split):
    train, ytr, test, yte = split
    detector = Drebin(sdk, seed=3).fit(train, ytr)
    row = detector.table_row(test, yte, n_apps_studied=len(train))
    assert row.system == "DREBIN"
    assert 0.0 <= row.precision <= 1.0
    assert 0.0 <= row.recall <= 1.0
    assert row.analysis_seconds_per_app > 0
    assert row.n_apps == len(train)


def test_droidcat_blinded_by_dynamic_loading(sdk, generator):
    """DroidCat's features degrade for dynamically loading apps."""
    detector = DroidCat(sdk, seed=4)
    apps = [generator.sample_app(archetype="update_attack")
            for _ in range(6)]
    X = detector._features(apps)
    dyn = [a.dex.uses_dynamic_loading for a in apps]
    if any(dyn):
        i = dyn.index(True)
        assert X[i, : detector.API_BUDGET].sum() == 0


def test_apichecker_beats_dynamic_baselines_on_recall(
    sdk, split, fitted_checker
):
    """The headline Table 1 claim at test scale: APICHECKER's recall
    tops the quick dynamic baselines trained on the same data."""
    train, ytr, test, yte = split
    yang = YangDynamic(sdk, seed=5).fit(train[:120], ytr[:120])
    yang_report = yang.evaluate(test, yte)
    from repro.corpus.generator import AppCorpus

    ours = fitted_checker.evaluate(AppCorpus(sdk, list(test)), yte)
    assert ours.recall >= yang_report.recall
