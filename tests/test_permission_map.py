"""Tests for the axplorer-style permission-map artifact."""

import numpy as np
import pytest

from repro.android.permission_map import (
    PermissionMap,
    extract_permission_map,
)


@pytest.fixture(scope="module")
def pmap(sdk):
    return extract_permission_map(sdk)


def test_map_covers_exactly_the_restricted_stratum(sdk, pmap):
    resolved = pmap.restricted_api_ids(sdk)
    assert np.array_equal(resolved, np.sort(sdk.restricted_api_ids))


def test_map_excludes_normal_level_guards(sdk, pmap):
    from repro.android.permissions import ProtectionLevel

    for api_name, perm in pmap.entries.items():
        assert sdk.permissions.get(perm).level is not ProtectionLevel.NORMAL


def test_canonical_entries(sdk, pmap):
    assert (
        pmap.permission_for("android.telephony.SmsManager.sendTextMessage")
        == "android.permission.SEND_SMS"
    )
    assert pmap.permission_for("java.io.File.exists") is None


def test_roundtrip_through_artifact_file(sdk, pmap, tmp_path):
    path = tmp_path / "permission-map.txt"
    pmap.write(path)
    restored = PermissionMap.read(path)
    assert restored.sdk_level == sdk.level
    assert restored.entries == pmap.entries


def test_stale_map_against_newer_sdk(sdk, pmap):
    """A map extracted at level N applied to level N+1: old entries
    resolve, new APIs are invisible (the operational staleness §5.3's
    monthly refresh addresses)."""
    newer = sdk.extend(80)
    resolved = pmap.restricted_api_ids(newer)
    assert np.array_equal(resolved, np.sort(sdk.restricted_api_ids))
    fresh = extract_permission_map(newer)
    assert len(fresh) >= len(pmap)


def test_read_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.txt"
    bad.write_text("not a map\n")
    with pytest.raises(ValueError):
        PermissionMap.read(bad)
    bad.write_text("# repro-permission-map level=xx\n")
    with pytest.raises(ValueError):
        PermissionMap.read(bad)
    bad.write_text("# repro-permission-map level=27\nbroken line\n")
    with pytest.raises(ValueError):
        PermissionMap.read(bad)


def test_comments_and_blanks_ignored(tmp_path):
    path = tmp_path / "map.txt"
    path.write_text(
        "# repro-permission-map level=27\n"
        "\n"
        "# a comment\n"
        "a.B.c  ->  android.permission.X\n"
    )
    restored = PermissionMap.read(path)
    assert restored.entries == {"a.B.c": "android.permission.X"}
