"""Tests for the §6 future-work extensions.

The paper sketches two improvements: richer feature encodings that
retain invocation-frequency information (histogram instead of bit
vector) and smarter UI exploration (fuzzing instead of Monkey).  Both
are implemented here as opt-in variants.
"""

import numpy as np
import pytest

from repro.core.checker import ApiChecker
from repro.core.features import (
    HISTOGRAM_BUCKETS,
    AppObservation,
    FeatureMode,
    FeatureSpace,
)
from repro.emulator.monkey import FuzzingExerciser, MonkeyExerciser


# -- histogram encoding ---------------------------------------------------


def test_histogram_space_is_wider(sdk):
    binary = FeatureSpace(sdk, [1, 2, 3], FeatureMode.A)
    hist = FeatureSpace(sdk, [1, 2, 3], FeatureMode.A, encoding="histogram")
    assert hist.n_features == binary.n_features * (
        1 + len(HISTOGRAM_BUCKETS)
    )
    assert len(hist.feature_names) == hist.n_features
    assert any(">=" in n for n in hist.feature_names)


def test_unknown_encoding_rejected(sdk):
    with pytest.raises(ValueError):
        FeatureSpace(sdk, [1], FeatureMode.A, encoding="tfidf")


def test_histogram_buckets_threshold_counts(sdk):
    space = FeatureSpace(sdk, [4], FeatureMode.A, encoding="histogram")
    low, high = HISTOGRAM_BUCKETS

    def vec_for(count):
        obs = AppObservation(
            apk_md5="x",
            invoked_api_ids=(4,),
            permissions=(),
            intents=(),
            invoked_api_counts=((4, count),),
        )
        return space.encode(obs)

    assert vec_for(1).tolist() == [1, 0, 0]
    assert vec_for(low).tolist() == [1, 1, 0]
    assert vec_for(high).tolist() == [1, 1, 1]


def test_histogram_kind_of_column(sdk):
    space = FeatureSpace(sdk, [4, 9], FeatureMode.API, encoding="histogram")
    for col in range(2 * (1 + len(HISTOGRAM_BUCKETS))):
        assert space.kind_of_column(col) == "api"
    assert space.kind_of_column(6) == "permission"


def test_histogram_checker_end_to_end(sdk, corpus, study_observations):
    checker = ApiChecker(
        sdk, feature_encoding="histogram", seed=31
    )
    checker.fit(corpus, study_observations=list(study_observations))
    report = checker.evaluate(corpus.subset(range(80)))
    assert report.f1 > 0.6
    assert checker.feature_space.encoding == "histogram"


def test_engine_populates_counts(sdk, corpus):
    from repro.core.engine import DynamicAnalysisEngine

    engine = DynamicAnalysisEngine(sdk, sdk.restricted_api_ids, seed=32)
    obs = engine.analyze(corpus[0]).observation
    assert set(a for a, _ in obs.invoked_api_counts) == set(
        obs.invoked_api_ids
    )
    assert all(c > 0 for _, c in obs.invoked_api_counts)


# -- fuzzing exerciser ----------------------------------------------------


def test_fuzzing_beats_monkey_coverage(generator):
    apps = [generator.sample_app(malicious=False) for _ in range(40)]
    monkey = MonkeyExerciser(n_events=5000, seed=3)
    fuzz = FuzzingExerciser(n_events=5000, seed=3)
    rng_a, rng_b = np.random.default_rng(4), np.random.default_rng(4)
    rac_monkey = np.mean(
        [monkey.exercise(a, rng_a).achieved_rac for a in apps]
    )
    rac_fuzz = np.mean([fuzz.exercise(a, rng_b).achieved_rac for a in apps])
    assert rac_fuzz > rac_monkey + 0.02


def test_fuzzing_costs_more_per_event(generator, rng):
    apk = generator.sample_app(malicious=False)
    monkey_run = MonkeyExerciser(n_events=5000, seed=5).exercise(apk, rng)
    fuzz_run = FuzzingExerciser(n_events=5000, seed=5).exercise(apk, rng)
    assert fuzz_run.ui_seconds > monkey_run.ui_seconds


def test_fuzzing_reaches_monkey_ceiling_with_fewer_events(generator):
    apps = [generator.sample_app(malicious=False) for _ in range(40)]
    fuzz_small = FuzzingExerciser(n_events=2000, seed=6)
    monkey_big = MonkeyExerciser(n_events=5000, seed=6)
    rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
    rac_fuzz = np.mean(
        [fuzz_small.exercise(a, rng_a).achieved_rac for a in apps]
    )
    rac_monkey = np.mean(
        [monkey_big.exercise(a, rng_b).achieved_rac for a in apps]
    )
    assert rac_fuzz >= rac_monkey - 0.02


def test_fuzzing_pluggable_into_engine(sdk, generator):
    from repro.core.engine import DynamicAnalysisEngine

    engine = DynamicAnalysisEngine(sdk, [], seed=8)
    engine.monkey = FuzzingExerciser(n_events=5000, seed=8)
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.result.monkey.achieved_rac > 0
