"""Tests for the synthetic SDK registry."""

import numpy as np
import pytest

from repro.android.sdk import (
    AndroidSdk,
    FrequencyClass,
    SdkSpec,
    SensitiveCategory,
)


def test_generation_is_deterministic():
    a = AndroidSdk.generate(SdkSpec(n_apis=900, seed=5))
    b = AndroidSdk.generate(SdkSpec(n_apis=900, seed=5))
    assert a.api_names == b.api_names
    assert np.array_equal(a.base_rates, b.base_rates)
    assert a.internal_calls == b.internal_calls


def test_different_seeds_differ():
    a = AndroidSdk.generate(SdkSpec(n_apis=900, seed=5))
    b = AndroidSdk.generate(SdkSpec(n_apis=900, seed=6))
    assert a.api_names != b.api_names


def test_strata_sizes_match_spec(sdk):
    spec = sdk.spec
    assert len(sdk) == spec.n_apis
    assert sdk.restricted_api_ids.size == spec.n_restricted
    assert sdk.sensitive_api_ids.size == spec.n_sensitive
    assert sdk.ubiquitous_api_ids.size == spec.n_ubiquitous
    assert sdk.discriminative_api_ids.size == spec.n_discriminative


def test_restricted_apis_carry_restrictive_permissions(sdk):
    for api_id in sdk.restricted_api_ids:
        api = sdk.api(int(api_id))
        assert api.permission is not None


def test_sensitive_apis_have_categories(sdk):
    for api_id in sdk.sensitive_api_ids:
        api = sdk.api(int(api_id))
        assert isinstance(api.sensitive_category, SensitiveCategory)


def test_restricted_and_sensitive_strata_disjoint(sdk):
    r = set(sdk.restricted_api_ids.tolist())
    s = set(sdk.sensitive_api_ids.tolist())
    assert not r & s


def test_canonical_apis_present(sdk):
    sms = sdk.by_name("android.telephony.SmsManager.sendTextMessage")
    assert sms.permission == "android.permission.SEND_SMS"
    assert sms.short_name == "SmsManager_sendTextMessage"
    exec_api = sdk.by_name("java.lang.Runtime.exec")
    assert exec_api.sensitive_category is SensitiveCategory.PRIVILEGE_ESCALATION


def test_common_ops_are_ubiquitous(sdk):
    ubiq = set(sdk.ubiquitous_api_ids.tolist())
    assert sdk.common_ops_api_ids.size == 13
    assert all(int(i) in ubiq for i in sdk.common_ops_api_ids)


def test_api_names_unique(sdk):
    names = sdk.api_names
    assert len(names) == len(set(names))


def test_api_ids_are_dense(sdk):
    for i in range(0, len(sdk), 97):
        assert sdk.api(i).api_id == i


def test_by_name_unknown_raises(sdk):
    with pytest.raises(KeyError):
        sdk.by_name("com.nonexistent.Clazz.method")


def test_base_rates_follow_frequency_class(sdk):
    ubiq_rates = sdk.base_rates[sdk.ubiquitous_api_ids]
    tail_rare = [
        a.api_id for a in sdk if a.freq_class is FrequencyClass.RARE
    ]
    assert ubiq_rates.mean() > 10 * sdk.base_rates[tail_rare].mean()


def test_extend_adds_apis_and_bumps_level(sdk):
    bigger = sdk.extend(50)
    assert len(bigger) == len(sdk) + 50
    assert bigger.level == sdk.level + 1
    # Old APIs unchanged, new ones stamped with the new level.
    assert bigger.api(0).name == sdk.api(0).name
    new_apis = [bigger.api(i) for i in range(len(sdk), len(bigger))]
    assert all(a.added_in_level == sdk.level + 1 for a in new_apis)


def test_extend_zero_is_identity_sized(sdk):
    same = sdk.extend(0)
    assert len(same) == len(sdk)
    assert same.level == sdk.level + 1


def test_extend_negative_raises(sdk):
    with pytest.raises(ValueError):
        sdk.extend(-1)


def test_internal_call_graph_targets_valid(sdk):
    for caller, callees in sdk.internal_calls.items():
        assert 0 <= caller < len(sdk)
        for callee in callees:
            assert 0 <= callee < len(sdk)
            assert callee != caller


def test_spec_validation_rejects_tiny_sdk():
    with pytest.raises(ValueError):
        SdkSpec(n_apis=300).validate()


def test_spec_validation_rejects_bad_fraction():
    with pytest.raises(ValueError):
        SdkSpec(n_apis=2000, dependency_fraction=1.5).validate()


def test_sensitive_category_query(sdk):
    crypto = sdk.sensitive_apis(SensitiveCategory.CRYPTO)
    assert crypto
    assert all(
        a.sensitive_category is SensitiveCategory.CRYPTO for a in crypto
    )
