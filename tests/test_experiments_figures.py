"""Tests for the terminal figure renderer."""

import numpy as np
import pytest

from repro.experiments.figures import (
    ascii_cdf,
    ascii_chart,
    print_figure,
    sparkline,
)


def test_sparkline_monotone_series():
    line = sparkline([1, 2, 3, 4, 5])
    assert len(line) == 5
    # Intensities must be non-decreasing for a rising series.
    order = " .:-=+*#%@"
    levels = [order.index(c) for c in line]
    assert levels == sorted(levels)


def test_sparkline_constant_series():
    assert sparkline([3, 3, 3]) == "   "
    with pytest.raises(ValueError):
        sparkline([])


def test_chart_contains_markers_and_axis():
    chart = ascii_chart([1, 2, 3, 4], [2.0, 4.0, 1.0, 3.0])
    assert "o" in chart
    assert "+" in chart and "|" in chart
    lines = chart.splitlines()
    assert len(lines) >= 10


def test_chart_extremes_labeled():
    chart = ascii_chart([0, 10], [1.5, 9.5], height=5)
    assert "9.50" in chart
    assert "1.50" in chart
    assert "0" in chart and "10" in chart


def test_chart_log_x():
    chart = ascii_chart(
        [10, 100, 1000, 10000], [1, 2, 3, 4], log_x=True
    )
    assert "o" in chart
    with pytest.raises(ValueError):
        ascii_chart([0, 10], [1, 2], log_x=True)


def test_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart([1], [1])
    with pytest.raises(ValueError):
        ascii_chart([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        ascii_chart([1, 2], [1, 2], width=2)


def test_cdf_is_monotone_visual():
    rng = np.random.default_rng(0)
    chart = ascii_cdf(rng.lognormal(0, 0.5, size=200))
    lines = chart.splitlines()
    # Topmost body row must contain the right-hand end of the curve.
    assert "o" in lines[0] or "·" in lines[0]
    with pytest.raises(ValueError):
        ascii_cdf([1.0])


def test_print_figure(capsys):
    print_figure("Fig X", "body")
    out = capsys.readouterr().out
    assert "--- Fig X ---" in out
    assert "body" in out


def test_chart_is_pure_ascii_or_middle_dot():
    chart = ascii_chart([1, 2, 3], [1, 5, 2])
    allowed = set(chr(c) for c in range(32, 127)) | {"·"}
    assert set(chart) - {"\n"} <= allowed
