"""Tests for the market model and review pipeline."""

import numpy as np
import pytest

from repro.corpus.generator import CorpusGenerator
from repro.corpus.market import (
    AntivirusEngine,
    MarketStream,
    ReviewPipeline,
    TMarket,
)


def test_engine_rejects_paper_violating_fp_rate():
    with pytest.raises(ValueError):
        AntivirusEngine("bad", fp_rate=0.08)


def test_engine_learns_fingerprints(generator, rng):
    engine = AntivirusEngine("t", fp_rate=0.0, zero_day_recall=0.0)
    apk = generator.sample_app(malicious=True)
    assert not engine.flags(apk, rng)
    engine.learn(apk)
    assert engine.flags(apk, rng)


def test_review_labels_are_near_ground_truth(generator):
    corpus = generator.generate(400)
    pipeline = ReviewPipeline(seed=1)
    labels = pipeline.label_corpus(corpus)
    # The paper bounds mislabels by (1 - 0.95)^4 plus tiny manual error.
    assert (labels != corpus.labels).mean() < 0.01


def test_review_requires_four_engines():
    with pytest.raises(ValueError):
        ReviewPipeline(engines=[AntivirusEngine("only", fp_rate=0.01)])


def test_review_verdict_provenance(generator):
    pipeline = ReviewPipeline(seed=2)
    apk = generator.sample_app(malicious=True)
    verdict = pipeline.review(apk)
    assert verdict.provenance in (
        "antivirus-consensus", "expert-inspection", "manual"
    )
    assert verdict.apk_md5 == apk.md5


def test_market_publishes_and_quarantines(generator):
    market = TMarket(generator, apps_per_day=50)
    day = market.next_day_submissions()
    assert len(day) == 50
    labels = market.ingest(day)
    assert len(market.published) + len(market.quarantined) == 50
    assert len(market.quarantined) == labels.sum()


def test_market_day_counter_advances(generator):
    market = TMarket(generator, apps_per_day=10)
    d1 = market.next_day_submissions()
    d2 = market.next_day_submissions()
    assert {a.submitted_day for a in d1} == {0}
    assert {a.submitted_day for a in d2} == {1}


def test_market_rejects_bad_config(generator):
    with pytest.raises(ValueError):
        TMarket(generator, apps_per_day=0)


def test_stream_months_advance_and_labels_align(sdk):
    stream = MarketStream(sdk, apps_per_month=80, seed=5)
    b1 = stream.next_month()
    b2 = stream.next_month()
    assert (b1.month_index, b2.month_index) == (1, 2)
    assert len(b1.market_labels) == len(b1.corpus) == 80
    assert (b1.market_labels == b1.corpus.labels).mean() > 0.98


def test_stream_sdk_growth(sdk):
    stream = MarketStream(
        sdk, apps_per_month=40, seed=6, sdk_update_every=2, sdk_growth=25
    )
    sizes = [stream.next_month().sdk for _ in range(5)]
    assert len(sizes[0]) == len(sdk)
    assert len(sizes[-1]) > len(sdk)
    # Growth happens every second month.
    assert len(sizes[2]) == len(sdk) + 25


def test_stream_new_apis_get_adopted(sdk):
    stream = MarketStream(
        sdk, apps_per_month=60, seed=7, sdk_update_every=1, sdk_growth=60
    )
    for _ in range(4):
        batch = stream.next_month()
    new_ids = set(range(len(sdk), len(stream.sdk)))
    used_new = set()
    for apk in batch.corpus:
        used_new |= new_ids & set(apk.dex.direct_api_ids)
    assert used_new, "new SDK APIs should appear in new submissions"


def test_stream_rejects_bad_size(sdk):
    with pytest.raises(ValueError):
        MarketStream(sdk, apps_per_month=0)
