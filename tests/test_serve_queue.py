"""Tests for the durable submission queue (WAL, lanes, admission)."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.serve.queue import (
    LANE_BULK,
    LANE_ESCALATED,
    LANE_RESUBMIT,
    QueueFullError,
    SubmissionQueue,
    parse_lane,
)


@pytest.fixture()
def apps(generator):
    return [generator.sample_app() for _ in range(8)]


def test_parse_lane_names_and_numbers():
    assert parse_lane("escalated") == LANE_ESCALATED
    assert parse_lane("resubmit") == LANE_RESUBMIT
    assert parse_lane("bulk") == LANE_BULK
    assert parse_lane(0) == LANE_ESCALATED
    with pytest.raises(ValueError, match="unknown lane"):
        parse_lane("express")
    with pytest.raises(ValueError, match="unknown lane"):
        parse_lane(7)


def test_priority_order_and_fifo_within_lane(apps):
    with SubmissionQueue() as q:
        q.submit(apps[0], "bulk")
        q.submit(apps[1], "bulk")
        q.submit(apps[2], "escalated")
        q.submit(apps[3], "resubmit")
        order = [q.take(timeout=0).md5 for _ in range(4)]
    assert order == [
        apps[2].md5, apps[3].md5, apps[0].md5, apps[1].md5
    ]


def test_take_timeout_returns_none():
    with SubmissionQueue() as q:
        assert q.take(timeout=0.01) is None


def test_take_batch_blocks_only_for_first(apps):
    with SubmissionQueue() as q:
        for apk in apps[:5]:
            q.submit(apk)
        batch = q.take_batch(3, timeout=0.01)
        assert len(batch) == 3
        assert q.pending == 2 and q.inflight == 3
        assert q.take_batch(10, timeout=0.01) and q.pending == 0
        with pytest.raises(ValueError):
            q.take_batch(0)


def test_admission_control_rejects_past_max_depth(apps):
    registry = MetricsRegistry()
    with SubmissionQueue(max_depth=2, registry=registry) as q:
        q.submit(apps[0])
        q.submit(apps[1])
        with pytest.raises(QueueFullError, match="max depth"):
            q.submit(apps[2])
    assert registry.value("serve_admission_rejects_total") == 1
    # In-flight entries still count against the bound: taking one does
    # not free a slot until it is terminal.
    with SubmissionQueue(max_depth=2) as q:
        q.submit(apps[0])
        q.submit(apps[1])
        entry = q.take(timeout=0)
        with pytest.raises(QueueFullError):
            q.submit(apps[2])
        q.mark_done(entry, {"status": "done"})
        q.submit(apps[2])


def test_pending_resubmission_is_idempotent(apps):
    registry = MetricsRegistry()
    with SubmissionQueue(registry=registry) as q:
        first = q.submit(apps[0])
        again = q.submit(apps[0], "escalated")
        assert again is first
        assert q.depth == 1
    assert registry.value("serve_submissions_coalesced_total") == 1


def test_terminal_md5_is_not_deduplicated(apps):
    # Markets resubmit previously vetted content on purpose; those get
    # a fresh acceptance (the observation cache absorbs the re-scan).
    with SubmissionQueue() as q:
        entry = q.submit(apps[0])
        taken = q.take(timeout=0)
        q.mark_done(taken, {"status": "done"})
        fresh = q.submit(apps[0])
        assert fresh.seq != entry.seq
        assert q.status(apps[0].md5) == "done"  # result already served


def test_status_transitions(apps):
    with SubmissionQueue() as q:
        assert q.status(apps[0].md5) == "unknown"
        q.submit(apps[0])
        assert q.status(apps[0].md5) == "pending"
        entry = q.take(timeout=0)
        assert q.status(apps[0].md5) == "in_flight"
        q.mark_done(entry, {"status": "done"})
        assert q.status(apps[0].md5) == "done"


def test_requeue_puts_entry_at_lane_head(apps):
    with SubmissionQueue() as q:
        q.submit(apps[0])
        q.submit(apps[1])
        entry = q.take(timeout=0)
        q.requeue(entry)
        assert q.take(timeout=0).md5 == entry.md5


def test_depth_gauge_tracks_queue(apps):
    registry = MetricsRegistry()
    with SubmissionQueue(registry=registry) as q:
        q.submit(apps[0])
        q.submit(apps[1])
        assert registry.value("serve_queue_depth") == 2
        entry = q.take(timeout=0)
        assert registry.value("serve_queue_depth") == 2  # in flight
        q.mark_done(entry, {"status": "done"})
        assert registry.value("serve_queue_depth") == 1


def test_per_lane_depth_gauges(apps):
    """Lane-labelled gauges expose per-lane pending backlogs.

    The unlabelled series stays the total (pending + in flight); the
    labelled ones count each lane's *pending* entries, so a dashboard
    can see escalated-lane headroom during a bulk flood.
    """
    registry = MetricsRegistry()
    with SubmissionQueue(registry=registry) as q:
        q.submit(apps[0], "bulk")
        q.submit(apps[1], "bulk")
        q.submit(apps[2], "escalated")
        q.submit(apps[3], "resubmit")
        assert registry.value("serve_queue_depth") == 4
        assert registry.value("serve_queue_depth", lane="bulk") == 2
        assert registry.value("serve_queue_depth", lane="escalated") == 1
        assert registry.value("serve_queue_depth", lane="resubmit") == 1
        entry = q.take(timeout=0)  # pops the escalated entry
        assert registry.value("serve_queue_depth") == 4  # still in flight
        assert registry.value("serve_queue_depth", lane="escalated") == 0
        q.mark_done(entry, {"status": "done"})
        assert registry.value("serve_queue_depth") == 3
        assert registry.value("serve_queue_depth", lane="bulk") == 2


def test_wal_replay_restores_uncompleted_entries(tmp_path, apps):
    spool = tmp_path / "spool"
    q = SubmissionQueue(spool)
    for apk in apps[:5]:
        q.submit(apk)
    done = q.take(timeout=0)
    q.mark_done(done, {"status": "done", "malicious": False})
    # Simulate a kill: drop the handle without any graceful shutdown.
    q._wal.close()

    registry = MetricsRegistry()
    q2 = SubmissionQueue(spool, registry=registry)
    assert q2.depth == 4
    assert registry.value("serve_wal_replayed_total") == 4
    assert q2.completed[done.md5]["status"] == "done"
    replayed = q2.take_batch(10, timeout=0)
    assert all(entry.replayed for entry in replayed)
    assert {e.md5 for e in replayed} == {
        a.md5 for a in apps[1:5]
    }
    # Replayed entries keep their lane and original content.
    for entry in replayed:
        assert entry.apk.md5 == entry.md5
    q2.close()


def test_wal_replay_preserves_in_flight_entries(tmp_path, apps):
    # An entry taken but never marked done has an uncompleted acceptance
    # record; a restart must re-enqueue it (crash between take and done).
    spool = tmp_path / "spool"
    q = SubmissionQueue(spool)
    q.submit(apps[0])
    q.take(timeout=0)
    q._wal.close()
    q2 = SubmissionQueue(spool)
    assert q2.depth == 1
    assert q2.take(timeout=0).md5 == apps[0].md5
    q2.close()


def test_wal_replay_survives_multiple_restarts(tmp_path, apps):
    spool = tmp_path / "spool"
    q = SubmissionQueue(spool)
    q.submit(apps[0], "escalated")
    q._wal.close()
    q2 = SubmissionQueue(spool)
    assert q2.depth == 1
    q2._wal.close()
    q3 = SubmissionQueue(spool)
    entry = q3.take(timeout=0)
    assert entry.md5 == apps[0].md5 and entry.lane == 0
    q3.mark_done(entry, {"status": "done"})
    q3.close()
    q4 = SubmissionQueue(spool)
    assert q4.depth == 0 and apps[0].md5 in q4.completed
    q4.close()


def test_seq_continues_after_replay(tmp_path, apps):
    spool = tmp_path / "spool"
    q = SubmissionQueue(spool)
    first = q.submit(apps[0])
    q._wal.close()
    q2 = SubmissionQueue(spool)
    fresh = q2.submit(apps[1])
    assert fresh.seq > first.seq
    q2.close()


def test_malformed_wal_line_is_rejected(tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "queue.wal").write_text("{not json\n", encoding="utf-8")
    with pytest.raises(ValueError, match="malformed WAL"):
        SubmissionQueue(spool)


def test_unknown_wal_record_type_is_rejected(tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "queue.wal").write_text(
        json.dumps({"type": "mystery"}) + "\n", encoding="utf-8"
    )
    with pytest.raises(ValueError, match="unknown WAL record"):
        SubmissionQueue(spool)


def test_future_wal_format_version_is_rejected(tmp_path, apps):
    spool = tmp_path / "spool"
    q = SubmissionQueue(spool)
    q.submit(apps[0])
    q.close()
    wal = spool / "queue.wal"
    record = json.loads(wal.read_text().strip())
    record["v"] = 99
    wal.write_text(json.dumps(record) + "\n", encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported WAL"):
        SubmissionQueue(spool)


def test_closed_queue_rejects_submissions(apps):
    q = SubmissionQueue()
    q.close()
    with pytest.raises(RuntimeError, match="closed"):
        q.submit(apps[0])
