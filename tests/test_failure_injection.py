"""Failure-injection tests: the reliability plumbing under stress.

The paper's production system must analyze *every* submitted app
(§5.1): incompatible apps fall back, crashes are detected and retried,
and the operator notices nothing.  These tests inject faults at each
layer and check the system degrades the way the paper describes.
"""

import numpy as np
import pytest

from repro.core.engine import DynamicAnalysisEngine
from repro.emulator.backends import (
    EmulatorCrash,
    GoogleEmulator,
    IncompatibleAppError,
    LightweightEmulator,
)


class FlakyBackend(GoogleEmulator):
    """Crashes the first ``n_failures`` attempts, then succeeds."""

    def __init__(self, n_failures):
        self.n_failures = n_failures
        self.attempts = 0

    def crash_probability(self, apk):
        self.attempts += 1
        return 1.0 if self.attempts <= self.n_failures else 0.0


class RefusingBackend(LightweightEmulator):
    """Rejects every app (simulates total Android-x86 incompatibility)."""

    def compatible(self, apk):
        return False


def test_crash_then_success_charges_wasted_time(sdk, generator):
    backend = FlakyBackend(n_failures=1)
    engine = DynamicAnalysisEngine(
        sdk, [], primary=backend, fallback=None, max_retries=2, seed=1
    )
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.attempts == 2
    assert analysis.total_minutes > analysis.result.analysis_minutes


def test_primary_crashloop_falls_back(sdk, generator):
    primary = FlakyBackend(n_failures=99)
    engine = DynamicAnalysisEngine(
        sdk, [], primary=primary, fallback=GoogleEmulator(),
        max_retries=1, seed=2,
    )
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.fell_back
    assert analysis.result.backend_name == "google-emulator"
    # 2 failed primary attempts + 1 fallback success.
    assert analysis.attempts == 3


def test_every_app_analyzed_despite_refusing_primary(sdk, generator):
    engine = DynamicAnalysisEngine(
        sdk, [], primary=RefusingBackend(), fallback=GoogleEmulator(),
        seed=3,
    )
    apps = [generator.sample_app(malicious=False) for _ in range(10)]
    analyses = engine.analyze_corpus(apps)
    assert len(analyses) == 10
    assert all(a.fell_back for a in analyses)
    assert engine.stats["fallbacks"] == 10


def test_refusing_primary_without_fallback_raises(sdk, generator):
    engine = DynamicAnalysisEngine(
        sdk, [], primary=RefusingBackend(), fallback=None, seed=4
    )
    with pytest.raises(RuntimeError, match="all backends failed"):
        engine.analyze(generator.sample_app(malicious=False))


def test_crash_stats_accumulate(sdk, generator):
    backend = FlakyBackend(n_failures=3)
    engine = DynamicAnalysisEngine(
        sdk, [], primary=backend, fallback=GoogleEmulator(),
        max_retries=2, seed=5,
    )
    engine.analyze(generator.sample_app(malicious=False))
    assert engine.stats["crashes"] == 3


def test_checker_vet_survives_flaky_production_engine(
    fitted_checker, generator
):
    """Swap a flaky primary into a fitted checker; vetting still works."""
    engine = fitted_checker._prod_engine
    original = engine.primary
    try:
        engine.primary = FlakyBackend(n_failures=1)
        verdict = fitted_checker.vet(generator.sample_app(malicious=True))
        assert verdict.analysis_minutes > 0
    finally:
        engine.primary = original


def test_corrupt_observation_rejected_by_encoder(sdk, fitted_checker):
    """Feature space ignores out-of-universe identifiers rather than
    exploding — logs from newer SDKs must not crash old models."""
    from repro.core.features import AppObservation

    obs = AppObservation(
        apk_md5="corrupt",
        invoked_api_ids=(10**9,),
        permissions=("future.permission.UNKNOWN",),
        intents=("future.intent.UNKNOWN",),
    )
    vec = fitted_checker.feature_space.encode(obs)
    assert vec.sum() == 0


def test_emulator_crash_is_runtime_error_subclass():
    assert issubclass(EmulatorCrash, RuntimeError)
    assert issubclass(IncompatibleAppError, RuntimeError)
