"""Failure-injection tests: the reliability plumbing under stress.

The paper's production system must analyze *every* submitted app
(§5.1): incompatible apps fall back, crashes are detected and retried,
and the operator notices nothing.  These tests inject faults at each
layer and check the system degrades the way the paper describes.
"""

import numpy as np
import pytest

from repro.core.engine import AnalysisFailure, DynamicAnalysisEngine
from repro.core.pipeline import VettingPipeline
from repro.emulator.backends import (
    EmulatorCrash,
    GoogleEmulator,
    IncompatibleAppError,
    LightweightEmulator,
)


class FlakyBackend(GoogleEmulator):
    """Crashes the first ``n_failures`` attempts, then succeeds."""

    def __init__(self, n_failures):
        self.n_failures = n_failures
        self.attempts = 0

    def crash_probability(self, apk):
        self.attempts += 1
        return 1.0 if self.attempts <= self.n_failures else 0.0


class RefusingBackend(LightweightEmulator):
    """Rejects every app (simulates total Android-x86 incompatibility)."""

    def compatible(self, apk):
        return False


def test_crash_then_success_charges_wasted_time(sdk, generator):
    backend = FlakyBackend(n_failures=1)
    engine = DynamicAnalysisEngine(
        sdk, [], primary=backend, fallback=None, max_retries=2, seed=1
    )
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.attempts == 2
    assert analysis.total_minutes > analysis.result.analysis_minutes


def test_primary_crashloop_falls_back(sdk, generator):
    primary = FlakyBackend(n_failures=99)
    engine = DynamicAnalysisEngine(
        sdk, [], primary=primary, fallback=GoogleEmulator(),
        max_retries=1, seed=2,
    )
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.fell_back
    assert analysis.result.backend_name == "google-emulator"
    # 2 failed primary attempts + 1 fallback success.
    assert analysis.attempts == 3


def test_every_app_analyzed_despite_refusing_primary(sdk, generator):
    engine = DynamicAnalysisEngine(
        sdk, [], primary=RefusingBackend(), fallback=GoogleEmulator(),
        seed=3,
    )
    apps = [generator.sample_app(malicious=False) for _ in range(10)]
    analyses = engine.analyze_corpus(apps)
    assert len(analyses) == 10
    assert all(a.fell_back for a in analyses)
    assert engine.stats_view.fallbacks == 10


def test_refusing_primary_without_fallback_raises(sdk, generator):
    engine = DynamicAnalysisEngine(
        sdk, [], primary=RefusingBackend(), fallback=None, seed=4
    )
    with pytest.raises(RuntimeError, match="all backends failed"):
        engine.analyze(generator.sample_app(malicious=False))


def test_crash_stats_accumulate(sdk, generator):
    backend = FlakyBackend(n_failures=3)
    engine = DynamicAnalysisEngine(
        sdk, [], primary=backend, fallback=GoogleEmulator(),
        max_retries=2, seed=5,
    )
    engine.analyze(generator.sample_app(malicious=False))
    assert engine.stats_view.crashes == 3


def test_checker_vet_survives_flaky_production_engine(
    fitted_checker, generator
):
    """Swap a flaky primary into a fitted checker; vetting still works."""
    engine = fitted_checker._prod_engine
    original = engine.primary
    try:
        engine.primary = FlakyBackend(n_failures=1)
        verdict = fitted_checker.vet(generator.sample_app(malicious=True))
        assert verdict.analysis_minutes > 0
    finally:
        engine.primary = original


def test_corrupt_observation_rejected_by_encoder(sdk, fitted_checker):
    """Feature space ignores out-of-universe identifiers rather than
    exploding — logs from newer SDKs must not crash old models."""
    from repro.core.features import AppObservation

    obs = AppObservation(
        apk_md5="corrupt",
        invoked_api_ids=(10**9,),
        permissions=("future.permission.UNKNOWN",),
        intents=("future.intent.UNKNOWN",),
    )
    vec = fitted_checker.feature_space.encode(obs)
    assert vec.sum() == 0


def test_emulator_crash_is_runtime_error_subclass():
    assert issubclass(EmulatorCrash, RuntimeError)
    assert issubclass(IncompatibleAppError, RuntimeError)
    assert issubclass(AnalysisFailure, RuntimeError)


# -- engine stats invariants ----------------------------------------------


def test_stats_invariant_covers_exhausted_apps(sdk, generator):
    """Regression: apps that exhaust every backend vanished from the
    stats entirely; now analyzed + failures == submissions always."""

    class Broken(GoogleEmulator):
        def crash_probability(self, apk):
            return 1.0

    engine = DynamicAnalysisEngine(
        sdk, [], primary=Broken(), fallback=None, max_retries=0, seed=6
    )
    apps = [generator.sample_app(malicious=False) for _ in range(5)]
    failures = 0
    for apk in apps:
        try:
            engine.analyze(apk)
        except AnalysisFailure:
            failures += 1
    assert failures == 5
    assert engine.stats_view.submissions == 5
    assert engine.stats_view.failures == 5
    assert engine.stats_view.analyzed == 0
    assert (
        engine.stats_view.analyzed + engine.stats_view.failures
        == engine.stats_view.submissions
    )


def test_stats_invariant_on_mixed_outcomes(sdk, generator):
    engine = DynamicAnalysisEngine(
        sdk, [], primary=FlakyBackend(n_failures=2), fallback=None,
        max_retries=0, seed=7,
    )
    apps = [generator.sample_app(malicious=False) for _ in range(6)]
    outcomes = []
    for apk in apps:
        try:
            outcomes.append(engine.analyze(apk))
        except AnalysisFailure:
            outcomes.append(None)
    assert engine.stats_view.submissions == 6
    assert (
        engine.stats_view.analyzed + engine.stats_view.failures
        == engine.stats_view.submissions
    )
    assert engine.stats_view.analyzed == sum(
        1 for o in outcomes if o is not None
    )


# -- parallel crash injection ---------------------------------------------


class CrashProneBackend(LightweightEmulator):
    """Every attempt crashes with the forced probability (rng-driven,
    so outcomes are a pure function of the per-app stream)."""

    def __init__(self, rate):
        super().__init__()
        self.rate = rate

    def crash_probability(self, apk):
        return self.rate


class SelectiveBackend(LightweightEmulator):
    """Deterministically rejects a slice of the md5 space."""

    def compatible(self, apk):
        return int(apk.md5[:2], 16) % 3 != 0


class AlwaysCrashing(GoogleEmulator):
    def crash_probability(self, apk):
        return 1.0


@pytest.fixture()
def day(generator):
    return [generator.sample_app(malicious=bool(i % 4 == 0))
            for i in range(24)]


def test_parallel_requeue_matches_sequential_under_crashes(sdk, day):
    def build():
        return DynamicAnalysisEngine(
            sdk,
            [],
            primary=CrashProneBackend(rate=0.5),
            fallback=GoogleEmulator(),
            max_retries=1,
            seed=8,
        )

    sequential = build().analyze_corpus(day)
    engine = build()
    result = VettingPipeline(engine, workers=6).run(day)
    assert not result.failures
    assert [a.observation for a in result.analyses] == [
        a.observation for a in sequential
    ]
    # With a 50% crash rate some apps must have been requeued, and the
    # crash counter agrees between execution modes.
    assert result.requeues > 0
    assert engine.stats_view.crashes > 0
    assert (
        engine.stats_view.analyzed + engine.stats_view.failures
        == engine.stats_view.submissions
        == len(day)
    )


def test_parallel_fallback_on_incompatible_apps(sdk, day):
    engine = DynamicAnalysisEngine(
        sdk, [], primary=SelectiveBackend(), fallback=GoogleEmulator(),
        seed=9,
    )
    result = VettingPipeline(engine, workers=5).run(day)
    assert not result.failures
    rejected = [a for a in day if not SelectiveBackend().compatible(a)]
    fell_back = [r for r in result.analyses if r.fell_back]
    assert len(fell_back) >= len(rejected) > 0
    for apk, analysis in zip(day, result.analyses):
        if not SelectiveBackend().compatible(apk):
            assert analysis.fell_back
            assert analysis.result.backend_name == "google-emulator"


def test_parallel_all_backends_failed_is_isolated(sdk, day):
    """A poisoned app must not take the batch down: the pipeline
    records the failure and every other app still completes."""
    engine = DynamicAnalysisEngine(
        sdk, [], primary=AlwaysCrashing(), fallback=None,
        max_retries=0, seed=10,
    )
    result = VettingPipeline(engine, workers=4).run(day)
    assert len(result.failures) == len(day)
    assert all(a is None for a in result.analyses)
    assert result.observations == []
    assert engine.stats_view.failures == len(day)
    assert (
        engine.stats_view.analyzed + engine.stats_view.failures
        == engine.stats_view.submissions
    )
    for failure in result.failures:
        assert "all backends failed" in failure.reason


def test_parallel_partial_failures_keep_indices_aligned(sdk, day):
    """Failed apps leave holes at their indices, never shift others."""

    class CrashForSomeApps(GoogleEmulator):
        def crash_probability(self, apk):
            return 1.0 if int(apk.md5[:2], 16) % 4 == 0 else 0.0

    engine = DynamicAnalysisEngine(
        sdk, [], primary=CrashForSomeApps(), fallback=None,
        max_retries=0, seed=11,
    )
    result = VettingPipeline(engine, workers=6).run(day)
    doomed = {i for i, a in enumerate(day)
              if int(a.md5[:2], 16) % 4 == 0}
    assert doomed, "expected at least one doomed app in the sample"
    failed = {f.app_index for f in result.failures}
    assert failed == doomed
    for i, analysis in enumerate(result.analyses):
        if i in doomed:
            assert analysis is None
        else:
            assert analysis is not None
            assert analysis.observation.apk_md5 == day[i].md5
