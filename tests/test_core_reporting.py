"""Tests for analysis-log serialization."""

import json

import pytest

from repro.core.checker import VetVerdict
from repro.core.features import AppObservation
from repro.core.reporting import (
    LogRecord,
    read_log,
    read_observations,
    write_log,
)


def make_obs(md5="abc123"):
    return AppObservation(
        apk_md5=md5,
        invoked_api_ids=(3, 7, 42),
        permissions=("android.permission.SEND_SMS",),
        intents=("android.provider.Telephony.SMS_RECEIVED",),
        analysis_minutes=1.37,
        invoked_api_counts=((3, 120), (7, 9000), (42, 5)),
    )


def make_verdict(md5="abc123"):
    return VetVerdict(
        apk_md5=md5,
        malicious=True,
        probability=0.91,
        analysis_minutes=1.37,
        fell_back=False,
    )


def test_record_roundtrip():
    rec = LogRecord(make_obs(), make_verdict())
    restored = LogRecord.from_dict(rec.to_dict())
    assert restored.observation == rec.observation
    assert restored.verdict == rec.verdict


def test_record_without_verdict_roundtrip():
    rec = LogRecord(make_obs())
    restored = LogRecord.from_dict(rec.to_dict())
    assert restored.verdict is None
    assert restored.observation.invoked_api_counts == (
        (3, 120), (7, 9000), (42, 5)
    )


def test_write_and_read_log(tmp_path):
    path = tmp_path / "analysis.jsonl"
    observations = [make_obs(f"md5-{i}") for i in range(5)]
    verdicts = [make_verdict(f"md5-{i}") for i in range(5)]
    n = write_log(path, observations, verdicts)
    assert n == 5
    records = list(read_log(path))
    assert len(records) == 5
    assert [r.observation.apk_md5 for r in records] == [
        f"md5-{i}" for i in range(5)
    ]
    assert all(r.verdict is not None for r in records)


def test_read_observations_convenience(tmp_path):
    path = tmp_path / "obs.jsonl"
    write_log(path, [make_obs("x"), make_obs("y")])
    obs = read_observations(path)
    assert [o.apk_md5 for o in obs] == ["x", "y"]


def test_misaligned_verdicts_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_log(tmp_path / "bad.jsonl", [make_obs()], [])


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"v": 1, "md5": "a"\nnot json\n')
    with pytest.raises(ValueError):
        list(read_log(path))


def test_unknown_version_rejected():
    with pytest.raises(ValueError):
        LogRecord.from_dict({"v": 99})


def test_log_is_valid_jsonl(tmp_path):
    path = tmp_path / "log.jsonl"
    write_log(path, [make_obs()], [make_verdict()])
    for line in path.read_text().splitlines():
        parsed = json.loads(line)
        assert parsed["v"] == 1
        assert parsed["verdict"]["malicious"] is True


def test_retrain_from_log(tmp_path, sdk, corpus, study_observations):
    """The paper's data-release use case: retrain offline from logs."""
    from repro.core.checker import ApiChecker

    path = tmp_path / "study.jsonl"
    write_log(path, study_observations)
    restored = read_observations(path)
    checker = ApiChecker(sdk, seed=9)
    checker.fit(corpus, study_observations=restored)
    assert checker.key_api_ids.size > 50
