"""Tests for the four-step key-API selection."""

import numpy as np
import pytest

from repro.core.selection import (
    KeyApiSelection,
    invocation_matrix,
    mine_set_c,
    select_key_apis,
)


@pytest.fixture(scope="module")
def selection(sdk, corpus, study_observations):
    X = invocation_matrix(study_observations, len(sdk))
    return select_key_apis(X, corpus.labels, sdk)


def test_invocation_matrix_shape(sdk, study_observations):
    X = invocation_matrix(study_observations, len(sdk))
    assert X.shape == (len(study_observations), len(sdk))
    assert X.dtype == np.uint8
    assert set(np.unique(X).tolist()) <= {0, 1}


def test_sets_p_and_s_fixed_by_registry(sdk, selection):
    assert np.array_equal(selection.set_p, np.sort(sdk.restricted_api_ids))
    assert np.array_equal(selection.set_s, np.sort(sdk.sensitive_api_ids))


def test_union_covers_all_strategies(selection):
    union = set(selection.key_api_ids.tolist())
    assert set(selection.set_c.tolist()) <= union
    assert set(selection.set_p.tolist()) <= union
    assert set(selection.set_s.tolist()) <= union
    assert len(union) == selection.n_keys


def test_venn_counts_consistent(selection):
    venn = selection.venn_counts()
    assert venn["total"] == selection.n_keys
    assert (
        sum(v for k, v in venn.items() if k != "total") == venn["total"]
    )
    assert selection.overlap_count() >= 0


def test_set_c_recovers_discriminative_pool(sdk, selection):
    """SRC mining should mostly rediscover the latent malware-leaning APIs."""
    mined = set(selection.set_c.tolist())
    latent = set(sdk.discriminative_api_ids.tolist())
    assert len(mined & latent) >= 0.5 * len(mined)


def test_set_c_includes_frequent_negative_apis(sdk, selection):
    """The common-ops APIs (SRC <= -0.2 but frequent) belong to Set-C."""
    negative = [
        i for i in selection.set_c
        if selection.src[i] <= -0.2
    ]
    assert negative, "expected frequent negatively correlated APIs in Set-C"
    common = set(sdk.common_ops_api_ids.tolist())
    assert common & set(int(i) for i in negative)


def test_seldom_apis_excluded_from_positive_mining(selection):
    for api_id in selection.set_c:
        if selection.src[api_id] >= 0.2:
            assert selection.usage_fraction[api_id] >= 0.001


def test_mine_set_c_empty_on_uninformative_data(rng):
    X = (rng.random((100, 20)) < 0.5).astype(np.uint8)
    y = (rng.random(100) < 0.5).astype(np.uint8)
    set_c, src, usage = mine_set_c(X, y, src_threshold=0.9)
    assert set_c.size == 0
    assert src.shape == (20,) and usage.shape == (20,)


def test_select_rejects_misaligned_matrix(sdk, corpus):
    with pytest.raises(ValueError):
        select_key_apis(
            np.zeros((len(corpus), 3), dtype=np.uint8), corpus.labels, sdk
        )


def test_ranking_prefers_non_seldom_high_src(selection):
    ranked = selection.ranked_by_correlation()
    assert ranked.size == selection.src.size
    assert sorted(ranked.tolist()) == list(range(selection.src.size))
    # The first ranked API must not be a seldom-invoked one.
    assert selection.usage_fraction[ranked[0]] >= 0.001
    # Absolute SRC is non-increasing within the non-seldom prefix.
    non_seldom = selection.usage_fraction[ranked] >= 0.001
    prefix = np.abs(selection.src[ranked])[non_seldom]
    assert np.all(np.diff(prefix) <= 1e-12)


def test_top_correlated_subsets_nested(selection):
    top50 = set(selection.top_correlated(50).tolist())
    top100 = set(selection.top_correlated(100).tolist())
    assert top50 <= top100
    with pytest.raises(ValueError):
        selection.top_correlated(0)
