"""Tests for shadow-gated model promotion in the evolution loop."""

import copy

import pytest

from repro.core.evolution import EvolutionLoop
from repro.corpus.market import MarketStream
from repro.serve.evolution import ShadowPromotionGate
from repro.serve.registry import ModelRegistry

EVO_SEED = 4200


@pytest.fixture()
def loop(sdk):
    stream = MarketStream(sdk, apps_per_month=60, seed=EVO_SEED)
    initial = stream.bootstrap_corpus(200)
    return EvolutionLoop(
        stream, initial, max_pool=800, checker_seed=EVO_SEED + 1
    )


@pytest.fixture()
def models(tmp_path, loop):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(
        loop.checker, metadata={"source": "bootstrap"}, activate=True
    )
    return registry


def test_gate_validation(models):
    with pytest.raises(ValueError):
        ShadowPromotionGate(models, min_agreement=0.0)
    with pytest.raises(ValueError):
        ShadowPromotionGate(models, min_samples=0)
    with pytest.raises(ValueError):
        ShadowPromotionGate(models, min_samples=50, max_replay=10)


def test_gate_requires_active_model(tmp_path, loop):
    empty = ModelRegistry(tmp_path / "empty")
    gate = ShadowPromotionGate(empty)
    with pytest.raises(RuntimeError, match="active model"):
        loop.model_gate = gate
        loop.run_month()


def test_monthly_retrain_publishes_new_version(loop, models):
    loop.model_gate = ShadowPromotionGate(
        models, min_agreement=0.5, min_samples=10
    )
    assert len(models.versions) == 1
    record = loop.run_month()
    # The month's candidate landed in the registry as a new version
    # with evolution provenance.
    assert len(models.versions) == 2
    assert models.versions[2].metadata["source"] == "evolution"
    assert models.versions[2].metadata["month"] == 1
    assert models.versions[2].metadata["n_replay"] == 60
    assert record.promotion is not None
    assert record.promotion.candidate_version == 2


def test_promotion_above_threshold_swaps_active(loop, models):
    # Monthly retrains on a stable stream agree heavily with the prior
    # model; a permissive bar promotes.
    loop.model_gate = ShadowPromotionGate(
        models, min_agreement=0.5, min_samples=10
    )
    record = loop.run_month()
    assert record.promotion.promoted
    assert record.promotion.n_scored == 60
    assert models.active_version == 2
    assert record.n_key_apis == loop.checker.key_api_ids.size
    assert models.metrics.value("serve_promotions_total") == 1


def test_rejection_below_threshold_keeps_active_model(loop, models):
    """A candidate that disagrees too much is rolled back and recorded."""
    gate = ShadowPromotionGate(models, min_agreement=0.95, min_samples=10)
    serving_before = loop.checker

    class _Sabotage:
        """Gate wrapper that poisons the candidate's threshold."""

        def __call__(self, candidate, observations, metadata=None):
            poisoned = copy.copy(candidate)
            poisoned.decision_threshold = 1e-9  # flags everything
            return gate(poisoned, observations, metadata=metadata)

    loop.model_gate = _Sabotage()
    record = loop.run_month()
    assert not record.promotion.promoted
    assert "keeping active model" in record.promotion.reason
    # The loop keeps serving the previous model...
    assert loop.checker is serving_before
    # ...the registry active pointer is unchanged...
    assert models.active_version == 1
    # ...and the rollback is recorded for audit.
    assert models.versions[2].state == "rejected"
    assert models.metrics.value("serve_rollbacks_total") == 1
    assert not models.decisions[-1].promoted

    # The month's data was still absorbed: the next (clean) retrain
    # sees it and can be promoted normally.
    loop.model_gate = ShadowPromotionGate(
        models, min_agreement=0.5, min_samples=10
    )
    record2 = loop.run_month()
    assert record2.promotion.promoted
    assert models.active_version == 3


def test_insufficient_samples_keeps_shadow_staged(loop, models):
    loop.model_gate = ShadowPromotionGate(
        models, min_agreement=0.5, min_samples=500
    )
    record = loop.run_month()
    assert not record.promotion.promoted
    assert "insufficient" in record.promotion.reason
    assert models.active_version == 1
    # Not a rejection: the candidate stays staged to gather samples.
    assert models.shadow_version == 2
    assert models.metrics.value("serve_rollbacks_total") == 0


def test_no_gate_preserves_unconditional_swap(loop):
    before = loop.checker
    record = loop.run_month()
    assert record.promotion is None
    assert loop.checker is not before


def test_max_replay_caps_gate_work(loop, models):
    loop.model_gate = ShadowPromotionGate(
        models, min_agreement=0.5, min_samples=10, max_replay=25
    )
    record = loop.run_month()
    assert record.promotion.n_scored == 25
    assert models.versions[2].metadata["n_replay"] == 25
