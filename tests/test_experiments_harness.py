"""Tests for the experiment harness and scale profiles."""

import numpy as np
import pytest

from repro.experiments.config import (
    BENCH,
    LARGE,
    SMOKE,
    ScaleProfile,
    profile_from_env,
)
from repro.experiments.harness import (
    World,
    build_world,
    cdf_stats,
    clear_world_cache,
    print_table,
)


def test_profiles_are_ordered():
    assert SMOKE.n_train < BENCH.n_train < LARGE.n_train
    assert SMOKE.n_apis < BENCH.n_apis < LARGE.n_apis


def test_profile_validation():
    with pytest.raises(ValueError):
        ScaleProfile(name="bad", n_apis=0, n_train=10, n_test=10)


def test_profile_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert profile_from_env() is SMOKE
    monkeypatch.setenv("REPRO_SCALE", "nope")
    with pytest.raises(ValueError):
        profile_from_env()
    monkeypatch.delenv("REPRO_SCALE")
    assert profile_from_env() is BENCH


def test_scale_note_mentions_paper_scale():
    assert "50K" in BENCH.scale_note and "500K" in BENCH.scale_note


def test_build_world_memoized():
    tiny = ScaleProfile(name="tiny", n_apis=800, n_train=120, n_test=60,
                        rf_trees=10, seed=3)
    a = build_world(tiny)
    b = build_world(tiny)
    assert a is b
    assert len(a.train) == 120 and len(a.test) == 60
    clear_world_cache()
    c = build_world(tiny)
    assert c is not a


def test_world_lazy_observations_cached():
    tiny = ScaleProfile(name="tiny2", n_apis=800, n_train=80, n_test=40,
                        rf_trees=10, seed=4)
    world = build_world(tiny)
    obs1 = world.train_observations
    obs2 = world.train_observations
    assert obs1 is obs2
    assert len(obs1) == 80
    X = world.train_api_matrix
    assert X.shape == (80, 800)
    sel = world.selection
    assert sel.n_keys > 0
    clear_world_cache()


def test_cdf_stats_values():
    stats = cdf_stats([1.0, 2.0, 3.0, 10.0])
    assert stats["min"] == 1.0 and stats["max"] == 10.0
    assert stats["mean"] == 4.0 and stats["median"] == 2.5
    with pytest.raises(ValueError):
        cdf_stats([])


def test_print_table_renders(capsys):
    print_table("T", ["a", "bb"], [[1, 2], [30, 4]])
    out = capsys.readouterr().out
    assert "=== T ===" in out
    assert "30" in out
