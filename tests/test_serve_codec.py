"""Tests for the APK JSON wire codec."""

import json

import pytest

from repro.serve.codec import CODEC_VERSION, apk_from_dict, apk_to_dict


def _round_trip(apk):
    # Through an actual JSON string, not just the dict: the WAL and the
    # HTTP API both move serialized text.
    return apk_from_dict(json.loads(json.dumps(apk_to_dict(apk))))


def test_round_trip_preserves_content_hash(generator):
    for malicious in (False, True):
        apk = generator.sample_app(malicious=malicious)
        rebuilt = _round_trip(apk)
        assert rebuilt.md5 == apk.md5
        assert rebuilt.is_malicious == apk.is_malicious
        assert rebuilt.family == apk.family


def test_round_trip_is_field_exact(generator):
    apk = generator.sample_app(malicious=True)
    rebuilt = _round_trip(apk)
    assert rebuilt.manifest == apk.manifest
    assert rebuilt.dex == apk.dex
    assert rebuilt.size_mb == apk.size_mb
    assert rebuilt.submitted_day == apk.submitted_day
    assert rebuilt.parent_md5 == apk.parent_md5


def test_updates_keep_parent_link(generator):
    # Drive the generator until it emits an update (parent_md5 set).
    apk = None
    for _ in range(200):
        candidate = generator.sample_app(update_prob=0.9)
        if candidate.parent_md5 is not None:
            apk = candidate
            break
    assert apk is not None, "generator never produced an update"
    assert _round_trip(apk).parent_md5 == apk.parent_md5


def test_unknown_codec_version_rejected(generator):
    record = apk_to_dict(generator.sample_app())
    record["v"] = CODEC_VERSION + 1
    with pytest.raises(ValueError, match="codec version"):
        apk_from_dict(record)

    record.pop("v")
    with pytest.raises(ValueError, match="codec version"):
        apk_from_dict(record)


def test_tampered_payload_fails_hash_check(generator):
    record = apk_to_dict(generator.sample_app())
    record["manifest"]["requested_permissions"].append(
        "android.permission.SEND_SMS"
    )
    with pytest.raises(ValueError, match="corrupt"):
        apk_from_dict(record)


def test_payload_without_recorded_md5_is_accepted(generator):
    # The hash check is for transport corruption; a payload that never
    # carried an md5 (hand-written submission) is rebuilt as-is.
    apk = generator.sample_app()
    record = apk_to_dict(apk)
    record.pop("md5")
    assert apk_from_dict(record).md5 == apk.md5


def test_wire_dict_is_json_clean(generator):
    # No numpy scalars, enums, or other non-JSON types may leak in.
    text = json.dumps(apk_to_dict(generator.sample_app(malicious=True)))
    assert isinstance(text, str) and len(text) > 100
