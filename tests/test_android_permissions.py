"""Tests for the permission registry."""

import pytest

from repro.android.permissions import (
    CANONICAL_PERMISSIONS,
    Permission,
    PermissionRegistry,
    ProtectionLevel,
)


def test_generation_deterministic():
    a = PermissionRegistry.generate(160, seed=3)
    b = PermissionRegistry.generate(160, seed=3)
    assert a.names == b.names


def test_canonical_permissions_always_present():
    reg = PermissionRegistry.generate(160, seed=0)
    for name, level in CANONICAL_PERMISSIONS:
        assert name in reg
        assert reg.get(name).level is level


def test_requested_size_is_honored():
    reg = PermissionRegistry.generate(200, seed=1)
    assert len(reg) == 200
    assert len(set(reg.names)) == 200


def test_too_small_registry_rejected():
    with pytest.raises(ValueError):
        PermissionRegistry.generate(10)


def test_restrictive_levels():
    assert ProtectionLevel.DANGEROUS.is_restrictive
    assert ProtectionLevel.SIGNATURE.is_restrictive
    assert not ProtectionLevel.NORMAL.is_restrictive


def test_restrictive_query_matches_levels():
    reg = PermissionRegistry.generate(160, seed=2)
    restrictive = reg.restrictive()
    assert restrictive
    assert all(p.level.is_restrictive for p in restrictive)
    normals = reg.at_level(ProtectionLevel.NORMAL)
    assert len(restrictive) + len(normals) == len(reg)


def test_unknown_permission_raises():
    reg = PermissionRegistry.generate(160, seed=2)
    with pytest.raises(KeyError):
        reg.get("android.permission.DOES_NOT_EXIST")


def test_short_name():
    p = Permission("android.permission.SEND_SMS", ProtectionLevel.DANGEROUS)
    assert p.short_name == "SEND_SMS"


def test_duplicate_names_rejected():
    p = Permission("android.permission.X", ProtectionLevel.NORMAL)
    with pytest.raises(ValueError):
        PermissionRegistry([p, p])


def test_empty_registry_rejected():
    with pytest.raises(ValueError):
        PermissionRegistry([])
