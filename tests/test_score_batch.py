"""Batch-vs-single scoring equivalence battery.

The ``predict_proba_batch`` contract promises **bitwise** equality with
a per-app ``predict_proba`` loop — not approximate closeness — at any
batch size and in any row order, for every bundled classifier.  That
only holds because the scoring paths route their linear algebra through
the row-stable kernels in :mod:`repro.ml.base`; these tests are the
tripwire for anyone swapping a BLAS matmul back in.

Also covered: the empty-input edges (zero-row blocks, ``vet_batch([])``,
an empty serve micro-batch) return empty results instead of raising,
with all counters untouched.
"""

import numpy as np
import pytest

from repro.core.features import FeatureBlock
from repro.ml import CLASSIFIER_NAMES, make_classifier
from repro.ml.base import Classifier
from repro.obs import MetricsRegistry

N_ROWS = 1024
N_FEATURES = 150
BATCH_SIZES = (1, 7, 1024)


@pytest.fixture(scope="module")
def score_data():
    """Small synthetic binary world: train split + a 1024-row block."""
    rng = np.random.default_rng(9001)
    X_train = (rng.random((400, N_FEATURES)) < 0.15).astype(np.uint8)
    y_train = (rng.random(400) < 0.3).astype(np.int64)
    # Both classes must be present for every fit.
    y_train[:2] = (0, 1)
    X_test = (rng.random((N_ROWS, N_FEATURES)) < 0.15).astype(np.uint8)
    md5s = tuple(f"{i:032x}" for i in range(N_ROWS))
    return X_train, y_train, FeatureBlock(X_test, md5s)


@pytest.fixture(scope="module")
def fitted(score_data):
    """name -> fitted classifier, trained lazily and cached."""
    X_train, y_train, _ = score_data
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = make_classifier(name, seed=7).fit(X_train, y_train)
        return cache[name]

    return get


@pytest.fixture(scope="module")
def single_scores(score_data, fitted):
    """name -> per-app predict_proba loop over the test block (cached)."""
    _, _, block = score_data
    cache = {}

    def get(name):
        if name not in cache:
            clf = fitted(name)
            cache[name] = np.array(
                [
                    clf.predict_proba(block.matrix[i : i + 1])[0]
                    for i in range(len(block))
                ]
            )
        return cache[name]

    return get


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_equals_single_exactly(
    score_data, fitted, single_scores, name, batch_size
):
    _, _, block = score_data
    clf = fitted(name)
    reference = single_scores(name)
    parts = [
        clf.predict_proba_batch(
            block.take(np.arange(start, min(start + batch_size, len(block))))
        )
        for start in range(0, len(block), batch_size)
    ]
    scores = np.concatenate(parts)
    assert scores.shape == (len(block),)
    # Exact, not approx: the whole point of the row-stable kernels.
    assert np.array_equal(scores, reference)


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_shuffled_rows_score_identically(
    score_data, fitted, single_scores, name, rng
):
    _, _, block = score_data
    reference = single_scores(name)
    perm = rng.permutation(len(block))
    shuffled = fitted(name).predict_proba_batch(block.take(perm))
    assert np.array_equal(shuffled, reference[perm])


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_zero_row_block_returns_empty(score_data, fitted, name):
    empty = FeatureBlock(
        np.zeros((0, N_FEATURES), dtype=np.uint8), ()
    )
    scores = fitted(name).predict_proba_batch(empty)
    assert scores.shape == (0,)
    assert scores.dtype == np.float64


def test_fallback_shim_matches_contract(score_data):
    """A classifier without a batch override inherits an exact shim."""

    class LoopOnly(Classifier):
        name = "means"

        def fit(self, X, y):
            return self

        def predict_proba(self, X):
            # Per-row reduction: batch-invariant by construction.
            return np.asarray(X, dtype=np.float64).mean(axis=1)

    _, _, block = score_data
    clf = LoopOnly().fit(None, None)
    reference = np.array(
        [
            clf.predict_proba(block.matrix[i : i + 1])[0]
            for i in range(len(block))
        ]
    )
    assert np.array_equal(clf.predict_proba_batch(block), reference)
    empty = clf.predict_proba_batch(
        FeatureBlock(np.zeros((0, N_FEATURES), dtype=np.uint8), ())
    )
    assert empty.shape == (0,)


# -- empty-input regressions across the consumers -------------------------


def test_vet_batch_empty_returns_empty(fitted_checker):
    assert fitted_checker.vet_batch([]) == []


def test_score_observations_empty_returns_empty(fitted_checker):
    scores = fitted_checker.score_observations([])
    assert scores.shape == (0,)
    verdicts = fitted_checker.verdicts_from_observations([])
    assert verdicts == []


def test_empty_serve_micro_batch_is_a_no_op(tmp_path, fitted_checker):
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import OnlineVettingService

    metrics = MetricsRegistry()
    models = ModelRegistry(tmp_path / "models", metrics=metrics)
    models.publish(fitted_checker, activate=True)
    service = OnlineVettingService(models, metrics=metrics)
    try:
        service._process_batch([])
    finally:
        service.close()
    assert metrics.value("serve_batches_total") == 0
    assert metrics.value("serve_scored_total") == 0
    assert metrics.value("serve_flagged_total") == 0
    assert metrics.histogram_count("serve_e2e_seconds") == 0
