"""Tests for differential update re-vetting."""

import numpy as np
import pytest

from repro.core.diffvet import (
    DIFF_CHECK_SECONDS,
    DiffVetter,
    StaticProfile,
)
from repro.corpus.generator import CorpusGenerator


@pytest.fixture()
def vetter(fitted_checker):
    return DiffVetter(fitted_checker)


def test_threshold_validation(fitted_checker):
    with pytest.raises(ValueError):
        DiffVetter(fitted_checker, similarity_threshold=0.2)


def test_requires_fitted_checker(sdk):
    from repro.core.checker import ApiChecker

    with pytest.raises(RuntimeError):
        DiffVetter(ApiChecker(sdk))


def test_first_submission_always_full_scan(vetter, generator):
    apk = generator.sample_app(malicious=False, update_prob=0.0)
    decision = vetter.vet(apk)
    assert not decision.fast_path
    assert decision.reason == "no scanned parent"
    assert vetter.stats_view.full_scans == 1


def test_near_identical_update_rides_fast_path(vetter, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=700, catalog=catalog)
    # Generate a package and many updates of it.
    first = gen.sample_app(archetype="tool", update_prob=0.0)
    vetter.vet(first)
    fast = 0
    scanned = {first.md5}
    for _ in range(60):
        candidate = gen.sample_app(archetype="tool", update_prob=0.95)
        decision = vetter.vet(candidate)
        if candidate.parent_md5 in scanned and decision.fast_path:
            fast += 1
            assert decision.similarity >= vetter.similarity_threshold
            assert decision.verdict.analysis_minutes == pytest.approx(
                DIFF_CHECK_SECONDS / 60.0
            )
        scanned.add(candidate.md5)
    assert fast > 0, "no update ever took the fast path"


def test_fast_path_cuts_analysis_time(vetter, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=701, catalog=catalog)
    apps = [gen.sample_app(malicious=False, update_prob=0.9)
            for _ in range(60)]
    decisions = vetter.vet_batch(apps)
    minutes = np.array([d.verdict.analysis_minutes for d in decisions])
    fast = np.array([d.fast_path for d in decisions])
    if fast.any():
        assert minutes[fast].max() < minutes[~fast].min()


def test_capability_gain_forces_full_scan(vetter, generator, sdk):
    from dataclasses import replace

    first = generator.sample_app(archetype="news", update_prob=0.0)
    vetter.vet(first)
    # Forge an "update" that suddenly requests SEND_SMS.
    manifest = replace(
        first.manifest,
        version_code=2,
        requested_permissions=first.manifest.requested_permissions
        + ("android.permission.SEND_SMS",),
    )
    update = replace(first, manifest=manifest, parent_md5=first.md5,
                     _md5="")
    decision = vetter.vet(update)
    assert not decision.fast_path
    assert decision.reason == "capability gained"


def test_profile_similarity_metrics():
    a = StaticProfile(
        api_ids=frozenset({1, 2, 3}),
        hidden_api_ids=frozenset(),
        permissions=frozenset({"p"}),
        intents=frozenset(),
    )
    b = StaticProfile(
        api_ids=frozenset({1, 2}),
        hidden_api_ids=frozenset({3}),
        permissions=frozenset({"p"}),
        intents=frozenset(),
    )
    assert a.jaccard(b) == 1.0  # hidden + direct are pooled
    assert not b.gained_capability(a) or b.hidden_api_ids - a.hidden_api_ids
    empty = StaticProfile(frozenset(), frozenset(), frozenset(), frozenset())
    assert empty.jaccard(empty) == 1.0


def test_fast_path_fraction_reporting(vetter, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=702, catalog=catalog)
    apps = [gen.sample_app(malicious=False, update_prob=0.9)
            for _ in range(40)]
    vetter.vet_batch(apps)
    assert vetter.stats_view.total == 40
    assert 0.0 <= vetter.fast_path_fraction <= 1.0


def test_stats_dict_is_removed(vetter, generator):
    """The deprecated ``vetter.stats`` dict property is gone.

    ``stats_view.as_dict()`` keeps the same shape for callers that
    genuinely need a dict (e.g. JSON rendering).
    """
    vetter.vet(generator.sample_app(malicious=False, update_prob=0.0))
    assert not hasattr(vetter, "stats")
    assert vetter.stats_view.as_dict()["full_scans"] == 1


def test_counters_land_in_shared_registry(fitted_checker, generator):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    vetter = DiffVetter(fitted_checker, registry=registry)
    vetter.vet(generator.sample_app(malicious=False, update_prob=0.0))
    assert registry.value("diffvet_full_scans_total") == 1
    assert vetter.stats_view.full_scans == 1
