"""Tests for feature modes, observations, and the feature space."""

import numpy as np
import pytest

from repro.core.features import AppObservation, FeatureMode, FeatureSpace


def test_mode_flags():
    assert FeatureMode.A.uses_apis and not FeatureMode.A.uses_permissions
    assert FeatureMode.PI.uses_permissions and FeatureMode.PI.uses_intents
    assert not FeatureMode.PI.uses_apis
    assert all(
        getattr(FeatureMode.API, f"uses_{k}")
        for k in ("apis", "permissions", "intents")
    )


def test_feature_space_layout(sdk):
    space = FeatureSpace(sdk, [3, 1, 2], FeatureMode.API)
    n_perm = len(sdk.permissions)
    n_intent = len(sdk.intents)
    assert space.n_features == 3 + n_perm + n_intent
    assert space.kind_of_column(0) == "api"
    assert space.kind_of_column(3) == "permission"
    assert space.kind_of_column(3 + n_perm) == "intent"
    with pytest.raises(IndexError):
        space.kind_of_column(space.n_features)


def test_feature_space_sorts_and_dedups_api_ids(sdk):
    space = FeatureSpace(sdk, [5, 5, 2], FeatureMode.A)
    assert space.api_ids.tolist() == [2, 5]
    assert space.n_features == 2


def test_api_mode_requires_apis(sdk):
    with pytest.raises(ValueError):
        FeatureSpace(sdk, [], FeatureMode.A)
    # P+I mode needs no APIs at all.
    space = FeatureSpace(sdk, [], FeatureMode.PI)
    assert space.api_ids.size == 0


def test_out_of_range_api_rejected(sdk):
    with pytest.raises(ValueError):
        FeatureSpace(sdk, [len(sdk)], FeatureMode.A)


def test_encode_sets_expected_bits(sdk):
    perm = sdk.permissions.names[0]
    intent = sdk.intents.names[0]
    space = FeatureSpace(sdk, [1, 4], FeatureMode.API)
    obs = AppObservation(
        apk_md5="x",
        invoked_api_ids=(4,),
        permissions=(perm,),
        intents=(intent,),
    )
    vec = space.encode(obs)
    assert vec.sum() == 3
    assert vec[1] == 1  # api 4 is the second tracked column
    assert vec[2] == 1  # first permission column
    assert vec[2 + len(sdk.permissions.names)] == 1  # first intent column


def test_encode_ignores_unknown_identifiers(sdk):
    space = FeatureSpace(sdk, [1], FeatureMode.API)
    obs = AppObservation(
        apk_md5="x",
        invoked_api_ids=(99999,),
        permissions=("com.unknown.PERM",),
        intents=("com.unknown.INTENT",),
    )
    assert space.encode(obs).sum() == 0


def test_mode_restricts_blocks(sdk):
    obs = AppObservation(
        apk_md5="x",
        invoked_api_ids=(1,),
        permissions=(sdk.permissions.names[0],),
        intents=(sdk.intents.names[0],),
    )
    a_only = FeatureSpace(sdk, [1], FeatureMode.A)
    assert a_only.encode(obs).sum() == 1
    pi = FeatureSpace(sdk, [1], FeatureMode.PI)
    assert pi.encode(obs).sum() == 2


def test_encode_batch_shape_and_error(sdk):
    space = FeatureSpace(sdk, [1, 2], FeatureMode.A)
    obs = AppObservation("x", (1,), (), ())
    X = space.encode_batch([obs, obs, obs])
    assert X.shape == (3, 2) and X.dtype == np.uint8
    with pytest.raises(ValueError):
        space.encode_batch([])


def test_feature_names_prefixes(sdk):
    space = FeatureSpace(sdk, [1], FeatureMode.API)
    names = space.feature_names
    assert names[0].startswith("API: ")
    assert any(n.startswith("Permission: ") for n in names)
    assert any(n.startswith("Intent: ") for n in names)
    assert len(names) == space.n_features


def test_static_only_observation(generator):
    apk = generator.sample_app(malicious=False)
    obs = AppObservation.static_only(apk)
    assert obs.invoked_api_ids == ()
    assert obs.permissions == apk.manifest.requested_permissions
    assert set(apk.manifest.receiver_intent_actions) <= set(obs.intents)
