"""Tests for the adversarial campaign simulator (repro.scenarios)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.corpus.generator import CorpusGenerator
from repro.corpus.market import poison_labels
from repro.emulator.device import DeviceEnvironment
from repro.scenarios import (
    AttackWave,
    Campaign,
    CampaignRunner,
    bundled_campaigns,
    campaign_by_name,
    plan_traffic,
)

TINY = Campaign(
    name="tiny",
    description="small deterministic probe campaign",
    seed=77,
    days=2,
    baseline_per_day=5,
    malware_rate=0.2,
    waves=(
        AttackWave(
            name="w", kind="family", per_day=3, days=2,
            families=("sms_fraud",),
        ),
    ),
)


# ----------------------------------------------------------------------
# Campaign spec
# ----------------------------------------------------------------------


def test_bundled_campaigns_round_trip_json():
    campaigns = bundled_campaigns()
    assert set(campaigns) == {
        "repackaging_wave",
        "evasion_arms_race",
        "hidden_loader",
        "label_noise",
        "burst_flood",
    }
    for name, campaign in campaigns.items():
        rebuilt = Campaign.from_json(campaign.to_json())
        assert rebuilt == campaign, name
        assert json.loads(campaign.to_json())["name"] == name


def test_campaign_by_name_raises_on_unknown():
    assert campaign_by_name("burst_flood").max_depth == 16
    with pytest.raises(KeyError, match="unknown campaign"):
        campaign_by_name("nope")


def test_campaign_validation():
    with pytest.raises(ValueError, match="days"):
        dataclasses.replace(TINY, days=0)
    with pytest.raises(ValueError, match="rate"):
        dataclasses.replace(TINY, malware_rate=1.5)
    with pytest.raises(ValueError, match="retrain_day"):
        dataclasses.replace(TINY, retrain_day=5)
    with pytest.raises(ValueError, match="max_depth"):
        dataclasses.replace(TINY, max_depth=0)


def test_wave_validation():
    with pytest.raises(ValueError, match="unknown wave kind"):
        AttackWave(name="x", kind="meteor", per_day=1)
    with pytest.raises(ValueError, match="payload and host"):
        AttackWave(name="x", kind="repackaged", per_day=1)
    with pytest.raises(ValueError, match="at least one family"):
        AttackWave(name="x", kind="family", per_day=1)
    wave = AttackWave(
        name="x", kind="family", per_day=2, start_day=1, days=2,
        families=("botnet",),
    )
    assert [wave.active_on(d) for d in range(4)] == [
        False, True, True, False
    ]


def test_scaled_keeps_waves_alive():
    scaled = bundled_campaigns()["repackaging_wave"].scaled(0.01)
    assert scaled.baseline_per_day >= 1
    assert all(w.per_day >= 1 for w in scaled.waves)
    doubled = TINY.scaled(2.0)
    assert doubled.baseline_per_day == 10
    assert doubled.waves[0].per_day == 6
    with pytest.raises(ValueError, match="positive"):
        TINY.scaled(0.0)


# ----------------------------------------------------------------------
# Traffic planning
# ----------------------------------------------------------------------


def test_plan_traffic_is_deterministic(sdk, catalog):
    plans = [
        plan_traffic(
            TINY, CorpusGenerator(sdk, seed=TINY.seed, catalog=catalog)
        )
        for _ in range(2)
    ]
    md5s = [
        [[s.apk.md5 for s in day] for day in plan] for plan in plans
    ]
    assert md5s[0] == md5s[1]


def test_plan_traffic_tags_waves_and_lanes(sdk, catalog):
    campaign = bundled_campaigns()["burst_flood"]
    plan = plan_traffic(
        campaign, CorpusGenerator(sdk, seed=campaign.seed, catalog=catalog)
    )
    assert len(plan) == campaign.days
    by_wave = {}
    for day, planned in enumerate(plan):
        for sub in planned:
            assert sub.day == day
            by_wave.setdefault(sub.wave, []).append(sub)
    assert len(by_wave[None]) == campaign.days * campaign.baseline_per_day
    assert len(by_wave["flood"]) == 64
    assert all(s.lane == "bulk" for s in by_wave["flood"])
    assert all(s.lane == "escalated" for s in by_wave["urgent"])


def test_repackaged_wave_apps_are_malicious_clones(sdk, catalog):
    campaign = bundled_campaigns()["repackaging_wave"].scaled(0.25)
    plan = plan_traffic(
        campaign, CorpusGenerator(sdk, seed=campaign.seed, catalog=catalog)
    )
    wave_apps = [
        s.apk for day in plan for s in day if s.wave == "repackage"
    ]
    assert wave_apps
    assert all(a.is_malicious for a in wave_apps)
    assert all(a.family == "sms_fraud@game" for a in wave_apps)


def test_evasive_and_hidden_wave_perturbations(sdk, catalog):
    arms = bundled_campaigns()["evasion_arms_race"].scaled(0.3)
    plan = plan_traffic(
        arms, CorpusGenerator(sdk, seed=arms.seed, catalog=catalog)
    )
    evasive = [s.apk for day in plan for s in day if s.wave == "evasive"]
    assert evasive
    assert all(a.dex.emulator_probes for a in evasive)

    hidden_c = bundled_campaigns()["hidden_loader"].scaled(0.3)
    plan = plan_traffic(
        hidden_c, CorpusGenerator(sdk, seed=hidden_c.seed, catalog=catalog)
    )
    hidden = [s.apk for day in plan for s in day if s.wave == "hidden"]
    assert hidden
    assert all(a.dex.uses_dynamic_loading for a in hidden)


# ----------------------------------------------------------------------
# Perturbation hooks
# ----------------------------------------------------------------------


def test_sample_repackaged_validates_roles(generator):
    with pytest.raises(ValueError, match="host must be benign"):
        generator.sample_repackaged("botnet", "sms_fraud")
    with pytest.raises(ValueError, match="payload must be a malware"):
        generator.sample_repackaged("game", "tool")


def test_sample_repackaged_grafts_payload_signature(generator, catalog):
    apk = generator.sample_repackaged("game", "sms_fraud")
    assert apk.is_malicious
    signature = set(int(x) for x in catalog.signature_of("sms_fraud"))
    called = {site.api_id for site in apk.dex.call_sites}
    assert signature & called, "no payload signature APIs in the clone"


def test_sample_evasive_forces_probes(generator):
    apks = [
        generator.sample_evasive("botnet", force_probe=True)
        for _ in range(5)
    ]
    assert all(a.dex.emulator_probes for a in apks)


def test_sample_evasive_hides_signature_behind_reflection(
    generator, catalog
):
    signature = set(int(x) for x in catalog.signature_of("update_attack"))
    hits = 0
    for _ in range(5):
        apk = generator.sample_evasive("update_attack", hide_signature=True)
        assert apk.dex.uses_dynamic_loading
        called = {site.api_id for site in apk.dex.call_sites}
        assert not (signature & called), "signature API left in the open"
        hits += len(signature & set(apk.dex.reflection_api_ids))
    assert hits > 0, "no signature APIs moved behind reflection"


def test_poison_labels():
    rng = np.random.default_rng(3)
    labels = np.array([True, False] * 50)
    assert (poison_labels(labels, 0.0, rng) == labels).all()
    assert (poison_labels(labels, 1.0, rng) == ~labels).all()
    flipped = poison_labels(labels, 0.3, np.random.default_rng(4))
    again = poison_labels(labels, 0.3, np.random.default_rng(4))
    assert (flipped == again).all()
    n = int(np.sum(flipped != labels))
    assert 0 < n < labels.size
    with pytest.raises(ValueError, match="flip_rate"):
        poison_labels(labels, 1.2, rng)


def test_with_env_rebuilds_engine_and_shares_model(fitted_checker):
    stock = fitted_checker.with_env(DeviceEnvironment.stock_emulator())
    assert stock.env == DeviceEnvironment.stock_emulator()
    assert stock.classifier is fitted_checker.classifier
    assert stock.feature_space is fitted_checker.feature_space
    assert stock.production_engine is not fitted_checker.production_engine
    assert stock.production_engine.env == stock.env
    assert fitted_checker.env == DeviceEnvironment.hardened_emulator()


# ----------------------------------------------------------------------
# Runner (in-process service)
# ----------------------------------------------------------------------


def test_runner_replays_campaign_in_process(
    tmp_path, fitted_checker, catalog
):
    runner = CampaignRunner(
        TINY, fitted_checker, catalog=catalog, workdir=tmp_path
    )
    report = runner.run()
    assert len(report.days) == TINY.days
    n_planned = sum(d.n_submitted for d in report.days)
    assert n_planned == TINY.planned_submissions
    assert report.lost == 0
    assert set(report.verdicts) == set(report.truths)
    assert all(
        report.first_day[md5] in (0, 1) for md5 in report.verdicts
    )
    for day in report.days:
        assert day.n_failed == 0
        assert day.latency_p95_s >= day.latency_p50_s > 0
        assert 0.0 <= day.precision <= 1.0
        assert 0.0 <= day.recall <= 1.0
        assert day.n_explained <= day.n_flagged
    # Round trip: the report serializes completely.
    payload = json.loads(report.to_json())
    assert payload["campaign"]["name"] == "tiny"
    assert payload["totals"]["lost"] == 0


def test_runner_counts_429s_and_loses_nothing_under_flood(
    tmp_path, fitted_checker, catalog
):
    flood = Campaign(
        name="miniflood",
        description="admission-bound flood",
        seed=31,
        days=1,
        baseline_per_day=2,
        max_depth=3,
        waves=(
            AttackWave(name="flood", kind="mixed", per_day=18),
            AttackWave(
                name="urgent", kind="mixed", per_day=2, lane="escalated"
            ),
        ),
    )
    runner = CampaignRunner(
        flood, fitted_checker, catalog=catalog, workdir=tmp_path
    )
    report = runner.run()
    assert report.rejected_429 > 0, "flood never hit admission control"
    assert report.lost == 0
    assert len(report.verdicts) == len(report.truths) == 22
    assert report.days[0].peak_queue_depth <= 3


def test_runner_retrains_at_day_boundary(
    tmp_path, fitted_checker, catalog, corpus, study_observations
):
    campaign = dataclasses.replace(TINY, retrain_day=0)
    runner = CampaignRunner(
        campaign,
        fitted_checker,
        catalog=catalog,
        workdir=tmp_path,
        train_corpus=corpus,
        train_observations=study_observations,
    )
    report = runner.run()
    assert len(report.evolution) == 1
    decision = report.evolution[0]
    assert decision["day"] == 0
    assert decision["decision"] in ("promoted", "rejected")
    assert decision["n_flipped"] == 0
    assert decision["n_feedback"] == 8


def test_runner_without_train_corpus_skips_retrain(
    tmp_path, fitted_checker, catalog
):
    campaign = dataclasses.replace(TINY, retrain_day=0)
    runner = CampaignRunner(
        campaign, fitted_checker, catalog=catalog, workdir=tmp_path
    )
    report = runner.run()
    assert report.evolution[0]["decision"] == "skipped"


# ----------------------------------------------------------------------
# Determinism across serving topologies
# ----------------------------------------------------------------------


def test_campaign_verdicts_identical_across_shard_counts(
    tmp_path, fitted_checker, catalog
):
    """Same seed, same campaign -> identical verdict sets through one
    in-process service and a 2-shard multi-process router."""
    single = CampaignRunner(
        TINY,
        fitted_checker,
        catalog=catalog,
        workdir=tmp_path / "one",
    ).run()
    sharded = CampaignRunner(
        TINY,
        fitted_checker,
        catalog=catalog,
        shards=2,
        workdir=tmp_path / "two",
    ).run()
    assert single.verdict_set() == sharded.verdict_set()
    assert single.shards == 1 and sharded.shards == 2
    assert sharded.lost == 0
