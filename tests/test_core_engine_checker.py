"""Tests for the dynamic analysis engine and the ApiChecker pipeline."""

import numpy as np
import pytest

from repro.core.checker import ApiChecker
from repro.core.engine import DynamicAnalysisEngine
from repro.core.features import FeatureMode
from repro.emulator.backends import (
    EmulatorCrash,
    GoogleEmulator,
    IncompatibleAppError,
    LightweightEmulator,
)


# -- engine --------------------------------------------------------------


def test_engine_analyzes_everything(sdk, corpus):
    engine = DynamicAnalysisEngine(sdk, sdk.restricted_api_ids, seed=1)
    analyses = engine.analyze_corpus(corpus.subset(range(40)))
    assert len(analyses) == 40
    assert engine.stats_view.analyzed == 40
    for a in analyses:
        assert a.total_minutes > 0
        assert a.observation.apk_md5 == a.result.apk_md5


def test_engine_stats_dict_is_removed(sdk, corpus):
    """The deprecated ``engine.stats`` dict property is gone.

    ``stats_view.as_dict()`` keeps the same shape for callers that
    genuinely need a dict (e.g. JSON rendering).
    """
    engine = DynamicAnalysisEngine(sdk, [], seed=1)
    engine.analyze_corpus(corpus.subset(range(3)))
    assert not hasattr(engine, "stats")
    assert engine.stats_view.as_dict()["analyzed"] == 3


def test_engine_falls_back_on_incompatible(sdk, generator):
    class AlwaysIncompatible(LightweightEmulator):
        def compatible(self, apk):
            return False

    engine = DynamicAnalysisEngine(
        sdk, [], primary=AlwaysIncompatible(), seed=2
    )
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.fell_back
    assert analysis.result.backend_name == "google-emulator"
    assert engine.stats_view.fallbacks == 1


def test_engine_retries_on_crash(sdk, generator):
    class CrashOnce(GoogleEmulator):
        def __init__(self):
            self.calls = 0

        def crash_probability(self, apk):
            self.calls += 1
            return 1.0 if self.calls == 1 else 0.0

    engine = DynamicAnalysisEngine(
        sdk, [], primary=CrashOnce(), fallback=None, max_retries=1, seed=3
    )
    analysis = engine.analyze(generator.sample_app(malicious=False))
    assert analysis.attempts == 2
    assert engine.stats_view.crashes == 1
    # Wasted crash time is charged to the analysis.
    assert analysis.total_minutes > analysis.result.analysis_minutes


def test_engine_raises_when_everything_fails(sdk, generator):
    class Broken(GoogleEmulator):
        def crash_probability(self, apk):
            return 1.0

    engine = DynamicAnalysisEngine(
        sdk, [], primary=Broken(), fallback=None, max_retries=0, seed=4
    )
    with pytest.raises(RuntimeError):
        engine.analyze(generator.sample_app(malicious=False))


def test_engine_rejects_negative_retries(sdk):
    with pytest.raises(ValueError):
        DynamicAnalysisEngine(sdk, [], max_retries=-1)


# -- checker --------------------------------------------------------------


def test_checker_requires_fit_before_use(sdk, generator):
    checker = ApiChecker(sdk)
    with pytest.raises(RuntimeError):
        checker.vet(generator.sample_app(malicious=False))
    with pytest.raises(RuntimeError):
        _ = checker.key_api_ids


def test_checker_fit_selects_and_trains(fitted_checker):
    assert fitted_checker.selection is not None
    assert fitted_checker.key_api_ids.size > 100
    assert fitted_checker.classifier is not None


def test_checker_vet_verdict_fields(fitted_checker, generator):
    apk = generator.sample_app(malicious=True)
    verdict = fitted_checker.vet(apk)
    assert verdict.apk_md5 == apk.md5
    assert 0.0 <= verdict.probability <= 1.0
    assert verdict.malicious == (
        verdict.probability >= fitted_checker.decision_threshold
    )
    assert verdict.analysis_minutes > 0


def test_checker_detects_most_malware(fitted_checker, sdk, catalog):
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=991, catalog=catalog)
    fresh = gen.generate(250)
    report = fitted_checker.evaluate(fresh)
    # Small training corpus (300 apps); the paper-scale operating point
    # is asserted by the integration tests at benchmark scale.
    assert report.precision > 0.6
    assert report.recall > 0.6


def test_checker_explicit_key_set_skips_mining(sdk, corpus, study_observations):
    keys = sdk.restricted_api_ids
    checker = ApiChecker(sdk, seed=5)
    checker.fit(
        corpus,
        study_observations=list(study_observations),
        key_api_ids=keys,
    )
    assert checker.selection is None
    assert np.array_equal(checker.key_api_ids, np.sort(keys))


def test_checker_gini_table(fitted_checker):
    table = fitted_checker.gini_table(15)
    assert len(table) == 15
    scores = [s for _, s in table]
    assert scores == sorted(scores, reverse=True)
    kinds = {name.split(":")[0] for name, _ in table}
    assert "API" in kinds


def test_checker_rejects_bad_threshold(sdk):
    with pytest.raises(ValueError):
        ApiChecker(sdk, decision_threshold=1.5)


def test_checker_rejects_misaligned_labels(sdk, corpus):
    checker = ApiChecker(sdk)
    with pytest.raises(ValueError):
        checker.fit(corpus, labels=np.zeros(3, dtype=bool))


def test_vet_time_is_market_grade(fitted_checker, sdk, catalog):
    """Production vetting should take ~1-2 simulated minutes per app."""
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=313, catalog=catalog)
    apps = [gen.sample_app(malicious=False) for _ in range(30)]
    minutes = [fitted_checker.vet(a).analysis_minutes for a in apps]
    assert 0.5 < float(np.mean(minutes)) < 4.0
