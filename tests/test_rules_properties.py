"""Property-based checks on rule evaluation.

Two invariants the vectorized evaluator must hold by construction —
each report depends only on its own observation row:

* **order invariance**: permuting the batch permutes the reports;
* **batch-size invariance**: chunked evaluation equals one big batch;

plus the behavioral-separation property the bundled ruleset exists
for: each profiled malware family triggers its own rule(s) more often
than the benign population does.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import AppObservation
from repro.rules import RuleEvaluator, builtin_ruleset


def _axes():
    """Union evidence axes of the bundled ruleset (names, not ids)."""
    apis: list[str] = []
    perms: list[str] = []
    intents: list[str] = []
    for spec in builtin_ruleset():
        apis.extend(a for a in spec.apis if a not in apis)
        perms.extend(p for p in spec.permissions if p not in perms)
        intents.extend(i for i in spec.intents if i not in intents)
    return apis, perms, intents


API_NAMES, PERM_NAMES, INTENT_NAMES = _axes()

#: One observation = a subset of each evidence axis (drawn by index so
#: hypothesis shrinks well), plus a per-API call count.
observation_strategy = st.tuples(
    st.sets(st.integers(0, len(API_NAMES) - 1), max_size=len(API_NAMES)),
    st.sets(st.integers(0, len(PERM_NAMES) - 1), max_size=len(PERM_NAMES)),
    st.sets(
        st.integers(0, len(INTENT_NAMES) - 1), max_size=len(INTENT_NAMES)
    ),
    st.integers(1, 10_000),
)


def _materialize(sdk, drawn):
    observations = []
    for row, (api_idx, perm_idx, intent_idx, count) in enumerate(drawn):
        api_ids = tuple(
            int(sdk.by_name(API_NAMES[i]).api_id) for i in sorted(api_idx)
        )
        observations.append(
            AppObservation(
                apk_md5=f"{row:032x}",
                invoked_api_ids=api_ids,
                permissions=tuple(PERM_NAMES[i] for i in sorted(perm_idx)),
                intents=tuple(INTENT_NAMES[i] for i in sorted(intent_idx)),
                invoked_api_counts=tuple((a, count) for a in api_ids),
            )
        )
    return observations


@given(
    drawn=st.lists(observation_strategy, min_size=1, max_size=12),
    order_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_evaluation_is_order_invariant(sdk, drawn, order_seed):
    evaluator = RuleEvaluator.builtin(sdk)
    observations = _materialize(sdk, drawn)
    base = {
        r.apk_md5: r for r in evaluator.evaluate(observations)
    }
    perm = np.random.default_rng(order_seed).permutation(len(observations))
    shuffled = [observations[i] for i in perm]
    for obs, report in zip(shuffled, evaluator.evaluate(shuffled)):
        assert report.apk_md5 == obs.apk_md5
        assert report == base[obs.apk_md5]


@given(
    drawn=st.lists(observation_strategy, min_size=1, max_size=12),
    chunk=st.integers(1, 5),
)
@settings(max_examples=25, deadline=None)
def test_evaluation_is_batch_size_invariant(sdk, drawn, chunk):
    evaluator = RuleEvaluator.builtin(sdk)
    observations = _materialize(sdk, drawn)
    whole = evaluator.evaluate(observations)
    chunked = []
    for start in range(0, len(observations), chunk):
        chunked.extend(
            evaluator.evaluate(observations[start:start + chunk])
        )
    assert chunked == whole


def test_families_separate_from_benign(sdk, catalog):
    """Each profiled family fires its own rule(s) more than benign apps.

    Measured on a dedicated chain-free corpus (``update_fraction=0``
    keeps family counts even; update chains collapse a corpus into a
    few correlated packages): for every family some bundled rule
    profiles, the fraction of that family's apps whose *top* behavior
    is one of its profile rules must beat the benign population's
    fraction — the whole point of behavior-evidence triage is that the
    explanation tracks the family, not the base rate.
    """
    from repro.core.engine import DynamicAnalysisEngine
    from repro.corpus.generator import CorpusGenerator
    from repro.emulator.backends import GoogleEmulator

    profiles: dict[str, set[str]] = {}
    for spec in builtin_ruleset():
        for family in spec.families:
            profiles.setdefault(family, set()).add(spec.behavior)
    gen = CorpusGenerator(sdk, seed=112, catalog=catalog)
    corpus = gen.generate(400, malware_rate=0.4, update_fraction=0.0)
    engine = DynamicAnalysisEngine(
        sdk,
        tracked_api_ids=np.arange(len(sdk)),
        primary=GoogleEmulator(),
        fallback=None,
        seed=113,
    )
    evaluator = RuleEvaluator.builtin(sdk)
    tops = [
        report.top_behavior
        for report in evaluator.evaluate(engine.observations(corpus))
    ]
    by_family: dict[str, list[str | None]] = {}
    benign: list[str | None] = []
    for apk, top in zip(corpus.apps, tops):
        if apk.is_malicious:
            by_family.setdefault(apk.family, []).append(top)
        else:
            benign.append(top)
    assert len(benign) >= 100
    checked = 0
    for family, behaviors in sorted(profiles.items()):
        tops_f = by_family.get(family, [])
        if len(tops_f) < 5:
            continue
        checked += 1
        family_rate = sum(t in behaviors for t in tops_f) / len(tops_f)
        benign_rate = sum(t in behaviors for t in benign) / len(benign)
        assert family_rate > benign_rate, (
            f"{family}: family rate {family_rate:.2f} <= "
            f"benign rate {benign_rate:.2f} for rules {sorted(behaviors)}"
        )
    assert checked >= 6  # the corpus must exercise most profiled families
