"""Tests for monthly model evolution (slow-ish; kept small)."""

import numpy as np
import pytest

from repro.core.evolution import EvolutionLoop
from repro.corpus.generator import CorpusGenerator
from repro.corpus.market import MarketStream


@pytest.fixture(scope="module")
def loop(sdk):
    stream = MarketStream(
        sdk, apps_per_month=120, seed=77, sdk_update_every=2, sdk_growth=30
    )
    initial = stream.bootstrap_corpus(400)
    return EvolutionLoop(
        stream, initial, max_pool=900, checker_seed=79, monkey_events=5000
    )


def test_initial_training(loop):
    assert loop.checker.key_api_ids.size > 50


def test_monthly_cycle_records(loop):
    records = loop.run(3)
    assert [r.month for r in records] == [1, 2, 3]
    for rec in records:
        assert rec.report.support > 0
        assert rec.n_key_apis > 50
        assert rec.pool_size <= 900
    # The SDK grew at month 3 ((3-1) % 2 == 0).
    assert records[-1].sdk_size > records[0].sdk_size


def test_online_accuracy_stays_high(loop):
    # Runs after the previous test thanks to module-scoped fixture.
    history = loop.history or loop.run(2)
    f1s = [r.report.f1 for r in history]
    assert min(f1s) > 0.6


def test_key_set_drift_is_mild(loop):
    history = loop.history or loop.run(2)
    sizes = [r.n_key_apis for r in history]
    assert max(sizes) - min(sizes) < 0.25 * max(sizes)


def test_pool_eviction(sdk):
    stream = MarketStream(sdk, apps_per_month=60, seed=88, sdk_update_every=0)
    initial = stream.bootstrap_corpus(100)
    loop = EvolutionLoop(stream, initial, max_pool=130, checker_seed=90)
    rec = loop.run_month()
    assert rec.pool_size == 130


def test_rejects_pool_smaller_than_initial(sdk):
    stream = MarketStream(sdk, apps_per_month=10, seed=91)
    initial = stream.bootstrap_corpus(50)
    with pytest.raises(ValueError):
        EvolutionLoop(stream, initial, max_pool=20)


def test_run_validates_months(loop):
    with pytest.raises(ValueError):
        loop.run(0)
