"""Behavioural tests for all nine classifiers on controlled tasks."""

import numpy as np
import pytest

from repro.ml import CLASSIFIER_NAMES, evaluate, make_classifier
from repro.ml.base import check_Xy


def _separable_task(n=600, d=60, noise=0.05, seed=0):
    """Binary task where the first 10 features carry the class signal."""
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < 0.4).astype(np.int8)
    X = (rng.random((n, d)) < 0.08).astype(np.uint8)
    boost = (rng.random((n, 10)) < 0.55).astype(np.uint8)
    X[:, :10] |= boost * y[:, None].astype(np.uint8)
    flip = rng.random(n) < noise
    y[flip] = 1 - y[flip]
    return X, y


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_classifier_learns_separable_task(name):
    X, y = _separable_task()
    model = make_classifier(name, seed=1)
    model.fit(X[:450], y[:450])
    rep = evaluate(y[450:], model.predict(X[450:]))
    assert rep.f1 > 0.75, f"{name} failed to learn: {rep}"


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_probabilities_in_unit_interval(name):
    X, y = _separable_task(n=300)
    model = make_classifier(name, seed=2)
    model.fit(X[:200], y[:200])
    proba = model.predict_proba(X[200:])
    assert proba.shape == (100,)
    assert np.all(proba >= 0.0) and np.all(proba <= 1.0)


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_predict_before_fit_raises(name):
    model = make_classifier(name)
    with pytest.raises(RuntimeError):
        model.predict(np.zeros((2, 3), dtype=np.uint8))


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
def test_deterministic_given_seed(name):
    X, y = _separable_task(n=300)
    a = make_classifier(name, seed=7).fit(X, y).predict_proba(X)
    b = make_classifier(name, seed=7).fit(X, y).predict_proba(X)
    assert np.allclose(a, b)


def test_make_classifier_rejects_unknown():
    with pytest.raises(ValueError):
        make_classifier("xgboost")


def test_check_Xy_validation():
    with pytest.raises(ValueError):
        check_Xy(np.zeros((0, 3)))
    with pytest.raises(ValueError):
        check_Xy(np.zeros(5))
    with pytest.raises(ValueError):
        check_Xy(np.zeros((4, 2)), np.array([0, 1, 2, 1]))
    with pytest.raises(ValueError):
        check_Xy(np.full((2, 2), np.nan))
    X, y = check_Xy(np.ones((2, 2)), np.array([True, False]))
    assert X.dtype == np.float32 and set(np.unique(y)) <= {0, 1}


def test_forest_gini_importance_finds_signal():
    X, y = _separable_task(n=800, d=40, seed=3)
    rf = make_classifier("rf", seed=3).fit(X, y)
    imp = rf.feature_importances_
    assert imp.shape == (40,)
    assert imp.sum() == pytest.approx(1.0)
    # Informative features (0..9) should dominate the ranking.
    top10 = set(np.argsort(imp)[::-1][:10].tolist())
    assert len(top10 & set(range(10))) >= 7
    assert set(rf.top_features(5).tolist()) <= top10


def test_cart_importance_normalized():
    X, y = _separable_task(n=400)
    cart = make_classifier("cart", seed=1).fit(X, y)
    assert cart.feature_importances_.sum() == pytest.approx(1.0)


def test_nb_requires_both_classes():
    X = np.ones((10, 3), dtype=np.uint8)
    with pytest.raises(ValueError):
        make_classifier("nb").fit(X, np.ones(10, dtype=np.int8))


def test_knn_feature_width_mismatch():
    X, y = _separable_task(n=100, d=20)
    knn = make_classifier("knn").fit(X, y)
    with pytest.raises(ValueError):
        knn.predict(np.zeros((5, 21), dtype=np.uint8))


def test_class_imbalance_does_not_collapse():
    """At ~7.7% positives (the market rate), recall must stay useful."""
    rng = np.random.default_rng(5)
    n, d = 1500, 50
    y = (rng.random(n) < 0.08).astype(np.int8)
    X = (rng.random((n, d)) < 0.05).astype(np.uint8)
    X[y == 1, :8] |= (rng.random((int(y.sum()), 8)) < 0.6).astype(np.uint8)
    for name in ("rf", "lr", "svm"):
        model = make_classifier(name, seed=5)
        model.fit(X[:1000], y[:1000])
        rep = evaluate(y[1000:], model.predict(X[1000:]))
        assert rep.recall > 0.5, f"{name} collapsed under imbalance: {rep}"
