"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.ml.bootstrap import (
    MetricInterval,
    bootstrap_metrics,
    months_differ,
)


def _labels(n=400, rate=0.1, acc=0.95, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.random(n) < rate
    flip = rng.random(n) > acc
    pred = np.where(flip, ~y, y)
    return y, pred


def test_intervals_contain_point():
    y, pred = _labels()
    report = bootstrap_metrics(y, pred, n_resamples=300, seed=1)
    for interval in (report.precision, report.recall, report.f1):
        assert interval.low <= interval.point <= interval.high
        assert 0.0 <= interval.low <= interval.high <= 1.0
        assert interval.point in interval


def test_interval_width_shrinks_with_sample_size():
    # Precision has flips in both samples; recall can degenerate to an
    # exactly-perfect small sample, so compare precision widths.
    y_small, p_small = _labels(n=150, seed=2)
    y_big, p_big = _labels(n=3000, seed=2)
    small = bootstrap_metrics(y_small, p_small, n_resamples=300, seed=3)
    big = bootstrap_metrics(y_big, p_big, n_resamples=300, seed=3)
    assert big.precision.width < small.precision.width


def test_deterministic_given_seed():
    y, pred = _labels()
    a = bootstrap_metrics(y, pred, n_resamples=200, seed=5)
    b = bootstrap_metrics(y, pred, n_resamples=200, seed=5)
    assert a.precision == b.precision
    assert a.f1 == b.f1


def test_perfect_predictor_has_tight_top_interval():
    y, _ = _labels(n=500, seed=6)
    report = bootstrap_metrics(y, y.copy(), n_resamples=200, seed=6)
    assert report.precision.point == 1.0
    assert report.precision.low == 1.0


def test_confidence_affects_width():
    y, pred = _labels(seed=7)
    narrow = bootstrap_metrics(y, pred, confidence=0.8, seed=8)
    wide = bootstrap_metrics(y, pred, confidence=0.99, seed=8)
    assert wide.recall.width >= narrow.recall.width


def test_months_differ():
    a = MetricInterval(0.98, 0.97, 0.99, 0.95)
    b = MetricInterval(0.90, 0.88, 0.92, 0.95)
    c = MetricInterval(0.97, 0.96, 0.985, 0.95)
    assert months_differ(a, b)
    assert not months_differ(a, c)


def test_validation():
    y, pred = _labels()
    with pytest.raises(ValueError):
        bootstrap_metrics(y[:10], pred[:5])
    with pytest.raises(ValueError):
        bootstrap_metrics([], [])
    with pytest.raises(ValueError):
        bootstrap_metrics(y, pred, n_resamples=2)
    with pytest.raises(ValueError):
        bootstrap_metrics(y, pred, confidence=0.3)
