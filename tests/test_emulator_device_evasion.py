"""Tests for device environments and emulator-detection evasion."""

import pytest

from repro.android.dex import EmulatorProbe
from repro.emulator.device import DeviceEnvironment
from repro.emulator.evasion import (
    app_detects_emulator,
    probe_succeeds,
    successful_probes,
)


def test_presets():
    real = DeviceEnvironment.real_device()
    stock = DeviceEnvironment.stock_emulator()
    hardened = DeviceEnvironment.hardened_emulator()
    assert real.is_real_device and real.live_sensors
    assert not stock.identifiers_masked
    assert hardened.identifiers_masked and not hardened.live_sensors


def test_every_probe_succeeds_on_stock():
    stock = DeviceEnvironment.stock_emulator()
    for probe in EmulatorProbe:
        assert probe_succeeds(probe, stock)


def test_no_probe_succeeds_on_real_device():
    real = DeviceEnvironment.real_device()
    for probe in EmulatorProbe:
        assert not probe_succeeds(probe, real)


def test_no_probe_succeeds_on_hardened():
    hardened = DeviceEnvironment.hardened_emulator()
    for probe in EmulatorProbe:
        assert not probe_succeeds(probe, hardened)


def test_partial_hardening_leaves_channel_open():
    env = DeviceEnvironment.hardened_emulator().with_flag(
        sensors_replayed=False
    )
    assert probe_succeeds(EmulatorProbe.SENSOR_LIVENESS, env)
    assert not probe_succeeds(EmulatorProbe.BUILD_PROPS, env)


def test_successful_probes_lists_only_open_channels():
    env = DeviceEnvironment.hardened_emulator().with_flag(
        xposed_obfuscated=False
    )
    probes = (EmulatorProbe.XPOSED_PRESENCE, EmulatorProbe.BUILD_PROPS)
    assert successful_probes(probes, env) == [EmulatorProbe.XPOSED_PRESENCE]


def test_any_single_success_triggers_detection():
    env = DeviceEnvironment.stock_emulator().with_flag(
        identifiers_masked=True
    )
    assert app_detects_emulator(
        (EmulatorProbe.DEFAULT_IDENTIFIERS, EmulatorProbe.BUILD_PROPS), env
    )
    assert not app_detects_emulator(
        (EmulatorProbe.DEFAULT_IDENTIFIERS,), env
    )
    assert not app_detects_emulator((), env)
