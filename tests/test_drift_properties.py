"""Property battery: time-aware splits and drifting-slice determinism.

Two families of invariants, checked over arbitrary seeds/shapes:

1. The time-aware validation helpers in :mod:`repro.ml.validation`
   must never leak the future into training — for *every* timestamp
   vector, no test index may precede (or tie) the train horizon.
2. :class:`repro.drift.DriftingMarket` slices must be byte-identical
   regardless of access order, partitioning, or how many simulated
   consumers interleave their reads — the determinism the bench's
   cross-arm comparisons and the CI gate stand on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.drift import DriftingMarket, DriftingMarketStream
from repro.ml.validation import (
    FutureLeakageError,
    assert_no_future_leakage,
    chronological_split,
    rolling_time_windows,
    semester_slices,
)

# One shared small SDK: generating SDKs per example would dominate time.
_SDK = None


def _sdk():
    global _SDK
    if _SDK is None:
        from repro.android.sdk import AndroidSdk, SdkSpec

        _SDK = AndroidSdk.generate(SdkSpec(n_apis=800, seed=321))
    return _SDK


def _market(seed):
    return DriftingMarket(
        _sdk(),
        seed=seed,
        apps_per_day=3,
        days=24,
        sdk_release_every=8,
        sdk_growth=25,
        new_family_days=(12,),
        fashion_shift_every=6,
    )


def _md5s(market, days):
    return [
        apk.md5 for day in days for apk in market.day_slice(day).corpus
    ]


_DAYS = st.lists(st.integers(0, 400), min_size=2, max_size=80)


# ----------------------------------------------------------------------
# Time-aware splits never leak the future
# ----------------------------------------------------------------------


@given(days=_DAYS, data=st.data())
@settings(max_examples=60, deadline=None)
def test_chronological_split_never_leaks(days, data):
    days = np.array(days)
    horizon = data.draw(
        st.integers(int(days.min()), int(days.max())), label="horizon"
    )
    train_idx, test_idx = chronological_split(days, horizon)
    # Partition: every index lands on exactly one side.
    merged = np.concatenate([train_idx, test_idx])
    assert sorted(merged.tolist()) == list(range(len(days)))
    # The guarantee itself: no test timestamp precedes (or ties) any
    # train timestamp.
    if train_idx.size and test_idx.size:
        assert days[test_idx].min() > days[train_idx].max()
    assert_no_future_leakage(days, train_idx, test_idx)


@given(days=_DAYS)
@settings(max_examples=60, deadline=None)
def test_leakage_guard_rejects_time_reversal(days):
    days = np.array(days)
    order = np.argsort(days, kind="stable")
    cut = len(days) // 2
    train_idx, test_idx = order[cut:], order[:cut]
    # Training on the future and testing on the past must be rejected
    # whenever the two sides actually straddle a time boundary.
    if (
        train_idx.size
        and test_idx.size
        and days[test_idx].min() <= days[train_idx].max()
    ):
        with pytest.raises(FutureLeakageError):
            assert_no_future_leakage(days, train_idx, test_idx)


@given(days=_DAYS)
@settings(max_examples=30, deadline=None)
def test_leakage_guard_rejects_index_overlap(days):
    days = np.array(days)
    idx = np.arange(len(days))
    with pytest.raises(FutureLeakageError):
        assert_no_future_leakage(days, idx[: len(idx) // 2 + 1], idx)


@given(
    days=_DAYS,
    train_days=st.integers(1, 60),
    test_days=st.integers(1, 60),
)
@settings(max_examples=60, deadline=None)
def test_rolling_windows_never_leak(days, train_days, test_days):
    days = np.array(days)
    for train_idx, test_idx in rolling_time_windows(
        days, train_days=train_days, test_days=test_days
    ):
        assert train_idx.size and test_idx.size
        assert days[test_idx].min() > days[train_idx].max()
        # Window membership is bounded by the declared spans.
        assert days[train_idx].max() - days[train_idx].min() < train_days
        assert days[test_idx].max() - days[test_idx].min() < test_days


@given(days=_DAYS, offset=st.integers(0, 1000), size=st.integers(1, 90))
@settings(max_examples=60, deadline=None)
def test_semester_slices_partition_and_shift_invariance(
    days, offset, size
):
    days = np.array(days)
    slices = semester_slices(days, semester_days=size)
    merged = np.concatenate([idx for _, idx in slices])
    assert sorted(merged.tolist()) == list(range(len(days)))
    for index, idx in slices:
        span = days[idx]
        assert span.max() - span.min() < size
    # Bucketing is relative to the earliest timestamp, so shifting the
    # whole vector never regroups anything.
    shifted = semester_slices(days + offset, semester_days=size)
    assert [idx.tolist() for _, idx in shifted] == [
        idx.tolist() for _, idx in slices
    ]


# ----------------------------------------------------------------------
# Drifting slices are deterministic however they are consumed
# ----------------------------------------------------------------------


@given(seed=st.integers(0, 10_000), data=st.data())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_slices_identical_across_access_orders(seed, data):
    sequential = _market(seed)
    want = _md5s(sequential, range(24))
    scattered = _market(seed)
    order = data.draw(
        st.lists(st.integers(0, 23), min_size=1, max_size=10),
        label="access order",
    )
    for day in order:
        scattered.day_slice(day)
    assert _md5s(scattered, range(24)) == want


@given(seed=st.integers(0, 10_000), n_workers=st.integers(1, 5))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_slices_identical_across_worker_counts(seed, n_workers):
    """N round-robin consumers see the same bytes as one consumer.

    Models the sharded serving tier: however many workers pull day
    slices (each reading its own residue class), the market hands every
    one of them exactly what the single-consumer run saw.
    """
    single = _md5s(_market(seed), range(24))
    fanned = _market(seed)
    per_worker = {
        w: _md5s(fanned, range(w, 24, n_workers))
        for w in range(n_workers)
    }
    # Reassemble the round-robin reads into day order.
    rebuilt = []
    for day in range(24):
        worker = day % n_workers
        position = day // n_workers
        rebuilt.extend(
            per_worker[worker][position * 3:(position + 1) * 3]
        )
    assert rebuilt == single


@given(seed=st.integers(0, 10_000), period=st.integers(1, 12))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_stream_partitioning_preserves_bytes(seed, period):
    """Any period_days partition concatenates to the same stream."""
    want = _md5s(_market(seed), range(24 - 24 % period))
    stream = DriftingMarketStream(_market(seed), period_days=period)
    got = []
    for _ in range(stream.n_periods):
        got.extend(apk.md5 for apk in stream.next_month().corpus)
    assert got == want
