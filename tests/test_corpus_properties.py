"""Property-based tests over the corpus generator (hypothesis).

These run the generator with arbitrary seeds and small sizes and check
invariants that must hold for *every* realization — the contracts the
rest of the pipeline relies on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.generator import CorpusGenerator

# One shared small SDK: generating SDKs per example would dominate time.
_SDK = None


def _sdk():
    global _SDK
    if _SDK is None:
        from repro.android.sdk import AndroidSdk, SdkSpec

        _SDK = AndroidSdk.generate(SdkSpec(n_apis=800, seed=123))
    return _SDK


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_app_is_well_formed(seed):
    gen = CorpusGenerator(_sdk(), seed=seed)
    corpus = gen.generate(30)
    sdk = _sdk()
    for apk in corpus:
        # Call sites reference real APIs, once each.
        ids = apk.dex.direct_api_ids
        assert all(0 <= i < len(sdk) for i in ids)
        assert len(set(ids)) == len(ids)
        # Reflection-hidden APIs are disjoint from direct ones.
        assert not set(ids) & set(apk.dex.reflection_api_ids)
        # Permission closure: code needs are always requested.
        for api_id in ids + apk.dex.reflection_api_ids:
            perm = sdk.api(api_id).permission
            if perm is not None:
                assert apk.manifest.requests(perm)
        # At least one activity, and the entry activity is referenced.
        assert apk.manifest.declared_activity_count >= 1
        assert apk.manifest.referenced_activities


@given(seed=st.integers(0, 10_000), rate=st.floats(0.05, 0.5))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_malware_rate_is_respected_in_expectation(seed, rate):
    gen = CorpusGenerator(_sdk(), seed=seed)
    corpus = gen.generate(300, malware_rate=rate)
    observed = corpus.labels.mean()
    # Binomial(300, rate): allow 4 sigma.
    sigma = (rate * (1 - rate) / 300) ** 0.5
    assert abs(observed - rate) < 4 * sigma + 1e-9


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_md5_uniqueness_within_corpus(seed):
    gen = CorpusGenerator(_sdk(), seed=seed)
    corpus = gen.generate(60)
    md5s = [a.md5 for a in corpus]
    assert len(set(md5s)) == len(md5s)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_update_parents_precede_children(seed):
    gen = CorpusGenerator(_sdk(), seed=seed)
    corpus = gen.generate(120, update_fraction=0.8)
    seen = set()
    for apk in corpus:
        if apk.parent_md5 is not None and apk.parent_md5 in {
            a.md5 for a in corpus
        }:
            assert apk.parent_md5 in seen, (
                "an update appeared before its parent"
            )
        seen.add(apk.md5)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_same_seed_same_corpus(seed):
    a = CorpusGenerator(_sdk(), seed=seed).generate(25)
    b = CorpusGenerator(_sdk(), seed=seed).generate(25)
    assert [x.md5 for x in a] == [x.md5 for x in b]
    assert np.array_equal(a.labels, b.labels)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_blueprint_update_identity_chain(seed):
    gen = CorpusGenerator(_sdk(), seed=seed)
    bp = gen.sample_blueprint("tool")
    rng = np.random.default_rng(seed)
    current = bp
    versions = []
    for _ in range(4):
        current = current.updated_copy(rng)
        versions.append(current.version_code)
    assert versions == [bp.version_code + i for i in range(1, 5)]
    assert current.package_name == bp.package_name
    assert current.malicious == bp.malicious
