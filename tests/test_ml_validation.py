"""Tests for stratified k-fold CV and leakage deduplication."""

import numpy as np
import pytest

from repro.ml import make_classifier
from repro.ml.validation import (
    cross_validate,
    drop_duplicate_test_rows,
    stratified_kfold,
)


def test_folds_partition_everything():
    y = (np.arange(100) % 7 == 0).astype(np.int8)
    folds = stratified_kfold(y, n_splits=5, seed=1)
    all_test = np.concatenate([test for _, test in folds])
    assert sorted(all_test.tolist()) == list(range(100))
    for train, test in folds:
        assert not set(train.tolist()) & set(test.tolist())
        assert len(train) + len(test) == 100


def test_folds_are_stratified():
    y = np.zeros(200, dtype=np.int8)
    y[:40] = 1
    for train, test in stratified_kfold(y, n_splits=10, seed=2):
        rate = y[test].mean()
        assert 0.1 <= rate <= 0.3


def test_kfold_validation_errors():
    with pytest.raises(ValueError):
        stratified_kfold(np.array([0, 1]), n_splits=1)
    with pytest.raises(ValueError):
        stratified_kfold(np.array([0] * 50 + [1] * 3), n_splits=5)


def test_duplicate_test_rows_dropped():
    X = np.array([[1, 0], [1, 0], [0, 1], [1, 1]], dtype=np.uint8)
    train_idx = np.array([0, 2])
    test_idx = np.array([1, 3])
    kept = drop_duplicate_test_rows(X, train_idx, test_idx)
    assert kept.tolist() == [3]


def test_cross_validate_end_to_end(rng):
    n, d = 400, 30
    X = (rng.random((n, d)) < 0.2).astype(np.uint8)
    y = (X[:, :5].sum(axis=1) >= 1).astype(np.int8)
    result = cross_validate(
        lambda: make_classifier("cart", seed=0), X, y, n_splits=5, seed=0
    )
    assert len(result.fold_reports) <= 5
    assert result.pooled.support <= n  # dedup may drop rows
    assert result.precision > 0.8 and result.recall > 0.8
    assert result.train_seconds > 0.0


def test_cross_validate_dedup_reduces_support(rng):
    # Unique rows plus a block of exact duplicates: with dedup, the
    # duplicated vectors vanish from the test folds and support shrinks.
    X = (rng.random((60, 12)) < 0.4).astype(np.uint8)
    X[40:] = X[0]
    y = (X[:, 0] | X[:, 1]).astype(np.int8)
    with_dedup = cross_validate(
        lambda: make_classifier("nb"), X, y, n_splits=2, dedup=True, seed=3
    )
    without = cross_validate(
        lambda: make_classifier("nb"), X, y, n_splits=2, dedup=False, seed=3
    )
    assert with_dedup.dropped_duplicates > 0
    assert with_dedup.pooled.support < without.pooled.support
