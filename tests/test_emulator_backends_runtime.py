"""Tests for emulator backends and the app runtime."""

import numpy as np
import pytest

from repro.android.dex import NativeIsa, NativeLib
from repro.emulator.backends import (
    EmulatorCrash,
    GoogleEmulator,
    IncompatibleAppError,
    LightweightEmulator,
    RealDevice,
)
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import emulate_app


@pytest.fixture()
def env():
    return DeviceEnvironment.hardened_emulator()


def _emulate(apk, sdk, backend, env, tracked=None, seed=0, **kwargs):
    hooks = HookEngine(sdk, tracked if tracked is not None else [])
    return emulate_app(
        apk, sdk, backend, env, hooks,
        monkey=MonkeyExerciser(seed=seed),
        rng=np.random.default_rng(seed),
        raise_on_crash=False,
        **kwargs,
    )


def test_lightweight_is_faster(sdk, generator, env):
    apps = [generator.sample_app(malicious=False) for _ in range(30)]
    google, light = GoogleEmulator(), LightweightEmulator()
    g = np.mean(
        [_emulate(a, sdk, google, env).analysis_minutes for a in apps]
    )
    l = np.mean(
        [
            _emulate(a, sdk, light, env).analysis_minutes
            for a in apps
            if light.compatible(a)
        ]
    )
    # The paper reports ~70% time reduction.
    assert l < 0.5 * g


def test_tracking_costs_time(sdk, generator, env):
    apk = generator.sample_app(malicious=False)
    google = GoogleEmulator()
    bare = _emulate(apk, sdk, google, env, tracked=[], seed=3)
    full = _emulate(
        apk, sdk, google, env, tracked=np.arange(len(sdk)), seed=3
    )
    assert full.analysis_minutes > 2 * bare.analysis_minutes


def test_invocations_are_tens_of_millions(sdk, generator, env):
    apps = [generator.sample_app(malicious=False) for _ in range(20)]
    totals = [
        _emulate(a, sdk, GoogleEmulator(), env).total_invocations
        for a in apps
    ]
    # Fig. 2: min 15.8M, mean 42.3M, max 64.6M at full scale.
    assert 5e6 < np.mean(totals) < 1e8


def test_hook_log_contains_only_tracked(sdk, generator, env):
    apk = generator.sample_app(malicious=True)
    tracked = sdk.restricted_api_ids
    res = _emulate(apk, sdk, GoogleEmulator(), env, tracked=tracked)
    assert set(res.hooked_api_ids) <= set(tracked.tolist())
    assert set(res.hooked_api_ids) <= set(res.invoked_api_ids)


def test_houdini_incompatible_rejected_by_lightweight(sdk, generator, env):
    apk = generator.sample_app(malicious=False)
    bad_lib = NativeLib("bad.so", NativeIsa.ARM, 2.0, houdini_compatible=False)
    object.__setattr__(apk.dex, "native_libs", (bad_lib,))
    light = LightweightEmulator()
    assert not light.compatible(apk)
    with pytest.raises(IncompatibleAppError):
        _emulate(apk, sdk, light, env)


def test_real_device_compatible_with_everything(sdk, generator):
    apk = generator.sample_app(malicious=False)
    assert RealDevice().compatible(apk)


def test_suppression_on_stock_emulator(sdk, generator):
    # Probe-equipped malware goes quiet on a stock emulator but not on
    # a hardened one or a real device (§4.2 controlled experiment).
    stock = DeviceEnvironment.stock_emulator()
    hardened = DeviceEnvironment.hardened_emulator()
    real = DeviceEnvironment.real_device()
    for _ in range(200):
        apk = generator.sample_app(malicious=True)
        if apk.dex.emulator_probes:
            break
    else:
        pytest.fail("no probe-equipped malware generated")
    r_stock = _emulate(apk, sdk, GoogleEmulator(), stock, seed=5)
    r_hard = _emulate(apk, sdk, GoogleEmulator(), hardened, seed=5)
    r_real = _emulate(apk, sdk, RealDevice(), real, seed=5)
    assert r_stock.suppressed
    assert not r_hard.suppressed and not r_real.suppressed
    assert len(r_stock.invoked_api_ids) < len(r_real.invoked_api_ids)


def test_robotic_monkey_reopens_timing_channel(sdk, generator):
    from repro.android.dex import EmulatorProbe

    for _ in range(300):
        apk = generator.sample_app(malicious=True)
        if EmulatorProbe.INPUT_TIMING in apk.dex.emulator_probes:
            break
    else:
        pytest.fail("no INPUT_TIMING malware generated")
    env = DeviceEnvironment.hardened_emulator()
    robotic = MonkeyExerciser(throttle_ms=0, seed=1)
    hooks = HookEngine(sdk, [])
    res = emulate_app(
        apk, sdk, GoogleEmulator(), env, hooks, monkey=robotic,
        rng=np.random.default_rng(1), raise_on_crash=False,
    )
    assert res.suppressed


def test_observed_intents_include_receivers(sdk, generator, env):
    apk = generator.sample_app(archetype="botnet")
    res = _emulate(apk, sdk, GoogleEmulator(), env)
    assert set(apk.manifest.receiver_intent_actions) <= set(
        res.observed_intents
    )


def test_crash_raises_when_enabled(sdk, generator, env):
    class AlwaysCrash(GoogleEmulator):
        def crash_probability(self, apk):
            return 1.0

    apk = generator.sample_app(malicious=False)
    hooks = HookEngine(sdk, [])
    with pytest.raises(EmulatorCrash):
        emulate_app(
            apk, sdk, AlwaysCrash(), env, hooks,
            rng=np.random.default_rng(0),
        )


def test_emulation_time_components_validated(sdk, generator):
    apk = generator.sample_app(malicious=False)
    with pytest.raises(ValueError):
        GoogleEmulator().emulation_seconds(
            apk, -1.0, 0.0, np.random.default_rng(0)
        )
