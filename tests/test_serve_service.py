"""Tests for the online vetting service (dispatch, conservation, restart)."""

import time

import pytest

from repro.obs import MetricsRegistry
from repro.serve.queue import QueueFullError, SubmissionQueue
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService


@pytest.fixture()
def models(tmp_path, fitted_checker):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(
        fitted_checker, metadata={"source": "test"}, activate=True
    )
    return registry


def _service(models, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch_size", 4)
    return OnlineVettingService(models, **kwargs)


def test_start_requires_active_model(tmp_path):
    registry = ModelRegistry(tmp_path / "empty")
    service = OnlineVettingService(registry)
    with pytest.raises(RuntimeError, match="no active model"):
        service.start()


def test_submit_drain_and_results(models, generator):
    apps = [generator.sample_app() for _ in range(10)]
    with _service(models) as service:
        tickets = [service.submit(apk) for apk in apps]
        assert all(t["status"] in ("pending", "in_flight") for t in tickets)
        assert service.drain(60.0), "service did not drain"
        for apk in apps:
            outcome = service.result(apk.md5)
            assert outcome["status"] == "done"
            assert outcome["model_version"] == 1
            assert isinstance(outcome["malicious"], bool)
            assert outcome["analysis_minutes"] > 0
    assert service.result("ffffffff")["status"] == "unknown"


def test_conservation_counters(models, generator):
    metrics = models.metrics
    apps = [generator.sample_app() for _ in range(9)]
    with _service(models) as service:
        for apk in apps:
            service.submit(apk)
        assert service.drain(60.0)
    accepted = metrics.total("serve_submissions_total")
    completed = metrics.value("serve_completed_total")
    scored = metrics.value("serve_scored_total")
    failed = metrics.value("serve_failed_total")
    assert accepted == len(apps)
    assert completed == len(apps)
    assert scored == len(apps)
    assert scored == completed - failed + failed  # every accept is terminal
    assert metrics.value("serve_queue_depth") == 0
    assert metrics.histogram_count("serve_e2e_seconds") == len(apps)


def test_priority_lane_is_dispatched_first(models, generator):
    # Fill the queue before the dispatcher starts, then check the
    # escalated submission lands in the first processed batch.
    apps = [generator.sample_app() for _ in range(6)]
    service = _service(models, batch_size=2)
    for apk in apps[:5]:
        service.submit(apk, "bulk")
    service.submit(apps[5], "escalated")
    try:
        service.start()
        deadline = time.monotonic() + 60.0
        while (
            apps[5].md5 not in service.results
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        outcome = service.results[apps[5].md5]
        assert outcome["lane"] == "escalated"
        # The escalated submission must land in the first dispatched
        # batch; results preserve completion order, so it appears among
        # the first batch_size outcomes.  (Counting completed batches
        # instead would race the dispatcher: batched scoring can finish
        # several micro-batches within one 10 ms poll.)
        first_batch = list(service.results)[: service.batch_size]
        assert apps[5].md5 in first_batch
    finally:
        service.close()


def test_escalated_lane_never_starves_under_bulk_flood(models, generator):
    """A sustained bulk flood must not delay an escalated submission
    beyond the micro-batch already in flight.

    The queue pops escalated entries first, so once the escalated app
    is accepted, only the batch the dispatcher has already taken plus
    the one it joins can complete before it — at most 2 * batch_size
    bulk outcomes between its acceptance and its verdict.
    """
    bulk = [generator.sample_app() for _ in range(28)]
    urgent = generator.sample_app(malicious=True)
    with _service(models, batch_size=4) as service:
        for apk in bulk:
            service.submit(apk, "bulk")
        done_at_submit = len(service.results)
        service.submit(urgent, "escalated")
        deadline = time.monotonic() + 120.0
        while (
            urgent.md5 not in service.results
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert urgent.md5 in service.results, "escalated submission starved"
        # results preserve completion order: everything between the
        # acceptance-time snapshot and the escalated outcome completed
        # while the escalated app waited.
        position = list(service.results).index(urgent.md5)
        waited_behind = position - done_at_submit
        assert waited_behind <= 2 * service.batch_size, (
            f"escalated verdict waited behind {waited_behind} bulk "
            f"outcomes (batch_size={service.batch_size})"
        )
        assert service.drain(120.0)


def test_admission_rejects_surface_as_queue_full(models, generator):
    service = _service(models, max_depth=2)
    service.submit(generator.sample_app())
    service.submit(generator.sample_app())
    with pytest.raises(QueueFullError):
        service.submit(generator.sample_app())
    assert service.metrics.value("serve_admission_rejects_total") == 1
    # The re-export lets service-level callers catch it without
    # importing the queue module.
    assert OnlineVettingService.QueueFullError is QueueFullError
    service.close()


def test_resubmitted_md5_is_served_from_cache(models, generator):
    apk = generator.sample_app()
    with _service(models) as service:
        service.submit(apk)
        assert service.drain(60.0)
        first = service.result(apk.md5)
        assert not first["from_cache"]
        service.submit(apk)  # terminal md5: re-accepted, cache absorbs it
        assert service.drain(60.0)
        second = service.result(apk.md5)
        assert second["status"] == "done"
        assert second["from_cache"]
        assert second["malicious"] == first["malicious"]


def test_healthz_reports_registry_and_queue(models, generator):
    with _service(models) as service:
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["active_model_version"] == 1
        assert health["queue_depth"] == 0
    assert service.healthz()["status"] == "stopped"


def test_metrics_text_exposes_serving_series(models, generator):
    with _service(models) as service:
        service.submit(generator.sample_app())
        assert service.drain(60.0)
        text = service.metrics_text()
    for series in (
        "serve_active_model_version",
        "serve_queue_depth",
        "serve_submissions_total",
        "serve_completed_total",
    ):
        assert series in text, f"{series} missing from exposition"


def test_shadow_scoring_rides_live_traffic(models, fitted_checker, generator):
    models.publish(fitted_checker)
    models.stage_shadow(2)
    apps = [generator.sample_app() for _ in range(6)]
    with _service(models) as service:
        for apk in apps:
            service.submit(apk)
        assert service.drain(60.0)
        for apk in apps:
            assert service.result(apk.md5)["shadow_model_version"] == 2
    n, agree, rate = models.shadow_agreement()
    assert n == len(apps) and rate == 1.0
    decision = models.promote_on_agreement(min_agreement=0.9, min_samples=5)
    assert decision.promoted and models.active_version == 2


def test_kill_and_restart_is_exactly_once(tmp_path, models, generator):
    """The acceptance test: kill mid-batch, replay, no loss, no re-score.

    Phase 1 accepts a burst and is killed after some (but not all)
    submissions reach a terminal outcome.  Phase 2 reopens the same
    spool: every submission must reach exactly one terminal result, and
    the ones already completed must be served from the WAL's completion
    records without being scored again.
    """
    spool = tmp_path / "spool"
    apps = [generator.sample_app() for _ in range(12)]

    # -- phase 1: accept everything, die after the first batch ---------
    # The dispatcher is driven by hand so the kill point is exact:
    # three submissions reach a terminal outcome, nine never do.
    service = _service(models, spool_dir=spool, batch_size=3)
    for apk in apps:
        service.submit(apk)
    service._process_batch(service.queue.take_batch(3, timeout=0))
    phase1_results = dict(service.results)
    assert len(phase1_results) == 3
    # "kill -9": abandon the service without stop/close bookkeeping.

    # -- phase 2: fresh process state over the same spool --------------
    metrics2 = MetricsRegistry()
    queue2 = SubmissionQueue(spool, registry=metrics2)
    replayed = metrics2.value("serve_wal_replayed_total")
    assert replayed == len(apps) - len(phase1_results)
    service2 = OnlineVettingService(
        models, queue=queue2, workers=2, batch_size=3, metrics=metrics2
    )
    # Completed outcomes were recovered from the WAL, not recomputed.
    for md5, outcome in phase1_results.items():
        assert service2.results[md5] == outcome
    service2.start()
    assert service2.drain(90.0), "restart did not drain the replay"
    service2.close()

    # Exactly once: every accepted submission is terminal...
    statuses = [service2.result(apk.md5)["status"] for apk in apps]
    assert statuses == ["done"] * len(apps)
    # ...and phase 2 scored only the replayed remainder — completed
    # entries were never dispatched again.
    assert metrics2.value("serve_scored_total") == replayed
    assert metrics2.value("serve_completed_total") == replayed
    assert queue2.depth == 0


def test_in_memory_service_needs_no_spool(models, generator):
    with _service(models, spool_dir=None) as service:
        service.submit(generator.sample_app())
        assert service.drain(60.0)
        assert len(service.results) == 1


def test_constructor_validation(models):
    with pytest.raises(ValueError):
        OnlineVettingService(models, workers=0)
    with pytest.raises(ValueError):
        OnlineVettingService(models, batch_size=0)


def test_drift_monitors_ride_live_traffic(models, fitted_checker, generator):
    """drift_monitors=True wires the full loop: PSI auto-baseline,
    shadow agreement feeding the rolling monitor, feedback feeding F1,
    and everything surfacing in healthz + the metrics exposition."""
    models.publish(fitted_checker)
    models.stage_shadow(2)
    apps = [generator.sample_app() for _ in range(8)]
    with _service(models, drift_monitors=True) as service:
        for apk in apps:
            service.submit(apk)
        assert service.drain(60.0)
        for apk in apps:
            outcome = service.result(apk.md5)
            service.record_feedback(apk.md5, outcome["malicious"])
        health = service.healthz()
        text = service.metrics_text()
    # The first scored batch auto-baselined the PSI reference.
    assert service.drift_monitors.psi._reference is not None
    assert service.drift_monitors.psi.samples > 0
    agreement = health["shadow_agreement"]
    assert agreement["n_scored"] == len(apps)
    assert agreement["rolling"] == pytest.approx(agreement["rate"])
    drift = health["drift"]
    assert drift is not None and drift["alarmed"] is False
    assert set(drift["monitors"]) >= {"shadow_agreement", "rolling_f1", "psi"}
    assert 'drift_score{monitor="shadow_agreement"}' in text
    assert "serve_shadow_agreement_rolling" in text
    assert "serve_feedback_total 8" in text


def test_drift_monitors_off_by_default(models, generator):
    with _service(models) as service:
        service.submit(generator.sample_app())
        assert service.drain(60.0)
        health = service.healthz()
    assert service.drift_monitors is None
    assert health["drift"] is None
    assert health["shadow_agreement"]["rolling"] is None


def test_record_feedback_only_counts_terminal_done(models, generator):
    apk = generator.sample_app()
    with _service(models, drift_monitors=True) as service:
        # Unknown md5 and non-terminal states record nothing.
        miss = service.record_feedback("ffffffff", True)
        assert miss == {
            "md5": "ffffffff",
            "recorded": False,
            "predicted": None,
            "actual": True,
        }
        service.submit(apk)
        assert service.drain(60.0)
        verdict = service.result(apk.md5)["malicious"]
        hit = service.record_feedback(apk.md5, not verdict)
    assert hit["recorded"] and hit["predicted"] == verdict
    assert service.metrics.value("serve_feedback_total") == 1
    assert service.drift_monitors.f1.samples == 1
