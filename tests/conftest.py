"""Shared fixtures: a small deterministic world reused across the suite.

Session-scoped fixtures hold immutable artifacts (SDK, corpora, study
observations, a fitted checker); anything stateful (generators, engines)
is built fresh per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.android.sdk import AndroidSdk, SdkSpec
from repro.core.checker import ApiChecker
from repro.core.engine import DynamicAnalysisEngine
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.emulator.backends import GoogleEmulator

TEST_SEED = 42


@pytest.fixture(scope="session")
def sdk() -> AndroidSdk:
    """A small SDK: full strata, reduced tail.

    1400 APIs is the smallest registry whose SRC mining is stable enough
    for the qualitative shape assertions; 900-API worlds produce key
    sets dominated by mining noise.
    """
    return AndroidSdk.generate(SdkSpec(n_apis=1400, seed=TEST_SEED))


@pytest.fixture(scope="session")
def catalog(sdk):
    """The archetype catalog every test generator shares.

    All corpora in the suite must come from one catalog: family
    signatures are catalog state, and a detector trained on one
    catalog's world cannot score apps drawn from another's.
    """
    from repro.corpus.families import ArchetypeCatalog

    return ArchetypeCatalog(sdk, seed=TEST_SEED + 2)


@pytest.fixture()
def generator(sdk, catalog) -> CorpusGenerator:
    """A fresh (stateful) generator per test."""
    return CorpusGenerator(sdk, seed=TEST_SEED + 1, catalog=catalog)


@pytest.fixture(scope="session")
def corpus(sdk, catalog) -> AppCorpus:
    """A labelled training corpus (shared, treat as immutable).

    800 apps is the smallest size at which the mined key set and the
    classifier land in a stable regime; smaller corpora make SRC mining
    too noisy to assert the paper's qualitative results.
    """
    gen = CorpusGenerator(sdk, seed=TEST_SEED + 2, catalog=catalog)
    return gen.generate(800)


@pytest.fixture(scope="session")
def study_observations(sdk, corpus):
    """All-API study observations for the shared corpus."""
    engine = DynamicAnalysisEngine(
        sdk,
        tracked_api_ids=np.arange(len(sdk)),
        primary=GoogleEmulator(),
        fallback=None,
        seed=TEST_SEED + 3,
    )
    return engine.observations(corpus)


@pytest.fixture(scope="session")
def fitted_checker(sdk, corpus, study_observations) -> ApiChecker:
    """An ApiChecker trained on the shared corpus."""
    checker = ApiChecker(sdk, seed=TEST_SEED + 4)
    checker.fit(corpus, study_observations=list(study_observations))
    return checker


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(TEST_SEED + 5)
