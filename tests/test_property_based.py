"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.emulator.cluster import ServerCluster
from repro.ml.metrics import ClassificationReport, confusion_counts, evaluate
from repro.ml.stats import r2_score, rankdata, spearman_rho
from repro.ml.tree import CartTree
from repro.ml.validation import stratified_kfold

# ----------------------------------------------------------------------
# Metrics invariants
# ----------------------------------------------------------------------

labels = hnp.arrays(np.int8, st.integers(2, 60), elements=st.integers(0, 1))


@given(labels, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_confusion_counts_sum_to_n(y, seed):
    rng = np.random.default_rng(seed)
    p = rng.integers(0, 2, size=y.size).astype(np.int8)
    tp, fp, tn, fn = confusion_counts(y, p)
    assert tp + fp + tn + fn == y.size
    rep = ClassificationReport(tp, fp, tn, fn)
    assert 0.0 <= rep.precision <= 1.0
    assert 0.0 <= rep.recall <= 1.0
    # F1 lies between precision and recall, up to float rounding (when
    # precision == recall their harmonic mean equals them exactly in
    # real arithmetic but not in binary64: e.g. tp=2 fp=3 fn=3 gives
    # f1 = 0.4000000000000001 > 0.4).
    eps = 1e-12
    assert (
        min(rep.precision, rep.recall) - eps
        <= rep.f1
        <= max(rep.precision, rep.recall) + eps
    ) or rep.f1 == 0.0


@given(labels)
@settings(max_examples=30, deadline=None)
def test_perfect_prediction_is_perfect(y):
    rep = evaluate(y, y.copy())
    assert rep.accuracy == 1.0
    if y.any():
        assert rep.precision == 1.0 and rep.recall == 1.0


# ----------------------------------------------------------------------
# Statistics invariants
# ----------------------------------------------------------------------

floats = hnp.arrays(
    np.float64,
    st.integers(2, 50),
    elements=st.floats(-100, 100, allow_nan=False),
)


@given(floats)
@settings(max_examples=60, deadline=None)
def test_rankdata_is_permutation_preserving(x):
    ranks = rankdata(x)
    assert ranks.sum() == x.size * (x.size + 1) / 2
    # Order relation preserved for strict inequalities.
    order = np.argsort(x, kind="mergesort")
    sorted_ranks = ranks[order]
    assert np.all(np.diff(sorted_ranks) >= 0)


@given(floats, st.floats(0.1, 10), st.floats(-5, 5))
@settings(max_examples=60, deadline=None)
def test_spearman_invariant_to_monotone_transform(x, scale, shift):
    y = scale * x + shift
    if np.unique(x).size < 2:
        assert spearman_rho(x, y) == 0.0
    elif np.unique(y).size < np.unique(x).size:
        # Floating-point underflow collapsed distinct x values in y; the
        # transform was not injective, so invariance does not apply.
        pass
    else:
        assert spearman_rho(x, y) == pytest.approx(1.0)
        assert spearman_rho(x, -y) == pytest.approx(-1.0)


@given(floats)
@settings(max_examples=40, deadline=None)
def test_spearman_symmetry(x):
    rng = np.random.default_rng(0)
    y = rng.normal(size=x.size)
    assert spearman_rho(x, y) == spearman_rho(y, x)
    assert -1.0 <= spearman_rho(x, y) <= 1.0


@given(floats)
@settings(max_examples=40, deadline=None)
def test_r2_of_exact_fit_is_one(y):
    assert r2_score(y, y) == 1.0


# ----------------------------------------------------------------------
# Scheduling invariants
# ----------------------------------------------------------------------


@given(
    hnp.arrays(
        np.float64,
        st.integers(1, 80),
        elements=st.floats(0.0, 50.0, allow_nan=False),
    ),
    st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_schedule_invariants(durations, n_servers):
    cluster = ServerCluster(n_servers=n_servers)
    report = cluster.schedule(durations)
    assert report.slot_busy_minutes.sum() == np.sum(durations) or np.isclose(
        report.slot_busy_minutes.sum(), np.sum(durations)
    )
    if durations.size:
        assert report.makespan_minutes >= durations.max() - 1e-9
    assert 0.0 <= report.utilization <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Tree invariants
# ----------------------------------------------------------------------


@given(st.integers(0, 2**31 - 1), st.integers(20, 120), st.integers(2, 25))
@settings(max_examples=25, deadline=None)
def test_tree_probabilities_bounded_and_fit_improves(seed, n, d):
    rng = np.random.default_rng(seed)
    X = (rng.random((n, d)) < 0.3).astype(np.uint8)
    y = (X[:, 0] | X[:, 1]).astype(np.int8)
    if y.sum() in (0, y.size):
        return
    tree = CartTree(seed=seed).fit(X, y)
    proba = tree.predict_proba(X)
    assert np.all(proba >= 0.0) and np.all(proba <= 1.0)
    # Training accuracy must beat the majority-class baseline.
    acc = (tree.predict(X) == y).mean()
    base = max(y.mean(), 1 - y.mean())
    assert acc >= base - 1e-9


# ----------------------------------------------------------------------
# Stratified folds invariants
# ----------------------------------------------------------------------


@given(st.integers(0, 1000), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_kfold_partition_property(seed, k):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4 * k, 120))
    y = np.zeros(n, dtype=np.int8)
    pos = rng.choice(n, size=max(k, n // 5), replace=False)
    y[pos] = 1
    if min(y.sum(), n - y.sum()) < k:
        return
    folds = stratified_kfold(y, n_splits=k, seed=seed)
    covered = np.concatenate([t for _, t in folds])
    assert sorted(covered.tolist()) == list(range(n))
