"""Tests for the versioned (/v1) HTTP JSON API over the vetting service."""

import http.client
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.codec import apk_to_dict
from repro.serve.http import API_PREFIX, ERROR_CODES, ROUTES, make_server
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService


@pytest.fixture()
def served(tmp_path, fitted_checker):
    """A running service + HTTP server on an ephemeral port."""
    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    service = OnlineVettingService(models, workers=2, batch_size=4)
    service.start()
    server = make_server(service).start_background()
    yield service, f"http://127.0.0.1:{server.port}"
    server.stop()
    service.close()


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(url, payload, raw=None):
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _raw(base, method, path, body=None):
    """One request without redirect-following (alias assertions)."""
    host, port = base.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10.0)
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response, json.loads(data) if data else None


def test_healthz(served):
    _, base = served
    status, health = _get(f"{base}/v1/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["active_model_version"] == 1


def test_submit_then_poll_result(served, generator):
    service, base = served
    apk = generator.sample_app()
    status, ticket = _post(
        f"{base}/v1/submit", {"apk": apk_to_dict(apk), "lane": "resubmit"}
    )
    assert status == 202
    assert ticket["md5"] == apk.md5
    assert ticket["lane"] == "resubmit"

    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        status, outcome = _get(f"{base}/v1/result/{apk.md5}")
        if status == 200:
            break
        assert status == 202
        assert outcome["status"] in ("pending", "in_flight")
        time.sleep(0.02)
    assert status == 200
    assert outcome["status"] == "done"
    assert outcome["model_version"] == 1


def test_bare_apk_payload_defaults_to_bulk(served, generator):
    _, base = served
    apk = generator.sample_app()
    status, ticket = _post(f"{base}/v1/submit", apk_to_dict(apk))
    assert status == 202 and ticket["lane"] == "bulk"


def test_result_unknown_md5_is_404(served):
    _, base = served
    status, outcome = _get(f"{base}/v1/result/deadbeef")
    assert status == 404
    assert outcome["status"] == "unknown"
    assert outcome["error"]["code"] == "not_found"
    assert outcome["error"]["md5"] == "deadbeef"


def test_error_envelope_shape_on_404(served):
    """Every error body is the one envelope: ``{"error": {code, message}}``."""
    _, base = served
    for endpoint in ("result", "explain"):
        status, body = _get(f"{base}/v1/{endpoint}/deadbeef")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert "deadbeef" in body["error"]["message"]
    status, body = _get(f"{base}/v1/nope")
    assert status == 404
    assert body["error"]["code"] == "not_found"
    assert "no such endpoint" in body["error"]["message"]


def _drain_result(base, md5, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, outcome = _get(f"{base}/v1/result/{md5}")
        if status == 200:
            return outcome
        time.sleep(0.02)
    raise AssertionError(f"submission {md5} never reached a terminal state")


def test_explain_serves_rule_evidence_for_flagged(served, generator):
    service, base = served
    apk = generator.sample_app(malicious=True)
    status, _ = _post(f"{base}/v1/submit", apk_to_dict(apk))
    assert status == 202
    outcome = _drain_result(base, apk.md5)
    status, explained = _get(f"{base}/v1/explain/{apk.md5}")
    assert status == 200
    assert explained["md5"] == apk.md5
    assert explained["malicious"] == outcome["malicious"]
    if not outcome["malicious"]:  # classifier FN: nothing to explain
        assert explained["explanation"] is None
        return
    explanation = explained["explanation"]
    assert explanation["md5"] == apk.md5
    assert explanation["n_rules"] > 0
    for hit in explanation["hits"]:
        assert 1 <= hit["stage"] <= 5
        assert hit["matched_apis"] or hit["matched_permissions"] or (
            hit["matched_intents"]
        )


def test_explain_is_null_for_clean_apps(served, generator):
    service, base = served
    apk = generator.sample_app(malicious=False)
    _post(f"{base}/v1/submit", apk_to_dict(apk))
    outcome = _drain_result(base, apk.md5)
    status, explained = _get(f"{base}/v1/explain/{apk.md5}")
    assert status == 200
    if outcome["malicious"]:  # classifier FP still gets an explanation
        assert explained["explanation"] is not None
        return
    assert explained["explanation"] is None


def test_explain_pending_is_202(tmp_path, fitted_checker, generator):
    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    # Not started: the submission stays queued.
    service = OnlineVettingService(models)
    server = make_server(service).start_background()
    base = f"http://127.0.0.1:{server.port}"
    try:
        apk = generator.sample_app()
        _post(f"{base}/v1/submit", apk_to_dict(apk))
        status, body = _get(f"{base}/v1/explain/{apk.md5}")
        assert status == 202
        assert body["status"] == "pending"
    finally:
        server.stop()
        service.close()


def test_explain_metrics_land_in_scrape(served, generator):
    """A flagged submission bumps ``rules_evaluations_total``."""
    service, base = served
    for _ in range(6):
        apk = generator.sample_app(malicious=True)
        _post(f"{base}/v1/submit", apk_to_dict(apk))
    assert service.drain(60.0)
    text = urllib.request.urlopen(
        f"{base}/v1/metrics", timeout=10.0
    ).read().decode()
    assert "rules_evaluations_total" in text


def test_malformed_submissions_are_400(served, generator):
    _, base = served
    status, err = _post(f"{base}/v1/submit", None, raw=b"{not json")
    assert status == 400
    assert err["error"]["code"] == "bad_request"
    assert "bad submission" in err["error"]["message"]

    status, err = _post(f"{base}/v1/submit", ["not", "a", "dict"])
    assert status == 400 and err["error"]["code"] == "bad_request"

    record = apk_to_dict(generator.sample_app())
    status, err = _post(
        f"{base}/v1/submit", {"apk": record, "lane": "express"}
    )
    assert status == 400
    assert "unknown lane" in err["error"]["message"]

    record["md5"] = "0" * 32  # corrupt content hash
    status, err = _post(f"{base}/v1/submit", {"apk": record})
    assert status == 400
    assert "corrupt" in err["error"]["message"]

    status, err = _post(f"{base}/v1/submit", None, raw=b"")
    assert status == 400 and err["error"]["code"] == "bad_request"


def test_queue_full_is_429(tmp_path, fitted_checker, generator):
    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    # Not started: submissions pile up against max_depth=1.
    service = OnlineVettingService(models, max_depth=1)
    server = make_server(service).start_background()
    base = f"http://127.0.0.1:{server.port}"
    try:
        status, _ = _post(
            f"{base}/v1/submit", apk_to_dict(generator.sample_app())
        )
        assert status == 202
        apk = generator.sample_app()
        status, err = _post(f"{base}/v1/submit", apk_to_dict(apk))
        assert status == 429
        assert err["error"]["code"] == "queue_full"
        assert "max depth" in err["error"]["message"]
        assert err["error"]["md5"] == apk.md5
    finally:
        server.stop()
        service.close()


def test_queue_full_429_carries_retry_after(
    tmp_path, fitted_checker, generator
):
    """Backpressure responses tell clients when to come back."""
    from repro.serve.http import RETRY_AFTER_QUEUE_FULL

    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    # Not started: submissions pile up against max_depth=1.
    service = OnlineVettingService(models, max_depth=1)
    server = make_server(service).start_background()
    base = f"http://127.0.0.1:{server.port}"
    try:
        body = json.dumps(apk_to_dict(generator.sample_app())).encode()
        response, _ = _raw(base, "POST", "/v1/submit", body)
        assert response.status == 202
        assert response.getheader("Retry-After") is None
        body = json.dumps(apk_to_dict(generator.sample_app())).encode()
        response, err = _raw(base, "POST", "/v1/submit", body)
        assert response.status == 429
        assert err["error"]["code"] == "queue_full"
        assert response.getheader("Retry-After") == RETRY_AFTER_QUEUE_FULL
    finally:
        server.stop()
        service.close()


def test_shard_unavailable_503_carries_retry_after(generator):
    """The router front door marks dead-shard 503s retryable too."""
    from repro.serve.http import RETRY_AFTER_SHARD_UNAVAILABLE
    from repro.serve.shard import RouterApi, ShardUnavailableError

    class DeadFleet:
        """Duck-typed router whose every shard is down."""

        def owner_of(self, md5):
            return 0

        def proxy(self, shard_id, method, path, body=None, md5=None):
            raise ShardUnavailableError(shard_id, "worker dead", md5)

    api = RouterApi(DeadFleet())
    apk = generator.sample_app()
    body = json.dumps({"apk": apk_to_dict(apk), "lane": "bulk"}).encode()
    for response in (api.submit(body), api.result(apk.md5)):
        assert response.status == 503
        assert dict(response.headers)["Retry-After"] == (
            RETRY_AFTER_SHARD_UNAVAILABLE
        )
        assert response.payload["error"]["code"] == "shard_unavailable"


def test_metrics_exposition(served, generator):
    service, base = served
    service.submit(generator.sample_app())
    assert service.drain(60.0)
    request = urllib.request.urlopen(f"{base}/v1/metrics", timeout=10.0)
    assert request.status == 200
    assert request.headers["Content-Type"].startswith("text/plain")
    text = request.read().decode()
    for series in (
        "serve_active_model_version",
        "serve_queue_depth",
        "serve_submissions_total",
    ):
        assert series in text


def test_metrics_json_snapshot_round_trips(served, generator):
    """``/v1/metrics.json`` is an ``as_dict`` snapshot (router scrape)."""
    from repro.obs import MetricsRegistry

    service, base = served
    service.submit(generator.sample_app())
    assert service.drain(60.0)
    status, snapshot = _get(f"{base}/v1/metrics.json")
    assert status == 200
    rebuilt = MetricsRegistry.from_dict(snapshot)
    assert rebuilt.total("serve_submissions_total") >= 1


def test_unknown_endpoints_are_404(served):
    _, base = served
    assert _get(f"{base}/v1/nope")[0] == 404
    assert _post(f"{base}/v1/nope", {"x": 1})[0] == 404


# ----------------------------------------------------------------------
# Route table + legacy aliases
# ----------------------------------------------------------------------


def test_route_table_is_fully_versioned():
    """Every route lives under /v1 and names a real handler."""
    from repro.serve.http import ServiceApi

    assert ROUTES, "route table must not be empty"
    for route in ROUTES:
        assert route.path.startswith(rf"^{API_PREFIX}/")
        assert route.method in ("GET", "POST")
        assert callable(getattr(ServiceApi, route.handler))


def test_error_codes_are_a_closed_set():
    assert ERROR_CODES == {
        "bad_request",
        "not_found",
        "wrong_shard",
        "queue_full",
        "shard_unavailable",
    }


def test_legacy_unprefixed_paths_are_gone(served):
    """The 301 alias grace window is over: unprefixed paths are 404s.

    PR 3 introduced the unprefixed routes, PR 8 turned them into 301
    aliases with Deprecation headers, and this release removes them.
    They must 404 with the standard error envelope — no Location, no
    Deprecation, no redirect for old clients to lean on.
    """
    _, base = served
    for path in ("/healthz", "/metrics", "/result/deadbeef",
                 "/explain/deadbeef"):
        response, body = _raw(base, "GET", path)
        assert response.status == 404, path
        assert body["error"]["code"] == "not_found"
        assert "Location" not in response.headers, path
        assert "Deprecation" not in response.headers, path


def test_legacy_post_submit_is_gone(served, generator):
    _, base = served
    body = json.dumps(apk_to_dict(generator.sample_app())).encode()
    response, payload = _raw(base, "POST", "/submit", body)
    assert response.status == 404
    assert payload["error"]["code"] == "not_found"
    assert "Location" not in response.headers


def test_unknown_legacy_path_is_404_not_redirect(served):
    _, base = served
    response, body = _raw(base, "GET", "/definitely/not/a/route")
    assert response.status == 404
    assert body["error"]["code"] == "not_found"
