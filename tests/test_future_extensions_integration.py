"""Cross-cutting integration tests for the extension features.

Exercises combinations the individual module tests don't: differential
vetting feeding the triage fast path, histogram encoding inside the
evolution loop, fuzzing exploration inside the production engine, and
analysis logs rebuilding a checker from scratch.
"""

import numpy as np
import pytest

from repro.core.diffvet import DiffVetter
from repro.core.reporting import read_observations, write_log
from repro.corpus.generator import CorpusGenerator
from repro.emulator.monkey import FuzzingExerciser


def test_diffvet_fraction_rises_with_update_share(
    fitted_checker, sdk, catalog
):
    """A market dominated by updates should mostly ride the fast path —
    the economics behind §5.2's '90% of flagged apps are updates'."""
    gen = CorpusGenerator(sdk, seed=801, catalog=catalog)
    vetter = DiffVetter(fitted_checker)
    warmup = [gen.sample_app(malicious=False, update_prob=0.0)
              for _ in range(25)]
    vetter.vet_batch(warmup)
    churn = [gen.sample_app(malicious=False, update_prob=0.97)
             for _ in range(120)]
    decisions = vetter.vet_batch(churn)
    fast = sum(d.fast_path for d in decisions)
    assert fast > 0.3 * len(decisions)


def test_diffvet_agrees_with_full_scans(fitted_checker, sdk, catalog):
    """Fast-path verdicts must match what a full scan would say for
    benign unchanged updates (no silent verdict drift)."""
    gen = CorpusGenerator(sdk, seed=802, catalog=catalog)
    vetter = DiffVetter(fitted_checker)
    apps = [gen.sample_app(malicious=False, update_prob=0.9)
            for _ in range(60)]
    decisions = vetter.vet_batch(apps)
    for apk, decision in zip(apps, decisions):
        if decision.fast_path:
            full = fitted_checker.vet(apk)
            assert decision.verdict.malicious == full.malicious


def test_histogram_checker_through_log_roundtrip(
    sdk, corpus, study_observations, tmp_path
):
    """Analysis logs carry invocation counts, so a histogram-encoded
    checker can be rebuilt purely from released logs."""
    from repro.core.checker import ApiChecker

    path = tmp_path / "study.jsonl"
    write_log(path, study_observations)
    restored = read_observations(path)
    checker = ApiChecker(sdk, feature_encoding="histogram", seed=803)
    checker.fit(corpus, study_observations=restored)
    report = checker.evaluate(corpus.subset(range(100)))
    assert report.f1 > 0.6


def test_fuzzing_engine_improves_feature_completeness(sdk, catalog):
    """Deeper UI coverage surfaces more call sites per app, which is the
    §6 motivation for replacing Monkey."""
    from repro.core.engine import DynamicAnalysisEngine

    gen = CorpusGenerator(sdk, seed=804, catalog=catalog)
    apps = [gen.sample_app(malicious=True) for _ in range(25)]
    monkey_engine = DynamicAnalysisEngine(
        sdk, np.arange(len(sdk)), seed=805
    )
    fuzz_engine = DynamicAnalysisEngine(
        sdk, np.arange(len(sdk)), seed=805
    )
    fuzz_engine.monkey = FuzzingExerciser(n_events=5000, seed=805)
    n_monkey = np.mean(
        [len(a.observation.invoked_api_ids)
         for a in monkey_engine.analyze_corpus(apps)]
    )
    n_fuzz = np.mean(
        [len(a.observation.invoked_api_ids)
         for a in fuzz_engine.analyze_corpus(apps)]
    )
    assert n_fuzz >= n_monkey
