"""Tests for behaviour archetypes and the catalog."""

import numpy as np
import pytest

from repro.corpus.families import (
    BENIGN_ARCHETYPES,
    MALWARE_ARCHETYPES,
    ArchetypeCatalog,
    BehaviorArchetype,
)


def test_archetype_probability_validation():
    with pytest.raises(ValueError):
        BehaviorArchetype(name="x", malicious=False, signature_use_prob=1.5)
    with pytest.raises(ValueError):
        BehaviorArchetype(name="x", malicious=False, weight=0.0)


def test_malice_flags_partition():
    assert all(a.malicious for a in MALWARE_ARCHETYPES)
    assert all(not a.malicious for a in BENIGN_ARCHETYPES)


def test_paper_attack_classes_covered():
    names = {a.name for a in MALWARE_ARCHETYPES}
    # SMS fraud, privacy leak, ransomware, overlay, update attack,
    # privilege escalation: all attack classes from §4.4 step 3.
    assert {
        "sms_fraud", "privacy_stealer", "ransomware", "overlay_attack",
        "update_attack", "rooter",
    } <= names


def test_catalog_binding_deterministic(sdk):
    a = ArchetypeCatalog(sdk, seed=9)
    b = ArchetypeCatalog(sdk, seed=9)
    for name in a.signatures:
        assert np.array_equal(a.signatures[name], b.signatures[name])


def test_signatures_contain_canonical_apis(sdk):
    catalog = ArchetypeCatalog(sdk, seed=1)
    sms_sig = set(catalog.signature_of("sms_fraud").tolist())
    sms_api = sdk.by_name("android.telephony.SmsManager.sendTextMessage")
    assert sms_api.api_id in sms_sig


def test_signatures_overlap_between_families(sdk):
    catalog = ArchetypeCatalog(sdk, seed=1)
    a = set(catalog.signature_of("sms_fraud").tolist())
    b = set(catalog.signature_of("privacy_stealer").tolist())
    assert a & b, "family signatures must share pool APIs"


def test_mimic_signature_is_subset_of_source(sdk):
    catalog = ArchetypeCatalog(sdk, seed=1)
    adware = set(catalog.signature_of("aggressive_adware").tolist())
    adlib = set(catalog.signature_of("adlib_heavy").tolist())
    canonical = {
        sdk.by_name(n).api_id
        for n in catalog.get("adlib_heavy").canonical_apis
    }
    assert adlib - canonical <= adware


def test_sample_name_respects_malice(sdk, rng):
    catalog = ArchetypeCatalog(sdk, seed=1)
    for _ in range(50):
        assert catalog.get(catalog.sample_name(True, rng)).malicious
        assert not catalog.get(catalog.sample_name(False, rng)).malicious


def test_unknown_archetype_raises(sdk):
    catalog = ArchetypeCatalog(sdk, seed=1)
    with pytest.raises(KeyError):
        catalog.get("not_a_family")


def test_lowkey_spy_has_tiny_signature(sdk):
    catalog = ArchetypeCatalog(sdk, seed=1)
    lowkey = catalog.signature_of("lowkey_spy")
    sms = catalog.signature_of("sms_fraud")
    assert lowkey.size < sms.size / 5
