"""Tests for rule mining (Apriori, scoring, dedupe, artifact, diff)."""

from itertools import combinations

import numpy as np
import pytest

from repro.rules import (
    MiningError,
    RuleEvaluator,
    RuleSpec,
    builtin_ruleset,
    diff_rulesets,
    lint_ruleset,
    load_generated_ruleset,
    load_ruleset,
    mine_from_corpus,
)
from repro.rules.mining import (
    _collapses,
    _evidence_set,
    _frequent_itemsets,
)


@pytest.fixture(scope="module")
def mining_corpus(sdk, catalog):
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=977, catalog=catalog)
    return gen.generate_family_balanced(per_family=25, n_benign=250)


@pytest.fixture(scope="module")
def mined(fitted_checker, mining_corpus):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    result = mine_from_corpus(
        fitted_checker, mining_corpus, seed=3, registry=registry
    )
    return result, registry


def test_mines_rules_for_every_large_family(mined):
    result, _ = mined
    assert len(result.rules) > 0
    large = {
        f for f, s in result.families.items() if s["rows"] >= 8
    }
    kept_families = {r.family for r in result.rules}
    assert large <= kept_families


def test_lowkey_spy_blind_spot_is_closed(mined):
    """The stock bundle covers no lowkey_spy; the mined set must."""
    result, _ = mined
    stock = {f for s in builtin_ruleset() for f in s.families}
    assert "lowkey_spy" not in stock
    spy = [r for r in result.rules if r.family == "lowkey_spy"]
    assert spy, "mining kept no lowkey_spy rule"
    assert result.families["lowkey_spy"]["fire_coverage"] > 0.5


def test_mined_rules_clear_score_floors(mined):
    result, _ = mined
    params = result.params
    for rule in result.rules:
        assert rule.precision >= params["min_precision"]
        assert rule.lift >= params["min_lift"]
        assert rule.n_matches >= params["min_matches"]


def test_every_mined_spec_is_well_formed(mined):
    result, _ = mined
    for rule in result.rules:
        spec = rule.spec
        assert spec.behavior.startswith(f"mined_{rule.family}_")
        assert len(spec.apis) >= 1  # anchor-API guarantee
        assert spec.families == (rule.family,)
        assert spec.description


def test_mined_rules_lint_clean(mined, sdk):
    result, _ = mined
    issues = lint_ruleset(result.specs, sdk=sdk)
    assert not [i for i in issues if i.severity == "error"]


def test_mined_evidence_never_collapses_into_base(mined):
    result, _ = mined
    base_ev = [_evidence_set(s) for s in result.base]
    overlap = result.params["max_overlap"]
    for rule in result.rules:
        ev = _evidence_set(rule.spec)
        assert not any(_collapses(ev, b, overlap) for b in base_ev)


def test_same_family_rules_do_not_collapse(mined):
    result, _ = mined
    overlap = result.params["max_overlap"]
    by_family: dict[str, list] = {}
    for rule in result.rules:
        by_family.setdefault(rule.family, []).append(
            _evidence_set(rule.spec)
        )
    for evs in by_family.values():
        for a, b in combinations(evs, 2):
            assert not _collapses(a, b, overlap)


def test_mining_counter(mined):
    result, registry = mined
    assert registry.value("rules_mined_total") == len(result.rules)


def test_mining_is_deterministic(fitted_checker, mining_corpus, mined):
    result, _ = mined
    again = mine_from_corpus(fitted_checker, mining_corpus, seed=3)
    assert again.to_json() == result.to_json()
    assert again.sha256 == result.sha256


def test_artifact_round_trip(tmp_path, mined):
    result, _ = mined
    path = result.save(tmp_path / "mined.json")
    loaded = load_generated_ruleset(path)
    assert loaded.rules == result.rules
    assert loaded.base == result.base
    assert loaded.params == dict(result.params)
    assert loaded.sha256 == result.sha256
    # load from the parsed dict too
    assert load_generated_ruleset(result.to_artifact()).sha256 == (
        result.sha256
    )


def test_stock_loader_reads_generated_artifact(tmp_path, mined):
    result, _ = mined
    path = result.save(tmp_path / "mined.json")
    specs = load_ruleset(path)
    assert tuple(specs) == result.specs


def test_load_generated_rejects_plain_ruleset():
    with pytest.raises(MiningError, match="no 'generated' block"):
        load_generated_ruleset(
            {"rules": [s.to_dict() for s in builtin_ruleset()]}
        )


def test_load_generated_rejects_unknown_format(mined):
    result, _ = mined
    artifact = result.to_artifact()
    artifact["generated"]["format"] = 999
    with pytest.raises(MiningError, match="unsupported"):
        load_generated_ruleset(artifact)


def test_mine_rejects_misaligned_inputs(fitted_checker, mining_corpus):
    obs = fitted_checker.production_engine.observations(
        list(mining_corpus)[:10]
    )
    with pytest.raises(MiningError, match="misaligned"):
        from repro.rules import mine_ruleset

        mine_ruleset(
            obs, [True] * 9, ["x"] * 10, fitted_checker.feature_space
        )


def test_mine_rejects_empty_corpus(fitted_checker):
    from repro.rules import mine_ruleset

    with pytest.raises(MiningError, match="empty"):
        mine_ruleset([], [], [], fitted_checker.feature_space)


def test_apriori_matches_bruteforce_support():
    rng = np.random.default_rng(11)
    rows = rng.random((60, 8)) < 0.45
    items = list(range(8))
    found = set(_frequent_itemsets(rows, items, 0.3, 3))
    for size in (1, 2, 3):
        for itemset in combinations(items, size):
            support = rows[:, list(itemset)].all(axis=1).mean()
            if support >= 0.3:
                assert itemset in found, itemset
            else:
                assert itemset not in found, itemset


def test_mined_ruleset_detects_fresh_lowkey_spy(
    mined, fitted_checker, sdk, catalog
):
    """Evaluator-semantics family recall on apps mining never saw."""
    from repro.corpus.generator import CorpusGenerator

    result, _ = mined
    gen = CorpusGenerator(sdk, seed=1889, catalog=catalog)
    apps = [gen.sample_app(archetype="lowkey_spy") for _ in range(25)]
    obs = fitted_checker.production_engine.observations(apps)

    def family_recall(specs):
        evaluator = RuleEvaluator.from_specs(
            specs, sdk, tracked_api_ids=fitted_checker.key_api_ids
        )
        fam_of = {s.behavior: s.families for s in specs}
        hits = 0
        for report in evaluator.evaluate(obs):
            if any(
                "lowkey_spy" in fam_of[h.behavior] and h.stage >= 1
                for h in report.hits
            ):
                hits += 1
        return hits / len(obs)

    assert family_recall(builtin_ruleset()) == 0.0
    assert family_recall(result.specs) >= 0.5


# ----------------------------------------------------------------------
# rules diff
# ----------------------------------------------------------------------


def _spec(behavior, apis=("a",), perms=(), weight=1.0):
    return RuleSpec(
        behavior=behavior,
        apis=tuple(apis),
        description=f"test rule {behavior}",
        permissions=tuple(perms),
        weight=weight,
    )


def test_diff_identical_rulesets_is_empty():
    diff = diff_rulesets(builtin_ruleset(), builtin_ruleset())
    assert diff.is_empty
    assert "identical" in diff.format()


def test_diff_reports_added_removed_changed():
    old = [_spec("keep"), _spec("drop"), _spec("tweak", apis=("a", "b"))]
    new = [
        _spec("keep"),
        _spec("add"),
        _spec("tweak", apis=("b", "c"), weight=2.0),
    ]
    diff = diff_rulesets(old, new)
    assert [s.behavior for s in diff.added] == ["add"]
    assert [s.behavior for s in diff.removed] == ["drop"]
    assert [c.behavior for c in diff.changed] == ["tweak"]
    text = diff.format()
    assert "1 added, 1 removed, 1 changed" in text
    assert "+add" in text or "add" in text
    changed = diff.changed[0]
    fields = dict(changed.fields)
    assert "apis" in fields and "weight" in fields


def test_diff_ignores_tuple_order():
    old = [_spec("r", apis=("a", "b"), perms=("P1", "P2"))]
    new = [_spec("r", apis=("b", "a"), perms=("P2", "P1"))]
    assert diff_rulesets(old, new).is_empty
