"""Timing-calibration regression tests.

The emulation cost model is the backbone of every timing figure; these
tests pin the calibrated operating points (docs/calibration.md) so an
innocent-looking change to rates or overheads fails loudly instead of
silently skewing the benchmarks.
"""

import numpy as np
import pytest

from repro.emulator.backends import GoogleEmulator, LightweightEmulator
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import emulate_app


@pytest.fixture(scope="module")
def timing_sample(sdk, corpus):
    return list(corpus)[:80]


def _mean_minutes(sdk, apps, tracked, backend=None, seed=5):
    env = DeviceEnvironment.hardened_emulator()
    hooks = HookEngine(sdk, tracked)
    monkey = MonkeyExerciser(seed=seed)
    rng = np.random.default_rng(seed)
    backend = backend or GoogleEmulator()
    minutes = [
        emulate_app(a, sdk, backend, env, hooks, monkey=monkey, rng=rng,
                    raise_on_crash=False).analysis_minutes
        for a in apps
    ]
    return float(np.mean(minutes))


def test_no_tracking_floor_is_2_minutes(sdk, timing_sample):
    mean = _mean_minutes(sdk, timing_sample, tracked=[])
    assert 1.7 < mean < 2.8  # paper: 2.1 min


def test_full_tracking_blowup(sdk, timing_sample):
    none = _mean_minutes(sdk, timing_sample, tracked=[])
    full = _mean_minutes(sdk, timing_sample, tracked=np.arange(len(sdk)))
    assert 15 < full / none < 40  # paper: ~25x (2.1 -> 53.6)


def test_latent_key_tracking_cost(sdk, timing_sample):
    keys = np.unique(
        np.concatenate(
            [
                sdk.restricted_api_ids,
                sdk.sensitive_api_ids,
                sdk.discriminative_api_ids,
                sdk.common_ops_api_ids,
            ]
        )
    )
    mean = _mean_minutes(sdk, timing_sample, tracked=keys)
    assert 2.8 < mean < 6.5  # paper: 4.3 min for the 426 keys


def test_lightweight_reduction(sdk, timing_sample):
    keys = sdk.restricted_api_ids
    google = _mean_minutes(sdk, timing_sample, tracked=keys)
    light = _mean_minutes(
        sdk,
        [a for a in timing_sample if LightweightEmulator().compatible(a)],
        tracked=keys,
        backend=LightweightEmulator(),
    )
    reduction = 1 - light / google
    assert 0.55 < reduction < 0.8  # paper: ~70%


def test_invocation_volume_anchor(sdk, timing_sample):
    env = DeviceEnvironment.hardened_emulator()
    hooks = HookEngine(sdk, [])
    monkey = MonkeyExerciser(seed=6)
    rng = np.random.default_rng(6)
    totals = [
        emulate_app(a, sdk, GoogleEmulator(), env, hooks, monkey=monkey,
                    rng=rng, raise_on_crash=False).total_invocations
        for a in timing_sample
    ]
    mean = np.mean(totals)
    assert 2.5e7 < mean < 6.5e7  # paper: 42.3M
