"""Timing-calibration regression tests.

The emulation cost model is the backbone of every timing figure; these
tests pin the calibrated operating points (docs/calibration.md) so an
innocent-looking change to rates or overheads fails loudly instead of
silently skewing the benchmarks.
"""

import numpy as np
import pytest

from repro.emulator.backends import GoogleEmulator, LightweightEmulator
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import emulate_app


@pytest.fixture(scope="module")
def timing_sample(sdk, corpus):
    return list(corpus)[:80]


def _mean_minutes(sdk, apps, tracked, backend=None, seed=5):
    env = DeviceEnvironment.hardened_emulator()
    hooks = HookEngine(sdk, tracked)
    monkey = MonkeyExerciser(seed=seed)
    rng = np.random.default_rng(seed)
    backend = backend or GoogleEmulator()
    minutes = [
        emulate_app(a, sdk, backend, env, hooks, monkey=monkey, rng=rng,
                    raise_on_crash=False).analysis_minutes
        for a in apps
    ]
    return float(np.mean(minutes))


def test_no_tracking_floor_is_2_minutes(sdk, timing_sample):
    mean = _mean_minutes(sdk, timing_sample, tracked=[])
    assert 1.7 < mean < 2.8  # paper: 2.1 min


def test_full_tracking_blowup(sdk, timing_sample):
    none = _mean_minutes(sdk, timing_sample, tracked=[])
    full = _mean_minutes(sdk, timing_sample, tracked=np.arange(len(sdk)))
    assert 15 < full / none < 40  # paper: ~25x (2.1 -> 53.6)


def test_latent_key_tracking_cost(sdk, timing_sample):
    keys = np.unique(
        np.concatenate(
            [
                sdk.restricted_api_ids,
                sdk.sensitive_api_ids,
                sdk.discriminative_api_ids,
                sdk.common_ops_api_ids,
            ]
        )
    )
    mean = _mean_minutes(sdk, timing_sample, tracked=keys)
    assert 2.8 < mean < 6.5  # paper: 4.3 min for the 426 keys


def test_lightweight_reduction(sdk, timing_sample):
    keys = sdk.restricted_api_ids
    google = _mean_minutes(sdk, timing_sample, tracked=keys)
    light = _mean_minutes(
        sdk,
        [a for a in timing_sample if LightweightEmulator().compatible(a)],
        tracked=keys,
        backend=LightweightEmulator(),
    )
    reduction = 1 - light / google
    assert 0.55 < reduction < 0.8  # paper: ~70%


def test_throughput_and_crash_waste_derive_from_recorded_spans(
    sdk, timing_sample
):
    """Operational figures come from recorded spans, not re-estimates.

    The pipeline records every executed slot interval as a sim-clock
    span (`pipeline_task_minutes`) and every crash's burnt time as a
    counter; the ScheduleReport's recomputed throughput and the
    analyses' summed waste must agree with the span-derived figures.
    """
    from repro.core.engine import DynamicAnalysisEngine
    from repro.core.pipeline import VettingPipeline
    from repro.obs import MetricsRegistry

    class CrashyPrimary(GoogleEmulator):
        def crash_probability(self, apk):
            return 0.35

    registry = MetricsRegistry()
    engine = DynamicAnalysisEngine(
        sdk, [], primary=CrashyPrimary(), fallback=GoogleEmulator(),
        max_retries=2, seed=11, registry=registry,
    )
    pipeline = VettingPipeline(engine, workers=4, registry=registry)
    result = pipeline.run(timing_sample)
    assert not result.failures

    # Throughput: span count and recorded makespan vs. the report.
    n_spans = registry.histogram_count("pipeline_task_minutes")
    makespan = registry.value("cluster_makespan_minutes")
    assert n_spans == len(timing_sample)
    span_throughput = n_spans * 24 * 60 / makespan
    assert span_throughput == pytest.approx(
        result.schedule.throughput_per_day(), rel=1e-9
    )

    # Busy time: the summed span durations vs. the report's slot tally.
    span_busy = registry.histogram_sum("pipeline_task_minutes")
    assert span_busy == pytest.approx(
        float(result.schedule.slot_busy_minutes.sum()), rel=1e-9
    )

    # Crash waste: the counter accumulated at crash time vs. the waste
    # recomputed from each app's (total - clean-run) minutes.
    recomputed = sum(
        a.total_minutes - a.result.analysis_minutes
        for a in result.analyses
        if a is not None
    )
    recorded = registry.value("engine_crash_waste_minutes_total")
    assert recorded == pytest.approx(recomputed, rel=1e-9, abs=1e-12)
    # And at least one crash actually happened in this sample, so the
    # agreement above is not vacuous.
    assert registry.value("engine_crashes_total") > 0


def test_invocation_volume_anchor(sdk, timing_sample):
    env = DeviceEnvironment.hardened_emulator()
    hooks = HookEngine(sdk, [])
    monkey = MonkeyExerciser(seed=6)
    rng = np.random.default_rng(6)
    totals = [
        emulate_app(a, sdk, GoogleEmulator(), env, hooks, monkey=monkey,
                    rng=rng, raise_on_crash=False).total_invocations
        for a in timing_sample
    ]
    mean = np.mean(totals)
    assert 2.5e7 < mean < 6.5e7  # paper: 42.3M
