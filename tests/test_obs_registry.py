"""Unit tests for the metrics registry (repro.obs.registry)."""

import json
import re
import threading

import pytest

from repro.obs import (
    DEFAULT_MINUTES_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
)


def test_counter_basics():
    reg = MetricsRegistry()
    assert reg.value("requests_total") == 0.0
    reg.inc("requests_total")
    reg.inc("requests_total", 4)
    assert reg.value("requests_total") == 5.0
    assert reg.total("requests_total") == 5.0


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="counters only go up"):
        reg.inc("x_total", -1)


def test_invalid_metric_names_rejected():
    reg = MetricsRegistry()
    for bad in ("", "9lives", "has space", "dash-ed"):
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.inc(bad)


def test_counter_label_sets_are_independent():
    reg = MetricsRegistry()
    reg.inc("emu_total", 2, backend="lightweight")
    reg.inc("emu_total", 3, backend="google")
    assert reg.value("emu_total", backend="lightweight") == 2.0
    assert reg.value("emu_total", backend="google") == 3.0
    assert reg.value("emu_total") == 0.0  # the unlabeled series
    assert reg.total("emu_total") == 5.0


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    reg.set_gauge("occupancy", 12.0)
    reg.add_gauge("occupancy", -2.0)
    assert reg.value("occupancy") == 10.0


def test_histogram_counts_sum_and_buckets():
    reg = MetricsRegistry()
    for v in (0.1, 0.3, 0.6, 1.5, 99.0):
        reg.observe("minutes", v, buckets=(0.25, 0.5, 1.0, 2.0))
    snap = reg.histogram("minutes")
    assert snap.count == 5
    assert snap.sum == pytest.approx(0.1 + 0.3 + 0.6 + 1.5 + 99.0)
    # (<=0.25, <=0.5, <=1.0, <=2.0, overflow)
    assert snap.counts == (1, 1, 1, 1, 1)
    assert snap.mean == pytest.approx(snap.sum / 5)
    assert reg.histogram_count("minutes") == 5
    assert reg.histogram_sum("minutes") == pytest.approx(snap.sum)


def test_histogram_buckets_fixed_at_first_observation():
    reg = MetricsRegistry()
    reg.observe("lat", 1.0, buckets=(1.0, 2.0))
    reg.observe("lat", 1.5, buckets=(9.0,))  # ignored: spec is fixed
    assert reg.histogram("lat").buckets == (1.0, 2.0)


def test_histogram_missing_returns_none():
    assert MetricsRegistry().histogram("nope") is None


def test_json_snapshot_round_trip():
    reg = MetricsRegistry()
    reg.inc("a_total", 3, kind="x")
    reg.set_gauge("g", 1.5)
    reg.observe("h_minutes", 0.7, buckets=DEFAULT_MINUTES_BUCKETS,
                backend="b")
    clone = MetricsRegistry.from_json(reg.to_json())
    assert clone.as_dict() == reg.as_dict()
    assert clone.to_prometheus() == reg.to_prometheus()
    # And the snapshot is plain JSON all the way down.
    json.dumps(reg.as_dict())


# One metric line: name{labels} value — the Prometheus text format.
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"[-+]?([0-9.]+([eE][-+]?[0-9]+)?|Inf|NaN)$"
)


def test_prometheus_exposition_is_well_formed():
    reg = MetricsRegistry()
    reg.inc("apps_total", 7)
    reg.inc("emu_total", 2, backend="google")
    reg.set_gauge("util", 0.8125)
    reg.observe("lat_seconds", 0.3, buckets=(0.25, 0.5))
    reg.observe("lat_seconds", 0.9, buckets=(0.25, 0.5))
    text = reg.to_prometheus()
    assert text.endswith("\n")
    lines = text.splitlines()
    types = [l for l in lines if l.startswith("# TYPE")]
    assert "# TYPE apps_total counter" in types
    assert "# TYPE util gauge" in types
    assert "# TYPE lat_seconds histogram" in types
    for line in lines:
        if line.startswith("#"):
            continue
        assert _PROM_LINE.match(line), f"malformed exposition line: {line}"
    # Histogram exposition: cumulative buckets, +Inf, _sum and _count.
    assert 'lat_seconds_bucket{le="0.5"} 1' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
    assert "lat_seconds_count 2" in lines


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.inc("odd_total", 1, msg='say "hi" \\ bye')
    text = reg.to_prometheus()
    assert r'msg="say \"hi\" \\ bye"' in text


def test_reset_clears_everything():
    reg = MetricsRegistry()
    reg.inc("a_total")
    reg.observe("h_seconds", 1.0)
    reg.reset()
    assert reg.as_dict() == {"counters": [], "gauges": [], "histograms": []}


def test_concurrent_increments_are_exact():
    reg = MetricsRegistry()
    n_threads, per_thread = 8, 2000

    def work():
        for _ in range(per_thread):
            reg.inc("hits_total")
            reg.observe("lat_seconds", 0.01, buckets=(1.0,))

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.value("hits_total") == n_threads * per_thread
    assert reg.histogram("lat_seconds").count == n_threads * per_thread


def test_null_registry_records_nothing():
    reg = NullRegistry()
    reg.inc("a_total", 5)
    reg.set_gauge("g", 1.0)
    reg.add_gauge("g", 1.0)
    reg.observe("h_seconds", 1.0)
    assert reg.as_dict() == {"counters": [], "gauges": [], "histograms": []}
    assert reg.value("a_total") == 0.0


def test_default_registry_swap_restores():
    original = default_registry()
    mine = MetricsRegistry()
    previous = set_default_registry(mine)
    try:
        assert previous is original
        assert default_registry() is mine
    finally:
        set_default_registry(original)
    assert default_registry() is original
