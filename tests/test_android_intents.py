"""Tests for the intent-action registry."""

import pytest

from repro.android.intents import (
    CANONICAL_INTENTS,
    IntentAction,
    IntentRegistry,
)


def test_generation_deterministic():
    a = IntentRegistry.generate(96, seed=3)
    b = IntentRegistry.generate(96, seed=3)
    assert a.names == b.names


def test_canonical_intents_present():
    reg = IntentRegistry.generate(96, seed=0)
    for name, system in CANONICAL_INTENTS:
        assert name in reg
        assert reg.get(name).system_broadcast is system


def test_split_between_broadcasts_and_requests():
    reg = IntentRegistry.generate(120, seed=1)
    sysb = reg.system_broadcasts()
    reqs = reg.request_actions()
    assert sysb and reqs
    assert len(sysb) + len(reqs) == len(reg)


def test_size_honored_and_unique():
    reg = IntentRegistry.generate(130, seed=2)
    assert len(reg) == 130
    assert len(set(reg.names)) == 130


def test_too_small_rejected():
    with pytest.raises(ValueError):
        IntentRegistry.generate(5)


def test_unknown_intent_raises():
    reg = IntentRegistry.generate(96, seed=2)
    with pytest.raises(KeyError):
        reg.get("android.intent.action.NOPE")


def test_short_name():
    a = IntentAction("android.provider.Telephony.SMS_RECEIVED", True)
    assert a.short_name == "SMS_RECEIVED"
