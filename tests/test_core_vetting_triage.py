"""Tests for the vetting service and FP/FN triage."""

import numpy as np
import pytest

from repro.core.triage import (
    BARELY_USES_KEYS_MAX,
    TriageCenter,
)
from repro.core.vetting import VettingService
from repro.corpus.generator import CorpusGenerator
from repro.emulator.cluster import ServerCluster


@pytest.fixture()
def service(fitted_checker):
    return VettingService(fitted_checker, cluster=ServerCluster(n_servers=1))


def test_service_requires_fitted_checker(sdk):
    from repro.core.checker import ApiChecker

    with pytest.raises(RuntimeError):
        VettingService(ApiChecker(sdk))


def test_process_day_report(service, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=500, catalog=catalog)
    day = gen.generate(60, malware_rate=0.15)
    report = service.process_day(day, true_labels=day.labels)
    assert report.n_apps == 60
    assert report.n_flagged == sum(v.malicious for v in report.verdicts)
    assert report.mean_minutes > 0
    assert report.max_minutes >= report.median_minutes
    assert report.schedule.makespan_minutes > 0
    assert report.fp_report is not None
    assert service.days_processed == 1


def test_process_day_without_labels_skips_triage(service, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=501, catalog=catalog)
    day = gen.generate(20)
    report = service.process_day(day)
    assert report.fp_report is None


def test_process_day_rejects_empty(service, sdk):
    from repro.corpus.generator import AppCorpus

    with pytest.raises(ValueError):
        service.process_day(AppCorpus(sdk, []))


def test_second_day_served_from_cache(fitted_checker, sdk, catalog):
    """Resubmitted md5s are reported as cache hits and not re-emulated."""
    from repro.corpus.generator import AppCorpus

    service = VettingService(
        fitted_checker, cluster=ServerCluster(n_servers=1), cache=True
    )
    gen = CorpusGenerator(sdk, seed=508, catalog=catalog)
    day1 = gen.generate(30)
    report1 = service.process_day(day1)
    assert report1.cache_hits == 0

    engine = fitted_checker.production_engine
    analyzed_before = engine.stats_view.analyzed
    resubmitted = list(day1)[:20]
    novel = [gen.sample_app(malicious=False) for _ in range(5)]
    day2 = AppCorpus(sdk, resubmitted + novel)
    report2 = service.process_day(day2)
    assert report2.cache_hits == 20
    # Only the 5 novel apps touched an emulator.
    assert engine.stats_view.analyzed - analyzed_before == 5
    # Cached verdicts match day 1's for the same apps.
    day1_by_md5 = {v.apk_md5: v for v in report1.verdicts}
    for verdict in report2.verdicts[:20]:
        original = day1_by_md5[verdict.apk_md5]
        assert verdict.malicious == original.malicious
        assert verdict.probability == original.probability


def test_process_day_without_cache_reemulates(service, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=509, catalog=catalog)
    day = gen.generate(10)
    r1 = service.process_day(day)
    r2 = service.process_day(day)
    assert r1.cache_hits == 0 and r2.cache_hits == 0


def test_throughput_scales_with_slots(service, sdk, catalog):
    gen = CorpusGenerator(sdk, seed=502, catalog=catalog)
    day = gen.generate(120)
    report = service.process_day(day)
    assert report.throughput_per_day > 1000


# -- triage ---------------------------------------------------------------


def test_triage_key_usage_counts(fitted_checker, sdk, catalog):
    triage = TriageCenter(fitted_checker.key_api_ids)
    gen = CorpusGenerator(sdk, seed=503, catalog=catalog)
    mal = gen.sample_app(archetype="sms_fraud")
    low = gen.sample_app(archetype="news")
    assert triage.key_api_usage(mal) > triage.key_api_usage(low)


def test_triage_flagged_classifies_fp(fitted_checker, sdk, catalog):
    from repro.core.checker import VetVerdict

    triage = TriageCenter(fitted_checker.key_api_ids)
    gen = CorpusGenerator(sdk, seed=504, catalog=catalog)
    apps = [gen.sample_app(malicious=bool(i % 2)) for i in range(6)]
    verdicts = [
        VetVerdict(a.md5, malicious=True, probability=0.9,
                   analysis_minutes=1.0, fell_back=False)
        for a in apps
    ]
    labels = np.array([a.is_malicious for a in apps])
    report = triage.triage_flagged(apps, verdicts, labels)
    assert report.n_flagged == 6
    assert report.n_false_positives == 3
    assert report.n_confirmed_malicious == 3
    assert report.manual_minutes > 0


def test_triage_alignment_validated(fitted_checker):
    triage = TriageCenter(fitted_checker.key_api_ids)
    with pytest.raises(ValueError):
        triage.triage_flagged([], [], np.array([True]))


def test_fn_triage_reports_barely_using_keys(fitted_checker, sdk, catalog):
    triage = TriageCenter(
        fitted_checker.key_api_ids,
        user_report_prob=1.0,
        seed=9,
        exclude_api_ids=sdk.ubiquitous_api_ids,
    )
    gen = CorpusGenerator(sdk, seed=505, catalog=catalog)
    published = [gen.sample_app(archetype="lowkey_spy") for _ in range(15)]
    published += [gen.sample_app(malicious=False) for _ in range(15)]
    labels = np.array([a.is_malicious for a in published])
    report = triage.triage_user_reports(published, labels)
    assert report.n_reports == 15
    assert report.n_confirmed_malicious == 15
    # Low-key spyware barely touches the key APIs (the paper's 87%).
    assert report.barely_uses_keys_fraction > 0.5


def test_fn_triage_probability_bounds(fitted_checker):
    with pytest.raises(ValueError):
        TriageCenter(fitted_checker.key_api_ids, user_report_prob=1.5)


def test_fn_triage_no_reports_when_probability_zero(fitted_checker, sdk, catalog):
    triage = TriageCenter(
        fitted_checker.key_api_ids, user_report_prob=0.0
    )
    gen = CorpusGenerator(sdk, seed=506, catalog=catalog)
    apps = [gen.sample_app(malicious=True) for _ in range(5)]
    report = triage.triage_user_reports(
        apps, np.ones(5, dtype=bool)
    )
    assert report.n_reports == 0
    assert report.barely_uses_keys_fraction == 0.0


def test_update_fast_path(fitted_checker, sdk, catalog):
    from repro.core.checker import VetVerdict

    triage = TriageCenter(fitted_checker.key_api_ids)
    gen = CorpusGenerator(sdk, seed=507, catalog=catalog)
    # Build a benign app and its update; mark the parent as known benign.
    first = gen.sample_app(archetype="tool", update_prob=0.0)
    triage.known_benign_md5s.add(first.md5)
    update = None
    for _ in range(200):
        candidate = gen.sample_app(archetype="tool", update_prob=0.95)
        if candidate.parent_md5 == first.md5:
            update = candidate
            break
    if update is None:
        pytest.skip("no direct update sampled")
    verdict = VetVerdict(update.md5, True, 0.9, 1.0, False)
    report = triage.triage_flagged(
        [update], [verdict], np.array([False])
    )
    assert report.n_fast_vetted == 1
    assert report.manual_minutes < 10
