"""Tests for metrics and statistics against known values and scipy."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.ml.metrics import (
    ClassificationReport,
    confusion_counts,
    evaluate,
    mean_report,
)
from repro.ml.stats import (
    fit_trimodal,
    r2_score,
    rankdata,
    spearman_rho,
    spearman_rho_columns,
)


# -- metrics ------------------------------------------------------------


def test_confusion_counts_basic():
    y = np.array([1, 1, 0, 0, 1])
    p = np.array([1, 0, 1, 0, 1])
    assert confusion_counts(y, p) == (2, 1, 1, 1)


def test_confusion_shape_mismatch():
    with pytest.raises(ValueError):
        confusion_counts(np.array([1]), np.array([1, 0]))


def test_report_values():
    rep = ClassificationReport(tp=8, fp=2, tn=85, fn=5)
    assert rep.precision == pytest.approx(0.8)
    assert rep.recall == pytest.approx(8 / 13)
    assert rep.f1 == pytest.approx(
        2 * rep.precision * rep.recall / (rep.precision + rep.recall)
    )
    assert rep.accuracy == pytest.approx(93 / 100)
    assert rep.false_positive_rate == pytest.approx(2 / 87)


def test_report_degenerate_cases():
    rep = ClassificationReport(0, 0, 10, 0)
    assert rep.precision == 0.0 and rep.recall == 0.0 and rep.f1 == 0.0


def test_mean_report_pools_counts():
    a = ClassificationReport(1, 2, 3, 4)
    b = ClassificationReport(10, 20, 30, 40)
    pooled = mean_report([a, b])
    assert (pooled.tp, pooled.fp, pooled.tn, pooled.fn) == (11, 22, 33, 44)
    with pytest.raises(ValueError):
        mean_report([])


def test_evaluate_wraps_counts():
    rep = evaluate([True, False], [True, True])
    assert (rep.tp, rep.fp) == (1, 1)


# -- rankdata / spearman -----------------------------------------------


def test_rankdata_matches_scipy(rng):
    for _ in range(10):
        x = rng.integers(0, 5, size=50).astype(float)
        assert np.allclose(rankdata(x), scipy_stats.rankdata(x))


def test_spearman_matches_scipy(rng):
    for _ in range(10):
        x = rng.normal(size=80)
        y = 0.4 * x + rng.normal(size=80)
        mine = spearman_rho(x, y)
        ref = scipy_stats.spearmanr(x, y).statistic
        assert mine == pytest.approx(ref, abs=1e-12)


def test_spearman_with_ties_matches_scipy(rng):
    x = rng.integers(0, 3, size=100).astype(float)
    y = rng.integers(0, 2, size=100).astype(float)
    if np.unique(x).size > 1 and np.unique(y).size > 1:
        assert spearman_rho(x, y) == pytest.approx(
            scipy_stats.spearmanr(x, y).statistic, abs=1e-12
        )


def test_spearman_constant_input_returns_zero():
    assert spearman_rho(np.ones(10), np.arange(10.0)) == 0.0


def test_spearman_columns_equals_per_column(rng):
    X = (rng.random((200, 8)) < 0.3).astype(np.uint8)
    y = (rng.random(200) < 0.2).astype(np.uint8)
    fast = spearman_rho_columns(X, y)
    for j in range(8):
        slow = spearman_rho(X[:, j].astype(float), y.astype(float))
        assert fast[j] == pytest.approx(slow, abs=1e-10)


def test_spearman_columns_rejects_nonbinary(rng):
    with pytest.raises(ValueError):
        spearman_rho_columns(rng.normal(size=(10, 3)), np.zeros(10))


# -- r2 and trimodal fit -------------------------------------------------


def test_r2_perfect_and_mean_fit():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == 1.0
    assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)


def test_r2_constant_observed():
    y = np.ones(4)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 1) == 0.0


def test_trimodal_fit_recovers_piecewise_curve():
    # Build data straight from the paper's Eq. (1) shape.
    n = np.concatenate(
        [
            np.arange(10, 800, 20),
            np.arange(800, 1001, 20),
            np.geomspace(1100, 50_000, 25),
        ]
    )
    t = np.where(
        n < 800,
        0.006 * n + 2.06,
        np.where(n <= 1000, 1e-9 * n**3.44, 6.4 * np.log(n) - 43.36),
    )
    fit = fit_trimodal(n, t, break1=800, break2=1000)
    assert fit.r2_head > 0.99
    assert fit.r2_middle > 0.99
    assert fit.r2_tail > 0.99
    assert fit.a1 == pytest.approx(0.006, rel=0.05)
    assert fit.b2 == pytest.approx(3.44, rel=0.05)
    pred = fit.predict(np.array([100.0, 900.0, 10_000.0]))
    assert pred[0] == pytest.approx(0.006 * 100 + 2.06, rel=0.05)


def test_trimodal_fit_validation():
    n = np.arange(1, 100.0)
    with pytest.raises(ValueError):
        fit_trimodal(n, n, break1=50, break2=40)
    with pytest.raises(ValueError):
        fit_trimodal(n, n, break1=98, break2=99)  # empty tail
