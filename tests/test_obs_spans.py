"""Unit tests for span tracing and the JSONL event sink."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanEvent,
    SpanSink,
    record_span,
    set_default_registry,
    span,
)


def test_span_records_histogram_and_event():
    reg = MetricsRegistry()
    sink = SpanSink()
    with span("work", registry=reg, sink=sink, job="x"):
        pass
    snap = reg.histogram("work_seconds")
    assert snap is not None and snap.count == 1
    (event,) = sink.events()
    assert event.name == "work"
    assert event.clock == "wall"
    assert event.parent == "" and event.depth == 0
    assert event.attrs == {"job": "x"}
    assert event.duration >= 0.0


def test_spans_nest_with_parent_and_depth():
    reg = MetricsRegistry()
    sink = SpanSink()
    with span("outer", registry=reg, sink=sink):
        with span("inner", registry=reg, sink=sink):
            pass
    inner, outer = sink.events()  # inner exits first
    assert inner.name == "inner"
    assert inner.parent == "outer" and inner.depth == 1
    assert outer.parent == "" and outer.depth == 0


def test_span_records_error_attribute_on_exception():
    reg = MetricsRegistry()
    sink = SpanSink()
    with pytest.raises(RuntimeError):
        with span("doomed", registry=reg, sink=sink):
            raise RuntimeError("boom")
    (event,) = sink.events()
    assert event.attrs["error"] == "RuntimeError"
    # The duration still lands in the histogram.
    assert reg.histogram("doomed_seconds").count == 1


def test_span_uses_default_registry_when_none_given():
    mine = MetricsRegistry()
    previous = set_default_registry(mine)
    try:
        with span("ambient"):
            pass
    finally:
        set_default_registry(previous)
    assert mine.histogram("ambient_seconds").count == 1


def test_span_stacks_are_per_thread():
    reg = MetricsRegistry()
    sink = SpanSink()
    seen = []

    def other_thread():
        with span("worker_side", registry=reg, sink=sink):
            pass
        seen.extend(sink.events("worker_side"))

    with span("main_side", registry=reg, sink=sink):
        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
    # The worker's span must not see the main thread's open span as
    # its parent.
    (worker_event,) = seen
    assert worker_event.parent == "" and worker_event.depth == 0


def test_record_span_sim_clock_feeds_minutes_histogram():
    reg = MetricsRegistry()
    sink = SpanSink()
    event = record_span(
        "pipeline_task", 10.0, 12.5, registry=reg, sink=sink, slot=3
    )
    assert event.clock == "sim"
    assert event.duration == pytest.approx(2.5)
    snap = reg.histogram("pipeline_task_minutes")
    assert snap.count == 1 and snap.sum == pytest.approx(2.5)
    assert sink.events()[0].attrs == {"slot": 3}


def test_record_span_rejects_negative_interval():
    with pytest.raises(ValueError, match="end at or after"):
        record_span("x", 5.0, 4.0, registry=MetricsRegistry())


def test_sink_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    reg = MetricsRegistry()
    sink = SpanSink(path)
    with span("a", registry=reg, sink=sink, md5="m1"):
        pass
    record_span("b", 0.0, 1.0, registry=reg, sink=sink)
    loaded = SpanSink.read(path)
    assert [e.name for e in loaded] == ["a", "b"]
    assert loaded[0].attrs == {"md5": "m1"}
    assert loaded[1].clock == "sim"
    assert loaded == sink.events()


def test_sink_read_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"name": "ok", "start": 0, "duration": 1}\n{oops\n')
    with pytest.raises(ValueError, match="malformed span line"):
        SpanSink.read(path)


def test_batch_scoring_records_one_labelled_predict_span():
    """One outermost ml_predict_seconds record per batch call, with a
    batch_size label — not one per row and not nested double-counts."""
    import numpy as np

    from repro.ml.logistic import LogisticRegression

    reg = MetricsRegistry()
    rng = np.random.default_rng(11)
    X = (rng.random((40, 12)) < 0.3).astype(np.uint8)
    y = (rng.random(40) < 0.5).astype(np.int8)
    y[:2] = (0, 1)
    clf = LogisticRegression(epochs=5).bind_registry(reg)
    clf.fit(X, y)
    assert reg.histogram_count("ml_predict_seconds") == 0
    clf.predict_proba_batch(X[:17])
    assert reg.histogram_count("ml_predict_seconds") == 1
    snap = reg.histogram(
        "ml_predict_seconds", classifier="lr", batch_size="17"
    )
    assert snap is not None and snap.count == 1
    # The per-row path keeps its unlabelled series.
    clf.predict_proba(X[:1])
    assert reg.histogram("ml_predict_seconds", classifier="lr").count == 1


def test_fallback_batch_shim_does_not_double_record():
    """The base-class shim delegates to predict_proba; the re-entrancy
    guard must keep that inner call from recording a second span."""
    import numpy as np

    from repro.ml.base import Classifier

    class MeanScore(Classifier):
        name = "mean"

        def fit(self, X, y):
            return self

        def predict_proba(self, X):
            return np.asarray(X, dtype=np.float64).mean(axis=1)

    reg = MetricsRegistry()
    clf = MeanScore().bind_registry(reg)
    clf.predict_proba_batch(np.zeros((9, 4), dtype=np.uint8))
    assert reg.histogram_count("ml_predict_seconds") == 1
    snap = reg.histogram(
        "ml_predict_seconds", classifier="mean", batch_size="9"
    )
    assert snap is not None and snap.count == 1


def test_sink_buffer_is_bounded_but_counts_all():
    sink = SpanSink(capacity=4)
    for i in range(10):
        sink.emit(SpanEvent(name=f"s{i}", start=0.0, duration=0.0))
    assert len(sink) == 4
    assert sink.emitted == 10
    assert [e.name for e in sink.events()] == ["s6", "s7", "s8", "s9"]
