"""Tests for the analysis server cluster scheduler."""

import numpy as np
import pytest

from repro.emulator.cluster import AnalysisServer, ServerCluster


def test_server_reserves_service_cores():
    server = AnalysisServer()
    assert server.cores == 20 and server.emulator_slots == 16
    assert server.service_cores == 4


def test_server_validation():
    with pytest.raises(ValueError):
        AnalysisServer(cores=16, emulator_slots=16)
    with pytest.raises(ValueError):
        AnalysisServer(cores=4, emulator_slots=0)


def test_cluster_validation():
    with pytest.raises(ValueError):
        ServerCluster(n_servers=0)


def test_schedule_conservation():
    cluster = ServerCluster(n_servers=1)
    durations = [1.0, 2.0, 3.0, 4.0]
    report = cluster.schedule(durations)
    assert len(report.tasks) == 4
    assert report.slot_busy_minutes.sum() == pytest.approx(sum(durations))


def test_makespan_bounds():
    cluster = ServerCluster(n_servers=1)
    rng = np.random.default_rng(0)
    durations = rng.uniform(0.5, 3.0, size=200)
    report = cluster.schedule(durations)
    slots = cluster.total_slots
    lower = max(durations.max(), durations.sum() / slots)
    assert report.makespan_minutes >= lower - 1e-9
    assert report.makespan_minutes <= durations.sum()


def test_no_slot_overlap():
    cluster = ServerCluster(n_servers=2)
    report = cluster.schedule(np.full(100, 1.7))
    by_slot = {}
    for t in report.tasks:
        by_slot.setdefault((t.server, t.slot), []).append(t)
    for tasks in by_slot.values():
        tasks.sort(key=lambda t: t.start_minute)
        for prev, nxt in zip(tasks, tasks[1:]):
            assert nxt.start_minute >= prev.end_minute - 1e-9


def test_single_server_handles_10k_apps_per_day():
    # §5.2: one 16-slot server vets ~10K apps/day at 1.92 min/app
    # end-to-end.
    cluster = ServerCluster(n_servers=1)
    rng = np.random.default_rng(1)
    durations = rng.lognormal(np.log(1.8), 0.4, size=2000)
    report = cluster.schedule(durations)
    assert report.throughput_per_day() > 10_000


def test_empty_schedule():
    report = ServerCluster().schedule([])
    assert report.makespan_minutes == 0.0
    assert report.utilization == 0.0


def test_empty_schedule_throughput_is_zero():
    """Regression: zero-task batches reported infinite throughput."""
    report = ServerCluster().schedule([])
    assert report.throughput_per_day() == 0.0


def test_zero_duration_tasks_report_zero_throughput():
    report = ServerCluster().schedule([0.0, 0.0, 0.0])
    assert report.makespan_minutes == 0.0
    assert report.throughput_per_day() == 0.0
    assert report.utilization == 0.0


def test_from_executed_matches_recorded_tasks():
    from repro.emulator.cluster import ScheduledTask, ScheduleReport

    tasks = [
        ScheduledTask(app_index=0, server=0, slot=0,
                      start_minute=0.0, end_minute=2.0),
        ScheduledTask(app_index=1, server=0, slot=1,
                      start_minute=0.0, end_minute=1.0),
        ScheduledTask(app_index=2, server=0, slot=1,
                      start_minute=1.0, end_minute=4.0),
    ]
    report = ScheduleReport.from_executed(tasks, n_slots=2,
                                          slots_per_server=16)
    assert report.executed
    assert report.makespan_minutes == 4.0
    assert report.slot_busy_minutes.tolist() == [2.0, 4.0]
    assert report.throughput_per_day() == pytest.approx(3 * 1440 / 4.0)


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        ServerCluster().schedule([-1.0])


def test_utilization_upper_bound():
    report = ServerCluster().schedule(np.full(64, 2.0))
    assert 0 < report.utilization <= 1.0
