"""Tests for components, manifest, dex, and APK models."""

import pytest

from repro.android.apk import Apk
from repro.android.components import Activity, BroadcastReceiver, Service
from repro.android.dex import (
    ApiCallSite,
    DexCode,
    EmulatorProbe,
    NativeIsa,
    NativeLib,
)
from repro.android.manifest import AndroidManifest


def make_manifest(**kwargs):
    defaults = dict(
        package_name="com.example.app",
        version_code=1,
        requested_permissions=("android.permission.INTERNET",),
        activities=(
            Activity("A0", referenced=True),
            Activity("A1", referenced=False),
        ),
        receivers=(
            BroadcastReceiver(
                "R0", intent_filters=("android.intent.action.BOOT_COMPLETED",)
            ),
        ),
    )
    defaults.update(kwargs)
    return AndroidManifest(**defaults)


def make_apk(**kwargs):
    defaults = dict(
        manifest=make_manifest(),
        dex=DexCode(call_sites=(ApiCallSite(3, 1.0, 0.2),)),
        is_malicious=False,
        family="tool",
    )
    defaults.update(kwargs)
    return Apk(**defaults)


# -- components ---------------------------------------------------------


def test_activity_rejects_bad_weight():
    with pytest.raises(ValueError):
        Activity("X", reach_weight=0.0)


def test_service_defaults():
    svc = Service("S")
    assert not svc.exported and not svc.foreground


# -- manifest -----------------------------------------------------------


def test_referenced_activities_filtering():
    m = make_manifest()
    assert m.declared_activity_count == 2
    assert [a.name for a in m.referenced_activities] == ["A0"]


def test_receiver_intent_actions_sorted_unique():
    m = make_manifest(
        receivers=(
            BroadcastReceiver("R0", intent_filters=("b", "a")),
            BroadcastReceiver("R1", intent_filters=("a",)),
        )
    )
    assert m.receiver_intent_actions == ("a", "b")


def test_manifest_rejects_empty_package():
    with pytest.raises(ValueError):
        make_manifest(package_name="")


def test_manifest_rejects_duplicate_activities():
    with pytest.raises(ValueError):
        make_manifest(activities=(Activity("A"), Activity("A")))


def test_manifest_requests():
    m = make_manifest()
    assert m.requests("android.permission.INTERNET")
    assert not m.requests("android.permission.SEND_SMS")


# -- dex ----------------------------------------------------------------


def test_call_site_validation():
    with pytest.raises(ValueError):
        ApiCallSite(-1)
    with pytest.raises(ValueError):
        ApiCallSite(1, rate_multiplier=0.0)
    with pytest.raises(ValueError):
        ApiCallSite(1, reach_quantile=1.5)


def test_dex_rejects_duplicate_sites():
    with pytest.raises(ValueError):
        DexCode(call_sites=(ApiCallSite(1), ApiCallSite(1)))


def test_dex_direct_ids_sorted():
    dex = DexCode(call_sites=(ApiCallSite(9), ApiCallSite(2), ApiCallSite(5)))
    assert dex.direct_api_ids == (2, 5, 9)


def test_native_lib_flags():
    ok = NativeLib("a.so", NativeIsa.ARM, houdini_compatible=True)
    bad = NativeLib("b.so", NativeIsa.ARM, houdini_compatible=False)
    x86 = NativeLib("c.so", NativeIsa.X86, houdini_compatible=False)
    assert DexCode(native_libs=(ok,)).has_arm_native_code
    assert not DexCode(native_libs=(ok,)).houdini_incompatible
    assert DexCode(native_libs=(bad,)).houdini_incompatible
    # x86 libraries never need translation, compatible or not.
    assert not DexCode(native_libs=(x86,)).houdini_incompatible


def test_native_lib_rejects_bad_size():
    with pytest.raises(ValueError):
        NativeLib("a.so", size_mb=0.0)


def test_site_for():
    dex = DexCode(call_sites=(ApiCallSite(4, 2.0, 0.1),))
    assert dex.site_for(4).rate_multiplier == 2.0
    assert dex.site_for(5) is None


# -- apk ----------------------------------------------------------------


def test_md5_stable_and_content_sensitive():
    a = make_apk()
    b = make_apk()
    assert a.md5 == b.md5
    c = make_apk(dex=DexCode(call_sites=(ApiCallSite(3, 1.5, 0.2),)))
    assert a.md5 != c.md5


def test_md5_changes_with_version():
    a = make_apk()
    b = make_apk(manifest=make_manifest(version_code=2))
    assert a.md5 != b.md5
    assert a.package_name == b.package_name


def test_update_linkage():
    a = make_apk()
    b = make_apk(
        manifest=make_manifest(version_code=2), parent_md5=a.md5
    )
    assert not a.is_update
    assert b.is_update


def test_apk_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        make_apk(size_mb=0.0)


def test_apk_hashable_by_md5():
    a = make_apk()
    b = make_apk()
    assert len({a, b}) == 1


def test_emulator_probe_enum_complete():
    # The six probe channels from the paper's hardening list.
    assert len(EmulatorProbe) == 6
