"""Tests for sensor trace synthesis and liveness heuristics."""

import numpy as np
import pytest

from repro.emulator.sensors import (
    GRAVITY,
    SAMPLE_RATE_HZ,
    SensorTrace,
    SensorTraceLibrary,
)


@pytest.fixture(scope="module")
def library():
    return SensorTraceLibrary(n_devices=4, seed=1)


def test_trace_is_deterministic(library):
    a = library.trace(device=1, sensor="accelerometer")
    b = library.trace(device=1, sensor="accelerometer")
    assert np.array_equal(a.samples, b.samples)
    assert np.array_equal(a.timestamps, b.timestamps)


def test_devices_differ(library):
    a = library.trace(device=0)
    b = library.trace(device=1)
    assert not np.array_equal(a.samples, b.samples)


def test_replayed_trace_looks_alive(library):
    for sensor in ("accelerometer", "gyroscope"):
        trace = library.trace(device=0, sensor=sensor)
        assert trace.looks_alive(), sensor


def test_flat_trace_fails_liveness(library):
    flat = library.flat_trace("accelerometer")
    assert not flat.looks_alive()
    assert not library.flat_trace("gyroscope").looks_alive()


def test_accelerometer_carries_gravity(library):
    trace = library.trace(device=2, sensor="accelerometer")
    magnitude = np.linalg.norm(trace.samples.mean(axis=0))
    assert 0.7 * GRAVITY < magnitude < 1.3 * GRAVITY


def test_sampling_rate_and_jitter(library):
    trace = library.trace(device=0, duration_s=5.0)
    periods = np.diff(trace.timestamps)
    assert abs(periods.mean() - 1.0 / SAMPLE_RATE_HZ) < 0.002
    # Real sampling jitters; a perfectly regular clock is suspicious.
    assert periods.std() > 0


def test_duration_approximately_honored(library):
    trace = library.trace(device=0, duration_s=8.0)
    assert 6.0 < trace.duration_seconds < 10.0


def test_validation():
    lib = SensorTraceLibrary(n_devices=2)
    with pytest.raises(ValueError):
        lib.trace(device=5)
    with pytest.raises(ValueError):
        lib.trace(sensor="barometer")
    with pytest.raises(ValueError):
        lib.trace(duration_s=0)
    with pytest.raises(ValueError):
        SensorTraceLibrary(n_devices=0)


def test_trace_shape_validation():
    t = np.arange(1.0, 11.0)
    with pytest.raises(ValueError):
        SensorTrace("accelerometer", t, np.zeros((10, 2)))
    with pytest.raises(ValueError):
        SensorTrace("accelerometer", t[:5], np.zeros((10, 3)))
    bad_time = t.copy()
    bad_time[3] = bad_time[2]
    with pytest.raises(ValueError):
        SensorTrace("accelerometer", bad_time, np.zeros((10, 3)))
