"""Property-based invariants for the scheduler and the vetting pipeline.

Invariants checked (over hypothesis-generated workloads):

* simulated and executed schedules never overlap two tasks on a slot;
* ``makespan == max(end_minute)`` and busy time is conserved;
* every submitted app appears exactly once in the pipeline's report;
* observation-cache hits never change verdicts;
* ``FeatureBlock.from_observations`` round-trips ``FeatureSpace.encode``
  row for row, for every feature mode and encoding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import DynamicAnalysisEngine
from repro.core.features import (
    AppObservation,
    FeatureBlock,
    FeatureMode,
    FeatureSpace,
)
from repro.core.pipeline import ObservationCache, VettingPipeline
from repro.emulator.cluster import (
    AnalysisServer,
    ScheduleReport,
    ServerCluster,
)


def _assert_no_slot_overlap(report: ScheduleReport) -> None:
    by_slot = {}
    for t in report.tasks:
        by_slot.setdefault((t.server, t.slot), []).append(t)
    for tasks in by_slot.values():
        tasks.sort(key=lambda t: t.start_minute)
        for prev, nxt in zip(tasks, tasks[1:]):
            assert nxt.start_minute >= prev.end_minute - 1e-9


# -- simulated list scheduling -------------------------------------------


@given(
    durations=st.lists(
        st.floats(0.0, 30.0, allow_nan=False), min_size=0, max_size=120
    ),
    slots=st.integers(1, 19),
)
@settings(max_examples=60, deadline=None)
def test_simulated_schedule_invariants(durations, slots):
    cluster = ServerCluster(
        n_servers=1, server=AnalysisServer(cores=20, emulator_slots=slots)
    )
    report = cluster.schedule(durations)
    assert len(report.tasks) == len(durations)
    assert sorted(t.app_index for t in report.tasks) == list(
        range(len(durations))
    )
    assert report.makespan_minutes == pytest.approx(
        max((t.end_minute for t in report.tasks), default=0.0)
    )
    assert report.slot_busy_minutes.sum() == pytest.approx(sum(durations))
    _assert_no_slot_overlap(report)
    assert 0.0 <= report.utilization <= 1.0 + 1e-9
    assert report.throughput_per_day() >= 0.0


def test_zero_task_schedule_returns_zero_throughput():
    """Regression: empty batches used to report infinite throughput."""
    report = ServerCluster().schedule([])
    assert report.throughput_per_day() == 0.0
    assert report.utilization == 0.0
    assert report.makespan_minutes == 0.0
    executed = ScheduleReport.from_executed([], n_slots=16,
                                            slots_per_server=16)
    assert executed.throughput_per_day() == 0.0
    assert executed.utilization == 0.0


# -- executed pipeline schedules ------------------------------------------


@pytest.fixture(scope="module")
def app_pool(sdk, catalog):
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=777, catalog=catalog)
    return [gen.sample_app(malicious=bool(i % 3 == 0)) for i in range(40)]


@given(
    n_apps=st.integers(0, 40),
    workers=st.integers(1, 9),
    seed=st.integers(0, 3),
)
@settings(max_examples=12, deadline=None)
def test_executed_schedule_invariants(sdk, app_pool, n_apps, workers, seed):
    apps = app_pool[:n_apps]
    engine = DynamicAnalysisEngine(sdk, [], seed=seed)
    result = VettingPipeline(engine, workers=workers).run(apps)
    assert not result.failures
    report = result.schedule
    assert report.executed
    # Every submitted app appears exactly once.
    assert sorted(t.app_index for t in report.tasks) == list(range(n_apps))
    assert len(result.analyses) == n_apps
    assert all(a is not None for a in result.analyses)
    assert report.makespan_minutes == pytest.approx(
        max((t.end_minute for t in report.tasks), default=0.0)
    )
    _assert_no_slot_overlap(report)
    total = sum(a.total_minutes for a in result.analyses)
    assert report.slot_busy_minutes.sum() == pytest.approx(total)


def test_cache_hits_never_change_verdicts(fitted_checker, sdk, catalog):
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=881, catalog=catalog)
    day = gen.generate(25)
    cache = ObservationCache()
    engine = fitted_checker.production_engine
    pipeline = VettingPipeline(engine, workers=4, cache=cache)
    first = pipeline.run(day)
    second = pipeline.run(day)
    assert second.cache_hits == len(day)
    assert second.n_analyzed == 0
    for a, b in zip(first.analyses, second.analyses):
        va = fitted_checker.verdict_from_observation(a.observation)
        vb = fitted_checker.verdict_from_observation(b.observation)
        assert (va.malicious, va.probability) == (
            vb.malicious,
            vb.probability,
        )


def test_cache_persistence_roundtrip(sdk, catalog, tmp_path):
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=882, catalog=catalog)
    day = gen.generate(10)
    path = tmp_path / "observations.jsonl"
    engine = DynamicAnalysisEngine(sdk, sdk.restricted_api_ids, seed=3)
    first = VettingPipeline(
        engine, workers=3, cache=ObservationCache(path)
    ).run(day)
    assert first.cache_misses == len(day)
    # A fresh cache loaded from disk serves every md5 without emulation.
    reloaded = ObservationCache(path)
    assert len(reloaded) == len(day)
    engine2 = DynamicAnalysisEngine(sdk, sdk.restricted_api_ids, seed=3)
    second = VettingPipeline(engine2, workers=3, cache=reloaded).run(day)
    assert second.cache_hits == len(day)
    assert engine2.stats_view.submissions == 0
    assert [a.observation for a in second.analyses] == [
        a.observation for a in first.analyses
    ]


# -- FeatureBlock round-trips the encoder ---------------------------------


def _observations(sdk):
    """Arbitrary observations: known and unknown APIs/permissions/intents."""
    api_ids = st.integers(0, len(sdk) - 1)
    perm_names = list(sdk.permissions.names) + ["com.fake.UNKNOWN_PERM"]
    intent_names = list(sdk.intents.names) + ["android.intent.action.FAKE"]
    return st.builds(
        AppObservation,
        apk_md5=st.text("0123456789abcdef", min_size=8, max_size=32),
        invoked_api_ids=st.lists(api_ids, max_size=25).map(tuple),
        permissions=st.lists(
            st.sampled_from(perm_names), max_size=8
        ).map(tuple),
        intents=st.lists(
            st.sampled_from(intent_names), max_size=8
        ).map(tuple),
        invoked_api_counts=st.lists(
            st.tuples(api_ids, st.integers(0, 500_000)), max_size=10
        ).map(tuple),
    )


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_feature_block_roundtrips_encode(sdk, data):
    """block[i] must equal encode(obs_i) bit for bit, any mode/encoding."""
    mode = data.draw(st.sampled_from(list(FeatureMode)))
    encoding = data.draw(st.sampled_from(["binary", "histogram"]))
    tracked = data.draw(
        st.lists(
            st.integers(0, len(sdk) - 1),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    space = FeatureSpace(sdk, tracked, mode, encoding=encoding)
    observations = data.draw(st.lists(_observations(sdk), max_size=6))
    block = FeatureBlock.from_observations(space, observations)
    assert block.n_apps == len(observations)
    assert block.n_features == space.n_features
    assert block.matrix.dtype == np.uint8
    for i, obs in enumerate(observations):
        assert np.array_equal(block[i], space.encode(obs))
        assert block.md5s[i] == obs.apk_md5


def test_duplicate_md5s_in_one_batch_emulate_once(sdk, catalog):
    from repro.corpus.generator import CorpusGenerator

    gen = CorpusGenerator(sdk, seed=883, catalog=catalog)
    apk = gen.sample_app(malicious=False)
    batch = [apk] * 6
    engine = DynamicAnalysisEngine(sdk, [], seed=1)
    result = VettingPipeline(
        engine, workers=4, cache=ObservationCache()
    ).run(batch)
    assert engine.stats_view.submissions == 1
    assert result.n_analyzed == 1
    assert result.n_cached == 5
    observations = [a.observation for a in result.analyses]
    assert all(o == observations[0] for o in observations)
