"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_command(capsys):
    code = main(
        ["demo", "--apis", "900", "--train", "220", "--fresh", "60",
         "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "key APIs:" in out
    assert "precision=" in out
    assert "mean scan:" in out


def test_vet_command_writes_log(tmp_path, capsys):
    log = tmp_path / "analysis.jsonl"
    code = main(
        ["vet", "--apis", "900", "--train", "220", "--fresh", "40",
         "--seed", "3", "--log", str(log)]
    )
    assert code == 0
    assert "wrote 40 analysis records" in capsys.readouterr().out
    from repro.core.reporting import read_log

    records = list(read_log(log))
    assert len(records) == 40
    assert all(r.verdict is not None for r in records)


def test_evolve_command(capsys):
    code = main(
        ["evolve", "--apis", "900", "--train", "250", "--months", "2",
         "--per-month", "80", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("\n") >= 3  # header + 2 months


def test_vet_command_metrics_and_trace_out(tmp_path, capsys):
    import json

    from repro.obs import MetricsRegistry, SpanSink

    log = tmp_path / "analysis.jsonl"
    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.jsonl"
    code = main(
        ["vet", "--apis", "900", "--train", "220", "--fresh", "40",
         "--seed", "3", "--log", str(log), "--workers", "4",
         "--metrics-out", str(metrics), "--trace-out", str(trace)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "metrics snapshot:" in out
    assert "span trace:" in out

    snapshot = json.loads(metrics.read_text())
    registry = MetricsRegistry.from_dict(snapshot)
    counts = registry.counters()
    # The acceptance invariant: every submission reached an outcome.
    assert (
        counts["pipeline_analyzed_total"]
        + counts.get("pipeline_cached_total", 0)
        + counts.get("pipeline_failed_total", 0)
        == counts["pipeline_submissions_total"]
        == 40
    )
    # The snapshot re-renders as Prometheus exposition.
    assert "# TYPE pipeline_submissions_total counter" in \
        registry.to_prometheus()
    # ML wall-times landed in the same registry.
    assert registry.histogram_count("ml_fit_seconds") >= 1

    events = SpanSink.read(trace)
    assert any(e.name == "pipeline_task" for e in events)
    assert any(e.name == "engine_attempt" for e in events)


def test_metrics_command_renders_snapshot(tmp_path, capsys):
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    reg.inc("pipeline_submissions_total", 7)
    reg.observe("lat_seconds", 0.5, buckets=(1.0,))
    snap = tmp_path / "m.json"
    snap.write_text(reg.to_json())

    code = main(["metrics", str(snap), "--format", "prom"])
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE pipeline_submissions_total counter" in out
    assert "pipeline_submissions_total 7" in out
    assert 'lat_seconds_bucket{le="+Inf"} 1' in out

    code = main(["metrics", str(snap), "--format", "json"])
    import json

    rendered = json.loads(capsys.readouterr().out)
    assert MetricsRegistry.from_dict(rendered).value(
        "pipeline_submissions_total"
    ) == 7


def test_metrics_command_demo_run(capsys):
    code = main(
        ["metrics", "--format", "prom", "--apis", "900", "--train", "200",
         "--fresh", "30", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE engine_submissions_total counter" in out
    assert "# TYPE pipeline_run_seconds histogram" in out
    assert "# TYPE cluster_slot_utilization gauge" in out
