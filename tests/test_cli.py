"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_command(capsys):
    code = main(
        ["demo", "--apis", "900", "--train", "220", "--fresh", "60",
         "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "key APIs:" in out
    assert "precision=" in out
    assert "mean scan:" in out


def test_vet_command_writes_log(tmp_path, capsys):
    log = tmp_path / "analysis.jsonl"
    code = main(
        ["vet", "--apis", "900", "--train", "220", "--fresh", "40",
         "--seed", "3", "--log", str(log)]
    )
    assert code == 0
    assert "wrote 40 analysis records" in capsys.readouterr().out
    from repro.core.reporting import read_log

    records = list(read_log(log))
    assert len(records) == 40
    assert all(r.verdict is not None for r in records)


def test_evolve_command(capsys):
    code = main(
        ["evolve", "--apis", "900", "--train", "250", "--months", "2",
         "--per-month", "80", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("\n") >= 3  # header + 2 months


def test_vet_command_metrics_and_trace_out(tmp_path, capsys):
    import json

    from repro.obs import MetricsRegistry, SpanSink

    log = tmp_path / "analysis.jsonl"
    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.jsonl"
    code = main(
        ["vet", "--apis", "900", "--train", "220", "--fresh", "40",
         "--seed", "3", "--log", str(log), "--workers", "4",
         "--metrics-out", str(metrics), "--trace-out", str(trace)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "metrics snapshot:" in out
    assert "span trace:" in out

    snapshot = json.loads(metrics.read_text())
    registry = MetricsRegistry.from_dict(snapshot)
    counts = registry.counters()
    # The acceptance invariant: every submission reached an outcome.
    assert (
        counts["pipeline_analyzed_total"]
        + counts.get("pipeline_cached_total", 0)
        + counts.get("pipeline_failed_total", 0)
        == counts["pipeline_submissions_total"]
        == 40
    )
    # The snapshot re-renders as Prometheus exposition.
    assert "# TYPE pipeline_submissions_total counter" in \
        registry.to_prometheus()
    # ML wall-times landed in the same registry.
    assert registry.histogram_count("ml_fit_seconds") >= 1

    events = SpanSink.read(trace)
    assert any(e.name == "pipeline_task" for e in events)
    assert any(e.name == "engine_attempt" for e in events)


def test_metrics_command_renders_snapshot(tmp_path, capsys):
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    reg.inc("pipeline_submissions_total", 7)
    reg.observe("lat_seconds", 0.5, buckets=(1.0,))
    snap = tmp_path / "m.json"
    snap.write_text(reg.to_json())

    code = main(["metrics", str(snap), "--format", "prom"])
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE pipeline_submissions_total counter" in out
    assert "pipeline_submissions_total 7" in out
    assert 'lat_seconds_bucket{le="+Inf"} 1' in out

    code = main(["metrics", str(snap), "--format", "json"])
    import json

    rendered = json.loads(capsys.readouterr().out)
    assert MetricsRegistry.from_dict(rendered).value(
        "pipeline_submissions_total"
    ) == 7


def test_metrics_command_demo_run(capsys):
    code = main(
        ["metrics", "--format", "prom", "--apis", "900", "--train", "200",
         "--fresh", "30", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE engine_submissions_total counter" in out
    assert "# TYPE pipeline_run_seconds histogram" in out
    assert "# TYPE cluster_slot_utilization gauge" in out


def _write_builtin_ruleset(path):
    import json

    from repro.rules import builtin_ruleset

    path.write_text(json.dumps({
        "version": 1,
        "rules": [s.to_dict() for s in builtin_ruleset()],
    }))
    return path


def test_rules_mine_and_diff_commands(tmp_path, capsys):
    out = tmp_path / "mined.json"
    code = main(
        ["rules", "mine", "--apis", "800", "--train", "220",
         "--per-family", "15", "--benign", "150", "--seed", "5",
         "--out", str(out)]
    )
    text = capsys.readouterr().out
    assert code == 0
    assert out.exists()
    assert "mined " in text and "artifact:" in text

    # The artifact passes the stock linter against the same SDK.
    code = main(
        ["rules", "lint", str(out), "--apis", "800", "--seed", "5"]
    )
    assert code == 0
    assert "0 error(s)" in capsys.readouterr().out

    # Diff against the bundled set reports the mined rules as added.
    base = _write_builtin_ruleset(tmp_path / "builtin.json")
    code = main(["rules", "diff", str(base), str(out)])
    text = capsys.readouterr().out
    assert code == 0
    assert " added, 0 removed, 0 changed" in text
    assert "+ mined_" in text

    code = main(["rules", "diff", str(out), str(out)])
    assert code == 0
    assert "identical" in capsys.readouterr().out


def test_rules_diff_missing_file(tmp_path, capsys):
    code = main(
        ["rules", "diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")]
    )
    assert code == 2
    assert "no such ruleset" in capsys.readouterr().err


def test_rules_push_command(tmp_path, capsys, fitted_checker):
    from repro.serve import (
        ModelRegistry,
        OnlineVettingService,
        make_server,
    )

    ruleset = _write_builtin_ruleset(tmp_path / "push.json")
    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    with OnlineVettingService(models) as service:
        server = make_server(service).start_background()
        url = f"http://127.0.0.1:{server.port}"
        try:
            code = main(["rules", "push", str(ruleset), "--url", url])
            text = capsys.readouterr().out
            assert code == 0
            assert "ruleset v1 live" in text
            assert service.healthz()["ruleset_version"] == 1

            # A rejected push (empty ruleset) surfaces the 400 detail.
            bad = tmp_path / "bad.json"
            bad.write_text('{"version": 1, "rules": []}')
            code = main(["rules", "push", str(bad), "--url", url])
            err = capsys.readouterr().err
            assert code == 1
            assert "400" in err
        finally:
            server.stop()

    code = main(
        ["rules", "push", str(tmp_path / "nope.json"), "--url", url]
    )
    assert code == 2
