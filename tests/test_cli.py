"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_command(capsys):
    code = main(
        ["demo", "--apis", "900", "--train", "220", "--fresh", "60",
         "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "key APIs:" in out
    assert "precision=" in out
    assert "mean scan:" in out


def test_vet_command_writes_log(tmp_path, capsys):
    log = tmp_path / "analysis.jsonl"
    code = main(
        ["vet", "--apis", "900", "--train", "220", "--fresh", "40",
         "--seed", "3", "--log", str(log)]
    )
    assert code == 0
    assert "wrote 40 analysis records" in capsys.readouterr().out
    from repro.core.reporting import read_log

    records = list(read_log(log))
    assert len(records) == 40
    assert all(r.verdict is not None for r in records)


def test_evolve_command(capsys):
    code = main(
        ["evolve", "--apis", "900", "--train", "250", "--months", "2",
         "--per-month", "80", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("\n") >= 3  # header + 2 months
