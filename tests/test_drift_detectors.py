"""Tests for the online drift monitors (repro.drift.detectors)."""

import numpy as np
import pytest

from repro.drift import (
    DriftMonitorBank,
    PsiMonitor,
    RollingF1Monitor,
    ShadowAgreementMonitor,
)
from repro.obs import MetricsRegistry


# ----------------------------------------------------------------------
# Shadow agreement
# ----------------------------------------------------------------------


def test_shadow_rolling_agreement():
    monitor = ShadowAgreementMonitor(window=4, min_samples=1)
    assert monitor.rolling_agreement() is None
    assert monitor.drift_score() == 0.0
    for agreed in (True, True, False, True):
        monitor.update(agreed)
    assert monitor.rolling_agreement() == pytest.approx(0.75)
    assert monitor.drift_score() == pytest.approx(0.25)
    # The window rolls: four more disagreements evict the old votes.
    for _ in range(4):
        monitor.update(False)
    assert monitor.rolling_agreement() == 0.0


def test_shadow_alarm_needs_min_samples():
    monitor = ShadowAgreementMonitor(
        window=10, threshold=0.1, min_samples=5
    )
    for _ in range(4):
        monitor.update(False)
    assert not monitor.alarmed  # score 1.0 but only 4 samples
    monitor.update(False)
    assert monitor.alarmed


def test_shadow_publishes_rolling_gauge():
    registry = MetricsRegistry()
    monitor = ShadowAgreementMonitor(window=4, registry=registry)
    monitor.update(True)
    monitor.update(False)
    text = registry.to_prometheus()
    assert "serve_shadow_agreement_rolling 0.5" in text
    assert 'drift_score{monitor="shadow_agreement"} 0.5' in text


# ----------------------------------------------------------------------
# Rolling F1
# ----------------------------------------------------------------------


def test_rolling_f1_tracks_feedback():
    monitor = RollingF1Monitor(window=100, min_samples=1)
    assert monitor.rolling_f1() is None
    monitor.update_many(
        [True, True, False, False], [True, False, True, False]
    )
    # tp=1 fp=1 fn=1 -> precision=recall=f1=0.5
    assert monitor.rolling_f1() == pytest.approx(0.5)
    assert monitor.drift_score() == pytest.approx(0.5)


def test_rolling_f1_all_benign_window_is_quiet():
    monitor = RollingF1Monitor(window=10, threshold=0.2, min_samples=1)
    for _ in range(5):
        monitor.update(False, False)
    assert monitor.rolling_f1() is None
    assert monitor.drift_score() == 0.0
    assert not monitor.alarmed


def test_rolling_f1_alarm_edges():
    monitor = RollingF1Monitor(window=8, threshold=0.2, min_samples=2)
    # Miss every malicious sample: F1 collapses, alarm fires once.
    for _ in range(4):
        monitor.update(False, True)
    assert monitor.alarmed
    assert monitor.alarms == 1
    # Still alarmed; the counter must not re-increment (edge-triggered).
    monitor.update(False, True)
    assert monitor.alarms == 1
    # Recovery clears the alarm; a relapse counts a second alarm.
    for _ in range(8):
        monitor.update(True, True)
    assert not monitor.alarmed
    for _ in range(8):
        monitor.update(False, True)
    assert monitor.alarms == 2


# ----------------------------------------------------------------------
# PSI
# ----------------------------------------------------------------------


def test_psi_requires_reference():
    monitor = PsiMonitor()
    with pytest.raises(RuntimeError):
        monitor.update(np.zeros((4, 3)))


def test_psi_zero_on_identical_distribution(rng):
    monitor = PsiMonitor(window=400, min_samples=10, threshold=0.25)
    reference = (rng.random((200, 12)) < 0.3).astype(np.uint8)
    monitor.set_reference(reference)
    monitor.update(reference)
    assert monitor.psi() == pytest.approx(0.0, abs=1e-9)
    assert not monitor.alarmed


def test_psi_fires_on_shifted_columns(rng):
    monitor = PsiMonitor(window=400, min_samples=10, threshold=0.25)
    monitor.set_reference((rng.random((300, 10)) < 0.1).astype(np.uint8))
    shifted = (rng.random((300, 10)) < 0.9).astype(np.uint8)
    monitor.update(shifted)
    assert monitor.psi() > 0.25
    assert monitor.alarmed
    assert monitor.alarms == 1


def test_psi_column_mismatch_is_loud(rng):
    monitor = PsiMonitor()
    monitor.set_reference(np.zeros((5, 4)))
    with pytest.raises(ValueError):
        monitor.update(np.zeros((5, 6)))


def test_psi_window_eviction():
    monitor = PsiMonitor(window=10, min_samples=1)
    monitor.set_reference(np.full((4, 2), 0.5))
    # Three 5-row batches: the first must be evicted to stay <= window.
    for value in (0.0, 0.0, 1.0):
        monitor.update(np.full((5, 2), value))
    assert monitor.samples == 10
    counts = np.sum([c for c, _ in monitor._batches], axis=0)
    assert counts.tolist() == [5, 5]  # 0-batch + 1-batch remain


def test_psi_accepts_frequency_vector_and_feature_block(rng):
    class Block:
        matrix = (rng.random((50, 6)) < 0.4).astype(np.uint8)

    monitor = PsiMonitor(min_samples=1)
    monitor.set_reference(np.full(6, 0.4))
    monitor.update(Block())
    assert monitor.samples == 50


def test_set_reference_resets_the_window(rng):
    monitor = PsiMonitor(min_samples=1)
    monitor.set_reference(np.full(3, 0.5))
    monitor.update(np.ones((20, 3)))
    assert monitor.samples == 20
    monitor.set_reference(np.full(3, 0.2))
    assert monitor.samples == 0
    assert monitor.psi() == 0.0


# ----------------------------------------------------------------------
# The bank
# ----------------------------------------------------------------------


def test_bank_requires_a_monitor():
    with pytest.raises(ValueError):
        DriftMonitorBank()


def test_bank_default_wires_registry():
    registry = MetricsRegistry()
    bank = DriftMonitorBank.default(registry=registry)
    assert len(bank.monitors) == 3
    bank.record_shadow(False)
    bank.record_feedback(True, False)
    text = registry.to_prometheus()
    assert 'drift_score{monitor="shadow_agreement"}' in text
    assert 'drift_score{monitor="rolling_f1"}' in text


def test_bank_psi_noop_until_reference(rng):
    bank = DriftMonitorBank.default()
    bank.record_block(np.ones((5, 4)))  # silently ignored
    assert bank.psi.samples == 0
    bank.set_psi_reference(np.full(4, 0.5))
    bank.record_block(np.ones((5, 4)))
    assert bank.psi.samples == 5


def test_bank_rollup_and_worst():
    bank = DriftMonitorBank(
        f1=RollingF1Monitor(window=8, threshold=0.2, min_samples=2),
        psi=PsiMonitor(min_samples=1),
    )
    assert not bank.alarmed
    for _ in range(4):
        bank.record_feedback(False, True)
    assert bank.alarmed
    assert bank.alarms_total == 1
    name, score = bank.worst()
    assert name == "rolling_f1"
    assert score == pytest.approx(1.0)
    status = bank.status()
    assert status["alarmed"] is True
    assert set(status["monitors"]) == {"rolling_f1", "psi"}
    bank.reset()
    assert not bank.alarmed
    assert bank.f1.samples == 0
    # Alarm totals survive a reset — they count episodes, not state.
    assert bank.alarms_total == 1
