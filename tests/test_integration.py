"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.core.checker import ApiChecker
from repro.core.features import FeatureMode
from repro.core.vetting import VettingService
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.corpus.market import ReviewPipeline
from repro.emulator.cluster import ServerCluster


@pytest.fixture(scope="module")
def fresh_eval(sdk, catalog):
    gen = CorpusGenerator(sdk, seed=2026, catalog=catalog)
    return gen.generate(450)


def test_full_pipeline_train_to_vet(fitted_checker, fresh_eval):
    """Train on the study corpus, vet unseen apps, check the shape of
    the paper's headline result: high precision and recall, ~1-2 minute
    scans."""
    verdicts = fitted_checker.vet_batch(fresh_eval)
    predicted = np.array([v.malicious for v in verdicts])
    from repro.ml.metrics import evaluate

    report = evaluate(fresh_eval.labels, predicted)
    # Qualitative at test scale: the shared world is deliberately tiny
    # (1400 APIs), which makes benign/malware API overlap far denser
    # than at paper scale, so recall here is a weak lower bound.  The
    # BENCH-scale benches assert the paper's 98/96 operating point.
    assert report.precision > 0.7
    assert report.recall > 0.5
    minutes = np.array([v.analysis_minutes for v in verdicts])
    assert 0.5 < minutes.mean() < 4.0


def test_market_labels_close_enough_to_train_on(
    sdk, corpus, study_observations
):
    """Training on the review pipeline's (noisy) labels instead of
    ground truth must not collapse accuracy."""
    review = ReviewPipeline(seed=55)
    market_labels = review.label_corpus(corpus)
    checker = ApiChecker(sdk, seed=56)
    checker.fit(
        corpus,
        labels=market_labels,
        study_observations=list(study_observations),
    )
    report = checker.evaluate(corpus)
    assert report.f1 > 0.8


def test_vetting_service_day_cycle(fitted_checker, fresh_eval):
    service = VettingService(
        fitted_checker, cluster=ServerCluster(n_servers=1)
    )
    day = fresh_eval.subset(range(80))
    report = service.process_day(day, true_labels=day.labels)
    assert report.n_apps == 80
    # A single 16-slot server comfortably sustains market load.
    assert report.throughput_per_day > 3000
    assert report.fp_report is not None
    # Flagged set should be dominated by true malware.
    if report.n_flagged:
        assert (
            report.fp_report.n_confirmed_malicious
            >= report.fp_report.n_false_positives
        )


def test_feature_mode_ablation_ordering(sdk, corpus, study_observations,
                                        fresh_eval):
    """Fig. 10's qualitative claim: auxiliary features never hurt, and
    the full A+P+I combination is at least as good as API-only (within
    the quantization noise of a small evaluation corpus — the paper's
    operating point is asserted at bench scale)."""
    scores = {}
    for mode in (FeatureMode.A, FeatureMode.API):
        checker = ApiChecker(sdk, feature_mode=mode, seed=57)
        checker.fit(corpus, study_observations=list(study_observations))
        scores[mode] = checker.evaluate(fresh_eval).f1
    assert scores[FeatureMode.API] >= scores[FeatureMode.A] - 0.1


def test_hidden_behaviour_recovered_by_auxiliary_features(
    sdk, catalog, corpus, study_observations
):
    """Reflection-heavy malware evades API features but leaves
    permissions behind — A+P+I must catch more of it than A."""
    gen = CorpusGenerator(sdk, seed=2030, catalog=catalog)
    hiders = []
    while len(hiders) < 25:
        apk = gen.sample_app(malicious=True)
        if len(apk.dex.reflection_api_ids) >= 5:
            hiders.append(apk)
    hider_corpus = AppCorpus(sdk, hiders)

    caught = {}
    for mode in (FeatureMode.A, FeatureMode.API):
        checker = ApiChecker(sdk, feature_mode=mode, seed=58)
        checker.fit(corpus, study_observations=list(study_observations))
        verdicts = checker.vet_batch(hider_corpus)
        caught[mode] = sum(v.malicious for v in verdicts)
    # Within one sample of quantization noise at this corpus size.
    assert caught[FeatureMode.API] >= caught[FeatureMode.A] - 1


def test_update_stream_supports_fast_revetting(sdk, catalog):
    """~90% of flagged apps being updates is what makes FP triage cheap;
    check the update machinery produces md5-linked version chains."""
    gen = CorpusGenerator(sdk, seed=2040, catalog=catalog)
    corpus = gen.generate(400, update_fraction=0.9)
    linked = [a for a in corpus if a.parent_md5 is not None]
    assert len(linked) > 0.4 * len(corpus)
    md5s = {a.md5 for a in corpus}
    with_known_parent = [a for a in linked if a.parent_md5 in md5s]
    assert with_known_parent
