"""Tests for the adb session facade."""

import pytest

from repro.emulator.adb import AdbError, AdbSession
from repro.emulator.hooks import HookEngine


@pytest.fixture()
def session(sdk):
    return AdbSession(sdk, seed=3)


def test_full_recipe_records_expected_commands(session, generator):
    apk = generator.sample_app(malicious=False)
    result = session.analyze(apk)
    commands = [c.command for c in session.command_log]
    assert commands == [
        "install", "shell monkey", "pull", "uninstall", "shell clear",
    ]
    assert result.total_invocations > 0
    assert session.total_seconds > 0


def test_ordering_enforced(session, generator):
    apk = generator.sample_app(malicious=False)
    with pytest.raises(AdbError):
        session.run_monkey()
    with pytest.raises(AdbError):
        session.pull_logs()
    with pytest.raises(AdbError):
        session.uninstall()
    session.install(apk)
    with pytest.raises(AdbError):
        session.install(apk)  # double install


def test_uninstall_resets_state(session, generator):
    first = generator.sample_app(malicious=False)
    second = generator.sample_app(malicious=False)
    session.install(first)
    session.uninstall()
    session.install(second)  # fine after uninstall
    session.run_monkey()
    assert session.pull_logs().apk_md5 == second.md5


def test_clear_data_always_allowed(session):
    session.clear_data()
    assert session.command_log[-1].command == "shell clear"


def test_hooked_session_logs_tracked_apis(sdk, generator):
    keys = sdk.restricted_api_ids
    session = AdbSession(sdk, hooks=HookEngine(sdk, keys), seed=4)
    apk = generator.sample_app(archetype="sms_fraud")
    result = session.analyze(apk)
    assert set(result.hooked_api_ids) <= set(keys.tolist())


def test_session_reusable_across_apps(session, generator):
    for _ in range(3):
        session.analyze(generator.sample_app(malicious=False))
    installs = [c for c in session.command_log if c.command == "install"]
    assert len(installs) == 3


def test_install_cost_scales_with_size(session, generator):
    small = generator.sample_app(archetype="news")
    session.install(small)
    cost_small = session.command_log[-1].seconds
    session.uninstall()
    big = generator.sample_app(archetype="game")
    session.install(big)
    cost_big = session.command_log[-1].seconds
    if big.size_mb > small.size_mb:
        assert cost_big > cost_small
