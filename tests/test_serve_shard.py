"""Tests for the sharded multi-process serving tier.

The expensive proofs here run real worker processes (spawn) against a
published model registry: round-trip through the router, scatter/gather
aggregation, SIGKILL-one-shard replay with a WAL-level exactly-once
audit.  The determinism proof (same day through 1, 2, and 8 shards)
runs shard-scoped services in-process, since it is about the routing
function and verdict content, not process isolation.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.codec import apk_to_dict
from repro.serve.http import make_server
from repro.serve.queue import WrongShardError, shard_of
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService
from repro.serve.shard import (
    ShardRouter,
    ShardUnavailableError,
    make_router_server,
    shard_spool,
)


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory, fitted_checker):
    """A published model registry shared by every router in this module."""
    root = tmp_path_factory.mktemp("shard-models")
    models = ModelRegistry(root)
    models.publish(fitted_checker, activate=True)
    return root


def _router(model_dir, tmp_path, n_shards, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("start_timeout", 180.0)
    return ShardRouter(
        model_dir, tmp_path / "spool", n_shards=n_shards, **kwargs
    )


def _await_terminal(router, md5s, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = [router.result(m)["status"] for m in md5s]
        if all(s in ("done", "failed") for s in states):
            return states
        time.sleep(0.1)
    raise AssertionError(f"submissions never terminal: {states}")


def _wal_done_counts(spool_dir, shard_id):
    """md5 -> number of terminal WAL records in one shard's segment."""
    counts: dict[str, int] = {}
    wal = shard_spool(spool_dir, shard_id) / "queue.wal"
    for line in wal.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if record.get("type") == "done":
            md5 = record["md5"]
            counts[md5] = counts.get(md5, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Routing function
# ----------------------------------------------------------------------


def test_shard_of_is_deterministic_and_total(generator):
    for apk in (generator.sample_app() for _ in range(64)):
        owner = shard_of(apk.md5, 8)
        assert 0 <= owner < 8
        assert shard_of(apk.md5, 8) == owner  # stable across calls
    assert all(
        shard_of(generator.sample_app().md5, 1) == 0 for _ in range(8)
    )
    with pytest.raises(ValueError):
        shard_of("deadbeef", 0)


def test_shard_of_spreads_load(generator):
    owners = [
        shard_of(generator.sample_app().md5, 4) for _ in range(400)
    ]
    for shard_id in range(4):
        assert owners.count(shard_id) > 0


# ----------------------------------------------------------------------
# Router round trip + scatter/gather
# ----------------------------------------------------------------------


def test_router_round_trip_and_aggregation(model_dir, tmp_path, generator):
    fresh = [generator.sample_app() for _ in range(12)]
    with _router(model_dir, tmp_path, n_shards=2) as router:
        for apk in fresh:
            ticket = router.submit(apk)
            assert ticket["md5"] == apk.md5
        states = _await_terminal(router, [a.md5 for a in fresh])
        assert states.count("done") == len(fresh)

        # Each outcome came from the owning shard's WAL-backed service.
        for apk in fresh:
            outcome = router.result(apk.md5)
            assert outcome["status"] == "done"
            assert outcome["model_version"] == 1

        # Scatter/gather healthz: every shard reports, totals add up.
        health = router.healthz()
        assert health["status"] == "ok"
        assert health["n_shards"] == 2
        assert [s["shard"] for s in health["shards"]] == [0, 1]
        assert health["completed"] == len(fresh)

        # Aggregated metrics carry per-shard labels and tier totals.
        aggregate = router.metrics_registry()
        per_shard = [
            aggregate.value("serve_scored_total", shard=str(k))
            for k in range(2)
        ]
        assert sum(per_shard) == len(fresh)
        assert all(count > 0 for count in per_shard)
        text = router.metrics_text()
        assert 'serve_scored_total{shard="0"}' in text


def test_router_front_door_http(model_dir, tmp_path, generator):
    """Submit/poll/scrape through the router's own /v1 HTTP server."""
    fresh = [generator.sample_app() for _ in range(6)]
    with _router(model_dir, tmp_path, n_shards=2) as router:
        server = make_router_server(router).start_background()
        base = f"http://127.0.0.1:{server.port}"
        try:
            for apk in fresh:
                body = json.dumps({"apk": apk_to_dict(apk)}).encode()
                request = urllib.request.Request(
                    f"{base}/v1/submit", data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=10.0) as resp:
                    assert resp.status == 202
            _await_terminal(router, [a.md5 for a in fresh])
            for apk in fresh:
                with urllib.request.urlopen(
                    f"{base}/v1/result/{apk.md5}", timeout=10.0
                ) as resp:
                    assert resp.status == 200
                    assert json.loads(resp.read())["status"] == "done"
            health = json.load(
                urllib.request.urlopen(f"{base}/v1/healthz", timeout=10.0)
            )
            assert health["status"] == "ok"
            assert len(health["shards"]) == 2
            text = urllib.request.urlopen(
                f"{base}/v1/metrics", timeout=10.0
            ).read().decode()
            assert 'shard="router"' in text
            assert 'serve_scored_total{shard="0"}' in text
        finally:
            server.stop()


def test_wrong_shard_submit_is_409(model_dir, tmp_path, generator):
    """A shard worker rejects md5s owned by its sibling with the envelope."""
    apk = generator.sample_app()
    with _router(model_dir, tmp_path, n_shards=2) as router:
        wrong = 1 - router.owner_of(apk.md5)
        body = json.dumps({"apk": apk_to_dict(apk)}).encode()
        status, data = router.proxy(wrong, "POST", "/v1/submit", body)
        assert status == 409
        err = json.loads(data)["error"]
        assert err["code"] == "wrong_shard"
        assert err["md5"] == apk.md5


# ----------------------------------------------------------------------
# Failure injection: kill one shard, replay its WAL, exactly once
# ----------------------------------------------------------------------


def test_kill_one_shard_midbatch_replay_is_exactly_once(
    model_dir, tmp_path, generator
):
    """SIGKILL one worker mid-batch; restart replays without duplicates.

    The per-shard re-proof of PR 3's guarantee: after the kill and
    restart, every accepted md5 reaches a terminal outcome, and the
    dead shard's WAL segment holds at most one terminal record per md5
    across both process lifetimes.
    """
    with _router(
        model_dir, tmp_path, n_shards=2,
        pace_seconds_per_minute=0.03, batch_size=2,
    ) as router:
        victim = 0
        fresh = []
        while len(fresh) < 10:
            apk = generator.sample_app()
            if router.owner_of(apk.md5) == victim:
                fresh.append(apk)
        md5s = [a.md5 for a in fresh]
        for apk in fresh:
            router.submit(apk)

        # Let the victim finish part of the work, then kill it cold.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            done_before = [
                m for m in md5s if router.result(m)["status"] == "done"
            ]
            if done_before:
                break
            time.sleep(0.05)
        assert done_before, "victim shard never completed any work"
        router.kill_shard(victim)
        assert not router.shards[victim].alive

        # The owning shard is down: routing to it is a 503, healthz
        # degrades, the sibling keeps serving.
        with pytest.raises(ShardUnavailableError):
            router.result(md5s[0])
        assert router.healthz()["status"] == "degraded"
        sibling_apk = generator.sample_app()
        while router.owner_of(sibling_apk.md5) == victim:
            sibling_apk = generator.sample_app()
        assert router.submit(sibling_apk)["md5"] == sibling_apk.md5

        # Restart over the same WAL segment: completed outcomes are
        # recovered verbatim, uncompleted acceptances re-enqueued.
        replayed = router.restart_shard(victim)
        assert replayed == len(md5s) - len(done_before)
        for md5 in done_before:
            assert router.result(md5)["status"] == "done"
        states = _await_terminal(router, md5s)
        assert all(s in ("done", "failed") for s in states)

        # The WAL-level audit: one terminal record per md5, ever.
        counts = _wal_done_counts(router.spool_dir, victim)
        assert set(counts) == set(md5s)
        duplicates = {m: c for m, c in counts.items() if c != 1}
        assert not duplicates, f"duplicate terminal outcomes: {duplicates}"

        # And the restarted worker only scored the replayed remainder.
        aggregate = router.metrics_registry()
        assert aggregate.value(
            "serve_scored_total", shard=str(victim)
        ) == replayed


def test_ruleset_roll_mid_traffic_loses_nothing(
    model_dir, tmp_path, generator
):
    """Pushing a ruleset through the router mid-traffic drops nothing.

    Half the day is in flight when the roll starts; afterwards every
    submission is terminal (zero lost), every shard's healthz reports
    the new ``ruleset_version``, and no explanation mixes versions —
    each flagged outcome's hit behaviors carry exactly the suffix of
    the ruleset version that explained it.
    """
    from repro.rules import builtin_ruleset

    renamed = json.dumps({
        "version": 1,
        "rules": [
            {**spec.to_dict(), "behavior": spec.behavior + "__v1"}
            for spec in builtin_ruleset()
        ],
    }).encode("utf-8")

    fresh = [
        generator.sample_app(malicious=True) for _ in range(6)
    ] + [generator.sample_app() for _ in range(6)]
    with _router(model_dir, tmp_path, n_shards=2) as router:
        for apk in fresh[:6]:
            router.submit(apk)
        receipt = router.push_ruleset(renamed)
        assert receipt["ruleset_version"] == 1
        assert set(receipt["shards"]) == {"0", "1"}
        for apk in fresh[6:]:
            router.submit(apk)

        states = _await_terminal(router, [a.md5 for a in fresh])
        assert states.count("done") == len(fresh)  # zero lost

        health = router.healthz()
        assert health["status"] == "ok"
        assert [s["ruleset_version"] for s in health["shards"]] == [1, 1]

        for apk in fresh:
            explained = router.explain(apk.md5)
            version = explained["ruleset_version"]
            assert version in (0, 1)
            if explained.get("explanation"):
                behaviors = {
                    h["behavior"]
                    for h in explained["explanation"]["hits"]
                }
                expected = version == 1
                assert all(
                    b.endswith("__v1") == expected for b in behaviors
                )

        aggregate = router.metrics_registry()
        assert aggregate.value(
            "serve_router_ruleset_pushes_total", shard="router"
        ) == 1
        for shard in ("0", "1"):
            assert aggregate.value(
                "ruleset_swap_total", shard=shard
            ) == 1


def test_front_door_503_envelope_when_shard_down(
    model_dir, tmp_path, generator
):
    apk = generator.sample_app()
    with _router(model_dir, tmp_path, n_shards=2) as router:
        server = make_router_server(router).start_background()
        base = f"http://127.0.0.1:{server.port}"
        try:
            router.kill_shard(router.owner_of(apk.md5))
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{base}/v1/result/{apk.md5}", timeout=10.0
                )
            assert excinfo.value.code == 503
            err = json.load(excinfo.value)["error"]
            assert err["code"] == "shard_unavailable"
            assert err["md5"] == apk.md5

            body = json.dumps({"apk": apk_to_dict(apk)}).encode()
            request = urllib.request.Request(
                f"{base}/v1/submit", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 503
            assert json.load(excinfo.value)["error"]["code"] == (
                "shard_unavailable"
            )
        finally:
            server.stop()


def test_router_stop_reports_abandoned_submissions(
    model_dir, tmp_path, generator
):
    """Shutdown surfaces each shard's non-terminal md5 set."""
    router = _router(
        model_dir, tmp_path, n_shards=2, pace_seconds_per_minute=0.2,
    )
    router.start()
    fresh = [generator.sample_app() for _ in range(8)]
    try:
        for apk in fresh:
            router.submit(apk)
    finally:
        abandoned = router.stop()
    reported = set().union(*abandoned.values())
    terminal = {
        m for m in (a.md5 for a in fresh) if m not in reported
    }
    # Everything submitted is accounted for: either terminal before the
    # stop or reported abandoned (and each abandoned md5 sits on its
    # owning shard).
    assert reported | terminal == {a.md5 for a in fresh}
    for shard_id, md5s in abandoned.items():
        assert all(shard_of(m, 2) == shard_id for m in md5s)


# ----------------------------------------------------------------------
# Shard determinism: same day, 1 vs 2 vs 8 shards, same verdicts
# ----------------------------------------------------------------------


def _run_sharded_day(fitted_checker, tmp_path, apks, n_shards):
    """Vet one day through n in-process shard-scoped services."""
    models = ModelRegistry(tmp_path / f"models-{n_shards}")
    models.publish(fitted_checker, activate=True)
    outcomes: dict[str, dict] = {}
    for shard_id in range(n_shards):
        owned = [a for a in apks if shard_of(a.md5, n_shards) == shard_id]
        service = OnlineVettingService(
            models,
            spool_dir=shard_spool(tmp_path / f"spool-{n_shards}", shard_id),
            shard=(shard_id, n_shards),
            workers=2,
            batch_size=4,
        )
        with service:
            for apk in owned:
                service.submit(apk)
            assert service.drain(120.0)
            for apk in owned:
                outcomes[apk.md5] = service.result(apk.md5)
    assert len(outcomes) == len(apks)
    return outcomes


def test_shard_count_does_not_change_verdicts(
    fitted_checker, tmp_path, generator
):
    """1, 2, and 8 shards produce the identical terminal verdict set.

    Sharding is pure routing: the per-md5 outcome (verdict, probability,
    model version) must not depend on how many shards the day was split
    across.  Order-independent by construction — outcomes are compared
    as an md5-keyed set, the batch-vs-single equivalence style of
    ``test_score_batch.py`` lifted to the serving tier.
    """
    day = [generator.sample_app() for _ in range(24)]
    baseline = _run_sharded_day(fitted_checker, tmp_path, day, 1)
    for n_shards in (2, 8):
        sharded = _run_sharded_day(fitted_checker, tmp_path, day, n_shards)
        assert set(sharded) == set(baseline)
        for md5, outcome in baseline.items():
            other = sharded[md5]
            assert other["status"] == outcome["status"] == "done"
            assert other["malicious"] == outcome["malicious"]
            assert other["probability"] == pytest.approx(
                outcome["probability"]
            )
            assert other["model_version"] == outcome["model_version"]


def test_in_process_service_rejects_wrong_shard(
    fitted_checker, tmp_path, generator
):
    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    service = OnlineVettingService(models, shard=(0, 4))
    try:
        owned = wrong = None
        while owned is None or wrong is None:
            apk = generator.sample_app()
            if shard_of(apk.md5, 4) == 0:
                owned = apk
            else:
                wrong = apk
        assert service.submit(owned)["md5"] == owned.md5
        with pytest.raises(WrongShardError) as excinfo:
            service.submit(wrong)
        assert excinfo.value.md5 == wrong.md5
        assert excinfo.value.owner == shard_of(wrong.md5, 4)
        assert service.metrics.value("serve_wrong_shard_rejects_total") == 1
    finally:
        service.close()


def test_stop_and_drain_report_pending_md5s(
    fitted_checker, tmp_path, generator
):
    """Satellite 3: stop()/drain() surface the abandoned in-flight set."""
    models = ModelRegistry(tmp_path / "models")
    models.publish(fitted_checker, activate=True)
    # Never started: everything submitted stays pending.
    service = OnlineVettingService(models, spool_dir=tmp_path / "spool")
    md5s = set()
    for _ in range(3):
        apk = generator.sample_app()
        service.submit(apk)
        md5s.add(apk.md5)
    status = service.drain(timeout=0.1)
    assert not status  # falsy on timeout: existing call sites still hold
    assert status.pending == md5s
    abandoned = service.close()
    assert abandoned == md5s
