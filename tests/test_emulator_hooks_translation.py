"""Tests for the hook engine and binary translation model."""

import numpy as np
import pytest

from repro.android.dex import DexCode, NativeIsa, NativeLib
from repro.emulator.hooks import HOOK_COST_SECONDS, HookEngine
from repro.emulator.translation import BinaryTranslator, TranslationError


def test_hook_cost_calibration():
    # (53.6 - 2.1) minutes over 42.3M invocations (Figs. 2 and 3).
    assert HOOK_COST_SECONDS == pytest.approx((53.6 - 2.1) * 60 / 42.3e6)


def test_hook_engine_filters_untracked(sdk, rng):
    hooks = HookEngine(sdk, [1, 2, 3])
    records, overhead = hooks.intercept({1: 10, 5: 100, 3: 1}, rng)
    assert sorted(r.api_id for r in records) == [1, 3]
    assert overhead == pytest.approx(11 * HOOK_COST_SECONDS)


def test_hook_engine_empty_tracking(sdk, rng):
    hooks = HookEngine(sdk, [])
    records, overhead = hooks.intercept({1: 10}, rng)
    assert records == [] and overhead == 0.0


def test_hook_engine_rejects_out_of_range(sdk):
    with pytest.raises(ValueError):
        HookEngine(sdk, [len(sdk)])


def test_hook_records_carry_names_and_params(sdk, rng):
    hooks = HookEngine(sdk, [0])
    records, _ = hooks.intercept({0: 3}, rng)
    assert records[0].api_name == sdk.api(0).name
    assert records[0].count == 3
    assert records[0].sample_params


def test_hook_dedups_tracked_ids(sdk):
    hooks = HookEngine(sdk, [4, 4, 4, 2])
    assert hooks.n_tracked == 2
    assert hooks.is_tracked(4) and not hooks.is_tracked(3)


def test_translator_passthrough_without_native():
    report = BinaryTranslator().translate(DexCode())
    assert report.translated_mb == 0.0
    assert report.overhead_fraction == 0.0


def test_translator_overhead_scales_and_caps():
    small = DexCode(native_libs=(NativeLib("a.so", NativeIsa.ARM, 1.0),))
    huge = DexCode(native_libs=(NativeLib("b.so", NativeIsa.ARM, 500.0),))
    tr = BinaryTranslator()
    assert 0 < tr.translate(small).overhead_fraction < tr.MAX_OVERHEAD_FRACTION
    assert tr.translate(huge).overhead_fraction == tr.MAX_OVERHEAD_FRACTION


def test_translator_rejects_incompatible():
    dex = DexCode(
        native_libs=(
            NativeLib("bad.so", NativeIsa.ARM, 2.0, houdini_compatible=False),
        )
    )
    tr = BinaryTranslator()
    assert not tr.can_translate(dex)
    with pytest.raises(TranslationError):
        tr.translate(dex)


def test_translator_ignores_x86_libs():
    dex = DexCode(
        native_libs=(
            NativeLib("x.so", NativeIsa.X86, 9.0, houdini_compatible=False),
        )
    )
    report = BinaryTranslator().translate(dex)
    assert report.translated_mb == 0.0
