"""Retrain policies and drift-triggered evolution (repro.drift.policy)."""

import numpy as np
import pytest

from repro.core.evolution import EvolutionLoop
from repro.drift import (
    DriftingMarket,
    DriftingMarketStream,
    DriftMonitorBank,
    DriftTriggeredPolicy,
    HybridPolicy,
    MonthlyPolicy,
    NeverPolicy,
    PsiMonitor,
    RetrainDecision,
    RollingF1Monitor,
)


def _alarmed_bank() -> DriftMonitorBank:
    bank = DriftMonitorBank(
        f1=RollingF1Monitor(window=8, threshold=0.2, min_samples=2)
    )
    for _ in range(4):
        bank.record_feedback(False, True)
    assert bank.alarmed
    return bank


def _quiet_bank() -> DriftMonitorBank:
    bank = DriftMonitorBank(
        f1=RollingF1Monitor(window=8, threshold=0.2, min_samples=2)
    )
    for _ in range(4):
        bank.record_feedback(True, True)
    return bank


# ----------------------------------------------------------------------
# Policy state machines
# ----------------------------------------------------------------------


def test_monthly_policy_cadence():
    policy = MonthlyPolicy(every=3)
    fired = [
        p for p in range(1, 13) if policy.should_retrain(p).retrain
    ]
    assert fired == [3, 6, 9, 12]
    with pytest.raises(ValueError):
        MonthlyPolicy(every=0)


def test_never_policy():
    policy = NeverPolicy()
    assert not any(
        policy.should_retrain(p).retrain for p in range(1, 25)
    )


def test_drift_policy_requires_monitors():
    with pytest.raises(ValueError):
        DriftTriggeredPolicy().should_retrain(1, monitors=None)


def test_drift_policy_fires_on_alarm_only():
    policy = DriftTriggeredPolicy()
    quiet = policy.should_retrain(1, monitors=_quiet_bank())
    assert not quiet.retrain
    assert quiet.reason == "no drift alarm"
    loud = policy.should_retrain(1, monitors=_alarmed_bank())
    assert loud.retrain
    assert "rolling_f1" in loud.reason
    assert loud.drift_score == pytest.approx(1.0)


def test_drift_policy_cooldown():
    policy = DriftTriggeredPolicy(cooldown=2)
    bank = _alarmed_bank()
    assert policy.should_retrain(5, monitors=bank).retrain
    policy.record_retrain(5)
    # Periods 6 and 7 are inside the cooldown even though the alarm
    # still stands; period 8 may fire again.
    for period in (6, 7):
        decision = policy.should_retrain(period, monitors=bank)
        assert not decision.retrain
        assert "cooldown" in decision.reason
    assert policy.should_retrain(8, monitors=bank).retrain


def test_hybrid_policy_staleness_backstop():
    policy = HybridPolicy(cooldown=1, max_staleness=4)
    bank = _quiet_bank()
    # No alarms: nothing until the staleness bound trips.
    assert not policy.should_retrain(3, monitors=bank).retrain
    stale = policy.should_retrain(4, monitors=bank)
    assert stale.retrain
    assert "staleness" in stale.reason
    policy.record_retrain(4)
    assert not policy.should_retrain(7, monitors=bank).retrain
    assert policy.should_retrain(8, monitors=bank).retrain
    # An alarm still preempts the calendar.
    assert policy.should_retrain(9, monitors=_alarmed_bank()).retrain


def test_retrain_decision_is_frozen():
    decision = RetrainDecision(retrain=True, reason="x")
    with pytest.raises(AttributeError):
        decision.retrain = False


# ----------------------------------------------------------------------
# EvolutionLoop integration
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def drifting_stream_factory(sdk):
    def factory():
        market = DriftingMarket(
            sdk,
            seed=501,
            apps_per_day=5,
            days=90,
            sdk_release_every=30,
            sdk_growth=30,
            new_family_days=(40,),
            fashion_shift_every=0,
        )
        return DriftingMarketStream(market, period_days=30)

    return factory


def test_never_policy_never_retrains(drifting_stream_factory):
    stream = drifting_stream_factory()
    loop = EvolutionLoop(
        stream,
        stream.bootstrap_corpus(150),
        max_pool=800,
        checker_seed=502,
        retrain_policy=NeverPolicy(),
    )
    records = loop.run(3)
    assert loop.retrain_count == 0
    assert all(not r.retrained for r in records)
    assert all(r.decision is not None for r in records)
    # The serving model never changed.
    assert all(r.promotion is None for r in records)


def test_policyless_loop_keeps_monthly_cadence(drifting_stream_factory):
    stream = drifting_stream_factory()
    loop = EvolutionLoop(
        stream,
        stream.bootstrap_corpus(150),
        max_pool=800,
        checker_seed=502,
    )
    records = loop.run(2)
    assert loop.retrain_count == 2
    assert all(r.retrained for r in records)
    assert all(r.decision is None for r in records)


def test_drift_triggered_loop_feeds_monitors(drifting_stream_factory):
    stream = drifting_stream_factory()
    bank = DriftMonitorBank(
        f1=RollingF1Monitor(window=150, threshold=0.05, min_samples=20),
        psi=PsiMonitor(window=300, min_samples=20),
    )
    loop = EvolutionLoop(
        stream,
        stream.bootstrap_corpus(150),
        max_pool=800,
        checker_seed=502,
        retrain_policy=DriftTriggeredPolicy(cooldown=0),
        monitors=bank,
    )
    # The PSI reference was baselined from the training pool at init.
    assert bank.psi._reference is not None
    records = loop.run(3)
    # Every month fed the labeled-lag and PSI windows (or was consumed
    # by a post-retrain rebaseline, which empties them again).
    assert all(r.decision is not None for r in records)
    retrained = [r for r in records if r.retrained]
    for record in retrained:
        assert "drift alarm" in record.decision.reason
    assert loop.retrain_count == len(retrained)
    if loop.retrain_count == 0:
        # No alarm => windows hold the whole horizon's feedback.
        assert bank.f1.samples > 0


def test_rebaseline_on_adoption(drifting_stream_factory):
    stream = drifting_stream_factory()
    bank = DriftMonitorBank(
        f1=RollingF1Monitor(window=150, threshold=0.0, min_samples=1),
        psi=PsiMonitor(window=300, min_samples=20),
    )
    loop = EvolutionLoop(
        stream,
        stream.bootstrap_corpus(150),
        max_pool=800,
        checker_seed=502,
        retrain_policy=DriftTriggeredPolicy(cooldown=0),
        monitors=bank,
    )
    reference_before = bank.psi._reference.copy()
    record = loop.run_month()
    if record.retrained:
        # Adoption rebaselined: windows were reset after the swap.
        assert bank.f1.samples == 0
        assert bank.psi._reference.size == (
            loop.checker.feature_space.encode_batch(
                loop._pool_obs[:1]
            ).shape[1]
        )
    else:  # pragma: no cover - threshold 0 should always alarm
        assert bank.psi._reference.size == reference_before.size
