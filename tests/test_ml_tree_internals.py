"""White-box tests for the CART tree builder."""

import numpy as np
import pytest

from repro.ml.tree import _Node, _TreeBuilder, predict_tree


def build(X, t, criterion="gini", **kwargs):
    defaults = dict(
        max_depth=8, min_samples_leaf=1, max_features=None,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    builder = _TreeBuilder(criterion=criterion, **defaults)
    root = builder.build(np.asarray(X, dtype=np.uint8),
                         np.asarray(t, dtype=np.float64))
    return builder, root


def test_single_informative_feature_chosen():
    X = np.array([[0, 1], [0, 0], [1, 1], [1, 0]] * 10)
    y = X[:, 0]
    builder, root = build(X, y)
    assert root.feature == 0
    assert root.left.is_leaf and root.right.is_leaf
    assert root.left.value == 0.0
    assert root.right.value == 1.0
    # All importance lands on the informative feature.
    assert builder.importances[0] > 0
    assert builder.importances[1] == 0


def test_pure_node_is_leaf():
    X = np.array([[0, 1]] * 20)
    y = np.ones(20)
    _, root = build(X, y)
    assert root.is_leaf
    assert root.value == 1.0


def test_min_samples_leaf_respected():
    X = np.zeros((10, 2), dtype=np.uint8)
    X[0, 0] = 1  # a split here would create a leaf of size 1
    y = X[:, 0].astype(float)
    _, root = build(X, y, min_samples_leaf=2)
    assert root.is_leaf


def test_max_depth_zero_levels():
    X = np.array([[0], [1]] * 20)
    y = X[:, 0].astype(float)
    _, root = build(X, y, max_depth=1)
    # Depth 1: a single split, children must be leaves.
    assert not root.is_leaf
    assert root.left.is_leaf and root.right.is_leaf


def test_xor_needs_depth_two():
    rng = np.random.default_rng(1)
    X = rng.integers(0, 2, size=(400, 2)).astype(np.uint8)
    y = (X[:, 0] ^ X[:, 1]).astype(float)
    _, shallow = build(X, y, max_depth=1)
    _, deep = build(X, y, max_depth=2)
    acc_shallow = ((predict_tree(shallow, X) > 0.5) == y).mean()
    acc_deep = ((predict_tree(deep, X) > 0.5) == y).mean()
    assert acc_deep > 0.95
    assert acc_shallow < acc_deep


def test_mse_criterion_fits_regression_target():
    X = np.array([[1, 0], [1, 0], [0, 1], [0, 1]] * 15, dtype=np.uint8)
    t = np.where(X[:, 0] == 1, 3.0, -1.0)
    _, root = build(X, t, criterion="mse")
    pred = predict_tree(root, X)
    assert np.allclose(pred, t)


def test_unknown_criterion_rejected():
    with pytest.raises(ValueError):
        _TreeBuilder(
            criterion="entropy", max_depth=2, min_samples_leaf=1,
            max_features=None, rng=np.random.default_rng(0),
        )


def test_bad_min_samples_rejected():
    with pytest.raises(ValueError):
        _TreeBuilder(
            criterion="gini", max_depth=2, min_samples_leaf=0,
            max_features=None, rng=np.random.default_rng(0),
        )


def test_feature_subsampling_limits_candidates():
    rng = np.random.default_rng(2)
    X = rng.integers(0, 2, size=(200, 30)).astype(np.uint8)
    y = X[:, 7].astype(float)
    # With few candidate features per node, the tree rarely finds
    # feature 7 at the root, but deep growth still gets there.
    builder, root = build(X, y, max_features=3, max_depth=12)
    pred = predict_tree(root, X)
    assert ((pred > 0.5) == y).mean() > 0.8


def test_predict_tree_on_manual_tree():
    root = _Node(feature=1)
    root.left = _Node(value=0.25)
    root.right = _Node(value=0.75)
    X = np.array([[0, 0], [0, 1], [1, 1]], dtype=np.uint8)
    assert predict_tree(root, X).tolist() == [0.25, 0.75, 0.75]


def test_node_count_grows_with_data_complexity():
    rng = np.random.default_rng(3)
    X = rng.integers(0, 2, size=(300, 10)).astype(np.uint8)
    easy = X[:, 0].astype(float)
    hard = (X[:, :4].sum(axis=1) % 2).astype(float)
    b_easy, _ = build(X, easy)
    b_hard, _ = build(X, hard, max_depth=12)
    assert b_hard.n_nodes > b_easy.n_nodes
