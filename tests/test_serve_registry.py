"""Tests for the versioned model registry (hot swap, shadow scoring)."""

import copy
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.serve.registry import (
    IntegrityError,
    ModelRegistry,
    RWLock,
)


@pytest.fixture()
def observations(fitted_checker, generator):
    apps = [generator.sample_app() for _ in range(30)]
    return fitted_checker.production_engine.observations(apps)


@pytest.fixture()
def models(tmp_path, fitted_checker):
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(
        fitted_checker, metadata={"source": "test"}, activate=True
    )
    return registry


def _disagreeing_copy(checker):
    """A fitted model that flags everything (maximal verdict skew)."""
    clone = copy.copy(checker)
    clone.decision_threshold = 1e-9
    return clone


def test_publish_assigns_versions_and_persists(tmp_path, fitted_checker):
    registry = ModelRegistry(tmp_path / "m")
    v1 = registry.publish(fitted_checker, metadata={"month": 0})
    v2 = registry.publish(fitted_checker)
    assert (v1.version, v2.version) == (1, 2)
    assert (tmp_path / "m" / v1.filename).exists()
    assert (tmp_path / "m" / "manifest.json").exists()
    assert registry.active_version is None  # publish alone never serves
    assert v1.metadata == {"month": 0}


def test_publish_requires_fitted_checker(tmp_path, sdk):
    from repro.core.checker import ApiChecker

    registry = ModelRegistry(tmp_path / "m")
    with pytest.raises(RuntimeError):
        registry.publish(ApiChecker(sdk))


def test_load_round_trips_verdicts(models, fitted_checker, generator):
    apps = [generator.sample_app() for _ in range(5)]
    loaded = models.load(1)
    for apk in apps:
        assert loaded.vet(apk).probability == pytest.approx(
            fitted_checker.vet(apk).probability
        )


def test_load_unknown_version(models):
    with pytest.raises(KeyError, match="unknown model version"):
        models.load(42)


def test_tampered_artifact_fails_integrity_check(models):
    artifact = models.root / models.versions[1].filename
    blob = bytearray(artifact.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    artifact.write_bytes(bytes(blob))
    with pytest.raises(IntegrityError, match="hash mismatch"):
        models.load(1)


def test_activate_swaps_and_archives_previous(models, fitted_checker):
    models.publish(fitted_checker, activate=True)
    assert models.active_version == 2
    assert models.versions[1].state == "archived"
    assert models.versions[2].state == "active"
    assert models.metrics.value("serve_model_swaps_total") == 2
    assert models.metrics.value("serve_active_model_version") == 2


def test_reopen_restores_active_and_shadow(tmp_path, fitted_checker):
    root = tmp_path / "m"
    registry = ModelRegistry(root)
    registry.publish(fitted_checker, activate=True)
    registry.publish(fitted_checker)
    registry.stage_shadow(2)

    reopened = ModelRegistry(root)
    assert reopened.active_version == 1
    assert reopened.shadow_version == 2
    assert reopened.active_checker() is not None


def test_score_without_active_model(tmp_path, observations):
    registry = ModelRegistry(tmp_path / "m")
    with pytest.raises(RuntimeError, match="no active model"):
        registry.score(observations[0])


def test_shadow_agreement_tally(models, fitted_checker, observations):
    models.publish(fitted_checker)
    models.stage_shadow(2)
    for obs in observations[:10]:
        scored = models.score(obs)
        assert scored.model_version == 1
        assert scored.shadow_version == 2
        assert scored.agreed is True  # identical model always agrees
    n, agree, rate = models.shadow_agreement()
    assert (n, agree, rate) == (10, 10, 1.0)
    assert models.metrics.value("serve_shadow_agree_total") == 10
    assert models.metrics.value("serve_shadow_agreement_rate") == 1.0


def test_shadow_disagreement_is_counted(models, fitted_checker, observations):
    models.publish(_disagreeing_copy(fitted_checker))
    models.stage_shadow(2)
    for obs in observations:
        models.score(obs)
    n, agree, rate = models.shadow_agreement()
    assert n == len(observations)
    assert rate < 0.9  # flag-everything must disagree on benign traffic
    assert models.metrics.value("serve_shadow_disagree_total") == n - agree


def test_promotion_requires_samples(models, fitted_checker, observations):
    models.publish(fitted_checker)
    models.stage_shadow(2)
    for obs in observations[:3]:
        models.score(obs)
    decision = models.promote_on_agreement(min_samples=20)
    assert not decision.promoted
    assert "insufficient" in decision.reason
    # No-data no-swap: the shadow stays staged to gather more samples.
    assert models.shadow_version == 2
    assert models.active_version == 1


def test_promotion_on_agreement(models, fitted_checker, observations):
    models.publish(fitted_checker)
    models.stage_shadow(2)
    for obs in observations:
        models.score(obs)
    decision = models.promote_on_agreement(
        min_agreement=0.9, min_samples=10
    )
    assert decision.promoted and decision.agreement == 1.0
    assert models.active_version == 2
    assert models.shadow_version is None
    assert models.versions[2].state == "active"
    assert models.metrics.value("serve_promotions_total") == 1
    assert models.decisions[-1].promoted


def test_rollback_on_disagreement(models, fitted_checker, observations):
    models.publish(_disagreeing_copy(fitted_checker))
    models.stage_shadow(2)
    for obs in observations:
        models.score(obs)
    decision = models.promote_on_agreement(
        min_agreement=0.95, min_samples=10
    )
    assert not decision.promoted
    assert models.active_version == 1  # the active model keeps serving
    assert models.shadow_version is None
    assert models.versions[2].state == "rejected"
    assert models.metrics.value("serve_rollbacks_total") == 1

    # The decision is manifest-durable: a reopened registry knows why.
    reopened = ModelRegistry(models.root)
    assert len(reopened.decisions) == 1
    assert not reopened.decisions[0].promoted
    assert reopened.versions[2].state == "rejected"


def test_promotion_without_shadow(models):
    with pytest.raises(RuntimeError, match="no shadow"):
        models.promote_on_agreement()


def test_hot_swap_never_yields_mixed_versions(
    models, fitted_checker, observations
):
    """Concurrent scoring during repeated swaps stays version-consistent.

    Scorer threads hammer :meth:`ModelRegistry.score` while the main
    thread keeps flipping the active version; every scored submission
    must carry one coherent ``(model_version, shadow_version)`` pair —
    never a half-swapped state — and shadow verdicts must come from the
    version staged at lease time.
    """
    models.publish(fitted_checker)  # v2, swap target
    models.publish(fitted_checker)  # v3, shadow
    models.stage_shadow(3)

    stop = threading.Event()
    scored: list = []
    errors: list[Exception] = []

    def scorer():
        i = 0
        try:
            while not stop.is_set():
                scored.append(models.score(observations[i % len(observations)]))
                i += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=scorer) for _ in range(4)]
    for t in threads:
        t.start()
    for _ in range(6):
        models.activate(2)
        models.activate(1)
    stop.set()
    for t in threads:
        t.join(10.0)
    assert not errors
    assert len(scored) > 0
    for s in scored:
        assert s.model_version in (1, 2)
        # stage_shadow(3) persists across swaps of the active slot,
        # except transiently when the activated version IS the shadow
        # (not the case here), so the pair must always be coherent.
        assert s.shadow_version == 3
        assert s.shadow_verdict is not None
    assert models.active_version == 1


def test_rwlock_writer_blocks_new_readers():
    lock = RWLock()
    order: list[str] = []
    lock.acquire_read()
    writer_in = threading.Event()

    def writer():
        with lock.write():
            order.append("writer")
            writer_in.set()

    def late_reader():
        with lock.read():
            order.append("reader")

    w = threading.Thread(target=writer)
    w.start()
    # Give the writer time to start waiting on the held read lock.
    import time

    time.sleep(0.05)
    r = threading.Thread(target=late_reader)
    r.start()
    time.sleep(0.05)
    # Writer preference: the late reader must queue behind the writer.
    assert order == []
    lock.release_read()
    w.join(5.0)
    r.join(5.0)
    assert order == ["writer", "reader"]
