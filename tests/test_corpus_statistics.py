"""Statistical calibration tests: the synthetic world vs the paper.

These tests pin the distributional properties that every experiment
depends on — if a refactor drifts the generator away from the paper's
reported statistics, they fail before the benchmarks do.
"""

import numpy as np
import pytest

from repro.core.selection import invocation_matrix
from repro.emulator.backends import GoogleEmulator
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import emulate_app
from repro.ml.stats import spearman_rho_columns


@pytest.fixture(scope="module")
def emulation_results(sdk, corpus):
    env = DeviceEnvironment.hardened_emulator()
    hooks = HookEngine(sdk, [])
    monkey = MonkeyExerciser(seed=5)
    rng = np.random.default_rng(5)
    return [
        emulate_app(apk, sdk, GoogleEmulator(), env, hooks, monkey=monkey,
                    rng=rng, raise_on_crash=False)
        for apk in list(corpus)[:120]
    ]


def test_malware_prevalence_near_market_rate(generator):
    corpus = generator.generate(1500)
    # Paper: 38,698 / 501,971 = 7.7% malicious.
    assert 0.05 < corpus.labels.mean() < 0.11


def test_invocations_per_event_scale(emulation_results):
    # Paper: one Monkey event triggers ~8,460 invocations on average.
    per_event = np.mean(
        [r.total_invocations / r.monkey.n_events for r in emulation_results]
    )
    assert 3000 < per_event < 16_000


def test_invocation_spread_matches_figure_2(emulation_results):
    totals = np.array([r.total_invocations for r in emulation_results])
    # Paper: min 15.8M, mean 42.3M, max 64.6M.
    assert totals.max() < 4 * totals.mean()
    assert totals.min() > totals.mean() / 6


def test_most_apis_seldom_invoked():
    # The paper's premise: the overwhelming majority of framework APIs
    # are rarely exercised, while a ubiquitous core is always hot.  This
    # is a property of a large SDK: the shared test world is too small
    # (its tail is fully covered by breadth draws), so build one here.
    from repro.android.sdk import AndroidSdk, SdkSpec
    from repro.corpus.generator import CorpusGenerator

    sdk = AndroidSdk.generate(SdkSpec(n_apis=4000, seed=9))
    gen = CorpusGenerator(sdk, seed=10)
    corpus = gen.generate(500)
    usage = np.zeros(len(sdk))
    for apk in corpus:
        usage[list(apk.dex.direct_api_ids)] += 1
    usage /= len(corpus)
    assert (usage < 0.02).mean() > 0.5
    assert (usage > 0.5).sum() >= sdk.ubiquitous_api_ids.size * 0.5


def test_src_recovers_latent_discriminative_pool(
    sdk, corpus, study_observations
):
    X = invocation_matrix(study_observations, len(sdk))
    src = spearman_rho_columns(X, corpus.labels.astype(np.uint8))
    latent = sdk.discriminative_api_ids
    others = np.setdiff1d(np.arange(len(sdk)), latent)
    # Discriminative APIs correlate with malice far beyond background.
    assert src[latent].mean() > src[others].mean() + 0.1


def test_common_ops_negatively_correlated(sdk, corpus, study_observations):
    X = invocation_matrix(study_observations, len(sdk))
    src = spearman_rho_columns(X, corpus.labels.astype(np.uint8))
    common = sdk.common_ops_api_ids
    # The 13 canonical frequent APIs lean benign (paper Fig. 5).
    assert src[common].mean() < -0.1
    usage = X.mean(axis=0)
    assert usage[common].min() > 0.5


def test_update_chains_have_stable_labels(generator):
    corpus = generator.generate(700, update_fraction=0.9)
    by_package = {}
    for apk in corpus:
        by_package.setdefault(apk.package_name, []).append(apk)
    for apps in by_package.values():
        assert len({a.is_malicious for a in apps}) == 1


def test_obfuscation_more_common_in_malware(generator):
    corpus = generator.generate(1200)
    mal = np.mean([a.dex.obfuscated for a in corpus if a.is_malicious])
    ben = np.mean([a.dex.obfuscated for a in corpus if not a.is_malicious])
    assert mal > ben


def test_emulator_probes_more_common_in_malware(generator):
    """Both classes probe for emulators (malware to hide, benign DRM /
    anti-cheat to refuse to run), with malware leading."""
    corpus = generator.generate(1200)
    mal = np.mean(
        [bool(a.dex.emulator_probes) for a in corpus if a.is_malicious]
    )
    ben = np.mean(
        [bool(a.dex.emulator_probes) for a in corpus if not a.is_malicious]
    )
    assert mal > 0.08
    assert mal > ben
    assert 0.02 < ben < 0.2


def test_houdini_incompatibility_is_rare(generator):
    corpus = generator.generate(1500)
    incompatible = np.mean(
        [a.dex.houdini_incompatible for a in corpus]
    )
    # Paper: <1% of apps cannot run on the lightweight engine.
    assert incompatible < 0.02


def test_live_sensor_apps_are_rare(generator):
    corpus = generator.generate(1500)
    limited = np.mean([a.dex.needs_live_sensors for a in corpus])
    # Paper: 1.4% of apps need real-time special-sensor data.
    assert limited < 0.05
