"""Tests for the Monkey exerciser and the RAC curve."""

import numpy as np
import pytest

from repro.emulator.monkey import (
    DEFAULT_MONKEY_EVENTS,
    MonkeyExerciser,
    SECONDS_PER_EVENT,
    rac_for_events,
)


def test_rac_curve_monotone_nondecreasing():
    events = np.linspace(0, 150_000, 200)
    rac = rac_for_events(events)
    assert np.all(np.diff(rac) >= -1e-12)


def test_rac_paper_anchor_points():
    # Fig. 1: 76.5% at 5K events, ~86% at 100K.
    assert abs(rac_for_events(5000) - 0.765) < 0.01
    assert abs(rac_for_events(100_000) - 0.86) < 0.01
    # "10K events merely increases the RAC by ~1.5%".
    assert rac_for_events(10_000) - rac_for_events(5000) < 0.03


def test_rac_rejects_negative():
    with pytest.raises(ValueError):
        rac_for_events(-1)


def test_default_operating_point_timing():
    # 5K events take 126 s on the reference emulator (§4.2).
    assert abs(DEFAULT_MONKEY_EVENTS * SECONDS_PER_EVENT - 126.0) < 1e-9


def test_exerciser_validation():
    with pytest.raises(ValueError):
        MonkeyExerciser(n_events=0)
    with pytest.raises(ValueError):
        MonkeyExerciser(pct_touch=1.5)
    with pytest.raises(ValueError):
        MonkeyExerciser(throttle_ms=-1)


def test_humanized_flag():
    assert MonkeyExerciser(throttle_ms=500, pct_touch=0.65).humanized
    assert not MonkeyExerciser(throttle_ms=0, pct_touch=0.65).humanized
    assert not MonkeyExerciser(throttle_ms=500, pct_touch=0.95).humanized


def test_exercise_reports_consistent_coverage(generator, rng):
    apk = generator.sample_app(malicious=False)
    monkey = MonkeyExerciser(n_events=5000, seed=1)
    run = monkey.exercise(apk, rng)
    assert 1 <= run.visited_activities <= run.referenced_activities
    assert 0 < run.achieved_rac <= 1.0
    assert run.ui_seconds == pytest.approx(126.0)


def test_more_events_more_coverage_on_average(generator):
    apps = [generator.sample_app(malicious=False) for _ in range(40)]
    short = MonkeyExerciser(n_events=1000, seed=2)
    long = MonkeyExerciser(n_events=100_000, seed=2)
    rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
    rac_short = np.mean([short.exercise(a, rng_a).achieved_rac for a in apps])
    rac_long = np.mean([long.exercise(a, rng_b).achieved_rac for a in apps])
    assert rac_long > rac_short
