"""Determinism battery: parallel execution must not change results.

The pipeline's contract is that worker count is purely an execution
detail: per-app randomness is derived from ``(engine seed, apk md5)``,
so sequential, 1-worker, and N-worker runs of the same corpus produce
bit-identical :class:`AppObservation`s, and a :class:`VettingService`
flags exactly the same apps however many slots it spreads the day over.
"""

import numpy as np
import pytest

from repro.core.engine import DynamicAnalysisEngine
from repro.core.pipeline import VettingPipeline
from repro.core.vetting import VettingService
from repro.corpus.generator import CorpusGenerator
from repro.emulator.cluster import AnalysisServer, ServerCluster

SEEDS = (11, 12, 13)


def _corpus(sdk, catalog, seed, n=30):
    return CorpusGenerator(sdk, seed=seed, catalog=catalog).generate(n)


@pytest.mark.parametrize("seed", SEEDS)
def test_sequential_one_worker_n_worker_identical(sdk, catalog, seed):
    corpus = _corpus(sdk, catalog, seed)
    runs = {}
    sequential = DynamicAnalysisEngine(
        sdk, sdk.restricted_api_ids, seed=seed
    ).analyze_corpus(corpus)
    runs["sequential"] = [a.observation for a in sequential]
    for workers in (1, 7):
        engine = DynamicAnalysisEngine(
            sdk, sdk.restricted_api_ids, seed=seed
        )
        result = VettingPipeline(engine, workers=workers).run(corpus)
        assert not result.failures
        runs[f"{workers}-worker"] = [
            a.observation for a in result.analyses
        ]
    for name, observations in runs.items():
        assert observations == runs["sequential"], (
            f"{name} diverged from sequential (seed {seed})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_rng_independent_of_order(sdk, catalog, seed):
    """An app's observation must not depend on what ran before it."""
    corpus = list(_corpus(sdk, catalog, seed, n=12))
    forward = DynamicAnalysisEngine(
        sdk, sdk.restricted_api_ids, seed=seed
    ).analyze_corpus(corpus)
    backward = DynamicAnalysisEngine(
        sdk, sdk.restricted_api_ids, seed=seed
    ).analyze_corpus(corpus[::-1])
    assert [a.observation for a in backward[::-1]] == [
        a.observation for a in forward
    ]


def test_daily_report_counts_identical_across_worker_counts(
    fitted_checker, sdk, catalog
):
    corpus = _corpus(sdk, catalog, seed=21, n=40)
    reports = []
    for workers in (1, 4, 16):
        service = VettingService(
            fitted_checker,
            cluster=ServerCluster(n_servers=1),
            workers=workers,
        )
        reports.append(service.process_day(corpus))
    baseline = reports[0]
    for report in reports[1:]:
        assert report.n_apps == baseline.n_apps
        assert report.n_flagged == baseline.n_flagged
        flags = [v.malicious for v in report.verdicts]
        assert flags == [v.malicious for v in baseline.verdicts]
        probs = [v.probability for v in report.verdicts]
        assert probs == [v.probability for v in baseline.verdicts]
        assert report.mean_minutes == pytest.approx(baseline.mean_minutes)


def test_pipeline_repeat_run_identical(sdk, catalog):
    """The same pipeline object re-run gives the same answers."""
    corpus = _corpus(sdk, catalog, seed=31, n=20)
    engine = DynamicAnalysisEngine(sdk, sdk.restricted_api_ids, seed=5)
    pipeline = VettingPipeline(engine, workers=5)
    first = pipeline.run(corpus)
    second = pipeline.run(corpus)
    assert [a.observation for a in first.analyses] == [
        a.observation for a in second.analyses
    ]


def test_worker_pool_is_clamped_to_cluster_slots(sdk):
    engine = DynamicAnalysisEngine(sdk, [], seed=0)
    cluster = ServerCluster(
        n_servers=1, server=AnalysisServer(cores=6, emulator_slots=4)
    )
    pipeline = VettingPipeline(engine, cluster=cluster, workers=64)
    assert pipeline.workers == 4
    default = VettingPipeline(engine, cluster=cluster)
    assert default.workers == cluster.total_slots


def test_minutes_distribution_matches_sequential(sdk, catalog):
    """Total simulated minutes agree between execution modes."""
    corpus = _corpus(sdk, catalog, seed=41, n=25)
    sequential = DynamicAnalysisEngine(
        sdk, sdk.restricted_api_ids, seed=9
    ).analyze_corpus(corpus)
    engine = DynamicAnalysisEngine(sdk, sdk.restricted_api_ids, seed=9)
    result = VettingPipeline(engine, workers=6).run(corpus)
    seq_minutes = np.array([a.total_minutes for a in sequential])
    par_minutes = np.array([a.total_minutes for a in result.analyses])
    np.testing.assert_allclose(par_minutes, seq_minutes)
    assert result.schedule.slot_busy_minutes.sum() == pytest.approx(
        seq_minutes.sum()
    )
