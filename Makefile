# Developer entry points for the APICHECKER reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke examples record clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-smoke:
	REPRO_SCALE=smoke $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/market_vetting_day.py
	$(PYTHON) examples/feature_engineering.py
	$(PYTHON) examples/evasion_study.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/model_evolution.py

# The deliverable transcript files referenced from EXPERIMENTS.md.
record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
