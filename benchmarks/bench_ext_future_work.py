"""Extension bench — the paper's §6 future-work items, measured.

Two sketches from the paper's conclusion, implemented and evaluated:

1. **Histogram feature encoding** — the deployed bit vector "could lose
   certain feature information (e.g., API invocation frequency) and
   lead to over-fitting"; the histogram encoding adds per-API frequency
   buckets while staying binary.
2. **Fuzzing-style UI exploration** — "the UI coverage of Monkey could
   be a bottleneck ... we wish to incorporate sophisticated software
   testing techniques such as fuzzing"; the coverage-guided exerciser
   trades per-event cost for much better event efficiency.
"""

import numpy as np

from repro.core.checker import ApiChecker
from repro.emulator.monkey import FuzzingExerciser, MonkeyExerciser
from repro.experiments.harness import print_table
from repro.ml.metrics import evaluate


def test_ext_histogram_encoding(world, fitted_checker_factory, once):
    def run():
        binary = fitted_checker_factory()  # deployed configuration
        hist = ApiChecker(
            world.sdk,
            feature_encoding="histogram",
            seed=world.profile.seed + 61,
        )
        hist.fit(
            world.train,
            study_observations=list(world.train_observations),
        )
        out = {}
        for name, checker in (("binary", binary), ("histogram", hist)):
            verdicts = checker.vet_batch(world.test)
            pred = np.array([v.malicious for v in verdicts])
            out[name] = (
                evaluate(world.test.labels, pred),
                checker.feature_space.n_features,
            )
        return out

    results = once(run)
    print_table(
        "§6 ext: bit-vector vs histogram encoding",
        ["encoding", "#features", "precision", "recall", "F1"],
        [
            [name, nfeat, f"{rep.precision:.3f}", f"{rep.recall:.3f}",
             f"{rep.f1:.3f}"]
            for name, (rep, nfeat) in results.items()
        ],
    )
    # The histogram encoding carries strictly more information and must
    # not collapse accuracy; whether it helps is the open question the
    # paper poses — we report the measured answer.
    assert results["histogram"][1] > results["binary"][1]
    assert results["histogram"][0].f1 > results["binary"][0].f1 - 0.03


def test_ext_fuzzing_exerciser(world, once):
    apps = list(world.test)[:150]

    def run():
        rows = []
        for name, exerciser in (
            ("monkey-5K", MonkeyExerciser(n_events=5000, seed=62)),
            ("fuzzing-5K", FuzzingExerciser(n_events=5000, seed=62)),
            ("fuzzing-2K", FuzzingExerciser(n_events=2000, seed=62)),
        ):
            rng = np.random.default_rng(63)
            runs = [exerciser.exercise(a, rng) for a in apps]
            rows.append(
                (
                    name,
                    float(np.mean([r.achieved_rac for r in runs])),
                    float(np.mean([r.ui_seconds for r in runs]) / 60),
                )
            )
        return rows

    rows = once(run)
    print_table(
        "§6 ext: Monkey vs coverage-guided exploration",
        ["exerciser", "mean RAC", "UI minutes"],
        [[n, f"{r:.3f}", f"{m:.2f}"] for n, r, m in rows],
    )
    rac = {n: r for n, r, _ in rows}
    minutes = {n: m for n, _, m in rows}
    # Fuzzing lifts coverage at equal event count...
    assert rac["fuzzing-5K"] > rac["monkey-5K"] + 0.02
    # ...and matches Monkey's coverage with fewer events and less time.
    assert rac["fuzzing-2K"] >= rac["monkey-5K"] - 0.02
    assert minutes["fuzzing-2K"] < minutes["monkey-5K"]
