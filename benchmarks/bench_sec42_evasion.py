"""§4.2 — the anti-evasion controlled experiment.

Paper: running an unbiased 1% sample on real devices, the stock Google
emulator, and the four-fold hardened emulator: only 86.6% of apps
invoke the same number of APIs on the stock emulator as on real
hardware (probe-equipped malware goes quiet), versus 98.6% on the
hardened emulator; the remaining 1.4% require real-time data from
special sensors no emulator can synthesize.
"""

import numpy as np

from repro.emulator.backends import GoogleEmulator, RealDevice
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import emulate_app
from repro.experiments.harness import print_table


def _invoked_counts(world, env, backend, apps, seed):
    """Per-app rng seeded from the APK hash: apps whose behaviour does
    not depend on the environment then produce *identical* invocation
    sets in every environment, so parity differences isolate evasion."""
    hooks = HookEngine(world.sdk, [])
    counts = []
    for apk in apps:
        rng = np.random.default_rng((seed, int(apk.md5[:12], 16)))
        result = emulate_app(
            apk, world.sdk, backend, env, hooks,
            monkey=MonkeyExerciser(seed=seed),
            rng=rng, raise_on_crash=False,
        )
        counts.append(len(result.invoked_api_ids))
    return counts


def test_sec42_evasion(world, once):
    rng = np.random.default_rng(world.profile.seed + 42)
    sample = world.train.sample_fraction(
        max(0.01, 200 / len(world.train)), rng
    )
    apps = list(sample)

    def run():
        # The same seed across environments reproduces identical UI
        # exploration, isolating the environment's effect.
        real = _invoked_counts(
            world, DeviceEnvironment.real_device(), RealDevice(), apps, 7
        )
        stock = _invoked_counts(
            world, DeviceEnvironment.stock_emulator(), GoogleEmulator(),
            apps, 7,
        )
        hard = _invoked_counts(
            world, DeviceEnvironment.hardened_emulator(), GoogleEmulator(),
            apps, 7,
        )
        return np.array(real), np.array(stock), np.array(hard)

    real, stock, hard = once(run)
    # "Same number of APIs as on the real device", with a small slack
    # for run-to-run sampling noise in invocation counts.
    tol = np.maximum(3, 0.02 * real)
    stock_parity = float(np.mean(np.abs(stock - real) <= tol))
    hard_parity = float(np.mean(np.abs(hard - real) <= tol))
    print_table(
        "§4.2: API-count parity with real devices "
        "(paper: stock 86.6%, hardened 98.6%)",
        ["environment", "parity"],
        [
            ["stock emulator", f"{stock_parity:.3f}"],
            ["hardened emulator", f"{hard_parity:.3f}"],
        ],
    )

    # Shape: hardening closes most of the gap but not all of it
    # (live-sensor apps remain).
    assert hard_parity > stock_parity
    assert hard_parity > 0.9
    if world.profile.name != "smoke":
        assert 0.75 < stock_parity < 0.97
        assert hard_parity > 0.93
