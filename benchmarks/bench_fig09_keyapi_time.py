"""Fig. 9 — emulation time tracking only the 426 key APIs.

Paper: hooking just the key set brings mean per-app emulation down to
4.3 min (min 1.1, median 3.5, max 15.3) on the measurement-study
engine — far below the 53.6 min of full tracking and close to the
2.1 min no-tracking floor.
"""

from benchmarks.helpers import emulate_sample, minutes_of
from repro.experiments.harness import print_cdf


def test_fig09_keyapi_time(world, once):
    def run():
        analyses = emulate_sample(
            world,
            tracked_api_ids=world.selection.key_api_ids,
            n_apps=200,
            seed=9,
        )
        return minutes_of(analyses)

    minutes = once(run)
    stats = print_cdf(
        "Fig 9: emulation minutes tracking the key APIs "
        "(paper mean 4.3, median 3.5, min 1.1, max 15.3)",
        minutes,
    )
    if world.profile.name != "smoke":
        assert 2.5 < stats["mean"] < 7.0
    assert stats["min"] > 0.5
    # Right-skewed: mean above median, a long tail of slow apps.
    assert stats["mean"] >= stats["median"] * 0.9
    assert stats["max"] > 1.35 * stats["mean"]
