"""Table 2 — nine classifiers, tracking all APIs vs the 426 keys.

Paper: with all ~50K APIs tracked, random forest leads at 91.6%/90.2%
(precision/recall); with the 426 keys every model improves (RF:
96.8%/93.7%) and training shrinks by orders of magnitude (RF 29.1 min →
14.4 s; SVM slowest both times).  Key shape: (1) fewer, better-chosen
features beat the full feature set; (2) RF offers the best
accuracy/training-time balance; (3) NB is far behind.
"""

import numpy as np

from repro.experiments.harness import print_table
from repro.ml import CLASSIFIER_NAMES, cross_validate, make_classifier

PAPER = {
    "nb": (0.604, 0.596, 0.641, 0.636),
    "lr": (0.812, 0.703, 0.899, 0.724),
    "svm": (0.879, 0.716, 0.962, 0.801),
    "gbdt": (0.884, 0.743, 0.962, 0.779),
    "knn": (0.865, 0.837, 0.953, 0.933),
    "cart": (0.876, 0.843, 0.943, 0.937),
    "ann": (0.908, 0.899, 0.960, 0.934),
    "dnn": (0.915, 0.909, 0.964, 0.937),
    "rf": (0.916, 0.902, 0.968, 0.937),
}

N_FOLDS = 5
#: Cap the CV corpus so the 9x2 cross-validation grid stays tractable.
MAX_APPS = 2000


def test_table2_classifiers(world, once):
    X_full = world.train_api_matrix[:MAX_APPS]
    labels = world.train.labels.astype(np.int8)[:MAX_APPS]
    X_keys = X_full[:, world.selection.key_api_ids]

    def run():
        results = {}
        for name in CLASSIFIER_NAMES:
            res_keys = cross_validate(
                lambda: make_classifier(name, seed=5),
                X_keys, labels, n_splits=N_FOLDS, seed=5,
            )
            res_full = cross_validate(
                lambda: make_classifier(name, seed=5),
                X_full, labels, n_splits=N_FOLDS, seed=5,
            )
            results[name] = (res_full, res_keys)
        return results

    results = once(run)

    rows = []
    for name in CLASSIFIER_NAMES:
        res_full, res_keys = results[name]
        paper = PAPER[name]
        rows.append(
            [
                name,
                f"{res_full.precision:.3f}/{res_full.recall:.3f}",
                f"{res_keys.precision:.3f}/{res_keys.recall:.3f}",
                f"{res_full.train_seconds:.1f}s",
                f"{res_keys.train_seconds:.1f}s",
                f"paper: {paper[0]:.3f}/{paper[1]:.3f} -> "
                f"{paper[2]:.3f}/{paper[3]:.3f}",
            ]
        )
    print_table(
        "Table 2: classifiers, all APIs vs key APIs (prec/recall)",
        ["model", "all-APIs", "key-APIs", "t(all)", "t(keys)", "paper"],
        rows,
    )

    f1 = lambda r: r.pooled.f1
    keys_f1 = {n: f1(results[n][1]) for n in CLASSIFIER_NAMES}
    full_f1 = {n: f1(results[n][0]) for n in CLASSIFIER_NAMES}
    # Shape assertions hold at bench scale and above; the smoke profile
    # is too small for stable SRC mining.
    if world.profile.name != "smoke":
        # Shape 1: the strategically selected key set matches (or beats)
        # tracking every API.
        assert keys_f1["rf"] >= full_f1["rf"] - 0.02
        # Shape 2: RF is at (or within a hair of) the top on the key set.
        assert keys_f1["rf"] >= max(keys_f1.values()) - 0.03
        # Shape 3: naive Bayes trails the field badly.
        assert keys_f1["nb"] <= keys_f1["rf"] - 0.05
    # Shape 4: training on ~10x fewer features is much cheaper for the
    # deployed model.
    assert (
        results["rf"][1].train_seconds < results["rf"][0].train_seconds
    )
