"""Fig. 12 — online precision/recall over 12 months of deployment.

Paper: from March 2018 to February 2019, with monthly retraining,
APICHECKER's per-month precision stayed within 98.5–99.0% and recall
within 96.5–97.0% — stable operation under app-population drift and
SDK evolution.
"""

import numpy as np

from repro.experiments.harness import print_series, print_table


def test_fig12_online(world, evolution_history, once):
    history = once(lambda: evolution_history)

    print_table(
        "Fig 12: online monthly precision/recall "
        "(paper: 98.5-99.0 / 96.5-97.0)",
        ["month"] + [str(r.month) for r in history],
        [
            ["precision"]
            + [f"{r.report.precision:.3f}" for r in history],
            ["recall"] + [f"{r.report.recall:.3f}" for r in history],
            ["F1"] + [f"{r.report.f1:.3f}" for r in history],
        ],
    )

    print_series(
        "Fig 12 (plot): monthly F1",
        [r.month for r in history],
        [r.report.f1 for r in history],
        x_label="month", y_label="F1",
    )
    precisions = np.array([r.report.precision for r in history])
    recalls = np.array([r.report.recall for r in history])
    assert len(history) == 12
    # Shape: consistently high and stable, no collapse in any month.
    assert precisions.mean() > 0.9
    assert recalls.mean() > 0.8
    assert precisions.min() > 0.8
    assert recalls.min() > 0.65
    # Stability: monthly spread stays narrow, as in the paper's band.
    assert precisions.max() - precisions.min() < 0.2
