"""Rule-evaluation overhead — explanation must be (nearly) free.

The behavioral rule engine scores every *flagged* app of a vetting day
(`VettingService(rules=True)`, the default), so its cost rides on the
daily operational path.  This bench runs the same paced 4-worker
vetting day twice — rules disabled (baseline) and enabled — and
asserts the explained day costs **< 5%** extra wall time: one matmul
per evidence axis over the flagged slice must disappear next to the
emulator-occupancy time that dominates the production regime.

A micro section prints the raw evaluator rate (observations scored per
second against the bundled ruleset) for profiling reference.
"""

from __future__ import annotations

import time

from repro.core.pipeline import VettingPipeline
from repro.core.vetting import VettingService
from repro.obs import MetricsRegistry
from repro.rules import RuleEvaluator

#: Same slot-occupancy pacing as bench_pipeline_scaling.
PACE = 0.008

N_APPS = 200

#: Evaluator micro-benchmark observation count.
MICRO_OBS = 2_000

#: Maximum tolerated rule-evaluation overhead at 4 workers.
MAX_OVERHEAD = 0.05


def _paced_day(world, checker, day, rules: bool) -> float:
    registry = MetricsRegistry()
    service = VettingService(
        checker, workers=4, registry=registry, rules=rules
    )
    service.pipeline = VettingPipeline(
        checker.production_engine,
        cluster=service.cluster,
        workers=4,
        pace_seconds_per_minute=PACE,
        registry=registry,
        sink=service.sink,
    )
    t0 = time.perf_counter()
    report = service.process_day(day, true_labels=day.labels)
    wall = time.perf_counter() - t0
    if rules:
        assert len(report.behavior_reports) == report.n_flagged
    else:
        assert report.behavior_reports == ()
    return wall


def test_rules_overhead(world, fitted_checker_factory, once):
    checker = fitted_checker_factory()
    day = world.test.subset(range(min(N_APPS, len(world.test))))

    def run():
        walls = {"off": [], "on": []}
        # Interleave and keep the best of each variant so scheduler
        # noise cannot masquerade as rule-evaluation cost.
        for _ in range(2):
            walls["off"].append(_paced_day(world, checker, day, False))
            walls["on"].append(_paced_day(world, checker, day, True))

        evaluator = RuleEvaluator.builtin(
            world.sdk, tracked_api_ids=checker.key_api_ids
        )
        observations = list(world.test_observations)[:200]
        batch = (observations * (MICRO_OBS // len(observations) + 1))[
            :MICRO_OBS
        ]
        t0 = time.perf_counter()
        evaluator.evaluate(batch)
        eval_rate = MICRO_OBS / (time.perf_counter() - t0)
        return walls, eval_rate

    walls, eval_rate = once(run)
    base, full = min(walls["off"]), min(walls["on"])
    overhead = full / base - 1.0

    print(f"\nRule-evaluation overhead over {len(day)} apps, 4 workers "
          f"(pace {PACE}s per simulated minute):")
    print(f"  rules disabled: {base:6.2f}s wall")
    print(f"  rules enabled:  {full:6.2f}s wall  "
          f"overhead {overhead * 100:+.1f}%")
    print(f"  evaluator micro: {eval_rate / 1e3:.1f}K obs/s "
          f"against the bundled ruleset")

    assert overhead < MAX_OVERHEAD, (
        f"rule-evaluation overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%}"
    )
