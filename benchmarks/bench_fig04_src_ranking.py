"""Fig. 4 — ranking of all framework APIs by SRC against malice.

Paper: of ~50K APIs, 247 have SRC >= 0.2 (meaningfully malware-leaning)
and 2,536 have SRC <= -0.2 (benign-leaning, almost all of them seldom
invoked); everything else sits in the weak-correlation band.
"""

import numpy as np

from repro.experiments.harness import print_table


def test_fig04_src_ranking(world, once):
    def run():
        return world.selection

    selection = once(run)
    src = selection.src
    order = np.argsort(src)[::-1]
    deciles = np.percentile(src, np.arange(0, 101, 10))
    print_table(
        "Fig 4: SRC deciles over all APIs (paper: 247 above +0.2)",
        ["percentile"] + [str(p) for p in range(0, 101, 10)],
        [["SRC"] + [f"{d:+.3f}" for d in deciles[::-1]]],
    )
    n_pos = int((src >= 0.2).sum())
    n_neg = int((src <= -0.2).sum())
    n_weak = len(src) - n_pos - n_neg
    print(
        f"APIs with SRC>=+0.2: {n_pos} (paper 247) | "
        f"SRC<=-0.2: {n_neg} (paper 2,536) | weak band: {n_weak}"
    )

    # Shape: a few hundred strongly positive APIs, a negative band, and
    # the vast majority uncorrelated.
    assert 120 <= n_pos <= 450
    assert n_neg >= 5
    assert n_weak > 0.75 * len(src)
    # The ranking's head is strongly positive, its tail negative.
    assert src[order[0]] > 0.3
    assert src[order[-1]] < -0.1
