"""Fig. 13 — top-20 most important features by Gini index.

Paper: the random forest's top-20 features mix 7 key APIs, 8 requested
permissions and 5 used intents, dominated by SMS machinery
(SmsManager_sendTextMessage, SEND_SMS, SMS_RECEIVED), device-event
interception (RECEIVE_BOOT_COMPLETED, wifi.STATE_CHANGE,
DEVICE_ADMIN_ENABLED), and overlay-attack enablers
(SYSTEM_ALERT_WINDOW).
"""

from repro.experiments.harness import print_table

PAPER_TOP = (
    "API: SmsManager_sendTextMessage",
    "Permission: SEND_SMS",
    "Intent: SMS_RECEIVED",
    "Intent: STATE_CHANGE",
    "Permission: RECEIVE_SMS",
    "Intent: DEVICE_ADMIN_ENABLED",
    "Intent: STATE_CHANGED",
    "Permission: RECEIVE_MMS",
    "Intent: ACTION_BATTERY_OKAY",
    "API: TelephonyManager_getLine1Number",
    "Permission: RECEIVE_WAP_PUSH",
    "API: WifiInfo_getMacAddress",
    "Permission: READ_SMS",
    "API: View_setBackgroundColor",
    "Permission: ACCESS_NETWORK_STATE",
    "Permission: SYSTEM_ALERT_WINDOW",
    "API: SQLiteDatabase_insertWithOnConflict",
    "Permission: RECEIVE_BOOT_COMPLETED",
    "API: HttpURLConnection_connect",
    "API: ActivityManager_getRunningTasks",
)


def test_fig13_gini(world, fitted_checker_factory, once):
    def run():
        return fitted_checker_factory().gini_table(20)

    table = once(run)
    print_table(
        "Fig 13: top-20 Gini-important features "
        "(paper: 7 APIs, 8 permissions, 5 intents)",
        ["rank", "feature", "gini", "in paper's top-20?"],
        [
            [
                i + 1,
                name,
                f"{score:.4f}",
                "yes" if name in PAPER_TOP else "",
            ]
            for i, (name, score) in enumerate(table)
        ],
    )

    kinds = [name.split(":")[0] for name, _ in table]
    # Shape: APIs dominate, with auxiliary families represented in the
    # broader importance ranking (the paper's top-20 mixes 7/8/5; on the
    # synthetic corpus the API bits carry relatively more of the signal,
    # so permissions/intents can rank slightly deeper).
    assert "API" in kinds
    if world.profile.name != "smoke":
        wide = fitted_checker_factory().gini_table(60)
        wide_kinds = {name.split(":")[0] for name, _ in wide}
        assert "Permission" in wide_kinds
        assert "Intent" in wide_kinds
    # Scores are a proper descending ranking.
    scores = [s for _, s in table]
    assert scores == sorted(scores, reverse=True)
    assert scores[0] > 0
    # Some of the paper's canonical features surface in the broader
    # ranking (which of the ~200 informative key APIs tops a given
    # corpus realization is noisy).
    wide100 = fitted_checker_factory().gini_table(100)
    overlap = sum(1 for name, _ in wide100 if name in PAPER_TOP)
    assert overlap >= 1
