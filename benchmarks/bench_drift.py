"""Drift gates — F1 decay and drift-triggered recovery.

Runs three arms over byte-identical :class:`repro.drift.DriftingMarket`
timelines (same seed, so every slice is the same apps in the same
order) and gates the PR's acceptance criteria:

* **no-evolution**: the bootstrap model is frozen for the whole year.
  Its F1 must decay as SDK releases mutate family signatures and the
  emergent family debuts — the paper's core argument for continuous
  evolution (§5.3).
* **monthly**: :class:`~repro.core.evolution.EvolutionLoop` with
  :class:`~repro.drift.MonthlyPolicy` — the paper's cadence, one
  retrain every period.
* **drift-triggered**: the same loop with
  :class:`~repro.drift.DriftTriggeredPolicy` over a
  :class:`~repro.drift.DriftMonitorBank` — it may only retrain when a
  monitor alarms, and must land within 0.02 terminal F1 of monthly
  while spending strictly fewer retrains.

Two operational gates ride along: corpus slices must be
byte-deterministic across re-runs (two same-seed markets hash
identically), and the online drift monitors must cost < 5% serving
wall-time on a day's traffic through a live
:class:`~repro.serve.service.OnlineVettingService` (plus a small
absolute slack so scheduler noise cannot flake the gate).

Results land in ``benchmarks/results/drift.json`` (override with
``REPRO_DRIFT_BENCH_OUT``).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.android.sdk import AndroidSdk, SdkSpec
from repro.core.checker import ApiChecker
from repro.core.evolution import EvolutionLoop
from repro.drift import (
    DriftingMarket,
    DriftingMarketStream,
    DriftMonitorBank,
    DriftTriggeredPolicy,
    MonthlyPolicy,
    PsiMonitor,
    RollingF1Monitor,
)
from repro.ml.metrics import evaluate
from repro.obs import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService

#: Terminal-F1 tolerance: drift-triggered may trail monthly by this
#: much on the final period while retraining strictly less often.
TERMINAL_F1_TOLERANCE = 0.02

#: Relative serving-overhead budget for the online drift monitors.
MONITOR_OVERHEAD_BUDGET = 0.05

#: Absolute slack (seconds) added to the overhead gate so sub-second
#: scheduler jitter cannot flake it when the base run is fast.
MONITOR_OVERHEAD_SLACK_S = 0.5

#: The drifting year is a fixed-size experiment — the gates were tuned
#: against these exact period sizes, so the scale profile only scales
#: the SDK (``n_apis``), never the traffic.
PERIODS = 12
PERIOD_DAYS = 30
APPS_PER_DAY = 8
BOOTSTRAP_N = 300
MAX_POOL = 2400


def _default_out() -> Path:
    override = os.environ.get("REPRO_DRIFT_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).parent / "results" / "drift.json"


def _make_stream(profile) -> DriftingMarketStream:
    """One drifting year; same profile => byte-identical slices."""
    sdk = AndroidSdk.generate(
        SdkSpec(n_apis=profile.n_apis, seed=profile.seed + 60)
    )
    market = DriftingMarket(
        sdk,
        seed=profile.seed + 61,
        apps_per_day=APPS_PER_DAY,
        days=PERIODS * PERIOD_DAYS,
        sdk_release_every=90,
        new_family_days=(144,),
        mutation_fraction=0.5,
        mutated_families=4,
    )
    return DriftingMarketStream(market, period_days=PERIOD_DAYS)


def _tuned_bank() -> DriftMonitorBank:
    """Monitors tuned to the experiment's period size.

    One period is 240 apps, so the rolling-F1 window covers exactly one
    period of labeled-lag feedback and the PSI window two periods of
    traffic — the default (production-sized) windows respond too slowly
    for a 12-period year.  No shadow monitor: the evolution loop scores
    no shadow model.
    """
    return DriftMonitorBank(
        f1=RollingF1Monitor(window=240, threshold=0.10, min_samples=60),
        psi=PsiMonitor(window=480, threshold=0.25),
    )


def _slice_digest(market: DriftingMarket, days) -> str:
    """Hash the exact content of a few day slices (apps + labels)."""
    digest = hashlib.sha256()
    for day in days:
        sl = market.day_slice(day)
        for apk in sl.corpus:
            digest.update(apk.md5.encode())
        digest.update(np.asarray(sl.market_labels, dtype=bool).tobytes())
    return digest.hexdigest()


def _serve_day(corpus, labels, checker, workdir, *, drift_monitors):
    """Push one day through a live service; return elapsed seconds."""
    models = ModelRegistry(workdir / "models", metrics=MetricsRegistry())
    models.publish(checker, metadata={"source": "bench-drift"},
                   activate=True)
    service = OnlineVettingService(
        models,
        spool_dir=workdir / "spool",
        workers=2,
        batch_size=8,
        metrics=models.metrics,
        drift_monitors=drift_monitors,
    ).start()
    try:
        start = time.perf_counter()
        md5s = []
        for apk in corpus:
            service.submit(apk)
            md5s.append(apk.md5)
        assert service.drain(timeout=600.0)
        # Labeled-lag feedback is part of the serving day too.
        for md5, label in zip(md5s, labels):
            service.record_feedback(md5, bool(label))
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    return elapsed


def test_drift_evolution_gates(profile, once, tmp_path):
    def run():
        results = {}

        # -- byte-determinism: two same-seed markets, same bytes ------
        probe_days = (0, 90, 150)
        digests = []
        for _ in range(2):
            stream = _make_stream(profile)
            stream.market.bootstrap(50)
            digests.append(_slice_digest(stream.market, probe_days))
        results["determinism"] = {
            "probe_days": list(probe_days),
            "digests": digests,
        }

        # -- arm 1: frozen bootstrap model ----------------------------
        stream = _make_stream(profile)
        boot = stream.bootstrap_corpus(BOOTSTRAP_N)
        frozen = ApiChecker(
            stream.sdk, seed=profile.seed + 62
        ).fit(boot)
        f1s = []
        for _ in range(PERIODS):
            batch = stream.next_month()
            predicted = np.array(
                [v.malicious for v in frozen.vet_batch(batch.corpus)]
            )
            f1s.append(evaluate(batch.market_labels, predicted).f1)
        results["no_evolution"] = {"f1": f1s, "retrains": 0}

        # -- arm 2: the paper's monthly cadence -----------------------
        stream = _make_stream(profile)
        boot = stream.bootstrap_corpus(BOOTSTRAP_N)
        loop = EvolutionLoop(
            stream, boot, max_pool=MAX_POOL,
            checker_seed=profile.seed + 62,
            retrain_policy=MonthlyPolicy(),
        )
        history = loop.run(PERIODS)
        results["monthly"] = {
            "f1": [r.report.f1 for r in history],
            "retrains": loop.retrain_count,
        }

        # -- arm 3: retrain only when a monitor alarms ----------------
        stream = _make_stream(profile)
        boot = stream.bootstrap_corpus(BOOTSTRAP_N)
        loop = EvolutionLoop(
            stream, boot, max_pool=MAX_POOL,
            checker_seed=profile.seed + 62,
            retrain_policy=DriftTriggeredPolicy(),
            monitors=_tuned_bank(),
        )
        history = loop.run(PERIODS)
        results["drift_triggered"] = {
            "f1": [r.report.f1 for r in history],
            "retrains": loop.retrain_count,
            "retrain_reasons": [
                {"period": r.month, "reason": r.decision.reason}
                for r in history
                if r.retrained and r.decision is not None
            ],
        }

        # -- monitor overhead on a day through the live service -------
        # Two reps per arm, best-of taken: the monitors' true cost is
        # far below single-run scheduler jitter, and the minimum is the
        # stable estimator of each arm's floor.
        day_market = DriftingMarket(
            AndroidSdk.generate(
                SdkSpec(n_apis=profile.n_apis, seed=profile.seed + 63)
            ),
            seed=profile.seed + 64,
            apps_per_day=240,
            days=1,
            new_family_days=(),
        )
        day_boot = day_market.bootstrap(BOOTSTRAP_N)
        day_checker = ApiChecker(
            day_market.sdk, seed=profile.seed + 65
        ).fit(day_boot)
        day = day_market.day_slice(0)
        off_s = min(
            _serve_day(
                day.corpus, day.market_labels, day_checker,
                tmp_path / f"overhead-off-{rep}", drift_monitors=False,
            )
            for rep in range(2)
        )
        on_s = min(
            _serve_day(
                day.corpus, day.market_labels, day_checker,
                tmp_path / f"overhead-on-{rep}", drift_monitors=True,
            )
            for rep in range(2)
        )
        results["monitor_overhead"] = {
            "n_apps": len(day.corpus),
            "monitors_off_s": off_s,
            "monitors_on_s": on_s,
            "relative": (on_s - off_s) / off_s if off_s else 0.0,
        }
        return results

    results = once(run)

    no_evo = results["no_evolution"]
    monthly = results["monthly"]
    drift = results["drift_triggered"]
    overhead = results["monitor_overhead"]

    def _fmt(f1s):
        return " ".join(f"{f:.2f}" for f in f1s)

    print("\nDrifting year, prospective F1 by period:")
    print(f"  no-evolution   [{_fmt(no_evo['f1'])}] retrains=0")
    print(f"  monthly        [{_fmt(monthly['f1'])}] "
          f"retrains={monthly['retrains']}")
    print(f"  drift-trigger  [{_fmt(drift['f1'])}] "
          f"retrains={drift['retrains']}")
    for item in drift["retrain_reasons"]:
        print(f"    period {item['period']}: {item['reason']}")
    print(f"  monitor overhead: {overhead['monitors_off_s']:.2f}s off "
          f"vs {overhead['monitors_on_s']:.2f}s on "
          f"({overhead['relative']:+.1%} over {overhead['n_apps']} apps)")

    # Gate: slices are byte-deterministic across re-runs.
    assert results["determinism"]["digests"][0] == (
        results["determinism"]["digests"][1]
    ), "same-seed drifting markets diverged"

    # Gate: the frozen model decays while evolution holds the line.
    # Averages over the first/last third smooth single-period noise;
    # everything is seeded, so the comparison is deterministic.
    third = PERIODS // 3
    frozen_early = float(np.mean(no_evo["f1"][:third]))
    frozen_late = float(np.mean(no_evo["f1"][-third:]))
    drift_late = float(np.mean(drift["f1"][-third:]))
    assert frozen_late < frozen_early, (
        f"frozen model did not decay: {frozen_early:.3f} -> "
        f"{frozen_late:.3f}"
    )
    assert drift_late > frozen_late, (
        "drift-triggered evolution did not recover over the frozen "
        f"model: {drift_late:.3f} vs {frozen_late:.3f}"
    )

    # Gate: drift-triggered lands within tolerance of monthly on the
    # terminal period while spending strictly fewer retrains.
    assert drift["f1"][-1] >= monthly["f1"][-1] - TERMINAL_F1_TOLERANCE, (
        f"terminal F1 {drift['f1'][-1]:.3f} trails monthly "
        f"{monthly['f1'][-1]:.3f} by more than {TERMINAL_F1_TOLERANCE}"
    )
    assert drift["retrains"] < monthly["retrains"], (
        "drift-triggered must retrain strictly less than monthly"
    )
    assert drift["retrains"] > 0, "drift policy never fired"

    # Gate: online monitors cost < 5% serving wall-time (+ jitter slack).
    budget = (
        overhead["monitors_off_s"] * (1.0 + MONITOR_OVERHEAD_BUDGET)
        + MONITOR_OVERHEAD_SLACK_S
    )
    assert overhead["monitors_on_s"] <= budget, (
        f"drift monitors cost {overhead['relative']:+.1%} serving "
        f"wall-time (budget {MONITOR_OVERHEAD_BUDGET:.0%})"
    )

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "bench": "drift",
                "profile": profile.name,
                "gates": {
                    "terminal_f1_tolerance": TERMINAL_F1_TOLERANCE,
                    "monthly_terminal_f1": monthly["f1"][-1],
                    "drift_terminal_f1": drift["f1"][-1],
                    "monthly_retrains": monthly["retrains"],
                    "drift_retrains": drift["retrains"],
                    "frozen_early_f1": frozen_early,
                    "frozen_late_f1": frozen_late,
                    "drift_late_f1": drift_late,
                    "monitor_overhead_relative": overhead["relative"],
                    "slice_digest": results["determinism"]["digests"][0],
                },
                "arms": {
                    "no_evolution": no_evo,
                    "monthly": monthly,
                    "drift_triggered": drift,
                },
                "monitor_overhead": overhead,
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    print(f"  wrote {out}")
