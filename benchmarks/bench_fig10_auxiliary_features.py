"""Fig. 10 — the auxiliary-feature ablation (A / A+P / A+I / P+I / A+P+I).

Paper: key APIs alone (A) give 96.8%/93.7%; adding requested
permissions (A+P) lifts recall to 96.5%, adding used intents (A+I) to
94.8%; permissions+intents alone (P+I) already reach 97.5%/94.6%; the
full combination (A+P+I) is best at 98.6% precision / 96.7% recall —
reflection- and IPC-hidden behaviour is recovered by the auxiliary
features.
"""

import numpy as np

from repro.core.features import FeatureMode
from repro.experiments.harness import print_table
from repro.ml.metrics import evaluate

PAPER = {
    "A": (0.968, 0.937),
    "A+P": (0.980, 0.965),
    "A+I": (0.975, 0.948),
    "P+I": (0.975, 0.946),
    "A+P+I": (0.986, 0.967),
}


def test_fig10_auxiliary_features(world, fitted_checker_factory, once):
    test_apps = world.test

    def run():
        reports = {}
        for mode in FeatureMode:
            checker = fitted_checker_factory(mode)
            verdicts = checker.vet_batch(test_apps)
            pred = np.array([v.malicious for v in verdicts])
            reports[mode.value] = evaluate(test_apps.labels, pred)
        return reports

    reports = once(run)
    print_table(
        "Fig 10: feature-family ablation",
        ["features", "precision", "recall", "F1", "paper p/r"],
        [
            [
                mode,
                f"{rep.precision:.3f}",
                f"{rep.recall:.3f}",
                f"{rep.f1:.3f}",
                f"{PAPER[mode][0]:.3f}/{PAPER[mode][1]:.3f}",
            ]
            for mode, rep in reports.items()
        ],
    )

    # Shape: the full combination is at (or within corpus-realization
    # noise of) the best F1, and the auxiliary families never hurt
    # recall.  Which exact mode tops a given realization varies by a few
    # false positives; the paper's ordering is the central tendency.
    f1 = {m: r.f1 for m, r in reports.items()}
    assert f1["A+P+I"] >= max(f1.values()) - 0.06
    assert reports["A+P"].recall >= reports["A"].recall - 0.015
    assert reports["A+I"].recall >= reports["A"].recall - 0.015
    if world.profile.name != "smoke":
        # Headline operating point: nineties precision and recall.
        assert reports["A+P+I"].precision > 0.9
        assert reports["A+P+I"].recall > 0.88
