"""Batched columnar scoring vs the per-app loop — the hot-path gate.

Times the two ways the fitted checker can score a day of observations:

* **single**: `score_observation` per app — encode one row, call
  ``predict_proba`` on a 1-row matrix (the pre-batching hot path);
* **batched**: one columnar ``FeatureBlock`` for the whole day and one
  ``predict_proba_batch`` call (the deployed path).

Both produce bitwise-identical probabilities (the equivalence battery
pins that); this bench gates the *throughput* claim: the batched path
must be at least 10x faster per app at batch 1024 (5x under the small
CI ``smoke`` profile, where the forest is shallow and per-call python
overhead is a smaller share).  It also measures the serve-side effect:
p95 latency of scoring one micro-batch, per-row vs blocked, which is
the portion of the serve loop the batch path removes.

Results land in ``benchmarks/results/score_batch.json`` (override with
``REPRO_SCORE_BENCH_OUT``) so CI can gate on and archive them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

#: Rows in the throughput block (the ISSUE's headline batch size).
BATCH_ROWS = 1024

#: Apps timed one by one to estimate the single-app path (full 1024
#: singles would dominate the bench for no extra signal).
SINGLE_SAMPLE = 128

#: Serve-style micro-batch size and how many of them to time for p95.
MICRO_BATCH = 32
MICRO_ROUNDS = 40


def _default_out() -> Path:
    override = os.environ.get("REPRO_SCORE_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).parent / "results" / "score_batch.json"


def _tile(observations, n):
    """Repeat observations to exactly n entries (scoring is per-row)."""
    reps = -(-n // len(observations))
    return (list(observations) * reps)[:n]


def test_score_batch_speedup(world, fitted_checker_factory, once):
    checker = fitted_checker_factory()
    observations = _tile(world.test_observations, BATCH_ROWS)
    block = checker.feature_space.encode_block(observations)

    def run():
        # Warm both paths (lazy allocations, first-call overheads).
        checker.score_observation(observations[0])
        checker.score_block(block.take(np.arange(MICRO_BATCH)))

        t0 = time.perf_counter()
        for obs in observations[:SINGLE_SAMPLE]:
            checker.score_observation(obs)
        single_per_app = (time.perf_counter() - t0) / SINGLE_SAMPLE

        t0 = time.perf_counter()
        probs = checker.score_block(block)
        batch_wall = time.perf_counter() - t0
        assert probs.shape == (BATCH_ROWS,)

        # Serve-side micro-batch p95: the scoring stage of one
        # dispatcher cycle, per-row vs blocked, over many rounds.
        rng = np.random.default_rng(world.profile.seed + 77)
        single_lat, batched_lat = [], []
        for _ in range(MICRO_ROUNDS):
            rows = rng.integers(0, BATCH_ROWS, size=MICRO_BATCH)
            micro_obs = [observations[int(r)] for r in rows]
            t0 = time.perf_counter()
            for obs in micro_obs:
                checker.verdict_from_observation(obs)
            single_lat.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            checker.verdicts_from_observations(micro_obs)
            batched_lat.append(time.perf_counter() - t0)

        return {
            "single_per_app_seconds": single_per_app,
            "batch_wall_seconds": batch_wall,
            "batch_per_app_seconds": batch_wall / BATCH_ROWS,
            "speedup": single_per_app / (batch_wall / BATCH_ROWS),
            "serve_p95_single_seconds": float(
                np.percentile(single_lat, 95)
            ),
            "serve_p95_batched_seconds": float(
                np.percentile(batched_lat, 95)
            ),
        }

    row = once(run)
    row["p95_drop_fraction"] = 1.0 - (
        row["serve_p95_batched_seconds"] / row["serve_p95_single_seconds"]
    )

    # The smoke profile's forest is small enough that fixed per-call
    # overhead caps the win; the full-size profiles must clear 10x.
    required = 5.0 if world.profile.name == "smoke" else 10.0

    print(
        f"\nBatched columnar scoring ({BATCH_ROWS} rows, "
        f"profile {world.profile.name}):"
    )
    print(
        f"  single {row['single_per_app_seconds'] * 1e3:7.3f} ms/app   "
        f"batched {row['batch_per_app_seconds'] * 1e3:7.3f} ms/app   "
        f"speedup {row['speedup']:6.1f}x (gate {required:.0f}x)"
    )
    print(
        f"  serve micro-batch ({MICRO_BATCH} apps) p95: "
        f"per-row {row['serve_p95_single_seconds'] * 1e3:7.1f} ms -> "
        f"batched {row['serve_p95_batched_seconds'] * 1e3:7.1f} ms "
        f"({row['p95_drop_fraction']:+.0%} drop)"
    )

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "bench": "score_batch",
                "profile": world.profile.name,
                "batch_rows": BATCH_ROWS,
                "micro_batch": MICRO_BATCH,
                "required_speedup": required,
                **row,
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    print(f"  wrote {out}")

    assert row["speedup"] >= required, (
        f"batched scoring speedup {row['speedup']:.1f}x is below the "
        f"{required:.0f}x gate"
    )
    # Soft expectation, hard assert only against regression to parity:
    # the batched micro-batch must not be slower than the per-row loop.
    assert (
        row["serve_p95_batched_seconds"] <= row["serve_p95_single_seconds"]
    ), "batched micro-batch p95 regressed past the per-row loop"
