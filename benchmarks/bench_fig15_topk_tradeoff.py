"""Fig. 15 + §5.4 — accuracy/time trade-off over top-k important keys.

Paper: ranking the 426 key APIs by Gini importance, F1 saturates
quickly: tracking only the top-150 keys keeps detection at 98.3%/96.6%
(vs 98.6%/96.7% for all 426) while mean analysis time falls from 4.3 to
2.5 minutes — enabling detection on low-end machines.
"""

import numpy as np

from benchmarks.helpers import emulate_sample, minutes_of
from repro.experiments.harness import print_series, print_table
from repro.ml.forest import RandomForest
from repro.ml.metrics import evaluate

K_GRID = (10, 25, 50, 100, 150, 250)


def test_fig15_topk_tradeoff(world, once):
    keys = world.selection.key_api_ids
    X_train = world.train_api_matrix[:, keys]
    X_test = world.test_api_matrix[:, keys]
    y_train = world.train.labels.astype(np.int8)
    y_test = world.test.labels

    def run():
        ranker = RandomForest(
            n_trees=world.profile.rf_trees, seed=15
        ).fit(X_train, y_train)
        order = np.argsort(ranker.feature_importances_)[::-1]
        full_rep = evaluate(y_test, ranker.predict(X_test))
        full_time = minutes_of(
            emulate_sample(world, tracked_api_ids=keys, n_apps=60, seed=15)
        ).mean()
        series = []
        for k in [k for k in K_GRID if k < keys.size] + [keys.size]:
            cols = np.sort(order[:k])
            rf = RandomForest(
                n_trees=world.profile.rf_trees, seed=16
            ).fit(X_train[:, cols], y_train)
            rep = evaluate(y_test, rf.predict(X_test[:, cols]))
            tracked = keys[cols]
            t = minutes_of(
                emulate_sample(
                    world, tracked_api_ids=tracked, n_apps=60, seed=16
                )
            ).mean()
            series.append((k, rep.f1, float(t)))
        return series, full_rep, float(full_time)

    series, full_rep, full_time = once(run)
    print_table(
        "Fig 15: F1 and minutes vs top-k important keys "
        "(paper: top-150 keeps 98.3/96.6 at 2.5 min vs 4.3 min)",
        ["k", "F1", "minutes"],
        [[k, f"{f:.3f}", f"{t:.2f}"] for k, f, t in series],
    )

    print_series(
        "Fig 15 (plot): minutes vs top-k important keys",
        [k for k, _, _ in series],
        [t for _, _, t in series],
        x_label="k", y_label="minutes",
    )
    f1_by_k = {k: f for k, f, _ in series}
    t_by_k = {k: t for k, _, t in series}
    ks = sorted(f1_by_k)
    k150 = min(ks, key=lambda k: abs(k - 150))
    # Shape: a mid-sized important subset retains nearly all accuracy...
    assert f1_by_k[k150] > full_rep.f1 - 0.03
    # ...while costing visibly less analysis time than the full key set.
    # (Partial reproduction: the paper cuts 4.3 -> 2.5 min; here the
    # benign-borne key cost is spread more evenly, so the cut is ~10-25%.)
    assert t_by_k[k150] < t_by_k[ks[-1]] * 0.97
    # Tiny k loses accuracy.
    assert f1_by_k[ks[0]] <= max(f1_by_k.values())
