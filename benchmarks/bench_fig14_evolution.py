"""Fig. 14 — evolution of the key-API set size over 12 months.

Paper: monthly re-selection over the growing corpus and the evolving
Android SDK moves the key-API count only slightly — between 425 and 432
across the year — so per-app detection time stays stable.
"""

import numpy as np

from repro.experiments.harness import print_table


def test_fig14_evolution(world, evolution_history, once):
    history = once(lambda: evolution_history)

    print_table(
        "Fig 14: key-API count by month (paper: 425-432)",
        ["month"] + [str(r.month) for r in history],
        [
            ["#keys"] + [str(r.n_key_apis) for r in history],
            ["SDK size"] + [str(r.sdk_size) for r in history],
        ],
    )

    sizes = np.array([r.n_key_apis for r in history])
    sdk_sizes = np.array([r.sdk_size for r in history])
    # The SDK grew during the year (new releases every few months).
    assert sdk_sizes[-1] > sdk_sizes[0]
    # Shape: the key set drifts but only mildly — the paper saw a 7-API
    # band around 426; we allow a proportional band at our scale.
    assert sizes.min() > 0.85 * sizes.max()
    mean = sizes.mean()
    assert np.all(np.abs(sizes - mean) < 0.12 * mean)
