"""Online-service throughput — closed-loop load against the in-process API.

A pool of closed-loop clients drives :class:`OnlineVettingService`
directly (submit, then poll ``result`` until terminal, then submit the
next app — the classic closed-loop load model, so offered load tracks
service capacity instead of overrunning it).  Measured at 1 and 4
pipeline workers:

* sustained throughput (terminal outcomes per second of wall time);
* p50/p95 end-to-end latency (accept -> terminal result, per client).

The numbers land in a JSON result file (default
``benchmarks/results/serve_throughput.json``, override with
``REPRO_SERVE_BENCH_OUT``) so CI and regression diffs can consume them.
The run also asserts the conservation law every serving configuration
must obey: accepted == completed == scored, queue drained.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.obs import MetricsRegistry
from repro.serve.queue import SubmissionQueue
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService

#: Submissions per worker configuration (disjoint app slices, so the
#: observation cache can never serve one configuration from another).
N_SUBMISSIONS = 96

#: Concurrent closed-loop clients.
N_CLIENTS = 8

WORKER_SWEEP = (1, 4)


def _default_out() -> Path:
    override = os.environ.get("REPRO_SERVE_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).parent / "results" / "serve_throughput.json"


def _drive_closed_loop(service, apps):
    """Run the client pool to exhaustion; returns per-app latencies."""
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    latencies: list[float] = []
    failures: list[str] = []

    def client():
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(apps):
                    return
                cursor["next"] = index + 1
            apk = apps[index]
            t0 = time.perf_counter()
            service.submit(apk)
            while True:
                outcome = service.result(apk.md5)
                state = outcome.get("status")
                if state in ("done", "failed"):
                    break
                time.sleep(0.002)
            latencies.append(time.perf_counter() - t0)
            if state == "failed":
                failures.append(apk.md5)

    threads = [threading.Thread(target=client) for _ in range(N_CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not failures, f"{len(failures)} submissions failed"
    return np.array(latencies), wall


def test_serve_throughput(tmp_path, world, fitted_checker_factory, once):
    checker = fitted_checker_factory()
    models = ModelRegistry(tmp_path / "models")
    models.publish(checker, metadata={"source": "bench"}, activate=True)

    apps = list(world.test)
    assert len(apps) >= N_SUBMISSIONS * len(WORKER_SWEEP), (
        "bench world too small for disjoint per-configuration slices"
    )

    def run():
        rows = {}
        for i, workers in enumerate(WORKER_SWEEP):
            piece = apps[i * N_SUBMISSIONS:(i + 1) * N_SUBMISSIONS]
            metrics = MetricsRegistry()
            queue = SubmissionQueue(
                max_depth=0, registry=metrics  # unbounded: closed loop
            )
            service = OnlineVettingService(
                models,
                queue=queue,
                workers=workers,
                batch_size=2 * workers,
                cache=None,
                metrics=metrics,
            )
            with service:
                latencies, wall = _drive_closed_loop(service, piece)
            accepted = metrics.total("serve_submissions_total")
            rows[workers] = {
                "workers": workers,
                "clients": N_CLIENTS,
                "submissions": len(piece),
                "wall_seconds": wall,
                "throughput_per_sec": len(piece) / wall,
                "latency_p50_seconds": float(np.percentile(latencies, 50)),
                "latency_p95_seconds": float(np.percentile(latencies, 95)),
                "accepted": accepted,
                "completed": metrics.value("serve_completed_total"),
                "scored": metrics.value("serve_scored_total"),
            }
        return rows

    rows = once(run)

    print(f"\nClosed-loop serving throughput "
          f"({N_CLIENTS} clients, {N_SUBMISSIONS} submissions each run):")
    for workers, row in sorted(rows.items()):
        print(f"  {workers} workers: "
              f"{row['throughput_per_sec']:7.1f} subs/s  "
              f"p50 {row['latency_p50_seconds'] * 1e3:6.1f} ms  "
              f"p95 {row['latency_p95_seconds'] * 1e3:6.1f} ms")

    for row in rows.values():
        # Conservation: every accepted submission reached one terminal
        # outcome and was scored exactly once.
        assert row["accepted"] == row["submissions"]
        assert row["completed"] == row["submissions"]
        assert row["scored"] == row["submissions"]
        assert row["throughput_per_sec"] > 0
        assert row["latency_p50_seconds"] <= row["latency_p95_seconds"]

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {"bench": "serve_throughput", "rows": list(rows.values())},
            indent=2,
        ),
        encoding="utf-8",
    )
    print(f"  wrote {out}")
