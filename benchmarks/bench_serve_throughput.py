"""Online-service throughput — closed-loop and open-loop sharded load.

Two load models against the serving tier:

* **Closed loop, single process** — a pool of clients drives
  :class:`OnlineVettingService` directly (submit, poll ``result`` to
  terminal, submit the next), so offered load tracks service capacity.
  Measured at 1 and 4 pipeline workers.
* **Open loop, sharded** — a bursty generator fires submissions at the
  :class:`~repro.serve.shard.ShardRouter` on a fixed schedule,
  independent of completions (the market's submission stream does not
  wait for verdicts).  Measured at 1 vs N worker processes with
  slot-occupancy pacing (`pace_seconds_per_minute`) making each
  submission emulation-bound, the regime where sharding pays; the run
  gates on the subs/sec scaling factor (≥1.6x at 4 shards under the
  smoke profile, ≥3x at 8 under bench).

Both report sustained throughput (terminal outcomes per second) and
p50/p95 end-to-end latency, land their rows in a JSON result file
(default ``benchmarks/results/serve_throughput.json``, override with
``REPRO_SERVE_BENCH_OUT``), and assert the conservation law every
serving configuration must obey: accepted == completed == scored,
queue drained — summed across shard labels for the sharded runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.obs import MetricsRegistry
from repro.serve.queue import SubmissionQueue, shard_of
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService
from repro.serve.shard import ShardRouter

#: Submissions per worker configuration (disjoint app slices, so the
#: observation cache can never serve one configuration from another).
N_SUBMISSIONS = 96

#: Concurrent closed-loop clients.
N_CLIENTS = 8

WORKER_SWEEP = (1, 4)

#: Open-loop burst shape: bursts of this many submissions...
BURST_SIZE = 16

#: ...every this many seconds, regardless of completions.  The offered
#: rate (BURST_SIZE / interval ≈ 107 subs/s) deliberately exceeds what
#: the largest sharded configuration can absorb, so every run measures
#: drain capacity — never the generator's own schedule.
BURST_INTERVAL_SECONDS = 0.15

#: Wall seconds slept per simulated emulation minute in the sharded
#: runs.  This makes each submission emulation-bound (sleep ≫ the few
#: ms of CPU), which is the regime the real system lives in — and the
#: one where adding shard processes buys throughput on any machine.
SHARD_PACE_SECONDS_PER_MINUTE = 0.1


def _default_out() -> Path:
    override = os.environ.get("REPRO_SERVE_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).parent / "results" / "serve_throughput.json"


def _drive_closed_loop(service, apps):
    """Run the client pool to exhaustion; returns per-app latencies."""
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    latencies: list[float] = []
    failures: list[str] = []

    def client():
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(apps):
                    return
                cursor["next"] = index + 1
            apk = apps[index]
            t0 = time.perf_counter()
            service.submit(apk)
            while True:
                outcome = service.result(apk.md5)
                state = outcome.get("status")
                if state in ("done", "failed"):
                    break
                time.sleep(0.002)
            latencies.append(time.perf_counter() - t0)
            if state == "failed":
                failures.append(apk.md5)

    threads = [threading.Thread(target=client) for _ in range(N_CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not failures, f"{len(failures)} submissions failed"
    return np.array(latencies), wall


def test_serve_throughput(tmp_path, world, fitted_checker_factory, once):
    checker = fitted_checker_factory()
    models = ModelRegistry(tmp_path / "models")
    models.publish(checker, metadata={"source": "bench"}, activate=True)

    apps = list(world.test)
    assert len(apps) >= N_SUBMISSIONS * len(WORKER_SWEEP), (
        "bench world too small for disjoint per-configuration slices"
    )

    def run():
        rows = {}
        for i, workers in enumerate(WORKER_SWEEP):
            piece = apps[i * N_SUBMISSIONS:(i + 1) * N_SUBMISSIONS]
            metrics = MetricsRegistry()
            queue = SubmissionQueue(
                max_depth=0, registry=metrics  # unbounded: closed loop
            )
            service = OnlineVettingService(
                models,
                queue=queue,
                workers=workers,
                batch_size=2 * workers,
                cache=None,
                metrics=metrics,
            )
            with service:
                latencies, wall = _drive_closed_loop(service, piece)
            accepted = metrics.total("serve_submissions_total")
            rows[workers] = {
                "workers": workers,
                "clients": N_CLIENTS,
                "submissions": len(piece),
                "wall_seconds": wall,
                "throughput_per_sec": len(piece) / wall,
                "latency_p50_seconds": float(np.percentile(latencies, 50)),
                "latency_p95_seconds": float(np.percentile(latencies, 95)),
                "accepted": accepted,
                "completed": metrics.value("serve_completed_total"),
                "scored": metrics.value("serve_scored_total"),
            }
        return rows

    rows = once(run)

    print(f"\nClosed-loop serving throughput "
          f"({N_CLIENTS} clients, {N_SUBMISSIONS} submissions each run):")
    for workers, row in sorted(rows.items()):
        print(f"  {workers} workers: "
              f"{row['throughput_per_sec']:7.1f} subs/s  "
              f"p50 {row['latency_p50_seconds'] * 1e3:6.1f} ms  "
              f"p95 {row['latency_p95_seconds'] * 1e3:6.1f} ms")

    for row in rows.values():
        # Conservation: every accepted submission reached one terminal
        # outcome and was scored exactly once.
        assert row["accepted"] == row["submissions"]
        assert row["completed"] == row["submissions"]
        assert row["scored"] == row["submissions"]
        assert row["throughput_per_sec"] > 0
        assert row["latency_p50_seconds"] <= row["latency_p95_seconds"]

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {"bench": "serve_throughput", "rows": list(rows.values())},
            indent=2,
        ),
        encoding="utf-8",
    )
    print(f"  wrote {out}")


# ----------------------------------------------------------------------
# Open-loop bursty load against the sharded tier
# ----------------------------------------------------------------------


def _shard_sweep(profile):
    """(shard counts, required subs/sec scaling at the top count)."""
    if profile.name == "smoke":
        return (1, 4), 1.6, 64
    return (1, 8), 3.0, 128


def _drive_open_loop(router, apps):
    """Bursty open-loop load: fixed submission schedule, poll to drain.

    Returns (per-app end-to-end latencies, sustained subs/sec).  The
    generator never waits for a completion — bursts land every
    ``BURST_INTERVAL_SECONDS`` whether or not the tier has kept up, so
    a slow configuration shows up as queueing delay in p95, not as a
    politely reduced offered rate.
    """
    submitted_at: dict[str, float] = {}
    completed_at: dict[str, float] = {}

    def generator():
        for start in range(0, len(apps), BURST_SIZE):
            burst_deadline = time.perf_counter() + BURST_INTERVAL_SECONDS
            for apk in apps[start:start + BURST_SIZE]:
                submitted_at[apk.md5] = time.perf_counter()
                router.submit(apk)
            remaining = burst_deadline - time.perf_counter()
            if remaining > 0 and start + BURST_SIZE < len(apps):
                time.sleep(remaining)

    t0 = time.perf_counter()
    feeder = threading.Thread(target=generator)
    feeder.start()
    outstanding = {apk.md5 for apk in apps}
    failures: list[str] = []
    while outstanding or feeder.is_alive():
        for md5 in list(outstanding):
            if md5 not in submitted_at:
                continue
            state = router.result(md5).get("status")
            if state in ("done", "failed"):
                completed_at[md5] = time.perf_counter()
                outstanding.discard(md5)
                if state == "failed":
                    failures.append(md5)
        time.sleep(0.02)
    feeder.join()
    wall = max(completed_at.values()) - t0
    assert not failures, f"{len(failures)} submissions failed"
    latencies = np.array(
        [completed_at[m] - submitted_at[m] for m in submitted_at]
    )
    return latencies, len(apps) / wall


def test_shard_scaling_open_loop(
    tmp_path, world, profile, fitted_checker_factory, once
):
    """Near-linear subs/sec scaling 1 -> N shards under bursty load."""
    checker = fitted_checker_factory()
    models = ModelRegistry(tmp_path / "models")
    models.publish(checker, metadata={"source": "bench"}, activate=True)

    sweep, required_scaling, n_submissions = _shard_sweep(profile)
    apps = list(world.test)
    assert len(apps) >= n_submissions * len(sweep), (
        "bench world too small for disjoint per-configuration slices"
    )

    def run():
        rows = {}
        for i, n_shards in enumerate(sweep):
            piece = apps[i * n_submissions:(i + 1) * n_submissions]
            router = ShardRouter(
                tmp_path / "models",
                tmp_path / f"spool-{n_shards}",
                n_shards=n_shards,
                workers=1,
                batch_size=4,
                cache=False,
                pace_seconds_per_minute=SHARD_PACE_SECONDS_PER_MINUTE,
            )
            with router:
                latencies, throughput = _drive_open_loop(router, piece)
                aggregate = router.metrics_registry()
            # The md5 hash does not split a finite slice evenly; the
            # busiest shard bounds the achievable speedup.
            per_shard = [
                sum(1 for a in piece if shard_of(a.md5, n_shards) == k)
                for k in range(n_shards)
            ]
            rows[n_shards] = {
                "shards": n_shards,
                "submissions": len(piece),
                "burst_size": BURST_SIZE,
                "burst_interval_seconds": BURST_INTERVAL_SECONDS,
                "pace_seconds_per_minute": SHARD_PACE_SECONDS_PER_MINUTE,
                "max_shard_load": max(per_shard),
                "throughput_per_sec": throughput,
                "latency_p50_seconds": float(np.percentile(latencies, 50)),
                "latency_p95_seconds": float(np.percentile(latencies, 95)),
                "accepted": aggregate.total("serve_submissions_total"),
                "completed": aggregate.total("serve_completed_total"),
                "scored": aggregate.total("serve_scored_total"),
            }
        return rows

    rows = once(run)

    base = rows[sweep[0]]
    top = rows[sweep[-1]]
    scaling = top["throughput_per_sec"] / base["throughput_per_sec"]
    print(f"\nOpen-loop bursty shard scaling "
          f"({n_submissions} submissions/run, bursts of {BURST_SIZE} "
          f"every {BURST_INTERVAL_SECONDS}s):")
    for n_shards, row in sorted(rows.items()):
        print(f"  {n_shards} shard(s): "
              f"{row['throughput_per_sec']:7.1f} subs/s  "
              f"p50 {row['latency_p50_seconds']:6.2f} s  "
              f"p95 {row['latency_p95_seconds']:6.2f} s  "
              f"(busiest shard {row['max_shard_load']} subs)")
    print(f"  scaling {sweep[0]} -> {sweep[-1]} shards: {scaling:.2f}x "
          f"(gate: >= {required_scaling}x)")

    for row in rows.values():
        # Conservation survives sharding: summed across shard labels,
        # every accepted submission was scored exactly once.
        assert row["accepted"] == row["submissions"]
        assert row["completed"] == row["submissions"]
        assert row["scored"] == row["submissions"]
        assert row["latency_p50_seconds"] <= row["latency_p95_seconds"]
    assert scaling >= required_scaling, (
        f"sharding bought only {scaling:.2f}x "
        f"(need >= {required_scaling}x at {sweep[-1]} shards)"
    )
    # Sharding must also cut tail latency, not just drain rate.
    assert top["latency_p95_seconds"] < base["latency_p95_seconds"]

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    merged = {}
    if out.exists():
        merged = json.loads(out.read_text(encoding="utf-8"))
    merged.setdefault("bench", "serve_throughput")
    merged["shard_scaling"] = {
        "profile": profile.name,
        "required_scaling": required_scaling,
        "measured_scaling": scaling,
        "rows": list(rows.values()),
    }
    out.write_text(json.dumps(merged, indent=2), encoding="utf-8")
    print(f"  wrote {out}")
