"""Rule mining gates — blind-spot closure, overhead, determinism.

The stock eight-rule bundle deliberately cannot name ``lowkey_spy``
behavior (``docs/rules.md``); ``repro.rules.mining`` exists to close
that gap from data.  This bench holds the subsystem to its three
promises (``docs/rule_mining.md``):

1. **Blind-spot closure** — the mined ruleset (bundled 8 + mined)
   reaches per-family rule recall >= 0.8 on fresh ``lowkey_spy`` apps
   the miner never saw, where the stock bundle scores exactly 0.0.
2. **Overhead** — explaining a paced 4-worker vetting day with the
   full mined set (>= 100 active rules) costs < 5% extra wall time
   over rules-off, same pacing discipline as
   ``bench_rules_overhead.py``.
3. **Determinism** — two independent mining runs over the same corpus
   and seed produce byte-identical artifacts.

Results land in ``benchmarks/results/rules_mining.json`` (override
with ``REPRO_RULES_MINING_BENCH_OUT``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.pipeline import VettingPipeline
from repro.core.vetting import VettingService
from repro.corpus.generator import CorpusGenerator
from repro.obs import MetricsRegistry
from repro.rules import RuleEvaluator, builtin_ruleset, mine_from_corpus

#: Same slot-occupancy pacing as bench_rules_overhead / pipeline_scaling.
PACE = 0.008

#: Paced-day size for the overhead gate.
N_APPS = 200

#: Fresh lowkey_spy apps for the recall gate.
N_SPY = 50

#: Acceptance floors.
RECALL_FLOOR = 0.8
MAX_OVERHEAD = 0.05
MIN_ACTIVE_RULES = 100

MINE_SEED = 0


def _default_out() -> Path:
    override = os.environ.get("REPRO_RULES_MINING_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).parent / "results" / "rules_mining.json"


def _mining_corpus(world):
    """Family-balanced mining corpus, sized to the profile."""
    per_family = max(30, min(60, world.profile.n_train // 20))
    n_benign = max(300, min(700, world.profile.n_train // 2))
    gen = CorpusGenerator(
        world.sdk,
        seed=world.profile.seed + 70,
        catalog=world.generator.catalog,
    )
    return gen.generate_family_balanced(per_family, n_benign)


def _family_recall(specs, sdk, checker, observations, family) -> float:
    """Share of observations a ``family`` rule fires on (stage >= 1)."""
    evaluator = RuleEvaluator.from_specs(
        specs, sdk, tracked_api_ids=checker.key_api_ids
    )
    fam_of = {s.behavior: s.families for s in specs}
    hits = sum(
        1
        for report in evaluator.evaluate(observations)
        if any(
            family in fam_of[h.behavior] and h.stage >= 1
            for h in report.hits
        )
    )
    return hits / len(observations)


def _paced_day(checker, day, rules) -> float:
    registry = MetricsRegistry()
    service = VettingService(
        checker, workers=4, registry=registry, rules=rules
    )
    service.pipeline = VettingPipeline(
        checker.production_engine,
        cluster=service.cluster,
        workers=4,
        pace_seconds_per_minute=PACE,
        registry=registry,
        sink=service.sink,
    )
    t0 = time.perf_counter()
    service.process_day(day, true_labels=day.labels)
    return time.perf_counter() - t0


def test_rules_mining_gates(world, profile, fitted_checker_factory, once):
    checker = fitted_checker_factory()
    day = world.test.subset(range(min(N_APPS, len(world.test))))
    corpus = _mining_corpus(world)

    def run():
        mined = mine_from_corpus(checker, corpus, seed=MINE_SEED)
        again = mine_from_corpus(checker, corpus, seed=MINE_SEED)
        deterministic = again.to_json() == mined.to_json()

        # Fresh lowkey_spy apps the miner never saw.
        gen = CorpusGenerator(
            world.sdk,
            seed=profile.seed + 77,
            catalog=world.generator.catalog,
        )
        spy = [
            gen.sample_app(archetype="lowkey_spy") for _ in range(N_SPY)
        ]
        spy_obs = checker.production_engine.observations(spy)
        stock_recall = _family_recall(
            builtin_ruleset(), world.sdk, checker, spy_obs, "lowkey_spy"
        )
        mined_recall = _family_recall(
            mined.specs, world.sdk, checker, spy_obs, "lowkey_spy"
        )

        # Paced-day overhead with the full mined set live, interleaved
        # best-of so scheduler noise cannot masquerade as rule cost.
        evaluator = RuleEvaluator.from_specs(
            mined.specs, world.sdk, tracked_api_ids=checker.key_api_ids
        )
        walls = {"off": [], "on": []}
        for _ in range(2):
            walls["off"].append(_paced_day(checker, day, False))
            walls["on"].append(_paced_day(checker, day, evaluator))

        return {
            "n_rules": len(mined.specs),
            "n_mined": len(mined.rules),
            "sha256": mined.sha256,
            "deterministic": deterministic,
            "families": {k: dict(v) for k, v in mined.families.items()},
            "lowkey_spy_recall": {
                "stock": stock_recall,
                "mined": mined_recall,
                "n_apps": N_SPY,
            },
            "paced_day": {
                "apps": len(day),
                "pace": PACE,
                "wall_off_s": min(walls["off"]),
                "wall_on_s": min(walls["on"]),
            },
        }

    results = once(run)
    base = results["paced_day"]["wall_off_s"]
    full = results["paced_day"]["wall_on_s"]
    overhead = full / base - 1.0
    results["paced_day"]["overhead"] = overhead
    recall = results["lowkey_spy_recall"]

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    print(f"\nRule mining ({profile.name} profile, seed {MINE_SEED}):")
    print(f"  ruleset: {results['n_mined']} mined + "
          f"{results['n_rules'] - results['n_mined']} bundled = "
          f"{results['n_rules']} rules  "
          f"(sha256 {results['sha256'][:12]}…)")
    print(f"  lowkey_spy recall on {recall['n_apps']} fresh apps: "
          f"stock {recall['stock']:.2f} -> mined {recall['mined']:.2f}")
    print(f"  paced day x{results['paced_day']['apps']}: "
          f"off {base:6.2f}s, mined-on {full:6.2f}s  "
          f"overhead {overhead * 100:+.1f}%")
    print(f"  deterministic: {results['deterministic']}")
    print(f"  results: {out}")

    assert results["deterministic"], (
        "same seed + corpus must produce byte-identical artifacts"
    )
    assert results["n_rules"] >= MIN_ACTIVE_RULES, (
        f"overhead gate needs >= {MIN_ACTIVE_RULES} active rules, "
        f"got {results['n_rules']}"
    )
    assert recall["stock"] == 0.0, (
        "the stock bundle is not supposed to cover lowkey_spy"
    )
    assert recall["mined"] >= RECALL_FLOOR, (
        f"mined lowkey_spy recall {recall['mined']:.2f} below "
        f"{RECALL_FLOOR}"
    )
    assert overhead < MAX_OVERHEAD, (
        f"rule-evaluation overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} with {results['n_rules']} active rules"
    )
