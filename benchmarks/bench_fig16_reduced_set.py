"""Fig. 16 — emulation time CDF: no APIs vs top-150 vs all key APIs.

Paper: on the Google emulator, per-app time is 2.1 min with no
tracking, 2.5 min tracking the top-150 important keys, and 4.3 min
tracking all 426 — the reduced set sits close to the no-tracking floor.
"""

import numpy as np

from benchmarks.helpers import emulate_sample, minutes_of
from repro.experiments.harness import print_cdf
from repro.ml.forest import RandomForest


def test_fig16_reduced_set(world, once):
    keys = world.selection.key_api_ids
    X_train = world.train_api_matrix[:, keys]
    y_train = world.train.labels.astype(np.int8)

    def run():
        ranker = RandomForest(
            n_trees=world.profile.rf_trees, seed=17
        ).fit(X_train, y_train)
        order = np.argsort(ranker.feature_importances_)[::-1]
        top150 = keys[np.sort(order[: min(150, keys.size)])]
        none_t = minutes_of(
            emulate_sample(world, tracked_api_ids=[], n_apps=150, seed=17)
        )
        top_t = minutes_of(
            emulate_sample(world, tracked_api_ids=top150, n_apps=150,
                           seed=17)
        )
        all_t = minutes_of(
            emulate_sample(world, tracked_api_ids=keys, n_apps=150,
                           seed=17)
        )
        return none_t, top_t, all_t

    none_t, top_t, all_t = once(run)
    s_none = print_cdf("Fig 16: no API tracked (paper mean 2.1)", none_t)
    s_top = print_cdf("Fig 16: top-150 keys tracked (paper mean 2.5)", top_t)
    s_all = print_cdf("Fig 16: all keys tracked (paper mean 4.3)", all_t)

    # Shape: strict ordering, with the reduced set near the floor.
    assert s_none["mean"] <= s_top["mean"] + 0.2
    assert s_top["mean"] < s_all["mean"]
    assert abs(s_none["mean"] - 2.1) < 0.8
    if world.profile.name != "smoke":
        # Partial reproduction: the paper's reduced set keeps only ~19%
        # of the tracking overhead; here the benign-borne key cost is
        # spread more evenly across the key set, so the reduced set
        # keeps a larger (but still clearly smaller) share.
        assert s_top["mean"] - s_none["mean"] < 0.9 * (
            s_all["mean"] - s_none["mean"]
        )
