"""§5.4 — key-API dependency coverage of the framework.

Paper: scanning the SDK (level 27) source shows the 426 key APIs are
only 0.85% of the ~50K framework APIs, but 4,816 more APIs (9.6%)
internally rely on them — 10.5% of the framework in total.  An attacker
routing around the key set would have to re-implement all of it.
"""

from repro.experiments.harness import print_table
from repro.staticanalysis.coverage import dependency_coverage


def test_sec54_coverage(world, once):
    def run():
        return dependency_coverage(world.sdk, world.selection.key_api_ids)

    cov = once(run)
    print_table(
        "§5.4: key-API dependency coverage "
        "(paper: 0.85% keys + 9.6% dependent = 10.5% of 50K APIs; "
        "key share is larger at reduced SDK scale)",
        ["quantity", "count", "fraction"],
        [
            ["key APIs", cov.n_keys, f"{cov.key_fraction:.3%}"],
            ["dependent APIs", cov.n_dependent,
             f"{cov.dependent_fraction:.3%}"],
            ["total covered", cov.n_keys + cov.n_dependent,
             f"{cov.covered_fraction:.3%}"],
        ],
    )

    # Shape: a substantial dependent halo beyond the key set itself.
    non_key = len(world.sdk) - cov.n_keys
    dependent_share = cov.n_dependent / non_key
    assert 0.06 < dependent_share < 0.14  # generator wires ~9.6%
    assert cov.covered_fraction > cov.key_fraction
    assert cov.n_dependent > 0
