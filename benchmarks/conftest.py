"""Shared benchmark fixtures.

Each bench regenerates one table or figure of the paper at the scale
profile selected by ``REPRO_SCALE`` (default: ``bench``).  The world —
SDK, corpora, and the expensive all-API study pass — is memoized across
the whole benchmark session, so the suite pays for it once.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated rows/series next to the paper's numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checker import ApiChecker
from repro.core.features import FeatureMode
from repro.experiments.config import profile_from_env
from repro.experiments.harness import World, build_world


@pytest.fixture(scope="session")
def profile():
    return profile_from_env()


@pytest.fixture(scope="session")
def world(profile) -> World:
    w = build_world(profile)
    print(f"\n{profile.scale_note}")
    return w


_CHECKER_CACHE: dict[str, ApiChecker] = {}


@pytest.fixture(scope="session")
def fitted_checker_factory(world):
    """Fit-once ApiChecker per feature mode, shared across benches."""

    def factory(mode: FeatureMode = FeatureMode.API) -> ApiChecker:
        key = mode.value
        if key not in _CHECKER_CACHE:
            checker = ApiChecker(
                world.sdk,
                feature_mode=mode,
                seed=world.profile.seed + 21,
            )
            checker.fit(
                world.train,
                study_observations=list(world.train_observations),
            )
            _CHECKER_CACHE[key] = checker
        return _CHECKER_CACHE[key]

    yield factory
    _CHECKER_CACHE.clear()


_EVOLUTION_CACHE: dict[str, list] = {}


@pytest.fixture(scope="session")
def evolution_history(profile):
    """Twelve months of online operation (shared by Figs. 12 and 14).

    The evolution loop gets its own world: the SDK grows over the year,
    so it cannot share the static benchmark world.
    """
    if "history" not in _EVOLUTION_CACHE:
        from repro.android.sdk import AndroidSdk, SdkSpec
        from repro.core.evolution import EvolutionLoop
        from repro.corpus.market import MarketStream

        sdk = AndroidSdk.generate(
            SdkSpec(n_apis=profile.n_apis, seed=profile.seed + 40)
        )
        per_month = max(150, profile.n_train // 8)
        stream = MarketStream(
            sdk,
            apps_per_month=per_month,
            seed=profile.seed + 41,
            sdk_update_every=4,
            sdk_growth=max(40, profile.n_apis // 80),
        )
        initial = stream.bootstrap_corpus(max(600, profile.n_train // 2))
        loop = EvolutionLoop(
            stream,
            initial,
            max_pool=max(1200, profile.n_train),
            checker_seed=profile.seed + 42,
        )
        _EVOLUTION_CACHE["history"] = loop.run(12)
    return _EVOLUTION_CACHE["history"]


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
