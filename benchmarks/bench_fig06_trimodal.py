"""Fig. 6 — analysis time vs number of tracked top-correlated APIs.

Paper: tracking the top-n correlated (non-seldom) APIs costs time in
three regimes — linear growth for the first ~800 (moderate-frequency,
malware-leaning APIs), polynomial growth through ~800-1K as heavily
used common APIs enroll, then logarithmic growth over the seldom tail.
Their Eq. (1) piecewise fit reaches R² of 0.96/0.99/0.99.

At our scale the regime boundaries sit where the ubiquitous APIs enter
the correlation ranking (the paper's 800/1K at 50K-API scale); the
boundaries are located from the ranking itself before fitting.
"""

import numpy as np

from benchmarks.helpers import emulate_sample, minutes_of
from repro.experiments.harness import print_series, print_table
from repro.ml.stats import fit_trimodal


def test_fig06_trimodal(world, once):
    selection = world.selection
    ranked = selection.ranked_by_correlation()
    n_apis = len(world.sdk)

    # Locate the ubiquitous band inside the ranking: the polynomial
    # regime spans the ranks where high-rate APIs enroll.
    ubiq = set(world.sdk.ubiquitous_api_ids.tolist())
    ubiq_ranks = np.sort(
        [i for i, api in enumerate(ranked) if int(api) in ubiq]
    )
    break1 = int(np.percentile(ubiq_ranks, 10))
    break2 = int(np.percentile(ubiq_ranks, 80))

    grid = sorted(
        set(
            [max(2, break1 // 4), break1 // 2, max(3, 3 * break1 // 4)]
            + list(
                np.linspace(break1, break2, 6).astype(int)
            )
            + list(
                np.geomspace(break2 + 50, n_apis, 5).astype(int)
            )
        )
    )

    def run():
        series = []
        for n in grid:
            tracked = ranked[:n]
            analyses = emulate_sample(
                world, tracked_api_ids=tracked, n_apps=100, seed=6
            )
            series.append((n, float(minutes_of(analyses).mean())))
        return series

    series = once(run)
    ns = np.array([n for n, _ in series], dtype=float)
    ts = np.array([t for _, t in series])
    fit = fit_trimodal(ns, ts, break1=break1, break2=break2)

    print_table(
        f"Fig 6: minutes vs top-n tracked APIs "
        f"(regimes at n={break1}/{break2}; paper 800/1K at 50K scale)",
        ["n"] + [str(n) for n, _ in series],
        [["min"] + [f"{t:.1f}" for _, t in series]],
    )
    print_series(
        "Fig 6 (plot): minutes vs top-n tracked APIs",
        ns, ts, x_label="n tracked (log)", y_label="minutes", log_x=True,
    )
    print(
        f"tri-modal fit: head t={fit.a1:.4f}n+{fit.b1:.2f} "
        f"(R2={fit.r2_head:.2f}) | middle t={fit.a2:.3g}n^{fit.b2:.2f} "
        f"(R2={fit.r2_middle:.2f}) | tail t={fit.a3:.2f}ln(n)+{fit.b3:.2f} "
        f"(R2={fit.r2_tail:.2f}); paper R2 = 0.96/0.99/0.99"
    )

    # Shape: time grows monotonically (within noise) and each regime is
    # well explained by its functional form.  Regime fits need the bench
    # profile's mining fidelity.
    assert ts[-1] > 5 * ts[0]
    if world.profile.name != "smoke":
        assert fit.r2_head > 0.5
        assert fit.r2_middle > 0.7
        # The tail is logarithmically flat: the last doubling of tracked
        # APIs adds little time (R2 of a near-flat fit is uninformative).
        t_mid_end = ts[ns <= break2][-1]
        assert ts[-1] < 1.35 * t_mid_end
    # The middle regime carries most of the growth (polynomial blow-up).
    head_growth = ts[ns <= break1][-1] - ts[0]
    mid_growth = ts[ns <= break2][-1] - ts[ns <= break1][-1]
    assert mid_growth > head_growth
