"""Table 1 — related-work comparison.

Paper: representative API-centric detectors differ in analysis method,
per-app analysis time, API budget, and accuracy; APICHECKER (dynamic,
426 APIs, 78 s/app) reports 98.6% precision / 96.7% recall, topping the
dynamic systems while being an order of magnitude faster than the
long-running ones (Yang et al. 1080 s, DroidDolphin 1020 s).
"""

import numpy as np

from repro.baselines import ALL_BASELINES
from repro.experiments.harness import print_table

PAPER_ROWS = {
    "Sharma et al.": (None, 35, 0.912, 0.975),
    "DroidAPIMiner": (25.0, 169, None, None),
    "Yang et al.": (1080.0, 19, 0.928, 0.849),
    "DroidCat": (354.0, 27, 0.975, 0.973),
    "DroidDolphin": (1020.0, 25, 0.90, 0.82),
    "DREBIN": (10.0, None, None, None),
    "APICHECKER": (78.0, 426, 0.986, 0.967),
}


def test_table1_related_work(world, fitted_checker_factory, once):
    train_apps = list(world.train)
    train_labels = world.train.labels
    test_apps = list(world.test)
    test_labels = world.test.labels
    # Dynamic baselines re-emulate every app; cap their corpora so the
    # bench stays tractable (noted in the output).
    dyn_cap = min(len(train_apps), 400)
    dyn_test_cap = min(len(test_apps), 250)

    def run():
        rows = []
        for cls in ALL_BASELINES:
            detector = cls(world.sdk, seed=3)
            if detector.analysis_method == "static":
                detector.fit(train_apps, train_labels)
                row = detector.table_row(
                    test_apps, test_labels, n_apps_studied=len(train_apps)
                )
            else:
                detector.fit(train_apps[:dyn_cap], train_labels[:dyn_cap])
                row = detector.table_row(
                    test_apps[:dyn_test_cap],
                    test_labels[:dyn_test_cap],
                    n_apps_studied=dyn_cap,
                )
            rows.append(row)
        checker = fitted_checker_factory()
        verdicts = checker.vet_batch(test_apps[:dyn_test_cap])
        from repro.ml.metrics import evaluate

        pred = np.array([v.malicious for v in verdicts])
        rep = evaluate(test_labels[:dyn_test_cap], pred)
        seconds = float(
            np.mean([v.analysis_minutes for v in verdicts]) * 60
        )
        rows.append(
            (
                "APICHECKER",
                "hybrid",
                "dynamic",
                seconds,
                int(checker.key_api_ids.size),
                len(train_apps),
                rep.precision,
                rep.recall,
            )
        )
        return rows

    rows = once(run)

    table = []
    by_name = {}
    for row in rows:
        if isinstance(row, tuple):
            name, strategy, method, secs, n_apis, n_apps, p, r = row
        else:
            name, strategy, method = row.system, row.strategy, row.method
            secs, n_apis, n_apps = (
                row.analysis_seconds_per_app, row.n_apis, row.n_apps
            )
            p, r = row.precision, row.recall
        by_name[name] = (secs, p, r)
        paper = PAPER_ROWS.get(name, (None,) * 4)
        table.append(
            [
                name,
                method,
                f"{secs:.0f}s",
                n_apis,
                n_apps,
                f"{p:.3f}/{r:.3f}",
                f"paper: {paper[0] or '--'}s, "
                f"{paper[2] if paper[2] is not None else '--'}/"
                f"{paper[3] if paper[3] is not None else '--'}",
            ]
        )
    print_table(
        "Table 1: related-work comparison (measured vs paper)",
        ["system", "method", "t/app", "#APIs", "#apps", "prec/recall",
         "paper"],
        table,
    )

    # Shape assertions: APICHECKER beats the dynamic baselines' recall
    # and is far faster than the long-running dynamic analyses.
    ours = by_name["APICHECKER"]
    for slow in ("Yang et al.", "DroidDolphin"):
        assert ours[0] < by_name[slow][0] / 4
        assert ours[2] >= by_name[slow][2]
    # Static analysis is quick but APICHECKER's accuracy leads overall
    # (asserted at bench scale; smoke corpora are too small for stable
    # baseline comparisons).
    if len(train_apps) >= 1500:
        assert ours[1] >= max(p for _, p, _ in by_name.values()) - 0.1
