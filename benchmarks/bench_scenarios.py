"""Adversarial campaign gates — the serving tier under attack.

Replays the bundled :mod:`repro.scenarios` campaigns against live
serving stacks and gates on the operational claims the paper's
deployment experience rests on:

* ``repackaging_wave`` (2-shard router): once day-0 triage feedback
  retrains and rolls out the model, recall on the repackaged payload's
  later submissions must reach >= 0.8 — and backpressure must lose
  nothing (exactly-once under 429 retries).
* ``evasion_arms_race``: the same trained model serving on hardened
  emulators must strictly out-recall its stock-emulator arm against
  probe-forced evasive families (§4.2's arms race).
* ``burst_flood``: the admission bound must actually reject (429s > 0)
  and still lose nothing.
* ``hidden_loader`` / ``label_noise`` are recorded without hard gates:
  hidden loaders are the documented blind spot (§4.5), and label
  poisoning measures how far the evolution gate degrades.

Results land in ``benchmarks/results/scenarios.json`` (override with
``REPRO_SCENARIOS_BENCH_OUT``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from repro.scenarios import CampaignRunner, bundled_campaigns

#: Post-feedback recall floor for the repackaged payload (acceptance
#: criterion: the wave's day >= 1 submissions, after day-0 retraining).
REPACKAGING_RECALL_FLOOR = 0.8


def _default_out() -> Path:
    override = os.environ.get("REPRO_SCENARIOS_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).parent / "results" / "scenarios.json"


def _summary(report) -> dict:
    totals = report.to_dict()["totals"]
    return {
        "shards": report.shards,
        "days": [d.to_dict() for d in report.days],
        "evolution": report.evolution,
        "totals": totals,
    }


def test_adversarial_campaigns(
    tmp_path, world, profile, fitted_checker_factory, once
):
    checker = fitted_checker_factory()
    catalog = world.generator.catalog
    campaigns = bundled_campaigns()

    def run():
        results = {}

        # -- repackaging wave: 2-shard router, feedback retrain -------
        repack = campaigns["repackaging_wave"]
        report = CampaignRunner(
            repack,
            checker,
            catalog=catalog,
            shards=2,
            workdir=tmp_path / "repack",
            train_corpus=world.train,
            train_observations=world.train_observations,
        ).run()
        results["repackaging_wave"] = _summary(report)
        results["repackaging_wave"]["post_feedback_wave_recall"] = (
            report.wave_recall("repackage", min_day=repack.retrain_day + 1)
        )

        # -- evasion arms race: hardened vs stock serving env ---------
        arms = campaigns["evasion_arms_race"]
        hardened = CampaignRunner(
            arms, checker, catalog=catalog,
            workdir=tmp_path / "arms-hardened",
        ).run()
        stock = CampaignRunner(
            dataclasses.replace(arms, hardened=False),
            checker, catalog=catalog, workdir=tmp_path / "arms-stock",
        ).run()
        results["evasion_arms_race"] = {
            "hardened": _summary(hardened),
            "stock": _summary(stock),
            "hardened_wave_recall": hardened.wave_recall("evasive"),
            "stock_wave_recall": stock.wave_recall("evasive"),
        }

        # -- burst flood: admission control under pure volume ---------
        flood_report = CampaignRunner(
            campaigns["burst_flood"], checker, catalog=catalog,
            workdir=tmp_path / "flood",
        ).run()
        results["burst_flood"] = _summary(flood_report)

        # -- recorded, ungated: the known blind spots ------------------
        hidden_report = CampaignRunner(
            campaigns["hidden_loader"], checker, catalog=catalog,
            workdir=tmp_path / "hidden",
        ).run()
        results["hidden_loader"] = _summary(hidden_report)
        results["hidden_loader"]["wave_recall"] = (
            hidden_report.wave_recall("hidden")
        )

        noise = campaigns["label_noise"]
        noise_report = CampaignRunner(
            noise, checker, catalog=catalog,
            workdir=tmp_path / "noise",
            train_corpus=world.train,
            train_observations=world.train_observations,
        ).run()
        results["label_noise"] = _summary(noise_report)

        return results

    results = once(run)

    repack = results["repackaging_wave"]
    arms = results["evasion_arms_race"]
    flood = results["burst_flood"]
    print("\nAdversarial campaigns:")
    print(f"  repackaging_wave (2 shards): post-feedback wave recall "
          f"{repack['post_feedback_wave_recall']:.3f} "
          f"(gate >= {REPACKAGING_RECALL_FLOOR}), "
          f"lost={repack['totals']['lost']}, "
          f"429s={repack['totals']['rejected_429']}")
    print(f"  evasion_arms_race: hardened recall "
          f"{arms['hardened_wave_recall']:.3f} vs stock "
          f"{arms['stock_wave_recall']:.3f} (gate: strictly higher)")
    print(f"  burst_flood: 429s={flood['totals']['rejected_429']} "
          f"(gate > 0), lost={flood['totals']['lost']}, "
          f"peak depth={flood['days'][0]['peak_queue_depth']}")
    print(f"  hidden_loader (blind spot, ungated): wave recall "
          f"{results['hidden_loader']['wave_recall']:.3f}")
    noise_decision = results["label_noise"]["evolution"][0]
    print(f"  label_noise: retrain decision "
          f"{noise_decision['decision']!r}, "
          f"{noise_decision['n_flipped']}/{noise_decision['n_feedback']} "
          f"labels poisoned")

    # Gates (the PR's acceptance criteria).
    assert repack["totals"]["lost"] == 0
    assert repack["post_feedback_wave_recall"] >= (
        REPACKAGING_RECALL_FLOOR
    ), "feedback retrain did not recover the repackaged payload"
    promoted = [
        d for d in repack["evolution"] if d["decision"] == "promoted"
    ]
    assert promoted, "day-0 feedback never promoted a model"
    assert arms["hardened_wave_recall"] > arms["stock_wave_recall"], (
        "emulator hardening bought no recall against evasive families"
    )
    assert flood["totals"]["rejected_429"] > 0, (
        "flood never hit admission control"
    )
    assert flood["totals"]["lost"] == 0
    for name, summary in results.items():
        if name == "evasion_arms_race":
            continue
        assert summary["totals"]["lost"] == 0, name

    out = _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(
            {
                "bench": "scenarios",
                "profile": profile.name,
                "gates": {
                    "repackaging_recall_floor": REPACKAGING_RECALL_FLOOR,
                    "post_feedback_wave_recall": (
                        repack["post_feedback_wave_recall"]
                    ),
                    "hardened_wave_recall": arms["hardened_wave_recall"],
                    "stock_wave_recall": arms["stock_wave_recall"],
                    "flood_rejected_429": flood["totals"]["rejected_429"],
                    "lost_total": sum(
                        s["totals"]["lost"]
                        for n, s in results.items()
                        if n != "evasion_arms_race"
                    ),
                },
                "campaigns": results,
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    print(f"  wrote {out}")
