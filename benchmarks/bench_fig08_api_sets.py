"""Fig. 8 + §4.4 — Set-C/Set-P/Set-S sizes, overlaps, and the hybrid win.

Paper: Set-C (260, mined) ∪ Set-P (112, restrictive permissions) ∪
Set-S (70, sensitive operations) = 426 key APIs with only ~16 APIs
shared between strategies — the three selection angles are nearly
orthogonal, and their union beats any single strategy (Set-C alone:
93.5%/82.1%; Set-P alone: 95.1%/71.3%; Set-S alone: 95%/70.1%;
union with RF: 96.8%/93.7%).
"""

import numpy as np

from repro.experiments.harness import print_table
from repro.ml.forest import RandomForest
from repro.ml.metrics import evaluate


def test_fig08_api_sets(world, once):
    selection = world.selection
    X_train = world.train_api_matrix
    X_test = world.test_api_matrix
    y_train = world.train.labels.astype(np.int8)
    y_test = world.test.labels

    def run():
        reports = {}
        for name, ids in (
            ("Set-C", selection.set_c),
            ("Set-P", selection.set_p),
            ("Set-S", selection.set_s),
            ("union", selection.key_api_ids),
        ):
            rf = RandomForest(
                n_trees=world.profile.rf_trees, seed=8
            ).fit(X_train[:, ids], y_train)
            reports[name] = evaluate(y_test, rf.predict(X_test[:, ids]))
        return reports

    reports = once(run)
    venn = selection.venn_counts()
    print_table(
        "Fig 8: strategy set sizes and overlaps (paper: C=260 P=112 "
        "S=70, union 426, overlaps ~16)",
        ["region"] + list(venn.keys()),
        [["count"] + [str(v) for v in venn.values()]],
    )
    print_table(
        "§4.4: per-strategy detection (RF, paper C: 93.5/82.1, "
        "P: 95.1/71.3, S: 95.0/70.1, union: 96.8/93.7)",
        ["set", "size", "precision", "recall"],
        [
            [
                name,
                {"Set-C": selection.set_c.size,
                 "Set-P": selection.set_p.size,
                 "Set-S": selection.set_s.size,
                 "union": selection.n_keys}[name],
                f"{rep.precision:.3f}",
                f"{rep.recall:.3f}",
            ]
            for name, rep in reports.items()
        ],
    )

    # Fixed-by-construction sizes.
    assert selection.set_p.size == 112
    assert selection.set_s.size == 70
    # Mined set and union land in the paper's ballpark.
    assert 150 <= selection.set_c.size <= 400
    assert 300 <= selection.n_keys <= 560
    # The strategies are nearly orthogonal.
    assert selection.overlap_count() < 0.15 * selection.n_keys
    # The hybrid union beats every single strategy on recall (the
    # paper's core argument for combining them) — within the sampling
    # noise of the evaluation corpus.  At smoke scale a single test
    # sample moves recall by ~0.1, so the tolerance must cover it.
    tolerance = 0.15 if world.profile.name == "smoke" else 0.035
    union_recall = reports["union"].recall
    for name in ("Set-C", "Set-P", "Set-S"):
        assert union_recall >= reports[name].recall - tolerance
    # Set-P / Set-S alone cannot match the union (at smoke scale a
    # tiny test set can saturate recall for every configuration).
    if world.profile.name != "smoke":
        assert reports["Set-P"].f1 < reports["union"].f1
        assert reports["Set-S"].f1 < reports["union"].f1
