"""Fig. 11 — Google emulator vs the lightweight Android-x86 engine.

Paper: on identical hardware and tracking the 426 key APIs, the
custom Android-x86 + Houdini engine analyzes an app in 1.3 min on
average (median 1.4, min 0.2) versus 4.3 min (median 3.5, min 1.1) on
the Google emulator — a ~70% reduction, with <1% of apps falling back.
"""

import numpy as np

from benchmarks.helpers import emulate_sample, minutes_of
from repro.core.engine import DynamicAnalysisEngine
from repro.emulator.backends import GoogleEmulator, LightweightEmulator
from repro.experiments.harness import print_cdf


def test_fig11_emulators(world, once):
    keys = world.selection.key_api_ids

    def run():
        google = emulate_sample(
            world, tracked_api_ids=keys, n_apps=200,
            backend=GoogleEmulator(), seed=11,
        )
        engine = DynamicAnalysisEngine(
            world.sdk,
            tracked_api_ids=keys,
            primary=LightweightEmulator(),
            fallback=GoogleEmulator(),
            seed=world.profile.seed + 11,
        )
        light = engine.analyze_corpus(list(world.test)[:200])
        fallbacks = sum(a.fell_back for a in light)
        return minutes_of(google), minutes_of(light), fallbacks

    g_minutes, l_minutes, fallbacks = once(run)
    s_g = print_cdf(
        "Fig 11: Google emulator minutes (paper mean 4.3)", g_minutes
    )
    s_l = print_cdf(
        "Fig 11: lightweight emulator minutes (paper mean 1.3)", l_minutes
    )
    print(f"fallbacks to the Google emulator: {fallbacks}/200 (paper <1%)")

    if world.profile.name != "smoke":
        assert 2.5 < s_g["mean"] < 7.0
        assert 0.7 < s_l["mean"] < 2.5
    # The ~70% reduction.
    reduction = 1.0 - s_l["mean"] / s_g["mean"]
    assert 0.5 < reduction < 0.85
    # Reliability: every app analyzed, few fallbacks.
    assert len(l_minutes) == 200
    assert fallbacks <= 8
