"""Fig. 3 — emulation time tracking all APIs vs tracking none.

Paper: with no hooks an app emulates in 2.1 min on average (min 0.57,
max 5.8); hooking all ~50K APIs inflates that to 53.6 min on average
(min 14.7, max 106.2) — a ~25x blowup that makes full tracking
operationally infeasible.
"""

import numpy as np

from benchmarks.helpers import emulate_sample, minutes_of
from repro.experiments.harness import print_cdf


def test_fig03_tracking_overhead(world, once):
    def run():
        none = emulate_sample(world, tracked_api_ids=[], n_apps=150, seed=3)
        full = emulate_sample(
            world,
            tracked_api_ids=np.arange(len(world.sdk)),
            n_apps=150,
            seed=3,
        )
        return minutes_of(none), minutes_of(full)

    none_min, full_min = once(run)
    s_none = print_cdf(
        "Fig 3: emulation minutes, tracking NO API (paper mean 2.1)",
        none_min,
    )
    s_full = print_cdf(
        "Fig 3: emulation minutes, tracking ALL APIs (paper mean 53.6)",
        full_min,
    )
    assert abs(s_none["mean"] - 2.1) < 0.8
    assert 35.0 < s_full["mean"] < 75.0
    # Order-of-magnitude blowup, and distributions do not overlap.
    assert s_full["mean"] > 15 * s_none["mean"]
    assert s_full["min"] > s_none["max"]
