"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import numpy as np

from repro.core.engine import DynamicAnalysisEngine
from repro.emulator.backends import EmulatorBackend, GoogleEmulator


def emulate_sample(
    world,
    tracked_api_ids,
    n_apps: int = 200,
    backend: EmulatorBackend | None = None,
    monkey_events: int = 5000,
    seed: int = 0,
    corpus=None,
):
    """Emulate a corpus sample and return the per-app analyses.

    Uses the Google emulator with no fallback by default (the paper's
    measurement-study configuration).
    """
    corpus = corpus if corpus is not None else world.test
    apps = list(corpus)[:n_apps]
    engine = DynamicAnalysisEngine(
        world.sdk,
        tracked_api_ids=tracked_api_ids,
        primary=backend or GoogleEmulator(),
        fallback=None,
        monkey_events=monkey_events,
        seed=world.profile.seed + seed,
    )
    return engine.analyze_corpus(apps)


def minutes_of(analyses) -> np.ndarray:
    return np.array([a.total_minutes for a in analyses])
