"""Fig. 2 — CDF of the number of API invocations per emulated app.

Paper: 5K Monkey events trigger tens of millions of framework-API
invocations per app — min 15.8M, mean 42.3M, median 39.7M, max 64.6M —
i.e. one UI event fans out into ~8,460 API calls on average.
"""

import numpy as np

from benchmarks.helpers import emulate_sample
from repro.experiments.harness import print_cdf


def test_fig02_invocation_cdf(world, once):
    def run():
        analyses = emulate_sample(world, tracked_api_ids=[], n_apps=250,
                                  seed=2)
        return np.array(
            [a.result.total_invocations for a in analyses], dtype=float
        )

    totals = once(run)
    stats = print_cdf(
        "Fig 2: API invocations per app (millions; paper mean 42.3M)",
        totals / 1e6,
        unit="M",
    )
    # Same order of magnitude and right-shaped spread as the paper.
    assert 15.0 < stats["mean"] < 70.0
    assert stats["min"] < stats["median"] < stats["max"]
    per_event = stats["mean"] * 1e6 / 5000
    # Paper: ~8,460 invocations triggered per Monkey event.
    assert 2000 < per_event < 20_000
