"""Pipeline scaling — parallel vetting vs. the sequential engine.

The production server is bound by emulator-slot occupancy, not by
scheduler CPU: an analysis holds its slot for the full (simulated)
emulation time.  The pipeline reproduces that regime with
``pace_seconds_per_minute``: each worker holds its slot for real wall
time proportional to the simulated minutes, so adding workers buys real
wall-clock speedup exactly the way adding emulators does on the §4.2
hardware.

Asserted here:

* N-worker observations are bit-identical to the sequential engine's;
* 4 workers give >1.5x wall-clock speedup over 1 worker on a 200-app
  corpus (slot-occupancy regime);
* a second pass over the same corpus is served from the observation
  cache with zero re-emulation.
"""

from __future__ import annotations

import time

from repro.core.engine import DynamicAnalysisEngine
from repro.core.pipeline import ObservationCache, VettingPipeline

#: Real seconds a worker occupies its slot per simulated minute.  Keeps
#: the 1-worker baseline around a few seconds of wall time.
PACE = 0.008

N_APPS = 200


def _engine(world, seed_offset=31):
    return DynamicAnalysisEngine(
        world.sdk,
        tracked_api_ids=world.selection.key_api_ids,
        seed=world.profile.seed + seed_offset,
    )


def test_pipeline_scaling(world, once):
    apps = list(world.test)[:N_APPS]

    def run():
        sequential = _engine(world).analyze_corpus(apps)

        walls = {}
        results = {}
        for workers in (1, 2, 4):
            pipeline = VettingPipeline(
                _engine(world),
                workers=workers,
                pace_seconds_per_minute=PACE,
            )
            t0 = time.perf_counter()
            results[workers] = pipeline.run(apps)
            walls[workers] = time.perf_counter() - t0

        cache = ObservationCache()
        cached_pipeline = VettingPipeline(
            _engine(world), workers=4, cache=cache
        )
        first = cached_pipeline.run(apps)
        second = cached_pipeline.run(apps)
        return sequential, results, walls, first, second

    sequential, results, walls, first, second = once(run)

    print(f"\nPipeline scaling over {N_APPS} apps "
          f"(slot pace {PACE}s per simulated minute):")
    for workers, wall in walls.items():
        speedup = walls[1] / wall
        util = results[workers].schedule.utilization
        print(f"  {workers} workers: {wall:6.2f}s wall  "
              f"speedup {speedup:4.2f}x  slot utilization {util:.2f}")
    print(f"  cache second pass: {second.cache_hits} hits, "
          f"{second.n_analyzed} re-emulations")

    # Bit-identical results at every worker count.
    for workers, result in results.items():
        assert not result.failures
        assert [a.observation for a in result.analyses] == [
            s.observation for s in sequential
        ], f"{workers}-worker observations diverged from sequential"

    # Parallel slots buy real wall-clock time (>1.5x at 4 workers).
    assert walls[1] / walls[4] > 1.5

    # Resubmission traffic is served from the cache, not re-emulated.
    assert first.cache_hits == 0 and first.n_analyzed == N_APPS
    assert second.cache_hits == N_APPS and second.n_analyzed == 0
    assert [a.observation for a in second.analyses] == [
        a.observation for a in first.analyses
    ]
