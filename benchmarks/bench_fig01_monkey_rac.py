"""Fig. 1 — Monkey events vs RAC vs emulation time.

Paper: average RAC climbs steeply to 76.5% within 126 s (5K events),
then nearly flattens — 10K events buy only ~1.5% more coverage, and
100K events (35.7 min) top out around 86%.  APICHECKER therefore runs
5K events, trading 9.5% of RAC for a 94% cut in emulation time.
"""

import numpy as np

from repro.emulator.monkey import MonkeyExerciser, SECONDS_PER_EVENT
from repro.experiments.harness import print_series, print_table

EVENT_GRID = (250, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000)


def test_fig01_monkey_rac(world, once):
    apps = list(world.test)[:150]

    def run():
        series = []
        for events in EVENT_GRID:
            monkey = MonkeyExerciser(n_events=events, seed=11)
            rng = np.random.default_rng(11)
            rac = np.mean(
                [monkey.exercise(a, rng).achieved_rac for a in apps]
            )
            series.append((events, float(rac), events * SECONDS_PER_EVENT / 60))
        return series

    series = once(run)
    print_table(
        "Fig 1: Monkey events vs RAC vs emulation time",
        ["events", "RAC", "minutes"],
        [[e, f"{r:.3f}", f"{m:.2f}"] for e, r, m in series],
    )
    print_series(
        "Fig 1 (plot): RAC vs Monkey events",
        [e for e, _, _ in series],
        [r for _, r, _ in series],
        x_label="events (log)",
        y_label="RAC",
        log_x=True,
    )

    rac = {e: r for e, r, _ in series}
    # Paper anchors: 76.5% at 5K, ~86% at 100K, tiny gain 5K -> 10K.
    assert abs(rac[5000] - 0.765) < 0.04
    assert abs(rac[100_000] - 0.86) < 0.04
    assert rac[10_000] - rac[5000] < 0.04
    # Coverage is monotone in events; time is linear.
    racs = [r for _, r, _ in series]
    assert all(b >= a - 1e-9 for a, b in zip(racs, racs[1:]))
    # The chosen operating point saves ~94% of the 100K-event time.
    assert 5000 * SECONDS_PER_EVENT < 0.07 * 100_000 * SECONDS_PER_EVENT
