"""Fig. 5 — top non-seldom APIs by absolute SRC.

Paper: restricting to APIs that are not seldom invoked (>=0.1% of apps)
leaves 260 APIs with non-trivial |SRC| >= 0.2 — 247 positively
correlated plus 13 frequently invoked, negatively correlated
common-operation APIs (file I/O and the like).  This set is Set-C.
"""

import numpy as np

from repro.core.selection import SELDOM_USAGE_FRACTION
from repro.experiments.harness import print_table


def test_fig05_top_src(world, once):
    def run():
        return world.selection

    selection = once(run)
    src = selection.src
    usage = selection.usage_fraction
    non_seldom = usage >= SELDOM_USAGE_FRACTION
    abs_sorted = np.sort(np.abs(src[non_seldom]))[::-1]
    top = abs_sorted[:1000]
    grid = [1, 50, 100, 150, 200, 260, 400, 600, min(999, top.size - 1)]
    print_table(
        "Fig 5: |SRC| of top non-seldom APIs (paper: 260 above 0.2)",
        ["rank"] + [str(g + 1) for g in grid],
        [["|SRC|"] + [f"{top[g]:.3f}" if g < top.size else "--"
                      for g in grid]],
    )
    set_c = selection.set_c
    n_negative = int((src[set_c] < 0).sum())
    print(
        f"Set-C size: {set_c.size} (paper 260), of which negatively "
        f"correlated frequent APIs: {n_negative} (paper 13)"
    )

    # Shape: Set-C lands in the paper's ballpark, includes a small
    # negative band, and |SRC| decays past the Set-C knee.  (SRC mining
    # is too noisy at smoke scale for the tight bands.)
    assert n_negative >= 3
    knee = min(set_c.size, top.size - 1)
    assert top[0] > 2 * top[min(2 * knee, top.size - 1)]
    if world.profile.name != "smoke":
        assert 150 <= set_c.size <= 400
        assert n_negative <= 40
