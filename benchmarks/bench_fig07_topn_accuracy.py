"""Fig. 7 — detection accuracy vs number of tracked top-correlated APIs.

Paper: precision/recall climb with n, peak around a few hundred
strategically chosen APIs (top-490: 96.3%/92.4%), and then *fall* when
everything is tracked (50K: 91.6%/90.2%) — sparse, rarely invoked
features over-fit the model.
"""

import numpy as np

from repro.experiments.harness import print_series, print_table
from repro.ml.forest import RandomForest
from repro.ml.metrics import evaluate


def test_fig07_topn_accuracy(world, once):
    selection = world.selection
    ranked = selection.ranked_by_correlation()
    n_apis = len(world.sdk)
    knee = selection.set_c.size
    grid = sorted(
        {
            max(10, knee // 4),
            knee // 2,
            knee,
            selection.n_keys,
            min(2 * selection.n_keys, n_apis),
            min(4 * selection.n_keys, n_apis),
            n_apis,
        }
    )
    X_train = world.train_api_matrix
    X_test = world.test_api_matrix
    y_train = world.train.labels.astype(np.int8)
    y_test = world.test.labels

    def run():
        series = []
        for n in grid:
            cols = np.sort(ranked[:n])
            rf = RandomForest(
                n_trees=world.profile.rf_trees, seed=7
            ).fit(X_train[:, cols], y_train)
            rep = evaluate(y_test, rf.predict(X_test[:, cols]))
            series.append((n, rep.precision, rep.recall, rep.f1))
        return series

    series = once(run)
    print_table(
        "Fig 7: accuracy vs top-n correlated APIs tracked "
        "(paper: peak near a few hundred, drop at 50K)",
        ["n", "precision", "recall", "F1"],
        [[n, f"{p:.3f}", f"{r:.3f}", f"{f:.3f}"] for n, p, r, f in series],
    )

    print_series(
        "Fig 7 (plot): F1 vs top-n correlated APIs",
        [n for n, _, _, _ in series],
        [f for _, _, _, f in series],
        x_label="n tracked (log)", y_label="F1", log_x=True,
    )
    f1s = {n: f for n, _, _, f in series}
    best_n = max(f1s, key=f1s.get)
    # Shape: a mid-sized strategic set is at least as good as tracking
    # every API, and tiny sets lose recall.
    assert f1s[grid[0]] <= max(f1s.values())
    if world.profile.name != "smoke":
        # A strategically chosen mid-sized set is within noise of (the
        # paper: better than) tracking everything.
        assert best_n < n_apis or f1s[best_n] - f1s[grid[-2]] < 0.03
        assert max(f1s.values()) >= f1s[n_apis] - 0.03
