"""Observability overhead — instrumentation must be (nearly) free.

The registry and span layer sit on every hot path (per-attempt, per
task, per cache lookup), so their cost has to disappear next to the
emulator-occupancy time that dominates the production regime.  This
bench runs the 4-worker paced pipeline twice — once recording into a
:class:`NullRegistry` (the uninstrumented baseline) and once into a
full :class:`MetricsRegistry` plus an in-memory :class:`SpanSink` —
and asserts the fully-instrumented run costs **< 5%** extra wall time.

A micro section also prints raw registry op rates (counter increments
and histogram observations per second) for profiling reference.
"""

from __future__ import annotations

import time

from repro.core.engine import DynamicAnalysisEngine
from repro.core.pipeline import VettingPipeline
from repro.obs import MetricsRegistry, NullRegistry, SpanSink

#: Same slot-occupancy pacing as bench_pipeline_scaling.
PACE = 0.008

N_APPS = 200

#: Registry micro-benchmark op count.
MICRO_OPS = 100_000

#: Maximum tolerated instrumentation overhead at 4 workers.
MAX_OVERHEAD = 0.05


def _paced_run(world, registry, sink):
    engine = DynamicAnalysisEngine(
        world.sdk,
        tracked_api_ids=world.selection.key_api_ids,
        seed=world.profile.seed + 31,
        registry=registry,
        sink=sink,
    )
    pipeline = VettingPipeline(
        engine,
        workers=4,
        pace_seconds_per_minute=PACE,
        registry=registry,
        sink=sink,
    )
    apps = list(world.test)[:N_APPS]
    t0 = time.perf_counter()
    result = pipeline.run(apps)
    wall = time.perf_counter() - t0
    assert not result.failures
    return wall


def test_obs_overhead(world, once):
    def run():
        walls = {"null": [], "full": []}
        # Interleave and keep the best of each variant so scheduler
        # noise cannot masquerade as instrumentation cost.
        for _ in range(2):
            walls["null"].append(_paced_run(world, NullRegistry(), None))
            walls["full"].append(
                _paced_run(world, MetricsRegistry(), SpanSink())
            )

        registry = MetricsRegistry()
        t0 = time.perf_counter()
        for _ in range(MICRO_OPS):
            registry.inc("bench_ops_total")
        inc_rate = MICRO_OPS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(MICRO_OPS):
            registry.observe("bench_lat_seconds", 0.001)
        observe_rate = MICRO_OPS / (time.perf_counter() - t0)
        return walls, inc_rate, observe_rate

    walls, inc_rate, observe_rate = once(run)
    base, full = min(walls["null"]), min(walls["full"])
    overhead = full / base - 1.0

    print(f"\nObservability overhead over {N_APPS} apps, 4 workers "
          f"(pace {PACE}s per simulated minute):")
    print(f"  uninstrumented (NullRegistry): {base:6.2f}s wall")
    print(f"  instrumented (registry+sink):  {full:6.2f}s wall  "
          f"overhead {overhead * 100:+.1f}%")
    print(f"  registry micro: {inc_rate / 1e6:.2f}M inc/s, "
          f"{observe_rate / 1e6:.2f}M observe/s")

    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%}"
    )
