"""Synthetic market-scale ground-truth corpus.

Stands in for the paper's ~500K labelled T-Market apps (§4.1).  The
generator draws apps from *behaviour archetypes* — benign categories and
malware families — whose API/permission/intent usage is calibrated so
that the statistical properties the paper reports (SRC distribution,
invocation-frequency spread, ~7.7% malware prevalence, 85% updates,
reflection/intent evasion) all hold on the generated data.
"""

from repro.corpus.behavior import AppBlueprint
from repro.corpus.families import ArchetypeCatalog, BehaviorArchetype
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.corpus.market import AntivirusEngine, MarketStream, ReviewPipeline, TMarket

__all__ = [
    "AntivirusEngine",
    "AppBlueprint",
    "AppCorpus",
    "ArchetypeCatalog",
    "BehaviorArchetype",
    "CorpusGenerator",
    "MarketStream",
    "ReviewPipeline",
    "TMarket",
]
