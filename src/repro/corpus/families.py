"""Behaviour archetypes: malware families and benign app categories.

Each archetype is a generative profile over the synthetic SDK: which
discriminative APIs form its signature, how intensely it uses them, which
permissions and intents accompany them, and which evasive tricks it
plays.  Malware archetypes mirror the attack classes the paper calls out
(SMS fraud, privacy stealing, ransomware, overlay/"cloak and dagger"
attacks, update attacks via dynamic code loading, privilege escalation).

Benign categories intentionally overlap with malware on *some* sensitive
behaviour (a messenger legitimately sends SMS; a banking app encrypts)
— that overlap is what makes precision < 100% and keeps the
classification problem honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.dex import EmulatorProbe
from repro.android.sdk import AndroidSdk


@dataclass(frozen=True)
class BehaviorArchetype:
    """Generative profile for one app category or malware family.

    Attributes:
        name: archetype identifier.
        malicious: ground-truth malice of apps drawn from this archetype.
        weight: relative prevalence within its class (benign/malicious).
        signature_size: number of discriminative APIs in the signature
            (used when ``signature_coverage`` is 0).
        signature_coverage: when positive, the signature instead samples
            each discriminative-pool API independently with this
            probability — families overlap heavily, which is what gives
            individual APIs market-wide correlation with malice.
        simple_profile: draw the app's ubiquitous-API engagement from
            the "simple app" distribution that malware follows; set on
            benign lookalikes so engagement cannot whitelist them.
        mimics: name of a malware archetype whose signature this (benign)
            archetype borrows from — a messenger overlaps SMS fraud, an
            ad-heavy app overlaps adware.  The borrowed pool is sampled
            with ``signature_coverage``; these lookalikes are the main
            false-positive source.
        signature_use_prob: per-signature-API reference probability.
        signature_use_jitter: per-app relative spread of the signature
            use probability; wide jitter makes an archetype a continuum
            from harmless to malware-grade intensity.
        canonical_apis: canonical API names always eligible for the
            signature (e.g. ``android.telephony.SmsManager.sendTextMessage``).
        restricted_draw: (count, prob) extra restricted APIs referenced.
        sensitive_draw: (count, prob) extra sensitive APIs referenced.
        breadth_mean: mean number of ordinary (tail/common) APIs used.
        ubiquitous_prob: per-ubiquitous-API reference probability.
        rate_intensity: scales invocation-rate multipliers for the app.
        reflection_prob: probability an app of this archetype is a
            *reflection-heavy hider*: most of its concealable behaviour
            moves behind reflection (hidden from API hooks, but the
            guarding permissions stay visible).
        delegation_prob: probability the app is an *intent delegator*:
            most concealable behaviour is requested over intents.
        probe_prob: probability the app performs emulator detection.
            Malware hides its attack behaviour when a probe fires;
            benign apps (DRM, anti-cheat, banking root checks) refuse to
            run past their entry screens — both distort dynamic analysis
            on a stock emulator (§4.2).
        probes: which probes it may use.
        dynamic_loading_prob / native_prob / obfuscation_prob /
        live_sensor_prob: code-shape probabilities.
        extra_permissions: permission names requested beyond API needs.
        receiver_intents: (actions, prob) broadcast actions listened for.
        sent_intents: (actions, prob) request actions sent at runtime.
        n_activities_mean: mean declared Activity count.
        size_mb_mean: mean APK size.
    """

    name: str
    malicious: bool
    weight: float = 1.0
    signature_size: int = 12
    signature_coverage: float = 0.0
    mimics: str | None = None
    simple_profile: bool = False
    signature_use_jitter: float = 0.25
    signature_use_prob: float = 0.75
    canonical_apis: tuple[str, ...] = ()
    restricted_draw: tuple[int, float] = (2, 0.3)
    sensitive_draw: tuple[int, float] = (2, 0.3)
    breadth_mean: float = 140.0
    ubiquitous_prob: float = 0.92
    rate_intensity: float = 1.0
    reflection_prob: float = 0.0
    delegation_prob: float = 0.0
    probe_prob: float = 0.0
    probes: tuple[EmulatorProbe, ...] = ()
    dynamic_loading_prob: float = 0.02
    native_prob: float = 0.25
    obfuscation_prob: float = 0.1
    live_sensor_prob: float = 0.0
    extra_permissions: tuple[str, ...] = ()
    receiver_intents: tuple[tuple[str, ...], float] = ((), 0.0)
    sent_intents: tuple[tuple[str, ...], float] = ((), 0.0)
    n_activities_mean: float = 14.0
    size_mb_mean: float = 22.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        for p in (
            self.signature_use_prob, self.ubiquitous_prob, self.reflection_prob,
            self.delegation_prob, self.probe_prob, self.dynamic_loading_prob,
            self.native_prob, self.obfuscation_prob, self.live_sensor_prob,
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability out of range in {self.name}: {p}")


_ALL_PROBES = tuple(EmulatorProbe)

#: Malware families.  Signature canonical APIs tie each family to the
#: attack behaviours the paper describes; probabilities are calibrated so
#: SRC mining recovers roughly the paper's Set-C size and random forest
#: accuracy lands near Table 2.
MALWARE_ARCHETYPES: tuple[BehaviorArchetype, ...] = (
    BehaviorArchetype(
        name="sms_fraud",
        signature_coverage=0.55,
        malicious=True,
        weight=3.0,
        signature_size=18,
        signature_use_prob=0.85,
        canonical_apis=(
            "android.telephony.SmsManager.sendTextMessage",
            "android.telephony.TelephonyManager.getLine1Number",
        ),
        restricted_draw=(8, 0.7),
        reflection_prob=0.05,
        delegation_prob=0.03,
        probe_prob=0.25,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.SEND_SMS",
            "android.permission.RECEIVE_SMS",
            "android.permission.READ_SMS",
            "android.permission.RECEIVE_MMS",
            "android.permission.RECEIVE_WAP_PUSH",
        ),
        receiver_intents=(
            ("android.provider.Telephony.SMS_RECEIVED",
             "android.intent.action.PHONE_STATE"),
            0.9,
        ),
        sent_intents=(("android.intent.action.SENDTO",), 0.5),
        obfuscation_prob=0.4,
    ),
    BehaviorArchetype(
        name="privacy_stealer",
        signature_coverage=0.55,
        malicious=True,
        weight=2.5,
        signature_size=20,
        signature_use_prob=0.8,
        canonical_apis=(
            "android.telephony.TelephonyManager.getLine1Number",
            "android.net.wifi.WifiInfo.getMacAddress",
            "android.content.ContentResolver.query",
            "java.net.HttpURLConnection.connect",
        ),
        restricted_draw=(9, 0.65),
        sensitive_draw=(4, 0.5),
        reflection_prob=0.06,
        delegation_prob=0.025,
        probe_prob=0.3,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.READ_CONTACTS",
            "android.permission.READ_PHONE_STATE",
            "android.permission.ACCESS_NETWORK_STATE",
        ),
        receiver_intents=(
            ("android.net.wifi.STATE_CHANGE",
             "android.net.conn.CONNECTIVITY_CHANGE"),
            0.7,
        ),
        obfuscation_prob=0.45,
    ),
    BehaviorArchetype(
        name="ransomware",
        signature_coverage=0.48,
        malicious=True,
        weight=1.2,
        signature_size=16,
        signature_use_prob=0.85,
        canonical_apis=(
            "javax.crypto.Cipher.doFinal",
            "android.database.sqlite.SQLiteDatabase.insertWithOnConflict",
        ),
        sensitive_draw=(6, 0.65),
        rate_intensity=2.0,
        reflection_prob=0.03,
        probe_prob=0.35,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.RECEIVE_BOOT_COMPLETED",
            "android.permission.WRITE_EXTERNAL_STORAGE",
            "android.permission.SYSTEM_ALERT_WINDOW",
        ),
        receiver_intents=(
            ("android.app.action.DEVICE_ADMIN_ENABLED",
             "android.intent.action.BOOT_COMPLETED"),
            0.85,
        ),
        obfuscation_prob=0.5,
    ),
    BehaviorArchetype(
        name="overlay_attack",
        signature_coverage=0.48,
        malicious=True,
        weight=1.5,
        signature_size=14,
        signature_use_prob=0.8,
        canonical_apis=(
            "android.view.WindowManager.addView",
            "android.app.ActivityManager.getRunningTasks",
            "android.view.View.setBackgroundColor",
        ),
        sensitive_draw=(3, 0.5),
        reflection_prob=0.035,
        delegation_prob=0.035,
        probe_prob=0.3,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.SYSTEM_ALERT_WINDOW",
            "android.permission.ACCESS_NETWORK_STATE",
        ),
        receiver_intents=(("android.intent.action.USER_PRESENT",), 0.6),
        obfuscation_prob=0.4,
    ),
    BehaviorArchetype(
        name="botnet",
        signature_coverage=0.52,
        malicious=True,
        weight=1.4,
        signature_size=18,
        signature_use_prob=0.75,
        canonical_apis=(
            "java.net.HttpURLConnection.connect",
            "android.app.ActivityManager.getRunningTasks",
        ),
        restricted_draw=(7, 0.6),
        rate_intensity=1.6,
        reflection_prob=0.045,
        delegation_prob=0.015,
        probe_prob=0.4,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.RECEIVE_BOOT_COMPLETED",
            "android.permission.ACCESS_NETWORK_STATE",
            "android.permission.WAKE_LOCK",
        ),
        receiver_intents=(
            ("android.intent.action.BOOT_COMPLETED",
             "android.net.conn.CONNECTIVITY_CHANGE",
             "android.intent.action.ACTION_BATTERY_OKAY"),
            0.85,
        ),
        obfuscation_prob=0.5,
    ),
    BehaviorArchetype(
        name="rooter",
        signature_coverage=0.42,
        malicious=True,
        weight=0.8,
        signature_size=12,
        signature_use_prob=0.85,
        canonical_apis=("java.lang.Runtime.exec",),
        sensitive_draw=(5, 0.6),
        native_prob=0.8,
        reflection_prob=0.03,
        probe_prob=0.35,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.WRITE_SECURE_SETTINGS",
            "android.permission.MOUNT_UNMOUNT_FILESYSTEMS",
        ),
        obfuscation_prob=0.6,
    ),
    BehaviorArchetype(
        name="update_attack",
        signature_coverage=0.20,
        malicious=True,
        weight=1.0,
        signature_size=8,
        signature_use_prob=0.6,
        canonical_apis=("dalvik.system.DexClassLoader.loadClass",),
        dynamic_loading_prob=0.95,
        reflection_prob=0.10,
        delegation_prob=0.045,
        probe_prob=0.45,
        probes=_ALL_PROBES,
        extra_permissions=("android.permission.INSTALL_PACKAGES",),
        sent_intents=(("android.intent.action.INSTALL_PACKAGE",), 0.6),
        obfuscation_prob=0.7,
    ),
    BehaviorArchetype(
        name="aggressive_adware",
        signature_coverage=0.52,
        malicious=True,
        weight=2.0,
        signature_size=14,
        signature_use_prob=0.7,
        canonical_apis=(
            "android.view.WindowManager.addView",
            "java.net.HttpURLConnection.connect",
            "android.view.View.setBackgroundColor",
        ),
        rate_intensity=1.8,
        delegation_prob=0.03,
        probe_prob=0.15,
        probes=_ALL_PROBES,
        extra_permissions=(
            "android.permission.SYSTEM_ALERT_WINDOW",
            "android.permission.ACCESS_NETWORK_STATE",
        ),
        receiver_intents=(("android.intent.action.USER_PRESENT",), 0.5),
        obfuscation_prob=0.3,
    ),
    # Low-profile spyware that barely touches key APIs: the source of the
    # paper's benign-looking false negatives (87% of sampled FNs "barely
    # use the key APIs we select to monitor", §5.2).
    BehaviorArchetype(
        name="lowkey_spy",
        signature_coverage=0.015,
        malicious=True,
        weight=0.9,
        signature_size=3,
        signature_use_prob=0.25,
        restricted_draw=(1, 0.15),
        sensitive_draw=(1, 0.1),
        breadth_mean=60.0,
        reflection_prob=0.15,
        delegation_prob=0.10,
        probe_prob=0.2,
        probes=_ALL_PROBES,
        extra_permissions=("android.permission.ACCESS_NETWORK_STATE",),
        obfuscation_prob=0.5,
        n_activities_mean=6.0,
        size_mb_mean=8.0,
    ),
)

#: Benign categories.  A few deliberately share sensitive behaviour with
#: malware families (messaging sends SMS, banking encrypts, launchers
#: query running tasks), generating the false-positive pressure the
#: paper's triage workflow exists to absorb.
BENIGN_ARCHETYPES: tuple[BehaviorArchetype, ...] = (
    BehaviorArchetype(
        name="game",
        probe_prob=0.2,
        probes=_ALL_PROBES,
        signature_coverage=0.01,
        malicious=False,
        weight=5.0,
        signature_size=2,
        signature_use_prob=0.06,
        breadth_mean=200.0,
        native_prob=0.6,
        rate_intensity=1.4,
        n_activities_mean=8.0,
        size_mb_mean=80.0,
        live_sensor_prob=0.02,
    ),
    BehaviorArchetype(
        name="social",
        probe_prob=0.08,
        probes=_ALL_PROBES,
        signature_coverage=0.03,
        malicious=False,
        weight=3.5,
        signature_size=3,
        signature_use_prob=0.10,
        breadth_mean=260.0,
        canonical_apis=("java.net.HttpURLConnection.connect",),
        extra_permissions=(
            "android.permission.ACCESS_NETWORK_STATE",
            "android.permission.READ_CONTACTS",
            "android.permission.CAMERA",
        ),
        receiver_intents=(("android.net.conn.CONNECTIVITY_CHANGE",), 0.5),
        n_activities_mean=24.0,
        size_mb_mean=60.0,
        live_sensor_prob=0.03,
    ),
    BehaviorArchetype(
        name="messaging",
        mimics="sms_fraud",
        signature_coverage=0.10,
        malicious=False,
        weight=1.5,
        signature_size=3,
        signature_use_prob=0.25,
        canonical_apis=(
            "android.telephony.SmsManager.sendTextMessage",
            "android.content.ContentResolver.query",
        ),
        restricted_draw=(2, 0.3),
        extra_permissions=(
            "android.permission.SEND_SMS",
            "android.permission.RECEIVE_SMS",
            "android.permission.READ_SMS",
        ),
        receiver_intents=(("android.provider.Telephony.SMS_RECEIVED",), 0.8),
        sent_intents=(("android.intent.action.SENDTO",), 0.6),
        breadth_mean=180.0,
        n_activities_mean=16.0,
    ),
    BehaviorArchetype(
        name="finance",
        probe_prob=0.45,
        probes=_ALL_PROBES,
        signature_coverage=0.04,
        malicious=False,
        weight=1.2,
        signature_size=3,
        signature_use_prob=0.3,
        canonical_apis=(
            "javax.crypto.Cipher.doFinal",
            "java.net.HttpURLConnection.connect",
        ),
        sensitive_draw=(2, 0.25),
        extra_permissions=("android.permission.ACCESS_NETWORK_STATE",),
        obfuscation_prob=0.5,
        breadth_mean=220.0,
        n_activities_mean=28.0,
    ),
    BehaviorArchetype(
        name="tool",
        signature_coverage=0.05,
        malicious=False,
        weight=3.0,
        signature_size=4,
        signature_use_prob=0.12,
        canonical_apis=(
            "android.net.wifi.WifiInfo.getMacAddress",
            "android.app.ActivityManager.getRunningTasks",
        ),
        restricted_draw=(2, 0.15),
        extra_permissions=(
            "android.permission.ACCESS_WIFI_STATE",
            "android.permission.ACCESS_NETWORK_STATE",
        ),
        receiver_intents=(("android.net.wifi.STATE_CHANGE",), 0.35),
        breadth_mean=120.0,
        n_activities_mean=9.0,
        size_mb_mean=12.0,
    ),
    BehaviorArchetype(
        name="media",
        probe_prob=0.1,
        probes=_ALL_PROBES,
        signature_coverage=0.01,
        malicious=False,
        weight=2.5,
        signature_size=1,
        signature_use_prob=0.05,
        breadth_mean=170.0,
        native_prob=0.7,
        rate_intensity=1.3,
        n_activities_mean=12.0,
        size_mb_mean=45.0,
        live_sensor_prob=0.05,
    ),
    BehaviorArchetype(
        name="shopping",
        signature_coverage=0.02,
        malicious=False,
        weight=2.0,
        signature_size=2,
        signature_use_prob=0.08,
        canonical_apis=("java.net.HttpURLConnection.connect",),
        extra_permissions=("android.permission.ACCESS_NETWORK_STATE",),
        breadth_mean=240.0,
        n_activities_mean=30.0,
        size_mb_mean=40.0,
    ),
    BehaviorArchetype(
        name="news",
        signature_coverage=0.01,
        malicious=False,
        weight=2.0,
        signature_size=1,
        signature_use_prob=0.05,
        breadth_mean=150.0,
        n_activities_mean=14.0,
        size_mb_mean=18.0,
    ),
    BehaviorArchetype(
        name="education",
        signature_coverage=0.01,
        malicious=False,
        weight=1.5,
        signature_size=1,
        signature_use_prob=0.04,
        breadth_mean=130.0,
        n_activities_mean=11.0,
        size_mb_mean=25.0,
    ),
    # Benign apps bundling aggressive advertising SDKs: overlays, boot
    # receivers, broad permissions — the classic false-positive source.
    BehaviorArchetype(
        name="adlib_heavy",
        probe_prob=0.25,
        probes=_ALL_PROBES,
        simple_profile=True,
        mimics="aggressive_adware",
        signature_coverage=0.75,
        malicious=False,
        weight=1.0,
        signature_use_prob=0.7,
        signature_use_jitter=0.5,
        canonical_apis=(
            "java.net.HttpURLConnection.connect",
            "android.view.WindowManager.addView",
            "android.app.ActivityManager.getRunningTasks",
        ),
        restricted_draw=(3, 0.4),
        extra_permissions=(
            "android.permission.SYSTEM_ALERT_WINDOW",
            "android.permission.ACCESS_NETWORK_STATE",
            "android.permission.RECEIVE_BOOT_COMPLETED",
        ),
        receiver_intents=(
            ("android.intent.action.USER_PRESENT",
             "android.net.conn.CONNECTIVITY_CHANGE"),
            0.6,
        ),
        sent_intents=(("android.intent.action.VIEW",), 0.7),
        obfuscation_prob=0.4,
        breadth_mean=150.0,
        n_activities_mean=10.0,
    ),
    BehaviorArchetype(
        name="launcher",
        mimics="overlay_attack",
        signature_coverage=0.30,
        malicious=False,
        weight=0.8,
        signature_size=3,
        signature_use_prob=0.3,
        canonical_apis=(
            "android.app.ActivityManager.getRunningTasks",
            "android.view.WindowManager.addView",
        ),
        extra_permissions=("android.permission.SYSTEM_ALERT_WINDOW",),
        breadth_mean=160.0,
        n_activities_mean=7.0,
    ),
)


class ArchetypeCatalog:
    """Archetypes bound to a concrete SDK.

    Binding resolves each archetype's canonical API names to ids and
    assigns it a concrete signature subset of the SDK's discriminative
    pool.  Signatures of different malware families overlap (they are
    drawn from the same pool), which is what gives individual APIs
    market-wide correlation with malice rather than with one family.
    """

    def __init__(self, sdk: AndroidSdk, seed: int = 0):
        self.sdk = sdk
        self._rng = np.random.default_rng(seed)
        self.archetypes: dict[str, BehaviorArchetype] = {}
        self.signatures: dict[str, np.ndarray] = {}
        pool = sdk.discriminative_api_ids
        for arch in MALWARE_ARCHETYPES + BENIGN_ARCHETYPES:
            self.archetypes[arch.name] = arch
            canonical_ids = np.array(
                [sdk.by_name(name).api_id for name in arch.canonical_apis],
                dtype=int,
            )
            if arch.mimics is not None:
                # Borrow from the mimicked family's signature (malware
                # archetypes are bound first, so it is already resolved).
                source = self.signatures[arch.mimics]
                mask = self._rng.random(len(source)) < arch.signature_coverage
                drawn = source[mask]
            elif arch.signature_coverage > 0:
                mask = self._rng.random(len(pool)) < arch.signature_coverage
                drawn = pool[mask]
            else:
                n_draw = max(0, arch.signature_size - canonical_ids.size)
                drawn = self._rng.choice(
                    pool, size=min(n_draw, len(pool)), replace=False
                )
            signature = np.unique(
                np.concatenate([canonical_ids, drawn.astype(int)])
            )
            self.signatures[arch.name] = signature

    @property
    def malware_names(self) -> list[str]:
        return [a.name for a in self.archetypes.values() if a.malicious]

    @property
    def benign_names(self) -> list[str]:
        return [a.name for a in self.archetypes.values() if not a.malicious]

    def get(self, name: str) -> BehaviorArchetype:
        try:
            return self.archetypes[name]
        except KeyError:
            raise KeyError(f"unknown archetype: {name!r}") from None

    def signature_of(self, name: str) -> np.ndarray:
        return self.signatures[name]

    def sample_name(self, malicious: bool, rng: np.random.Generator) -> str:
        """Draw an archetype name weighted by prevalence."""
        pool = [a for a in self.archetypes.values() if a.malicious == malicious]
        weights = np.array([a.weight for a in pool])
        weights = weights / weights.sum()
        return pool[int(rng.choice(len(pool), p=weights))].name

    # ------------------------------------------------------------------
    # Drift hooks (repro.drift): runtime catalog evolution
    # ------------------------------------------------------------------

    def register(
        self,
        archetype: BehaviorArchetype,
        signature: np.ndarray | list[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Introduce a new archetype mid-stream (new-family drift).

        ``signature`` fixes the family's discriminative-API signature
        explicitly; otherwise ``signature_size`` APIs are drawn from
        the SDK's discriminative pool with ``rng`` (default: the
        catalog's own stream).  Returns the bound signature.
        """
        if archetype.name in self.archetypes:
            raise ValueError(f"archetype {archetype.name!r} already registered")
        if signature is None:
            rng = rng if rng is not None else self._rng
            pool = self.sdk.discriminative_api_ids
            signature = rng.choice(
                pool, size=min(archetype.signature_size, len(pool)),
                replace=False,
            )
        signature = np.unique(np.asarray(signature, dtype=int))
        self.archetypes[archetype.name] = archetype
        self.signatures[archetype.name] = signature
        return signature

    def extend_signature(
        self, name: str, api_ids: np.ndarray | list[int]
    ) -> np.ndarray:
        """Add APIs to a family's signature (SDK-adoption drift)."""
        merged = np.unique(
            np.append(self.signature_of(name), np.asarray(api_ids, dtype=int))
        )
        self.signatures[name] = merged
        return merged

    def mutate_signature(
        self,
        name: str,
        rng: np.random.Generator,
        fraction: float = 0.3,
        pool: np.ndarray | None = None,
    ) -> np.ndarray:
        """Rotate a fraction of a family's signature onto fresh APIs.

        Per-SDK-release drift within a family: roughly ``fraction`` of
        its non-canonical signature APIs are dropped and replaced by
        the same number of draws from ``pool`` (default: the SDK's
        discriminative pool).  Canonical APIs — the behaviour that
        *defines* the family — are never rotated out.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        arch = self.get(name)
        canonical = np.array(
            [self.sdk.by_name(n).api_id for n in arch.canonical_apis],
            dtype=int,
        )
        signature = self.signature_of(name)
        rotatable = signature[~np.isin(signature, canonical)]
        n_rotate = int(round(fraction * rotatable.size))
        if n_rotate == 0:
            return signature
        dropped = rng.choice(rotatable, size=n_rotate, replace=False)
        if pool is None:
            pool = self.sdk.discriminative_api_ids
        candidates = pool[~np.isin(pool, signature)]
        n_new = min(n_rotate, candidates.size)
        added = (
            rng.choice(candidates, size=n_new, replace=False)
            if n_new else np.array([], dtype=int)
        )
        kept = signature[~np.isin(signature, dropped)]
        mutated = np.unique(np.concatenate([kept, added.astype(int)]))
        self.signatures[name] = mutated
        return mutated
