"""App blueprint: the sampled behaviour of one app before materialization.

The corpus generator first samples a *blueprint* — which APIs the app
references, how it hides some of them, which permissions/intents/
components it declares — and then materializes the blueprint into the
immutable :class:`~repro.android.apk.Apk` model.  Keeping the two steps
separate makes the sampling logic testable in isolation and lets update
generation mutate a blueprint instead of reverse-engineering an APK.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.android.apk import Apk
from repro.android.components import Activity, BroadcastReceiver, Service
from repro.android.dex import (
    ApiCallSite,
    DexCode,
    EmulatorProbe,
    NativeIsa,
    NativeLib,
)
from repro.android.manifest import AndroidManifest


@dataclass
class AppBlueprint:
    """Mutable precursor of an :class:`Apk`.

    Attributes mirror the APK model but stay in plain containers so
    update generation can tweak them cheaply.
    """

    package_name: str
    archetype: str
    malicious: bool
    version_code: int = 1
    direct_calls: dict[int, tuple[float, float]] = field(default_factory=dict)
    reflection_apis: set[int] = field(default_factory=set)
    sent_intents: set[str] = field(default_factory=set)
    receiver_filters: set[str] = field(default_factory=set)
    permissions: set[str] = field(default_factory=set)
    n_activities: int = 8
    referenced_fraction: float = 0.88
    native_arm: bool = False
    houdini_compatible: bool = True
    probes: tuple[EmulatorProbe, ...] = ()
    dynamic_loading: bool = False
    obfuscated: bool = False
    needs_live_sensors: bool = False
    size_mb: float = 20.0

    def add_direct_call(
        self, api_id: int, rate_multiplier: float, reach_quantile: float
    ) -> None:
        """Register a direct call site; repeated adds merge multipliers."""
        if api_id in self.direct_calls:
            mult, quantile = self.direct_calls[api_id]
            self.direct_calls[api_id] = (
                mult + rate_multiplier,
                min(quantile, reach_quantile),
            )
        else:
            self.direct_calls[api_id] = (rate_multiplier, reach_quantile)

    def hide_behind_reflection(self, api_id: int) -> None:
        """Move a direct call behind reflection (hook becomes blind)."""
        self.direct_calls.pop(api_id, None)
        self.reflection_apis.add(api_id)

    def delegate_over_intent(self, api_id: int, action: str) -> None:
        """Replace a direct call with an intent delegation."""
        self.direct_calls.pop(api_id, None)
        self.sent_intents.add(action)

    def materialize(
        self,
        rng: np.random.Generator,
        submitted_day: int = 0,
        parent_md5: str | None = None,
    ) -> Apk:
        """Freeze the blueprint into an immutable APK."""
        n_acts = max(1, self.n_activities)
        activities = tuple(
            Activity(
                name=f"{self.package_name}.ui.Activity{i}",
                referenced=bool(rng.random() < self.referenced_fraction) or i == 0,
                exported=(i == 0),
                reach_weight=float(rng.lognormal(0.0, 0.8)),
            )
            for i in range(n_acts)
        )
        services = tuple(
            Service(name=f"{self.package_name}.svc.Service{i}")
            for i in range(int(rng.integers(0, 3)))
        )
        receivers = ()
        if self.receiver_filters:
            receivers = (
                BroadcastReceiver(
                    name=f"{self.package_name}.rcv.MainReceiver",
                    intent_filters=tuple(sorted(self.receiver_filters)),
                ),
            )
        manifest = AndroidManifest(
            package_name=self.package_name,
            version_code=self.version_code,
            requested_permissions=tuple(sorted(self.permissions)),
            activities=activities,
            services=services,
            receivers=receivers,
        )
        call_sites = tuple(
            ApiCallSite(api_id=api_id, rate_multiplier=mult, reach_quantile=q)
            for api_id, (mult, q) in sorted(self.direct_calls.items())
        )
        native_libs = ()
        if self.native_arm:
            native_libs = (
                NativeLib(
                    name="libnative-core.so",
                    isa=NativeIsa.ARM,
                    size_mb=float(rng.uniform(0.5, 12.0)),
                    houdini_compatible=self.houdini_compatible,
                ),
            )
        dex = DexCode(
            call_sites=call_sites,
            reflection_api_ids=tuple(sorted(self.reflection_apis)),
            sent_intents=tuple(sorted(self.sent_intents)),
            native_libs=native_libs,
            emulator_probes=self.probes,
            uses_dynamic_loading=self.dynamic_loading,
            obfuscated=self.obfuscated,
            needs_live_sensors=self.needs_live_sensors,
        )
        return Apk(
            manifest=manifest,
            dex=dex,
            is_malicious=self.malicious,
            family=self.archetype,
            size_mb=self.size_mb,
            submitted_day=submitted_day,
            parent_md5=parent_md5,
        )

    def updated_copy(self, rng: np.random.Generator) -> "AppBlueprint":
        """Derive the next version: mostly the same code, light churn.

        ~85% of market submissions are updates (§4.1); updates keep the
        package identity, bump the version, and perturb a small share of
        call sites, which is what makes previous-version-based fast
        re-vetting (§5.2 triage) effective.
        """
        new = AppBlueprint(
            package_name=self.package_name,
            archetype=self.archetype,
            malicious=self.malicious,
            version_code=self.version_code + 1,
            direct_calls=dict(self.direct_calls),
            reflection_apis=set(self.reflection_apis),
            sent_intents=set(self.sent_intents),
            receiver_filters=set(self.receiver_filters),
            permissions=set(self.permissions),
            n_activities=self.n_activities,
            referenced_fraction=self.referenced_fraction,
            native_arm=self.native_arm,
            houdini_compatible=self.houdini_compatible,
            probes=self.probes,
            dynamic_loading=self.dynamic_loading,
            obfuscated=self.obfuscated,
            needs_live_sensors=self.needs_live_sensors,
            size_mb=self.size_mb * float(rng.uniform(0.95, 1.1)),
        )
        # Perturb ~5% of call sites' intensity; occasionally drop one.
        for api_id in list(new.direct_calls):
            if rng.random() < 0.05:
                mult, q = new.direct_calls[api_id]
                new.direct_calls[api_id] = (
                    mult * float(rng.uniform(0.7, 1.4)), q
                )
            elif rng.random() < 0.01:
                del new.direct_calls[api_id]
        return new
