"""Corpus generator: labelled apps at market scale.

Produces the stand-in for the paper's ground-truth dataset (§4.1):
501,971 apps, ~7.7% malicious, ~85% of submissions being updates of
previously submitted packages.  Every statistical knob that downstream
experiments depend on lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.corpus.behavior import AppBlueprint
from repro.corpus.families import ArchetypeCatalog

#: Malware prevalence in the paper's dataset: 38,698 / 501,971.
PAPER_MALWARE_RATE = 38_698 / 501_971

_PACKAGE_WORDS = (
    "nova", "swift", "pixel", "orbit", "lumen", "zephyr", "quartz", "ember",
    "falcon", "cedar", "maple", "onyx", "prism", "raven", "sonic", "terra",
    "umbra", "vortex", "willow", "zenith", "argon", "breeze", "comet",
    "drift", "echo", "flare", "glint", "harbor", "iris", "jade",
)


@dataclass
class AppCorpus:
    """A labelled corpus bound to its SDK.

    Attributes:
        sdk: the SDK the apps were generated against.
        apps: the APKs.
    """

    sdk: AndroidSdk
    apps: list[Apk]

    def __post_init__(self):
        self._labels = np.array([a.is_malicious for a in self.apps], dtype=bool)

    def __len__(self) -> int:
        return len(self.apps)

    def __iter__(self):
        return iter(self.apps)

    def __getitem__(self, idx: int) -> Apk:
        return self.apps[idx]

    @property
    def labels(self) -> np.ndarray:
        """Ground-truth malice labels (bool array aligned with ``apps``)."""
        return self._labels

    @property
    def malicious_count(self) -> int:
        return int(self._labels.sum())

    @property
    def benign_count(self) -> int:
        return len(self.apps) - self.malicious_count

    def subset(self, indices: np.ndarray | list[int]) -> "AppCorpus":
        return AppCorpus(self.sdk, [self.apps[i] for i in np.asarray(indices)])

    def sample_fraction(
        self, fraction: float, rng: np.random.Generator
    ) -> "AppCorpus":
        """Unbiased random subset (used for the §4.2 1% controlled study)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        n = max(1, int(round(fraction * len(self.apps))))
        idx = rng.choice(len(self.apps), size=n, replace=False)
        return self.subset(np.sort(idx))

    def update_fraction(self) -> float:
        """Share of apps that are updates of earlier submissions."""
        if not self.apps:
            return 0.0
        return sum(a.is_update for a in self.apps) / len(self.apps)


class CorpusGenerator:
    """Samples labelled apps from the archetype catalog.

    The generator keeps a per-package registry of blueprints so later
    draws can be *updates* of earlier packages — T-Market sees mostly
    updates, and the triage workflow exploits previous-version vetting.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        seed: int = 0,
        catalog: ArchetypeCatalog | None = None,
    ):
        self.sdk = sdk
        self.catalog = catalog or ArchetypeCatalog(sdk, seed=seed)
        self._rng = np.random.default_rng(seed)
        self._registry: dict[str, AppBlueprint] = {}
        self._package_counter = 0
        # Pre-computed pools for breadth sampling: ordinary functionality
        # APIs only.  Ubiquitous plumbing is sampled separately, and
        # key-like APIs (restricted/sensitive/discriminative) are reached
        # exclusively through archetype profiles so that their benign
        # base rates stay controlled.
        self.refresh_breadth_pools(self._rng)
        self._common_ops = set(sdk.common_ops_api_ids.tolist())
        self._request_actions = [
            a.name for a in sdk.intents.request_actions()
        ]
        self._system_broadcasts = [
            a.name for a in sdk.intents.system_broadcasts()
        ]
        self._restrictive_perm_names = [
            p.name for p in sdk.permissions.restrictive()
        ]

    def refresh_breadth_pools(
        self, rng: np.random.Generator | None = None
    ) -> None:
        """(Re)compute the ordinary-API breadth pool and its popularity.

        The pool holds ordinary functionality APIs only — ubiquitous
        plumbing is sampled separately, and key-like APIs
        (restricted/sensitive/discriminative) are reached exclusively
        through archetype profiles so that their benign base rates stay
        controlled.  Weights are Zipf-like: invocation rate times a
        heavy lognormal popularity factor, so most tail APIs are
        "seldom invoked" (<0.1% of apps, the paper's cutoff) while a
        popular head dominates.

        Called at construction; called again by the drift machinery to
        model *benign API fashion shift* (a fresh popularity draw moves
        the popular head) and after an SDK release to fold new tail
        APIs into the pool.
        """
        sdk = self.sdk
        rng = rng if rng is not None else self._rng
        excluded = (
            set(sdk.ubiquitous_api_ids.tolist())
            | set(sdk.restricted_api_ids.tolist())
            | set(sdk.sensitive_api_ids.tolist())
            | set(sdk.discriminative_api_ids.tolist())
        )
        self._breadth_pool = np.array(
            [a.api_id for a in sdk if a.api_id not in excluded]
        )
        rates = sdk.base_rates[self._breadth_pool]
        popularity = rng.lognormal(0.0, 2.0, size=rates.size)
        weights = rates * popularity
        self._breadth_weights = weights / weights.sum()

    # ------------------------------------------------------------------
    # Blueprint sampling
    # ------------------------------------------------------------------

    def _next_package_name(self, archetype: str) -> str:
        word = _PACKAGE_WORDS[self._package_counter % len(_PACKAGE_WORDS)]
        name = f"com.{archetype.replace('_', '')}.{word}{self._package_counter}"
        self._package_counter += 1
        return name

    def sample_blueprint(
        self, archetype_name: str, rng: np.random.Generator | None = None
    ) -> AppBlueprint:
        """Sample a fresh blueprint for the given archetype."""
        rng = rng or self._rng
        arch = self.catalog.get(archetype_name)
        signature = self.catalog.signature_of(archetype_name)
        bp = AppBlueprint(
            package_name=self._next_package_name(archetype_name),
            archetype=archetype_name,
            malicious=arch.malicious,
            n_activities=1 + int(rng.poisson(max(0.0, arch.n_activities_mean - 1))),
            size_mb=float(rng.lognormal(np.log(arch.size_mb_mean), 0.4)),
        )

        def mult() -> float:
            return float(arch.rate_intensity * rng.lognormal(0.0, 0.5))

        # Family signature intensity is sampled first: it drives both
        # the signature draws below and the app's engagement with the
        # ubiquitous plumbing.
        sig_use = float(
            np.clip(
                arch.signature_use_prob
                * rng.normal(1.0, arch.signature_use_jitter),
                0.05,
                1.0,
            )
        )

        # Ubiquitous plumbing: nearly every app uses nearly all of it,
        # but apps that pursue a heavy (attack) playbook are simpler
        # software that skips much of the common machinery — the paper's
        # FN analysis calls such apps "fairly simple functionalities".
        # Because the gap is *fully mediated* by signature intensity,
        # the 13 common-ops APIs carry marginal (SRC) signal — they join
        # Set-C as the negative members of Fig. 5 — while being almost
        # redundant to the classifier given the positive key APIs, so
        # their Gini rank falls below the top-150 (Figs. 15/16).
        for api_id in self.sdk.ubiquitous_api_ids:
            if int(api_id) in self._common_ops:
                prob = 0.95 * max(0.12, 1.03 - 0.65 * sig_use)
                intensity = 0.10  # damped: commons are cheap to hook
            else:
                prob = arch.ubiquitous_prob * max(0.2, 1.003 - 0.05 * sig_use)
                intensity = 1.0
            if rng.random() < prob:
                bp.add_direct_call(
                    int(api_id), mult() * intensity, float(rng.beta(1, 8))
                )

        # Breadth: ordinary functionality APIs.
        n_breadth = int(rng.poisson(arch.breadth_mean))
        n_breadth = min(n_breadth, len(self._breadth_pool))
        if n_breadth:
            chosen = rng.choice(
                self._breadth_pool, size=n_breadth, replace=False,
                p=self._breadth_weights,
            )
            for api_id in chosen:
                bp.add_direct_call(int(api_id), mult(), float(rng.beta(2, 3)))

        # Family signature, with per-app intensity heterogeneity: not
        # every sample of a family exercises the full playbook.
        hideable: list[int] = []
        for api_id in signature:
            if rng.random() < sig_use:
                bp.add_direct_call(int(api_id), mult(), float(rng.beta(2, 4)))
                hideable.append(int(api_id))

        # Ordinary use of attack-relevant framework APIs: benign software
        # calls network/UI/storage key APIs too.  Richness is heavy-tailed
        # — a big benign app can overlap the discriminative pool as much
        # as real malware does, which is where false positives come from.
        disc_pool = self.sdk.discriminative_api_ids
        if arch.malicious:
            n_extra_disc = int(rng.lognormal(np.log(3.0), 0.8))
        else:
            n_extra_disc = int(rng.lognormal(np.log(7.0), 1.0))
        n_extra_disc = min(n_extra_disc, disc_pool.size)
        if n_extra_disc:
            for api_id in rng.choice(disc_pool, size=n_extra_disc,
                                     replace=False):
                bp.add_direct_call(int(api_id), mult(), float(rng.beta(2, 4)))

        # Extra restricted / sensitive draws.
        for pool, (count, prob) in (
            (self.sdk.restricted_api_ids, arch.restricted_draw),
            (self.sdk.sensitive_api_ids, arch.sensitive_draw),
        ):
            if count and len(pool):
                candidates = rng.choice(pool, size=min(count, len(pool)),
                                        replace=False)
                for api_id in candidates:
                    if rng.random() < prob:
                        bp.add_direct_call(
                            int(api_id), mult(), float(rng.beta(2, 4))
                        )
                        hideable.append(int(api_id))

        # Evasion: a *hider* app conceals most of its sensitive behaviour
        # from the API hooks — behind reflection (permissions stay in the
        # manifest) or behind intent delegation (the used intent stays
        # observable).  Non-hiders still conceal the odd call.
        roll = rng.random()
        if roll < arch.reflection_prob:
            hide_mode, hide_prob = "reflection", 0.72
        elif roll < arch.reflection_prob + arch.delegation_prob:
            hide_mode, hide_prob = "delegation", 0.65
        else:
            hide_mode, hide_prob = "reflection", 0.03
        for api_id in hideable:
            if api_id not in bp.direct_calls:
                continue
            if rng.random() >= hide_prob:
                continue
            # Reflection leaves the guarding permission in the manifest
            # (there is no way around requesting it, §4.5); delegation
            # leaves the used intent observable.  Hiding an unguarded
            # API leaves no auxiliary trace at all — those calls are
            # simply lost to the detector.
            if hide_mode == "reflection":
                bp.hide_behind_reflection(api_id)
            else:
                action = self._request_actions[
                    api_id % len(self._request_actions)
                ]
                bp.delegate_over_intent(api_id, action)

        # Permissions: everything the code needs (direct or hidden), the
        # archetype's staples, plus a little over-permissioning noise.
        for api_id in list(bp.direct_calls) + list(bp.reflection_apis):
            perm = self.sdk.api(api_id).permission
            if perm is not None:
                bp.permissions.add(perm)
        for perm in arch.extra_permissions:
            if rng.random() < 0.9:
                bp.permissions.add(perm)
        n_noise_perms = int(rng.integers(1, 5)) if arch.malicious else int(
            rng.integers(0, 3)
        )
        for _ in range(n_noise_perms):
            bp.permissions.add(
                self._restrictive_perm_names[
                    int(rng.integers(len(self._restrictive_perm_names)))
                ]
            )

        # Intents.
        actions, prob = arch.receiver_intents
        for action in actions:
            if rng.random() < prob:
                bp.receiver_filters.add(action)
        if rng.random() < 0.2:
            bp.receiver_filters.add(
                self._system_broadcasts[
                    int(rng.integers(len(self._system_broadcasts)))
                ]
            )
        actions, prob = arch.sent_intents
        for action in actions:
            if rng.random() < prob:
                bp.sent_intents.add(action)
        for _ in range(int(rng.poisson(1.0))):
            bp.sent_intents.add(
                self._request_actions[
                    int(rng.integers(len(self._request_actions)))
                ]
            )

        # Code shape.
        if rng.random() < arch.probe_prob and arch.probes:
            k = int(rng.integers(1, min(3, len(arch.probes)) + 1))
            idx = rng.choice(len(arch.probes), size=k, replace=False)
            bp.probes = tuple(arch.probes[int(i)] for i in sorted(idx))
        bp.native_arm = bool(rng.random() < arch.native_prob)
        if bp.native_arm:
            bp.houdini_compatible = bool(rng.random() > 0.015)
        bp.dynamic_loading = bool(rng.random() < arch.dynamic_loading_prob)
        bp.obfuscated = bool(rng.random() < arch.obfuscation_prob)
        bp.needs_live_sensors = bool(rng.random() < arch.live_sensor_prob)
        return bp

    # ------------------------------------------------------------------
    # Corpus generation
    # ------------------------------------------------------------------

    def sample_app(
        self,
        malicious: bool | None = None,
        archetype: str | None = None,
        day: int = 0,
        update_prob: float = 0.0,
    ) -> Apk:
        """Sample one app (optionally an update of an earlier package)."""
        rng = self._rng
        if archetype is None:
            if malicious is None:
                malicious = bool(rng.random() < PAPER_MALWARE_RATE)
            archetype = self.catalog.sample_name(malicious, rng)
        arch = self.catalog.get(archetype)

        candidates = [
            pkg for pkg, bp in self._registry.items()
            if bp.archetype == archetype
        ]
        if candidates and rng.random() < update_prob:
            pkg = candidates[int(rng.integers(len(candidates)))]
            parent = self._registry[pkg]
            parent_apk_md5 = getattr(parent, "_last_md5", None)
            bp = parent.updated_copy(rng)
            self._registry[pkg] = bp
            apk = bp.materialize(rng, submitted_day=day,
                                 parent_md5=parent_apk_md5)
        else:
            bp = self.sample_blueprint(archetype, rng)
            self._registry[bp.package_name] = bp
            apk = bp.materialize(rng, submitted_day=day)
        bp._last_md5 = apk.md5  # noqa: SLF001 - registry-internal bookkeeping
        assert apk.is_malicious == arch.malicious
        return apk

    # ------------------------------------------------------------------
    # Campaign perturbation hooks (repro.scenarios)
    # ------------------------------------------------------------------

    def sample_repackaged(
        self,
        host_archetype: str,
        payload_archetype: str,
        day: int = 0,
        sig_use: float = 0.9,
    ) -> Apk:
        """Sample a benign app cloned around a malware payload.

        The repackaging attack the paper's triage sees in waves: take a
        popular benign app shape (``host_archetype``), graft a malware
        family's signature APIs, permissions, and intents into it
        (``payload_archetype``), and submit the clone.  The result keeps
        the host's breadth/plumbing profile — which is exactly what
        makes repackaged clones harder than pure family samples — but
        is ground-truth malicious.

        Clones are *not* registered in the update registry: a
        repackaging wave is a burst of fresh packages, not organic
        update traffic.
        """
        rng = self._rng
        host = self.catalog.get(host_archetype)
        payload = self.catalog.get(payload_archetype)
        if host.malicious:
            raise ValueError(
                f"repackaging host must be benign, got {host_archetype!r}"
            )
        if not payload.malicious:
            raise ValueError(
                f"repackaging payload must be a malware archetype, "
                f"got {payload_archetype!r}"
            )
        bp = self.sample_blueprint(host_archetype, rng)
        for api_id in self.catalog.signature_of(payload_archetype):
            if rng.random() < sig_use:
                bp.add_direct_call(
                    int(api_id),
                    float(payload.rate_intensity * rng.lognormal(0.0, 0.5)),
                    float(rng.beta(2, 4)),
                )
                perm = self.sdk.api(int(api_id)).permission
                if perm is not None:
                    bp.permissions.add(perm)
        for perm in payload.extra_permissions:
            if rng.random() < 0.9:
                bp.permissions.add(perm)
        actions, prob = payload.receiver_intents
        for action in actions:
            if rng.random() < prob:
                bp.receiver_filters.add(action)
        actions, prob = payload.sent_intents
        for action in actions:
            if rng.random() < prob:
                bp.sent_intents.add(action)
        bp.malicious = True
        bp.archetype = f"{payload_archetype}@{host_archetype}"
        return bp.materialize(rng, submitted_day=day)

    def sample_evasive(
        self,
        archetype: str,
        day: int = 0,
        force_probe: bool = False,
        hide_signature: bool = False,
    ) -> Apk:
        """Sample one family app with its evasion knobs forced on.

        ``force_probe`` guarantees the app performs emulator detection
        (the §4.2 arms race: it goes quiet when a probe succeeds);
        ``hide_signature`` moves every signature API the blueprint uses
        behind reflection and marks it a dynamic loader, so only the
        auxiliary P+I features can still see it (§4.5).  Like
        repackaged clones, evasive samples stay out of the update
        registry.
        """
        rng = self._rng
        arch = self.catalog.get(archetype)
        bp = self.sample_blueprint(archetype, rng)
        if force_probe and not bp.probes and arch.probes:
            k = min(2, len(arch.probes))
            bp.probes = tuple(arch.probes[:k])
        if hide_signature:
            # Reflection leaves the guarding permission in the manifest
            # (added by sample_blueprint before this point), which is
            # the auxiliary trace the A+P+I design relies on.
            for api_id in self.catalog.signature_of(archetype):
                if int(api_id) in bp.direct_calls:
                    bp.hide_behind_reflection(int(api_id))
            bp.dynamic_loading = True
        return bp.materialize(rng, submitted_day=day)

    def generate(
        self,
        n_apps: int,
        malware_rate: float = PAPER_MALWARE_RATE,
        update_fraction: float = 0.85,
        days: int = 1,
    ) -> AppCorpus:
        """Generate a labelled corpus.

        Args:
            n_apps: number of APKs.
            malware_rate: share of malicious apps (paper: ~7.7%).
            update_fraction: probability a draw is an update of an
                existing package of the same archetype (paper: ~85%).
            days: spread submissions uniformly over this many days.
        """
        if n_apps <= 0:
            raise ValueError("n_apps must be positive")
        if not 0 <= malware_rate <= 1:
            raise ValueError("malware_rate must be in [0, 1]")
        rng = self._rng
        apps = []
        for i in range(n_apps):
            malicious = bool(rng.random() < malware_rate)
            day = int(rng.integers(days)) if days > 1 else 0
            apps.append(
                self.sample_app(
                    malicious=malicious, day=day, update_prob=update_fraction
                )
            )
        apps.sort(key=lambda a: a.submitted_day)
        return AppCorpus(self.sdk, apps)

    def generate_family_balanced(
        self,
        per_family: int,
        n_benign: int,
        families: list[str] | tuple[str, ...] | None = None,
    ) -> AppCorpus:
        """Generate a family-balanced labelled corpus for rule mining.

        A natural corpus (:meth:`generate`) draws families by their
        market weight, which leaves rare families — ``lowkey_spy`` most
        of all — with a handful of samples: too few for itemset support
        estimates to beat noise.  Mining instead wants ``per_family``
        samples of *every* malware family over a benign background of
        ``n_benign`` apps.

        Args:
            per_family: malicious samples per family.
            n_benign: benign background apps (market-weighted benign
                archetypes).
            families: malware family names to balance over (default:
                every bundled malware archetype).
        """
        from repro.corpus.families import MALWARE_ARCHETYPES

        if per_family <= 0 or n_benign <= 0:
            raise ValueError("per_family and n_benign must be positive")
        names = (
            list(families)
            if families is not None
            else [a.name for a in MALWARE_ARCHETYPES]
        )
        apps = []
        for name in names:
            apps.extend(
                self.sample_app(archetype=name) for _ in range(per_family)
            )
        apps.extend(
            self.sample_app(malicious=False) for _ in range(n_benign)
        )
        return AppCorpus(self.sdk, apps)
