"""T-Market model: submissions, review process, ground-truth labels.

The paper's ground truth comes from T-Market's layered review (§2, §4.1):

1. fingerprint-based antivirus checking against at least four engines,
   each with a claimed false-positive rate below 5% — an app is taken as
   malicious only when *all* engines flag it, bounding mislabelled benign
   apps by (1 − 0.95)⁴;
2. expert-informed API inspection;
3. manual examination triggered by developer/user feedback.

This module reproduces that pipeline over generated apps, plus a
month-granular submission stream used by the model-evolution experiments
(Figs. 12 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.corpus.generator import AppCorpus, CorpusGenerator, PAPER_MALWARE_RATE


def poison_labels(
    labels: np.ndarray,
    flip_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Adversarially corrupt a share of review labels.

    The triage feedback loop assumes market labels are (near) ground
    truth; a poisoning campaign — colluding developers disputing
    takedowns, or a compromised review channel — breaks that assumption.
    Returns a copy of ``labels`` with approximately ``flip_rate`` of the
    entries inverted (each flipped independently), which the
    ``label_noise`` scenario feeds into retraining to measure how the
    evolution loop degrades.
    """
    if not 0.0 <= flip_rate <= 1.0:
        raise ValueError("flip_rate must be in [0, 1]")
    poisoned = np.asarray(labels, dtype=bool).copy()
    if flip_rate > 0.0 and poisoned.size:
        flip = rng.random(poisoned.size) < flip_rate
        poisoned[flip] = ~poisoned[flip]
    return poisoned


@dataclass
class AntivirusEngine:
    """One fingerprint-based antivirus engine.

    Fingerprint checking detects *known* samples reliably; zero-day
    malware is flagged only heuristically (family resemblance), and a
    small share of benign apps is falsely flagged.
    """

    name: str
    fp_rate: float = 0.04
    zero_day_recall: float = 0.6
    known_md5s: set[str] = field(default_factory=set)

    def __post_init__(self):
        if not 0 <= self.fp_rate < 0.05:
            raise ValueError("paper requires engine FP rate < 5%")
        if not 0 <= self.zero_day_recall <= 1:
            raise ValueError("zero_day_recall must be in [0, 1]")

    def learn(self, apk: Apk) -> None:
        """Add a confirmed-malicious sample to the fingerprint database."""
        self.known_md5s.add(apk.md5)

    def flags(self, apk: Apk, rng: np.random.Generator) -> bool:
        if apk.md5 in self.known_md5s:
            return True
        if apk.parent_md5 is not None and apk.parent_md5 in self.known_md5s:
            # Variants of known samples are usually caught too.
            return apk.is_malicious or rng.random() < self.fp_rate
        if apk.is_malicious:
            return bool(rng.random() < self.zero_day_recall)
        return bool(rng.random() < self.fp_rate)


@dataclass(frozen=True)
class ReviewVerdict:
    """Outcome of the market's review for one APK."""

    apk_md5: str
    label_malicious: bool
    provenance: str  # "antivirus-consensus" | "expert-inspection" | "manual"


class ReviewPipeline:
    """T-Market's layered app review producing (near) ground truth."""

    def __init__(
        self,
        engines: list[AntivirusEngine] | None = None,
        expert_accuracy: float = 0.995,
        manual_accuracy: float = 0.9995,
        seed: int = 0,
    ):
        self.engines = engines if engines is not None else [
            AntivirusEngine("symantec", fp_rate=0.030, zero_day_recall=0.62),
            AntivirusEngine("kaspersky", fp_rate=0.025, zero_day_recall=0.66),
            AntivirusEngine("norton", fp_rate=0.035, zero_day_recall=0.58),
            AntivirusEngine("mcafee", fp_rate=0.040, zero_day_recall=0.55),
        ]
        if len(self.engines) < 4:
            raise ValueError("the paper's labelling uses at least 4 engines")
        self.expert_accuracy = expert_accuracy
        self.manual_accuracy = manual_accuracy
        self._rng = np.random.default_rng(seed)

    def review(self, apk: Apk) -> ReviewVerdict:
        """Run the full review for one APK."""
        rng = self._rng
        votes = [engine.flags(apk, rng) for engine in self.engines]
        if all(votes):
            verdict = ReviewVerdict(apk.md5, True, "antivirus-consensus")
        else:
            # Expert API inspection; disagreement escalates to manual.
            if rng.random() < self.expert_accuracy:
                label = apk.is_malicious
                provenance = "expert-inspection"
            else:
                label = bool(
                    apk.is_malicious
                    if rng.random() < self.manual_accuracy
                    else not apk.is_malicious
                )
                provenance = "manual"
            verdict = ReviewVerdict(apk.md5, label, provenance)
        if verdict.label_malicious:
            for engine in self.engines:
                engine.learn(apk)
        return verdict

    def label_corpus(self, corpus: AppCorpus) -> np.ndarray:
        """Review every app; returns the market's (noisy) label array."""
        return np.array(
            [self.review(apk).label_malicious for apk in corpus], dtype=bool
        )


class TMarket:
    """The app market: daily submissions plus the review pipeline.

    The market publishes benign-labelled apps and quarantines malicious
    ones; confirmed malware feeds the antivirus fingerprint databases.
    """

    def __init__(
        self,
        generator: CorpusGenerator,
        review: ReviewPipeline | None = None,
        apps_per_day: int = 10_000,
        malware_rate: float = PAPER_MALWARE_RATE,
        update_fraction: float = 0.85,
    ):
        if apps_per_day <= 0:
            raise ValueError("apps_per_day must be positive")
        self.generator = generator
        self.review = review or ReviewPipeline()
        self.apps_per_day = apps_per_day
        self.malware_rate = malware_rate
        self.update_fraction = update_fraction
        self.published: list[Apk] = []
        self.quarantined: list[Apk] = []
        self._day = 0

    @property
    def sdk(self) -> AndroidSdk:
        return self.generator.sdk

    def next_day_submissions(self, n: int | None = None) -> AppCorpus:
        """Generate one day of submissions (without reviewing them)."""
        n = n if n is not None else self.apps_per_day
        rng = self.generator._rng  # noqa: SLF001 - shared stream by design
        apps = []
        for _ in range(n):
            malicious = bool(rng.random() < self.malware_rate)
            apps.append(
                self.generator.sample_app(
                    malicious=malicious,
                    day=self._day,
                    update_prob=self.update_fraction,
                )
            )
        self._day += 1
        return AppCorpus(self.sdk, apps)

    def ingest(self, corpus: AppCorpus) -> np.ndarray:
        """Review a batch, publish/quarantine accordingly; return labels."""
        labels = self.review.label_corpus(corpus)
        for apk, malicious in zip(corpus, labels):
            (self.quarantined if malicious else self.published).append(apk)
        return labels


@dataclass
class MonthBatch:
    """One month of reviewed submissions."""

    month_index: int
    corpus: AppCorpus
    market_labels: np.ndarray
    sdk: AndroidSdk


class MarketStream:
    """A month-granular stream of reviewed submissions with SDK drift.

    Feeds the model-evolution experiments: every ``sdk_update_every``
    months the Android SDK gains new APIs, a few of which are adopted by
    malware (so the mined key-API set drifts, Fig. 14), while monthly
    retraining keeps precision/recall stable (Fig. 12).
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        apps_per_month: int = 2000,
        seed: int = 0,
        sdk_update_every: int = 4,
        sdk_growth: int = 60,
        malware_rate: float = PAPER_MALWARE_RATE,
    ):
        if apps_per_month <= 0:
            raise ValueError("apps_per_month must be positive")
        self.sdk = sdk
        self.apps_per_month = apps_per_month
        self.sdk_update_every = sdk_update_every
        self.sdk_growth = sdk_growth
        self.malware_rate = malware_rate
        self._seed = seed
        self.generator = CorpusGenerator(sdk, seed=seed)
        self.review = ReviewPipeline(seed=seed + 1)
        self._month = 0
        self._rng = np.random.default_rng(seed + 2)

    def bootstrap_corpus(self, n_apps: int) -> AppCorpus:
        """Generate a pre-deployment training corpus.

        Uses the stream's own generator, so the corpus shares the
        archetype catalog with every later month — training data and
        live traffic must come from the same behaviour world.
        """
        rng = self.generator._rng  # noqa: SLF001 - shared stream by design
        apps = []
        for _ in range(n_apps):
            malicious = bool(rng.random() < self.malware_rate)
            apps.append(
                self.generator.sample_app(
                    malicious=malicious, day=0, update_prob=0.85
                )
            )
        return AppCorpus(self.sdk, apps)

    def next_month(self) -> MonthBatch:
        """Generate and review the next month's submissions."""
        self._month += 1
        if (
            self.sdk_update_every
            and self._month > 1
            and (self._month - 1) % self.sdk_update_every == 0
        ):
            self._extend_sdk()
        rng = self.generator._rng  # noqa: SLF001 - shared stream by design
        apps = []
        for _ in range(self.apps_per_month):
            malicious = bool(rng.random() < self.malware_rate)
            apps.append(
                self.generator.sample_app(
                    malicious=malicious,
                    day=(self._month - 1) * 30 + int(rng.integers(30)),
                    update_prob=0.85,
                )
            )
        corpus = AppCorpus(self.sdk, apps)
        labels = self.review.label_corpus(corpus)
        return MonthBatch(self._month, corpus, labels, self.sdk)

    def _extend_sdk(self) -> None:
        """Release a new SDK level and let archetypes adopt new APIs."""
        new_sdk = self.sdk.extend(self.sdk_growth)
        old_n = len(self.sdk)
        self.sdk = new_sdk
        gen = self.generator
        gen.sdk = new_sdk
        gen.catalog.sdk = new_sdk
        # Newly added malware-leaning APIs join some family signatures.
        new_disc = new_sdk.discriminative_api_ids[
            new_sdk.discriminative_api_ids >= old_n
        ]
        for api_id in new_disc:
            name = gen.catalog.malware_names[
                int(self._rng.integers(len(gen.catalog.malware_names)))
            ]
            gen.catalog.extend_signature(name, [int(api_id)])
        # Refresh breadth pools to include the new tail APIs (same
        # exclusions and Zipf-like popularity as generator init).
        gen.refresh_breadth_pools(self._rng)
