"""From-scratch ML stack (numpy only).

scikit-learn is unavailable offline, so the nine classifiers the paper
compares (Table 2) are implemented here directly: Bernoulli naive Bayes,
logistic regression, linear SVM, k-nearest neighbours, CART, gradient-
boosted decision trees, a single-hidden-layer ANN, a deep neural
network, and random forest — plus the metrics, stratified 10-fold
cross-validation with leakage deduplication (§4.2), Spearman rank
correlation for feature mining (§4.3), and the tri-modal curve fitting
used for Fig. 6.
"""

from repro.ml.base import Classifier, check_Xy
from repro.ml.bootstrap import BootstrapReport, MetricInterval, bootstrap_metrics
from repro.ml.gbdt import GradientBoostedTrees
from repro.ml.knn import KNearestNeighbors
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import ClassificationReport, confusion_counts, evaluate
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.neural import NeuralNetwork
from repro.ml.forest import RandomForest
from repro.ml.stats import fit_trimodal, r2_score, rankdata, spearman_rho
from repro.ml.svm import LinearSVM
from repro.ml.tree import CartTree
from repro.ml.validation import cross_validate, stratified_kfold

__all__ = [
    "BernoulliNaiveBayes",
    "BootstrapReport",
    "MetricInterval",
    "bootstrap_metrics",
    "CartTree",
    "ClassificationReport",
    "Classifier",
    "GradientBoostedTrees",
    "KNearestNeighbors",
    "LinearSVM",
    "LogisticRegression",
    "NeuralNetwork",
    "RandomForest",
    "check_Xy",
    "confusion_counts",
    "cross_validate",
    "evaluate",
    "fit_trimodal",
    "r2_score",
    "rankdata",
    "spearman_rho",
    "stratified_kfold",
]


def make_classifier(name: str, seed: int = 0) -> Classifier:
    """Instantiate one of the paper's nine classifiers by short name.

    Accepted names (Table 2): ``nb``, ``lr``, ``svm``, ``gbdt``, ``knn``,
    ``cart``, ``ann``, ``dnn``, ``rf``.
    """
    factories = {
        "nb": lambda: BernoulliNaiveBayes(),
        "lr": lambda: LogisticRegression(seed=seed),
        "svm": lambda: LinearSVM(seed=seed),
        "gbdt": lambda: GradientBoostedTrees(seed=seed),
        "knn": lambda: KNearestNeighbors(),
        "cart": lambda: CartTree(seed=seed),
        "ann": lambda: NeuralNetwork(hidden_layers=(64,), seed=seed),
        "dnn": lambda: NeuralNetwork(hidden_layers=(256, 128, 64), seed=seed),
        "rf": lambda: RandomForest(seed=seed),
    }
    try:
        return factories[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown classifier {name!r}; expected one of {sorted(factories)}"
        ) from None


CLASSIFIER_NAMES = ("nb", "lr", "svm", "gbdt", "knn", "cart", "ann", "dnn", "rf")
