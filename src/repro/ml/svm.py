"""Linear support vector machine (Table 2's 'SVM' row).

Primal L2-regularized hinge loss, optimized full-batch with Adam and
inverse-frequency class weights (the corpus is ~7.7% malware).  The
decision intercept is calibrated so the training predicted-positive
rate matches the observed base rate; probability output is a
Platt-style sigmoid of the margin.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    block_matrix,
    check_Xy,
    row_stable_matvec,
)


class LinearSVM(Classifier):
    """Hinge-loss linear classifier.

    Args:
        lam: L2 regularization strength.
        epochs: full-batch Adam steps (scaled up internally; the SVM is
            deliberately the most training-expensive linear model here,
            matching its standing in the paper's Table 2).
        lr: Adam step size.
        balanced: weight classes inversely to frequency.
        seed: initialization seed.
    """

    name = "svm"

    #: Adam steps per configured epoch.
    STEPS_PER_EPOCH = 20

    def __init__(
        self,
        lam: float = 1e-4,
        epochs: int = 30,
        lr: float = 0.05,
        balanced: bool = True,
        seed: int = 0,
    ):
        if lam <= 0:
            raise ValueError("lam must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.lam = lam
        self.epochs = epochs
        self.lr = lr
        self.balanced = balanced
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._platt_scale: float = 2.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = check_Xy(X, y)
        n, d = X.shape
        sign = np.where(y == 1, 1.0, -1.0)
        if self.balanced:
            pos = max(float((y == 1).mean()), 1e-9)
            weight = np.where(y == 1, 0.5 / pos, 0.5 / (1.0 - pos))
        else:
            weight = np.ones(n)
        weight = weight / weight.sum()

        rng = np.random.default_rng(self.seed)
        w = rng.normal(0.0, 1e-3, size=d)
        b = 0.0
        m_w = np.zeros(d)
        v_w = np.zeros(d)
        m_b = v_b = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for t in range(1, self.epochs * self.STEPS_PER_EPOCH + 1):
            margins = sign * (X @ w + b)
            violating = (margins < 1.0).astype(np.float64)
            coeff = -sign * weight * violating
            grad_w = X.T @ coeff + self.lam * w
            grad_b = float(coeff.sum())
            m_w = beta1 * m_w + (1 - beta1) * grad_w
            v_w = beta2 * v_w + (1 - beta2) * grad_w**2
            m_b = beta1 * m_b + (1 - beta1) * grad_b
            v_b = beta2 * v_b + (1 - beta2) * grad_b**2
            w -= self.lr * (m_w / (1 - beta1**t)) / (
                np.sqrt(v_w / (1 - beta2**t)) + eps
            )
            b -= self.lr * (m_b / (1 - beta1**t)) / (
                np.sqrt(v_b / (1 - beta2**t)) + eps
            )
        self.coef_ = w
        # Calibrate the intercept so the training predicted-positive
        # rate reproduces the base rate (robust under heavy imbalance).
        raw = X @ w
        base_rate = float((y == 1).mean())
        threshold = float(np.quantile(raw, 1.0 - base_rate))
        self.intercept_ = -threshold
        margins = raw + self.intercept_
        spread = float(np.abs(margins).mean())
        self._platt_scale = 1.0 / max(spread, 1e-6)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        X, _ = check_Xy(X)
        # Row-stable matvec, not BLAS: scoring must be batch-invariant.
        return row_stable_matvec(X, self.coef_) + self.intercept_

    def _platt(self, margins: np.ndarray) -> np.ndarray:
        z = margins * self._platt_scale
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._platt(self.decision_function(X))

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: one dtype conversion for the whole block."""
        self._require_fitted("coef_")
        X = block_matrix(block)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        X, _ = check_Xy(X)
        return self._platt(
            row_stable_matvec(X, self.coef_) + self.intercept_
        )
