"""Bernoulli naive Bayes (Table 2's 'Naive Bayes' row).

The natural generative model for one-hot feature vectors: per-class
Bernoulli likelihood per feature, with Laplace smoothing.  Fast to train
and, exactly as the paper observes, much less accurate than the
discriminative alternatives because API co-occurrence violates the
independence assumption badly.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    block_matrix,
    check_Xy,
    row_stable_matvec,
)


class BernoulliNaiveBayes(Classifier):
    """Naive Bayes over binary features with Laplace smoothing."""

    name = "nb"

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._log_prior: np.ndarray | None = None
        self._log_p: np.ndarray | None = None   # log P(x=1 | class)
        self._log_q: np.ndarray | None = None   # log P(x=0 | class)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNaiveBayes":
        X, y = check_Xy(X, y)
        counts = np.array([(y == 0).sum(), (y == 1).sum()], dtype=np.float64)
        if (counts == 0).any():
            raise ValueError("both classes must be present in y")
        self._log_prior = np.log(counts / counts.sum())
        p = np.vstack(
            [
                (X[y == 0].sum(axis=0) + self.alpha)
                / (counts[0] + 2 * self.alpha),
                (X[y == 1].sum(axis=0) + self.alpha)
                / (counts[1] + 2 * self.alpha),
            ]
        )
        self._log_p = np.log(p)
        self._log_q = np.log1p(-p)
        return self

    def _posterior(self, Xf: np.ndarray) -> np.ndarray:
        """P(malware | x) per row via row-stable log-joint scores.

        ``x·log p + (1-x)·log q`` is folded into one matvec per class,
        ``x·(log p - log q) + sum(log q)``, so the per-row reduction is
        a single row-stable kernel call and results are batch-size
        invariant.
        """
        joint = np.empty((Xf.shape[0], 2), dtype=np.float64)
        for c in (0, 1):
            joint[:, c] = (
                row_stable_matvec(Xf, self._log_p[c] - self._log_q[c])
                + self._log_q[c].sum()
                + self._log_prior[c]
            )
        # Normalize in log space for numerical stability.
        m = joint.max(axis=1, keepdims=True)
        probs = np.exp(joint - m)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]

    def _check_features(self, X: np.ndarray) -> None:
        if X.shape[1] != self._log_p.shape[1]:
            raise ValueError(
                f"expected {self._log_p.shape[1]} features, got {X.shape[1]}"
            )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_log_p")
        X, _ = check_Xy(X)
        self._check_features(X)
        return self._posterior(X)

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: one dtype conversion for the whole block."""
        self._require_fitted("_log_p")
        X = block_matrix(block)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        X, _ = check_Xy(X)
        self._check_features(X)
        return self._posterior(X)
