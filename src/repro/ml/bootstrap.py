"""Bootstrap confidence intervals for detection metrics.

The paper reports monthly precision/recall bands (Fig. 12: 98.5–99.0%
and 96.5–97.0%); to decide whether a month's dip is drift or sampling
noise an operator needs interval estimates, not points.  Percentile
bootstrap over (y_true, y_pred) pairs gives exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import evaluate


@dataclass(frozen=True)
class MetricInterval:
    """A point estimate with a percentile-bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%}"
        )


@dataclass(frozen=True)
class BootstrapReport:
    """Intervals for the three headline metrics."""

    precision: MetricInterval
    recall: MetricInterval
    f1: MetricInterval
    n_resamples: int


def bootstrap_metrics(
    y_true,
    y_pred,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapReport:
    """Percentile-bootstrap precision/recall/F1 intervals.

    Degenerate resamples (no predicted or no actual positives) yield
    0.0 for the affected ratio, matching the report convention, so the
    intervals honestly reflect small-sample fragility.
    """
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be 1-D of equal length")
    if y_true.size == 0:
        raise ValueError("need at least one observation")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    if not 0.5 < confidence < 1.0:
        raise ValueError("confidence must be in (0.5, 1)")

    rng = np.random.default_rng(seed)
    n = y_true.size
    precisions = np.empty(n_resamples)
    recalls = np.empty(n_resamples)
    f1s = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        rep = evaluate(y_true[idx], y_pred[idx])
        precisions[i] = rep.precision
        recalls[i] = rep.recall
        f1s[i] = rep.f1

    point = evaluate(y_true, y_pred)
    alpha = (1.0 - confidence) / 2.0
    q = (100 * alpha, 100 * (1 - alpha))

    def interval(samples: np.ndarray, value: float) -> MetricInterval:
        low, high = np.percentile(samples, q)
        return MetricInterval(
            point=value,
            low=float(low),
            high=float(high),
            confidence=confidence,
        )

    return BootstrapReport(
        precision=interval(precisions, point.precision),
        recall=interval(recalls, point.recall),
        f1=interval(f1s, point.f1),
        n_resamples=n_resamples,
    )


def months_differ(
    a: MetricInterval, b: MetricInterval
) -> bool:
    """Conservative drift test: non-overlapping bootstrap intervals."""
    return a.high < b.low or b.high < a.low
