"""Classification metrics: precision, recall, F1 (§4.2 definitions).

The paper evaluates malware detection with precision = TP/(TP+FP) and
recall = TP/(TP+FN), where the positive class is "malicious"; F1 is
their harmonic mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[int, int, int, int]:
    """Return (TP, FP, TN, FN) with positive = 1 (malicious)."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return tp, fp, tn, fn


@dataclass(frozen=True)
class ClassificationReport:
    """Precision/recall/F1 summary for one evaluation.

    Undefined ratios (zero denominators) are reported as 0.0, matching
    the convention for degenerate folds.
    """

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def support(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} (n={self.support})"
        )


def evaluate(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    """Build a report from true/predicted labels."""
    tp, fp, tn, fn = confusion_counts(y_true, y_pred)
    return ClassificationReport(tp, fp, tn, fn)


def mean_report(reports: list[ClassificationReport]) -> ClassificationReport:
    """Pool multiple folds' confusion counts into one report."""
    if not reports:
        raise ValueError("cannot average an empty list of reports")
    return ClassificationReport(
        tp=sum(r.tp for r in reports),
        fp=sum(r.fp for r in reports),
        tn=sum(r.tn for r in reports),
        fn=sum(r.fn for r in reports),
    )
