"""k-nearest neighbours (Table 2's 'kNN' row).

Over binary vectors the natural metric is Hamming distance, computed
for a whole query block at once via dot products:

    hamming(a, b) = sum(a) + sum(b) - 2 * a.b

Prediction is the malicious fraction among the k nearest training
samples (distance-tie handling follows index order, making results
deterministic).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, block_matrix, check_Xy


class KNearestNeighbors(Classifier):
    """kNN with Hamming distance over one-hot features.

    Args:
        k: neighbourhood size.
        chunk_size: query rows scored per matmul block (memory bound).
    """

    name = "knn"

    def __init__(self, k: int = 5, chunk_size: int = 512):
        if k < 1:
            raise ValueError("k must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.k = k
        self.chunk_size = chunk_size
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._row_sums: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        X, y = check_Xy(X, y)
        self._X = X
        self._y = y.astype(np.float64)
        self._row_sums = X.sum(axis=1)
        return self

    def _scores(self, Xf: np.ndarray) -> np.ndarray:
        """Malicious fraction among the k nearest rows, chunked.

        Batch-size invariant even though the dot products run through
        BLAS: the operands hold 0/1 values, so every product and sum is
        an integer computed exactly in floating point regardless of the
        accumulation order; argpartition and the k-neighbour mean are
        strictly per-row.
        """
        k = min(self.k, self._X.shape[0])
        out = np.empty(Xf.shape[0])
        for start in range(0, Xf.shape[0], self.chunk_size):
            block = Xf[start : start + self.chunk_size]
            # Hamming distances of the whole block against all training
            # rows in one matrix product.
            dots = block @ self._X.T
            dists = block.sum(axis=1, keepdims=True) + self._row_sums - 2 * dots
            nearest = np.argpartition(dists, kth=k - 1, axis=1)[:, :k]
            out[start : start + block.shape[0]] = self._y[nearest].mean(axis=1)
        return out

    def _check_features(self, X: np.ndarray) -> None:
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"expected {self._X.shape[1]} features, got {X.shape[1]}"
            )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_X")
        X, _ = check_Xy(X)
        self._check_features(X)
        return self._scores(X)

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: one dtype conversion for the whole block."""
        self._require_fitted("_X")
        X = block_matrix(block)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        X, _ = check_Xy(X)
        self._check_features(X)
        return self._scores(X)
