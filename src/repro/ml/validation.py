"""Cross-validation with the paper's anti-leakage precautions (§4.2).

The paper uses stratified 10-fold cross-validation and, per fold,
removes from the *test* set any feature vector that also appears in the
training set (identical one-hot rows would otherwise leak and inflate
accuracy — exactly the data-leakage trap they call out).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier, check_Xy
from repro.ml.metrics import ClassificationReport, evaluate, mean_report


def stratified_kfold(
    y: np.ndarray, n_splits: int = 10, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return (train_idx, test_idx) pairs with per-class balance.

    Each class's indices are shuffled and dealt round-robin into folds,
    so every fold keeps approximately the global malware rate.
    """
    y = np.asarray(y).astype(bool)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    if min((~y).sum(), y.sum()) < n_splits:
        raise ValueError(
            "each class needs at least n_splits samples for stratification"
        )
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for cls in (False, True):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        for i, sample in enumerate(idx):
            folds[i % n_splits].append(int(sample))
    out = []
    all_idx = np.arange(y.size)
    for fold in folds:
        test_idx = np.sort(np.array(fold, dtype=int))
        train_mask = np.ones(y.size, dtype=bool)
        train_mask[test_idx] = False
        out.append((all_idx[train_mask], test_idx))
    return out


def _row_keys(X: np.ndarray) -> np.ndarray:
    """A hashable key per row (used to detect duplicate feature vectors)."""
    packed = np.packbits(X.astype(bool), axis=1)
    return np.array([row.tobytes() for row in packed], dtype=object)


def drop_duplicate_test_rows(
    X: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
) -> np.ndarray:
    """Remove test rows whose feature vector also occurs in training."""
    keys = _row_keys(X)
    train_keys = set(keys[train_idx])
    keep = np.array([keys[i] not in train_keys for i in test_idx])
    return test_idx[keep]


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregate outcome of a k-fold run.

    Attributes:
        fold_reports: per-fold classification reports.
        pooled: confusion counts pooled over all folds.
        train_seconds: total wall-clock spent in ``fit``.
        predict_seconds: total wall-clock spent in ``predict``.
        dropped_duplicates: test rows removed by leakage dedup.
    """

    fold_reports: tuple[ClassificationReport, ...]
    pooled: ClassificationReport
    train_seconds: float
    predict_seconds: float
    dropped_duplicates: int

    @property
    def precision(self) -> float:
        return self.pooled.precision

    @property
    def recall(self) -> float:
        return self.pooled.recall

    @property
    def f1(self) -> float:
        return self.pooled.f1


def cross_validate(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    dedup: bool = True,
    seed: int = 0,
) -> CrossValidationResult:
    """Stratified k-fold evaluation of ``model_factory()`` instances.

    Args:
        model_factory: zero-argument callable returning a fresh
            :class:`Classifier` per fold.
        X, y: binary feature matrix and labels.
        n_splits: number of folds (paper: 10).
        dedup: drop duplicated test vectors (paper's leakage guard).
        seed: fold-assignment seed.
    """
    X, y = check_Xy(X, y)
    reports = []
    train_s = predict_s = 0.0
    dropped = 0
    for train_idx, test_idx in stratified_kfold(y, n_splits, seed):
        if dedup:
            before = test_idx.size
            test_idx = drop_duplicate_test_rows(X, train_idx, test_idx)
            dropped += before - test_idx.size
        if test_idx.size == 0:
            continue
        model: Classifier = model_factory()
        t0 = time.perf_counter()
        model.fit(X[train_idx], y[train_idx])
        t1 = time.perf_counter()
        pred = model.predict(X[test_idx])
        t2 = time.perf_counter()
        train_s += t1 - t0
        predict_s += t2 - t1
        reports.append(evaluate(y[test_idx], pred))
    if not reports:
        raise RuntimeError("every fold was emptied by deduplication")
    return CrossValidationResult(
        fold_reports=tuple(reports),
        pooled=mean_report(reports),
        train_seconds=train_s,
        predict_seconds=predict_s,
        dropped_duplicates=dropped,
    )
