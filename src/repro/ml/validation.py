"""Cross-validation with the paper's anti-leakage precautions (§4.2).

The paper uses stratified 10-fold cross-validation and, per fold,
removes from the *test* set any feature vector that also appears in the
training set (identical one-hot rows would otherwise leak and inflate
accuracy — exactly the data-leakage trap they call out).

Time-aware splits (``chronological_split``, ``semester_slices``,
``rolling_time_windows``) extend the same discipline to the temporal
axis for the drift experiments (docs/drift.md): shuffled k-fold lets a
model train on the future of its own test set, which hides exactly the
decay those experiments measure.  Every time-aware splitter enforces a
hard no-future-leakage guarantee — a returned train/test pair where any
test timestamp does not strictly follow the train horizon is a bug, and
:func:`assert_no_future_leakage` raises :class:`FutureLeakageError`
before such a pair can escape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier, check_Xy
from repro.ml.metrics import ClassificationReport, evaluate, mean_report


def stratified_kfold(
    y: np.ndarray, n_splits: int = 10, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return (train_idx, test_idx) pairs with per-class balance.

    Each class's indices are shuffled and dealt round-robin into folds,
    so every fold keeps approximately the global malware rate.
    """
    y = np.asarray(y).astype(bool)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    if min((~y).sum(), y.sum()) < n_splits:
        raise ValueError(
            "each class needs at least n_splits samples for stratification"
        )
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for cls in (False, True):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        for i, sample in enumerate(idx):
            folds[i % n_splits].append(int(sample))
    out = []
    all_idx = np.arange(y.size)
    for fold in folds:
        test_idx = np.sort(np.array(fold, dtype=int))
        train_mask = np.ones(y.size, dtype=bool)
        train_mask[test_idx] = False
        out.append((all_idx[train_mask], test_idx))
    return out


class FutureLeakageError(ValueError):
    """A time-aware split let a test sample precede its train horizon."""


def _as_days(days) -> np.ndarray:
    days = np.asarray(days)
    if days.ndim != 1:
        raise ValueError("days must be a 1-D array of timestamps")
    return days.astype(np.int64)


def assert_no_future_leakage(
    days: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
) -> None:
    """The hard guarantee: every test day strictly follows every train day.

    Raises:
        FutureLeakageError: some test sample's timestamp does not
            strictly exceed the train horizon (the latest train day),
            or the index sets overlap.
    """
    days = _as_days(days)
    train_idx = np.asarray(train_idx, dtype=int)
    test_idx = np.asarray(test_idx, dtype=int)
    if np.intersect1d(train_idx, test_idx).size:
        raise FutureLeakageError("train and test index sets overlap")
    if train_idx.size == 0 or test_idx.size == 0:
        return
    horizon = int(days[train_idx].max())
    offender = days[test_idx].min()
    if offender <= horizon:
        raise FutureLeakageError(
            f"test sample at day {int(offender)} does not follow the "
            f"train horizon (day {horizon})"
        )


def chronological_split(
    days: np.ndarray, train_horizon: int
) -> tuple[np.ndarray, np.ndarray]:
    """Train on the past, test on the future.

    Train indices are samples with ``day <= train_horizon``; test
    indices are samples with ``day > train_horizon``.  Either side may
    be empty (a caller choosing a horizon outside the observed range
    gets an empty side, not an exception); the no-future-leakage
    guarantee is asserted before returning.
    """
    days = _as_days(days)
    train_idx = np.flatnonzero(days <= int(train_horizon))
    test_idx = np.flatnonzero(days > int(train_horizon))
    assert_no_future_leakage(days, train_idx, test_idx)
    return train_idx, test_idx


def semester_slices(
    days: np.ndarray, semester_days: int = 180
) -> list[tuple[int, np.ndarray]]:
    """Partition samples into consecutive ``semester_days`` buckets.

    Returns ``(semester_index, indices)`` pairs for every non-empty
    semester, ordered by time; indices within a semester keep their
    original order.  Bucket 0 starts at the earliest observed day, so
    the slicing is invariant to a global time offset.
    """
    if semester_days <= 0:
        raise ValueError("semester_days must be positive")
    days = _as_days(days)
    if days.size == 0:
        return []
    buckets = (days - days.min()) // semester_days
    return [
        (int(s), np.flatnonzero(buckets == s))
        for s in np.unique(buckets)
    ]


def rolling_time_windows(
    days: np.ndarray,
    train_days: int,
    test_days: int,
    step: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Rolling train-on-past/test-on-future windows.

    Each window trains on ``[t0, t0 + train_days)`` and tests on
    ``[t0 + train_days, t0 + train_days + test_days)``, advancing
    ``step`` days (default: ``test_days``) between windows.  Windows
    with an empty train or test side are dropped; every returned pair
    passes :func:`assert_no_future_leakage`.
    """
    if train_days <= 0 or test_days <= 0:
        raise ValueError("train_days and test_days must be positive")
    step = test_days if step is None else step
    if step <= 0:
        raise ValueError("step must be positive")
    days = _as_days(days)
    if days.size == 0:
        return []
    start, end = int(days.min()), int(days.max())
    windows = []
    t0 = start
    while t0 + train_days <= end:
        train_idx = np.flatnonzero(
            (days >= t0) & (days < t0 + train_days)
        )
        test_idx = np.flatnonzero(
            (days >= t0 + train_days)
            & (days < t0 + train_days + test_days)
        )
        if train_idx.size and test_idx.size:
            assert_no_future_leakage(days, train_idx, test_idx)
            windows.append((train_idx, test_idx))
        t0 += step
    return windows


def _row_keys(X: np.ndarray) -> np.ndarray:
    """A hashable key per row (used to detect duplicate feature vectors)."""
    packed = np.packbits(X.astype(bool), axis=1)
    return np.array([row.tobytes() for row in packed], dtype=object)


def drop_duplicate_test_rows(
    X: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
) -> np.ndarray:
    """Remove test rows whose feature vector also occurs in training."""
    keys = _row_keys(X)
    train_keys = set(keys[train_idx])
    keep = np.array([keys[i] not in train_keys for i in test_idx])
    return test_idx[keep]


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregate outcome of a k-fold run.

    Attributes:
        fold_reports: per-fold classification reports.
        pooled: confusion counts pooled over all folds.
        train_seconds: total wall-clock spent in ``fit``.
        predict_seconds: total wall-clock spent in ``predict``.
        dropped_duplicates: test rows removed by leakage dedup.
    """

    fold_reports: tuple[ClassificationReport, ...]
    pooled: ClassificationReport
    train_seconds: float
    predict_seconds: float
    dropped_duplicates: int

    @property
    def precision(self) -> float:
        return self.pooled.precision

    @property
    def recall(self) -> float:
        return self.pooled.recall

    @property
    def f1(self) -> float:
        return self.pooled.f1


def cross_validate(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    dedup: bool = True,
    seed: int = 0,
) -> CrossValidationResult:
    """Stratified k-fold evaluation of ``model_factory()`` instances.

    Args:
        model_factory: zero-argument callable returning a fresh
            :class:`Classifier` per fold.
        X, y: binary feature matrix and labels.
        n_splits: number of folds (paper: 10).
        dedup: drop duplicated test vectors (paper's leakage guard).
        seed: fold-assignment seed.
    """
    X, y = check_Xy(X, y)
    reports = []
    train_s = predict_s = 0.0
    dropped = 0
    for train_idx, test_idx in stratified_kfold(y, n_splits, seed):
        if dedup:
            before = test_idx.size
            test_idx = drop_duplicate_test_rows(X, train_idx, test_idx)
            dropped += before - test_idx.size
        if test_idx.size == 0:
            continue
        model: Classifier = model_factory()
        t0 = time.perf_counter()
        model.fit(X[train_idx], y[train_idx])
        t1 = time.perf_counter()
        pred = model.predict(X[test_idx])
        t2 = time.perf_counter()
        train_s += t1 - t0
        predict_s += t2 - t1
        reports.append(evaluate(y[test_idx], pred))
    if not reports:
        raise RuntimeError("every fold was emptied by deduplication")
    return CrossValidationResult(
        fold_reports=tuple(reports),
        pooled=mean_report(reports),
        train_seconds=train_s,
        predict_seconds=predict_s,
        dropped_duplicates=dropped,
    )
