"""Classifier interface, input validation, and batch-stable kernels.

Two numerical facts shape the scoring hot path here:

* BLAS matrix products (numpy's ``@``) are **not** batch-invariant:
  the same row scored alone and inside a 1024-row block can differ in
  the last ulp, because GEMM/GEMV summation order depends on the
  operand shapes.
* numpy's own reduction loops (``einsum`` without ``optimize``,
  ``(X * w).sum(axis=1)``) reduce each output element in an order that
  depends only on the contracted length — they *are* batch-invariant.

Every ``predict_proba`` implementation therefore routes its linear
algebra through :func:`row_stable_matvec` / :func:`row_stable_matmul`,
which is what lets :meth:`Classifier.predict_proba_batch` promise exact
(bitwise) equality with a per-app scoring loop at any batch size and in
any row order.  Training keeps plain BLAS — fit determinism across
batch shapes is not part of the contract, and the fit path is matmul
heavy.
"""

from __future__ import annotations

import abc
import functools
import threading
import time

import numpy as np

from repro.obs import MetricsRegistry, default_registry

_timing_guard = threading.local()


def _batch_rows(arg) -> int | None:
    """Row count of a batch argument (FeatureBlock, matrix), else None."""
    try:
        return len(arg)
    except TypeError:
        return None


def _timed(fn, metric: str, batch_label: bool = False):
    """Wrap a Classifier method to record wall time into a registry.

    The duration lands in a ``<metric>{classifier=...}`` histogram on
    the instance's bound registry (:meth:`Classifier.bind_registry`),
    falling back to the process-wide default.  Re-entrant calls record
    only the outermost frame — whether a subclass delegating to
    ``super()`` or a batch entry point falling back to the per-row
    method — so batch scoring yields exactly one ``predict`` span
    rather than N nested ones.  With ``batch_label`` the span carries a
    ``batch_size`` label taken from the first argument's row count.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        active = getattr(_timing_guard, "active", None)
        if active is None:
            active = _timing_guard.active = set()
        key = (id(self), metric)
        if key in active:
            return fn(self, *args, **kwargs)
        active.add(key)
        labels = {"classifier": getattr(self, "name", type(self).__name__)}
        if batch_label and args:
            rows = _batch_rows(args[0])
            if rows is not None:
                labels["batch_size"] = str(rows)
        started = time.perf_counter()
        try:
            return fn(self, *args, **kwargs)
        finally:
            active.discard(key)
            registry = getattr(self, "_obs_registry", None)
            if registry is None:
                registry = default_registry()
            registry.observe(
                metric, time.perf_counter() - started, **labels
            )

    wrapper._obs_wrapped = True
    return wrapper


def row_stable_matvec(X: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``X @ w`` with per-row summation order independent of the batch.

    Each output element is reduced over the feature axis in an order
    fixed by the feature count alone, so row ``i`` of a 1024-row block
    is bitwise identical to scoring that row on its own — the property
    the ``predict_proba_batch`` contract rests on.  BLAS ``@`` does not
    guarantee this.
    """
    return np.einsum("nd,d->n", X, w, optimize=False)


def row_stable_matmul(X: np.ndarray, W: np.ndarray) -> np.ndarray:
    """``X @ W`` with per-row summation order independent of the batch.

    See :func:`row_stable_matvec`; the same guarantee, for matrix
    right-hand sides (neural-network layers, per-class score columns).
    """
    return np.einsum("nd,dh->nh", X, W, optimize=False)


def block_matrix(block) -> np.ndarray:
    """Normalize a batch argument to a 2-D feature matrix.

    Accepts a :class:`~repro.core.features.FeatureBlock` (duck-typed on
    its ``matrix`` attribute) or anything array-like.  Zero-row inputs
    are legal here — batch entry points handle them explicitly — which
    is why this is not :func:`check_Xy`.
    """
    matrix = getattr(block, "matrix", block)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(
            f"batch input must be 2-D, got shape {matrix.shape}"
        )
    return matrix


def binary_block(block) -> np.ndarray:
    """A uint8 view of a batch argument for the tree-model paths.

    A uint8 ``FeatureBlock`` matrix passes through untouched (the whole
    point of the columnar layout); anything else takes the same
    float32 → uint8 conversion the per-row path applies, so both paths
    see identical bits.
    """
    matrix = block_matrix(block)
    if matrix.dtype == np.uint8:
        return matrix
    if matrix.shape[0] == 0:
        return matrix.astype(np.uint8)
    matrix, _ = check_Xy(matrix)
    return matrix.astype(np.uint8)


def check_Xy(
    X: np.ndarray, y: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and normalize a feature matrix (and optional labels).

    X is coerced to a 2-D float32 matrix; y to a 1-D {0,1} int8 vector.
    """
    X = np.asarray(X, dtype=np.float32)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError(f"X must be non-empty, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains non-finite values")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(
            f"y must be 1-D with {X.shape[0]} entries, got shape {y.shape}"
        )
    y = y.astype(np.int8)
    if not np.isin(y, (0, 1)).all():
        raise ValueError("y must be binary (0/1 or bool)")
    return X, y


class Classifier(abc.ABC):
    """Binary classifier interface.

    Implementations are positive-class = malicious by convention; all
    return probabilities in [0, 1] from :meth:`predict_proba` and hard
    labels from :meth:`predict`.
    """

    #: Human-readable name used in experiment tables.
    name: str = "classifier"

    #: Registry fit/predict wall-times are recorded into (None: the
    #: process-wide default).  Set via :meth:`bind_registry`.
    _obs_registry: MetricsRegistry | None = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        for method, metric, batch_label in (
            ("fit", "ml_fit_seconds", False),
            ("predict_proba", "ml_predict_seconds", False),
            ("predict_proba_batch", "ml_predict_seconds", True),
        ):
            fn = cls.__dict__.get(method)
            if (
                fn is not None
                and callable(fn)
                and not getattr(fn, "_obs_wrapped", False)
                and not getattr(fn, "__isabstractmethod__", False)
            ):
                setattr(cls, method, _timed(fn, metric, batch_label))

    def bind_registry(self, registry: MetricsRegistry) -> "Classifier":
        """Direct this model's timing metrics to ``registry``."""
        self._obs_registry = registry
        return self

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on (X, y); returns self for chaining."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(malicious) per row."""

    def predict_proba_batch(self, block) -> np.ndarray:
        """P(malicious) per row of a columnar batch.

        Contract (the batch-vs-single test battery pins all three):

        * accepts a :class:`~repro.core.features.FeatureBlock` or a
          2-D matrix, including the zero-row case (empty float64 out,
          nothing raised, no model code touched);
        * the result is **bitwise** equal to scoring each row alone
          through :meth:`predict_proba`, at any batch size and in any
          row order;
        * exactly one ``ml_predict_seconds`` observation is recorded,
          labelled with the batch size.

        This base implementation is the loop-free fallback shim: it
        hands the whole matrix to :meth:`predict_proba`, which is
        already batch-shaped for every bundled model.  Subclasses
        override it to skip per-call validation/conversion on the hot
        path (uint8 tree traversal, single dtype conversion).
        """
        X = block_matrix(block)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return np.asarray(self.predict_proba(X), dtype=np.float64)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int8)

    def _require_fitted(self, attr: str) -> None:
        if getattr(self, attr, None) is None:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


# The fallback shim records the batch-labelled span too; the guard in
# _timed keeps the delegated predict_proba call from double-recording.
Classifier.predict_proba_batch = _timed(
    Classifier.predict_proba_batch, "ml_predict_seconds", batch_label=True
)
