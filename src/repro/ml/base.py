"""Classifier interface and input validation."""

from __future__ import annotations

import abc
import functools
import threading
import time

import numpy as np

from repro.obs import MetricsRegistry, default_registry

_timing_guard = threading.local()


def _timed(fn, metric: str):
    """Wrap a Classifier method to record wall time into a registry.

    The duration lands in a ``<metric>{classifier=...}`` histogram on
    the instance's bound registry (:meth:`Classifier.bind_registry`),
    falling back to the process-wide default.  Re-entrant calls (a
    subclass delegating to ``super()``) record only the outermost
    frame, so ensembles are not double-counted.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        active = getattr(_timing_guard, "active", None)
        if active is None:
            active = _timing_guard.active = set()
        key = (id(self), metric)
        if key in active:
            return fn(self, *args, **kwargs)
        active.add(key)
        started = time.perf_counter()
        try:
            return fn(self, *args, **kwargs)
        finally:
            active.discard(key)
            registry = getattr(self, "_obs_registry", None)
            if registry is None:
                registry = default_registry()
            registry.observe(
                metric,
                time.perf_counter() - started,
                classifier=getattr(self, "name", type(self).__name__),
            )

    wrapper._obs_wrapped = True
    return wrapper


def check_Xy(
    X: np.ndarray, y: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and normalize a feature matrix (and optional labels).

    X is coerced to a 2-D float32 matrix; y to a 1-D {0,1} int8 vector.
    """
    X = np.asarray(X, dtype=np.float32)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError(f"X must be non-empty, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains non-finite values")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(
            f"y must be 1-D with {X.shape[0]} entries, got shape {y.shape}"
        )
    y = y.astype(np.int8)
    if not np.isin(y, (0, 1)).all():
        raise ValueError("y must be binary (0/1 or bool)")
    return X, y


class Classifier(abc.ABC):
    """Binary classifier interface.

    Implementations are positive-class = malicious by convention; all
    return probabilities in [0, 1] from :meth:`predict_proba` and hard
    labels from :meth:`predict`.
    """

    #: Human-readable name used in experiment tables.
    name: str = "classifier"

    #: Registry fit/predict wall-times are recorded into (None: the
    #: process-wide default).  Set via :meth:`bind_registry`.
    _obs_registry: MetricsRegistry | None = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        for method, metric in (
            ("fit", "ml_fit_seconds"),
            ("predict_proba", "ml_predict_seconds"),
        ):
            fn = cls.__dict__.get(method)
            if (
                fn is not None
                and callable(fn)
                and not getattr(fn, "_obs_wrapped", False)
                and not getattr(fn, "__isabstractmethod__", False)
            ):
                setattr(cls, method, _timed(fn, metric))

    def bind_registry(self, registry: MetricsRegistry) -> "Classifier":
        """Direct this model's timing metrics to ``registry``."""
        self._obs_registry = registry
        return self

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on (X, y); returns self for chaining."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(malicious) per row."""

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int8)

    def _require_fitted(self, attr: str) -> None:
        if getattr(self, attr, None) is None:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"
