"""Feed-forward neural networks (Table 2's 'ANN' and 'DNN' rows).

A single hidden layer instantiates the paper's ANN; a deeper stack
instantiates its DNN.  Training is mini-batch Adam on the weighted
cross-entropy, with ReLU activations and a sigmoid output.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    block_matrix,
    check_Xy,
    row_stable_matmul,
)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class NeuralNetwork(Classifier):
    """Multi-layer perceptron for binary classification.

    Args:
        hidden_layers: widths of the hidden layers; ``(64,)`` is the
            ANN configuration, ``(256, 128, 64)`` the DNN one.
        lr: Adam step size.
        epochs: passes over the training data.
        batch_size: mini-batch rows.
        l2: weight decay.
        balanced: weight classes inversely to frequency.
        seed: initialization/shuffling seed.
    """

    name = "ann"

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (64,),
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 128,
        l2: float = 1e-5,
        balanced: bool = True,
        seed: int = 0,
    ):
        if not hidden_layers or any(h < 1 for h in hidden_layers):
            raise ValueError("hidden_layers must be positive widths")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        self.hidden_layers = tuple(hidden_layers)
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.balanced = balanced
        self.seed = seed
        self.name = "dnn" if len(self.hidden_layers) > 1 else "ann"
        self._weights: list[np.ndarray] | None = None
        self._biases: list[np.ndarray] | None = None

    def _init_params(self, d: int, rng: np.random.Generator):
        sizes = [d, *self.hidden_layers, 1]
        weights, biases = [], []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            weights.append(rng.normal(0, scale, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return weights, biases

    def _forward(self, X: np.ndarray):
        """Return activations per layer (input first, logits last)."""
        acts = [X]
        h = X
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ w + b
            h = z if i == len(self._weights) - 1 else np.maximum(z, 0.0)
            acts.append(h)
        return acts

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NeuralNetwork":
        X, y = check_Xy(X, y)
        n, d = X.shape
        yf = y.astype(np.float64)
        if self.balanced:
            pos = max(yf.mean(), 1e-9)
            sample_w = np.where(yf == 1, 0.5 / pos, 0.5 / (1 - pos))
            sample_w = sample_w / sample_w.mean()
        else:
            sample_w = np.ones(n)
        rng = np.random.default_rng(self.seed)
        self._weights, self._biases = self._init_params(d, rng)
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                acts = self._forward(X[idx])
                logits = acts[-1][:, 0]
                p = _sigmoid(logits)
                # dL/dlogit for weighted cross-entropy.
                delta = ((p - yf[idx]) * sample_w[idx] / idx.size)[:, None]
                step += 1
                for layer in range(len(self._weights) - 1, -1, -1):
                    a_prev = acts[layer]
                    grad_w = a_prev.T @ delta + self.l2 * self._weights[layer]
                    grad_b = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (
                            acts[layer] > 0
                        )
                    for store, grad, params in (
                        ((m_w, v_w), grad_w, self._weights),
                        ((m_b, v_b), grad_b, self._biases),
                    ):
                        m, v = store
                        m[layer] = beta1 * m[layer] + (1 - beta1) * grad
                        v[layer] = beta2 * v[layer] + (1 - beta2) * grad**2
                        m_hat = m[layer] / (1 - beta1**step)
                        v_hat = v[layer] / (1 - beta2**step)
                        params[layer] = params[layer] - self.lr * m_hat / (
                            np.sqrt(v_hat) + eps
                        )
        return self

    def _score_rows(self, Xf: np.ndarray) -> np.ndarray:
        """Inference-only forward pass through row-stable matmuls.

        Training keeps BLAS (``_forward``) for speed; scoring routes
        every layer through :func:`row_stable_matmul` so batch and
        per-row results are bitwise identical.
        """
        h = Xf
        last = len(self._weights) - 1
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            z = row_stable_matmul(h, w) + b
            h = z if i == last else np.maximum(z, 0.0)
        return _sigmoid(h[:, 0])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_weights")
        X, _ = check_Xy(X)
        return self._score_rows(X)

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: one dtype conversion for the whole block."""
        self._require_fitted("_weights")
        X = block_matrix(block)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        X, _ = check_Xy(X)
        return self._score_rows(X)
