"""CART decision trees over binary (one-hot) features.

Because every feature in the pipeline is a 0/1 indicator ("was this API
invoked / permission requested / intent used"), the only possible split
per feature is at 0.5 — which lets split search be fully vectorized:
all candidate features at a node are scored with two matrix reductions.

The same builder serves classification (Gini impurity, used by CART and
the random forest) and regression (variance reduction, used by GBDT).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier, binary_block, check_Xy

_MAX_DEPTH_CAP = 64


@dataclass
class _Node:
    """One tree node; ``feature < 0`` marks a leaf with ``value`` set."""

    feature: int = -1
    value: float = 0.0
    left: "_Node | None" = None   # feature == 0 branch
    right: "_Node | None" = None  # feature == 1 branch

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class _TreeBuilder:
    """Grows one tree; criterion is 'gini' or 'mse'."""

    def __init__(
        self,
        criterion: str,
        max_depth: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
    ):
        if criterion not in ("gini", "mse"):
            raise ValueError(f"unknown criterion {criterion!r}")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_depth = min(max_depth, _MAX_DEPTH_CAP)
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.importances: np.ndarray | None = None
        self.n_nodes = 0

    def build(self, X: np.ndarray, target: np.ndarray) -> _Node:
        """Grow a tree on X (uint8, binary) and target (float)."""
        n, d = X.shape
        self.importances = np.zeros(d)
        self._X = X
        self._t = target.astype(np.float64)
        self._n_total = n
        root = self._grow(np.arange(n), depth=0)
        del self._X, self._t
        return root

    # -- split scoring --------------------------------------------------

    def _candidate_features(self, d: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= d:
            return np.arange(d)
        return self.rng.choice(d, size=self.max_features, replace=False)

    def _leaf_value(self, idx: np.ndarray) -> float:
        return float(self._t[idx].mean())

    def _node_impurity(self, idx: np.ndarray) -> float:
        t = self._t[idx]
        if self.criterion == "gini":
            p = t.mean()
            return 2.0 * p * (1.0 - p)
        return float(t.var())

    def _best_split(
        self, idx: np.ndarray, feats: np.ndarray
    ) -> tuple[int, float] | None:
        """Return (feature, impurity_decrease) or None when unsplittable."""
        Xc = self._X[np.ix_(idx, feats)]
        n = idx.size
        n1 = Xc.sum(axis=0, dtype=np.int64).astype(np.float64)
        n0 = n - n1
        t = self._t[idx]
        s1 = t @ Xc
        s0 = t.sum() - s1
        valid = (n0 >= self.min_samples_leaf) & (n1 >= self.min_samples_leaf)
        if not valid.any():
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.criterion == "gini":
                p0 = np.where(n0 > 0, s0 / n0, 0.0)
                p1 = np.where(n1 > 0, s1 / n1, 0.0)
                child = (
                    n0 * 2.0 * p0 * (1.0 - p0) + n1 * 2.0 * p1 * (1.0 - p1)
                ) / n
                parent = self._node_impurity(idx)
                gain = parent - child
            else:
                # Variance reduction: maximizing s0^2/n0 + s1^2/n1 is
                # equivalent; convert to an impurity decrease for the
                # importance bookkeeping.
                sse_parent = float(((t - t.mean()) ** 2).sum())
                score = np.where(n0 > 0, s0**2 / np.maximum(n0, 1), 0.0)
                score += np.where(n1 > 0, s1**2 / np.maximum(n1, 1), 0.0)
                sse_child = (t**2).sum() - score
                gain = (sse_parent - sse_child) / n
        gain = np.where(valid, gain, -np.inf)
        best = int(np.argmax(gain))
        if not np.isfinite(gain[best]) or gain[best] <= 1e-12:
            return None
        return int(feats[best]), float(gain[best])

    def _grow(self, idx: np.ndarray, depth: int) -> _Node:
        self.n_nodes += 1
        node = _Node(value=self._leaf_value(idx))
        if (
            depth >= self.max_depth
            or idx.size < 2 * self.min_samples_leaf
            or self._node_impurity(idx) <= 1e-12
        ):
            return node
        feats = self._candidate_features(self._X.shape[1])
        split = self._best_split(idx, feats)
        if split is None:
            return node
        feature, gain = split
        mask = self._X[idx, feature] > 0
        node.feature = feature
        # Mean-decrease-in-impurity (Gini importance), weighted by the
        # share of samples reaching this node (Fig. 13's ranking metric).
        self.importances[feature] += gain * idx.size / self._n_total
        node.right = self._grow(idx[mask], depth + 1)
        node.left = self._grow(idx[~mask], depth + 1)
        return node


def predict_tree(root: _Node, X: np.ndarray) -> np.ndarray:
    """Vectorized prediction: route index groups down the tree."""
    out = np.empty(X.shape[0], dtype=np.float64)
    stack = [(root, np.arange(X.shape[0]))]
    while stack:
        node, idx = stack.pop()
        if idx.size == 0:
            continue
        if node.is_leaf:
            out[idx] = node.value
            continue
        mask = X[idx, node.feature] > 0
        stack.append((node.right, idx[mask]))
        stack.append((node.left, idx[~mask]))
    return out


class CartTree(Classifier):
    """CART decision-tree classifier (Table 2's 'CART' row).

    Args:
        max_depth: growth limit (capped at 64).
        min_samples_leaf: minimum samples per leaf.
        max_features: candidate features per split; None = all,
            "sqrt" = square root of the feature count.
        seed: rng seed for feature subsampling.
    """

    name = "cart"

    def __init__(
        self,
        max_depth: int = 32,
        min_samples_leaf: int = 2,
        max_features: int | str | None = None,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self.feature_importances_: np.ndarray | None = None

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return self.max_features
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CartTree":
        X, y = check_Xy(X, y)
        Xb = X.astype(np.uint8)
        builder = _TreeBuilder(
            criterion="gini",
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(X.shape[1]),
            rng=np.random.default_rng(self.seed),
        )
        self._root = builder.build(Xb, y.astype(np.float64))
        total = builder.importances.sum()
        self.feature_importances_ = (
            builder.importances / total if total > 0 else builder.importances
        )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_root")
        X, _ = check_Xy(X)
        return predict_tree(self._root, X.astype(np.uint8))

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: route the whole uint8 block down the tree."""
        self._require_fitted("_root")
        Xb = binary_block(block)
        if Xb.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return predict_tree(self._root, Xb)
