"""Gradient-boosted decision trees (Table 2's 'GBDT' row).

Standard gradient boosting on the logistic loss: each stage fits a
shallow regression tree (variance-reduction splits over the binary
features) to the negative gradient ``y − p`` and the ensemble is
updated with a shrinkage factor.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, binary_block, check_Xy
from repro.ml.tree import _TreeBuilder, predict_tree


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class GradientBoostedTrees(Classifier):
    """Boosted shallow trees with logistic loss.

    Args:
        n_estimators: boosting stages.
        learning_rate: shrinkage per stage.
        max_depth: per-tree depth (shallow by design).
        subsample: row-sampling fraction per stage (stochastic GB).
        min_samples_leaf: per-leaf minimum.
        seed: rng seed.
    """

    name = "gbdt"

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        subsample: float = 0.8,
        min_samples_leaf: int = 5,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._stages: list | None = None
        self._base_score: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X, y = check_Xy(X, y)
        Xb = X.astype(np.uint8)
        yf = y.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        n = Xb.shape[0]
        # Initialize at the log-odds of the prior.
        prior = float(np.clip(yf.mean(), 1e-6, 1 - 1e-6))
        self._base_score = float(np.log(prior / (1 - prior)))
        raw = np.full(n, self._base_score)
        stages = []
        for _ in range(self.n_estimators):
            residual = yf - _sigmoid(raw)
            if self.subsample < 1.0:
                idx = rng.choice(
                    n, size=max(2, int(self.subsample * n)), replace=False
                )
            else:
                idx = np.arange(n)
            builder = _TreeBuilder(
                criterion="mse",
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=None,
                rng=rng,
            )
            root = builder.build(Xb[idx], residual[idx])
            update = predict_tree(root, Xb)
            raw = raw + self.learning_rate * update
            stages.append(root)
        self._stages = stages
        return self

    def _staged_raw(self, Xb: np.ndarray) -> np.ndarray:
        """Boosted raw scores for a uint8 block, all rows per node.

        Stage order fixes the per-row accumulation order, keeping the
        result batch-size invariant.
        """
        raw = np.full(Xb.shape[0], self._base_score)
        for root in self._stages:
            raw += self.learning_rate * predict_tree(root, Xb)
        return raw

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_stages")
        X, _ = check_Xy(X)
        return self._staged_raw(X.astype(np.uint8))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: uint8 feature blocks skip the float32 detour."""
        self._require_fitted("_stages")
        Xb = binary_block(block)
        if Xb.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return _sigmoid(self._staged_raw(Xb))
