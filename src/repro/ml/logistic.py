"""L2-regularized logistic regression (Table 2's 'LR' row).

Trained full-batch with Adam; class imbalance (~7.7% malware) is
handled with inverse-frequency sample weights so the minority class is
not drowned out.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    block_matrix,
    check_Xy,
    row_stable_matvec,
)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression(Classifier):
    """Binary logistic regression with Adam and L2 penalty.

    Args:
        l2: ridge strength.
        lr: Adam step size.
        epochs: full-batch passes.
        balanced: reweight classes inversely to frequency.
        seed: rng seed for initialization.
        tol: early-stop tolerance on gradient norm.
    """

    name = "lr"

    def __init__(
        self,
        l2: float = 1e-4,
        lr: float = 0.05,
        epochs: int = 300,
        balanced: bool = True,
        seed: int = 0,
        tol: float = 1e-6,
    ):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.l2 = l2
        self.lr = lr
        self.epochs = epochs
        self.balanced = balanced
        self.seed = seed
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        n, d = X.shape
        yf = y.astype(np.float64)
        if self.balanced:
            pos = max(yf.mean(), 1e-9)
            weights = np.where(yf == 1, 0.5 / pos, 0.5 / (1 - pos))
        else:
            weights = np.ones(n)
        weights = weights / weights.sum()

        rng = np.random.default_rng(self.seed)
        w = rng.normal(0, 0.01, size=d)
        b = 0.0
        m_w = np.zeros(d)
        v_w = np.zeros(d)
        m_b = v_b = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for t in range(1, self.epochs + 1):
            p = _sigmoid(X @ w + b)
            err = (p - yf) * weights
            grad_w = X.T @ err + self.l2 * w
            grad_b = float(err.sum())
            m_w = beta1 * m_w + (1 - beta1) * grad_w
            v_w = beta2 * v_w + (1 - beta2) * grad_w**2
            m_b = beta1 * m_b + (1 - beta1) * grad_b
            v_b = beta2 * v_b + (1 - beta2) * grad_b**2
            mw_hat = m_w / (1 - beta1**t)
            vw_hat = v_w / (1 - beta2**t)
            mb_hat = m_b / (1 - beta1**t)
            vb_hat = v_b / (1 - beta2**t)
            w -= self.lr * mw_hat / (np.sqrt(vw_hat) + eps)
            b -= self.lr * mb_hat / (np.sqrt(vb_hat) + eps)
            if np.linalg.norm(grad_w) < self.tol:
                break
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        X, _ = check_Xy(X)
        # Row-stable matvec, not BLAS: scoring must be batch-invariant.
        return row_stable_matvec(X, self.coef_) + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: one dtype conversion for the whole block."""
        self._require_fitted("coef_")
        X = block_matrix(block)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        X, _ = check_Xy(X)
        return _sigmoid(row_stable_matvec(X, self.coef_) + self.intercept_)
