"""Random forest — the classifier APICHECKER ships with.

The paper picks random forest over eight alternatives because it gives
the best precision, near-best recall, short training time, and
interpretable Gini feature importances (Table 2, Fig. 13).  This
implementation bags fully grown CART trees with sqrt-feature
subsampling and averages leaf probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, binary_block, check_Xy
from repro.ml.tree import _TreeBuilder, predict_tree


class RandomForest(Classifier):
    """Bootstrap-aggregated CART ensemble.

    Args:
        n_trees: ensemble size.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-leaf minimum.
        max_features: candidates per split ("sqrt", int, or None).
        bootstrap: sample with replacement per tree.
        balanced: draw each tree's bootstrap with class weights that
            lift the minority class to roughly ``BALANCED_POSITIVE_SHARE``
            of the sample, so the ~7.7% malware class is not drowned out
            on small corpora without flooding the trees with positives.
        seed: rng seed.
    """

    name = "rf"

    #: Target positive-class share of each balanced bootstrap sample.
    BALANCED_POSITIVE_SHARE = 0.3

    def __init__(
        self,
        n_trees: int = 100,
        max_depth: int = 32,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        balanced: bool = True,
        seed: int = 0,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.balanced = balanced
        self.seed = seed
        self._roots: list | None = None
        self.feature_importances_: np.ndarray | None = None

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, d)
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        X, y = check_Xy(X, y)
        Xb = X.astype(np.uint8)
        yf = y.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        n, d = Xb.shape
        max_features = self._resolve_max_features(d)
        if self.balanced:
            pos = max(float(yf.mean()), 1e-9)
            share = self.BALANCED_POSITIVE_SHARE
            weights = np.where(
                yf == 1, share / pos, (1.0 - share) / (1.0 - pos)
            )
            weights = weights / weights.sum()
        else:
            weights = None
        roots = []
        importances = np.zeros(d)
        for _ in range(self.n_trees):
            if self.bootstrap:
                idx = rng.choice(n, size=n, replace=True, p=weights)
            else:
                idx = np.arange(n)
            builder = _TreeBuilder(
                criterion="gini",
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            roots.append(builder.build(Xb[idx], yf[idx]))
            importances += builder.importances
        self._roots = roots
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def _tree_scores(self, Xb: np.ndarray) -> np.ndarray:
        """Mean leaf probability over the ensemble, all rows at once.

        Each tree routes the whole row block node by node with boolean
        masks (:func:`predict_tree`); the per-row accumulation order is
        the fixed tree order, so results are batch-size invariant.
        """
        probs = np.zeros(Xb.shape[0])
        for root in self._roots:
            probs += predict_tree(root, Xb)
        return probs / len(self._roots)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted("_roots")
        X, _ = check_Xy(X)
        return self._tree_scores(X.astype(np.uint8))

    def predict_proba_batch(self, block) -> np.ndarray:
        """Blocked path: uint8 feature blocks skip the float32 detour."""
        self._require_fitted("_roots")
        Xb = binary_block(block)
        if Xb.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return self._tree_scores(Xb)

    def top_features(self, k: int = 20) -> np.ndarray:
        """Indices of the k most Gini-important features, descending."""
        self._require_fitted("feature_importances_")
        if k < 1:
            raise ValueError("k must be >= 1")
        order = np.argsort(self.feature_importances_)[::-1]
        return order[:k]
