"""Statistics used by the feature-selection study.

* Spearman rank correlation (SRC): the paper's feature-mining metric
  (§4.3), computed as Pearson correlation over tie-corrected ranks.
* R² (coefficient of determination) for goodness of fit.
* The tri-modal fit of analysis time vs. number of tracked APIs
  (Fig. 6): linear head, polynomial middle, logarithmic tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with tie correction, like scipy's default."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("rankdata expects a 1-D array")
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average the ranks of tied groups.
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman_rho(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation coefficient of two samples.

    Returns 0.0 when either sample is constant (no ordering to
    correlate), which is the convenient convention for never-invoked
    API columns.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("spearman_rho expects two 1-D arrays of equal size")
    if x.size < 2:
        raise ValueError("need at least two observations")
    rx, ry = rankdata(x), rankdata(y)
    sx, sy = rx.std(), ry.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


def spearman_rho_columns(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SRC of every column of a *binary* matrix against binary labels.

    For binary data, ranks are an affine function of the values, so
    Spearman's rho equals the Pearson (phi) coefficient — computed here
    vectorized over all columns at once, which is what makes mining 50K
    API columns tractable.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be (n, d) and y (n,)")
    uniq_x = np.unique(X)
    if not np.isin(uniq_x, (0.0, 1.0)).all() or not np.isin(
        np.unique(y), (0.0, 1.0)
    ).all():
        raise ValueError("spearman_rho_columns requires binary X and y")
    n = X.shape[0]
    px = X.mean(axis=0)
    py = y.mean()
    cov = (X.T @ y) / n - px * py
    denom = np.sqrt(px * (1 - px) * py * (1 - py))
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(denom > 0, cov / denom, 0.0)
    return rho


def r2_score(observed: np.ndarray, fitted: np.ndarray) -> float:
    """Coefficient of determination of a fit."""
    observed = np.asarray(observed, dtype=float)
    fitted = np.asarray(fitted, dtype=float)
    if observed.shape != fitted.shape:
        raise ValueError("observed and fitted must have equal shapes")
    ss_res = float(np.sum((observed - fitted) ** 2))
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class TrimodalFit:
    """Piecewise fit of analysis time vs. #tracked APIs (Fig. 6, Eq. 1).

    Segments (with n = number of tracked APIs):
      * head,   n < break1:            t = a1*n + b1
      * middle, break1 <= n <= break2: t = a2 * n**b2
      * tail,   n > break2:            t = a3*log(n) + b3
    """

    break1: int
    break2: int
    a1: float
    b1: float
    a2: float
    b2: float
    a3: float
    b3: float
    r2_head: float
    r2_middle: float
    r2_tail: float

    def predict(self, n: np.ndarray) -> np.ndarray:
        n = np.asarray(n, dtype=float)
        out = np.empty_like(n)
        head = n < self.break1
        tail = n > self.break2
        mid = ~head & ~tail
        out[head] = self.a1 * n[head] + self.b1
        out[mid] = self.a2 * np.power(n[mid], self.b2)
        out[tail] = self.a3 * np.log(n[tail]) + self.b3
        return out


def _linfit(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def fit_trimodal(
    n_tracked: np.ndarray,
    minutes: np.ndarray,
    break1: int,
    break2: int,
) -> TrimodalFit:
    """Fit the paper's tri-modal time model to a measured sweep.

    The head is fit linearly, the middle as a power law (linear in
    log-log space), and the tail logarithmically (linear in log-linear
    space); each segment reports its own R².
    """
    n = np.asarray(n_tracked, dtype=float)
    t = np.asarray(minutes, dtype=float)
    if n.shape != t.shape or n.ndim != 1:
        raise ValueError("n_tracked and minutes must be 1-D of equal size")
    if not (n.min() >= 1):
        raise ValueError("n_tracked values must be >= 1")
    if not 0 < break1 < break2:
        raise ValueError("need 0 < break1 < break2")
    head = n < break1
    mid = (n >= break1) & (n <= break2)
    tail = n > break2
    for mask, label in ((head, "head"), (mid, "middle"), (tail, "tail")):
        if mask.sum() < 2:
            raise ValueError(f"too few points in the {label} segment")

    a1, b1 = _linfit(n[head], t[head])
    log_a2, b2 = 0.0, 1.0
    b2, log_a2 = _linfit(np.log(n[mid]), np.log(np.maximum(t[mid], 1e-9)))
    a2 = float(np.exp(log_a2))
    a3, b3 = _linfit(np.log(n[tail]), t[tail])

    fit = TrimodalFit(
        break1=break1,
        break2=break2,
        a1=a1,
        b1=b1,
        a2=a2,
        b2=b2,
        a3=a3,
        b3=b3,
        r2_head=r2_score(t[head], a1 * n[head] + b1),
        r2_middle=r2_score(t[mid], a2 * np.power(n[mid], b2)),
        r2_tail=r2_score(t[tail], a3 * np.log(n[tail]) + b3),
    )
    return fit
