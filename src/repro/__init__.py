"""repro — reproduction of APICHECKER (EuroSys 2020).

"Experiences of Landing Machine Learning onto Market-Scale Mobile
Malware Detection", Gong et al., EuroSys 2020.

Quickstart::

    from repro import AndroidSdk, SdkSpec, CorpusGenerator, ApiChecker

    sdk = AndroidSdk.generate(SdkSpec(n_apis=2000))
    gen = CorpusGenerator(sdk, seed=1)
    train, test = gen.generate(1500), gen.generate(500)

    checker = ApiChecker(sdk).fit(train)
    print(checker.evaluate(test))          # precision/recall/F1
    print(checker.key_api_ids.size)        # the mined key-API set
    print(checker.gini_table(20))          # Fig. 13-style importances

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk, ApiMethod, SdkSpec
from repro.core.checker import ApiChecker, VetVerdict
from repro.core.engine import DynamicAnalysisEngine, EngineStats
from repro.core.evolution import EvolutionLoop
from repro.core.features import AppObservation, FeatureMode, FeatureSpace
from repro.core.pipeline import ObservationCache, VettingPipeline
from repro.core.selection import KeyApiSelection, select_key_apis
from repro.core.triage import TriageCenter
from repro.core.vetting import VettingService
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.corpus.market import (
    MarketStream,
    ReviewPipeline,
    TMarket,
    poison_labels,
)
from repro.drift import (
    DaySlice,
    DriftEvent,
    DriftMonitorBank,
    DriftTriggeredPolicy,
    DriftingMarket,
    DriftingMarketStream,
    HybridPolicy,
    MonthlyPolicy,
    NeverPolicy,
    PsiMonitor,
    RetrainDecision,
    RetrainPolicy,
    RollingF1Monitor,
    SemesterSlice,
    ShadowAgreementMonitor,
)
from repro.ml.forest import RandomForest
from repro.ml.validation import (
    FutureLeakageError,
    assert_no_future_leakage,
    chronological_split,
    rolling_time_windows,
    semester_slices,
)
from repro.obs import (
    MetricsRegistry,
    SpanSink,
    default_registry,
    span,
)
from repro.rules import (
    BehaviorReport,
    MinedRuleset,
    RuleEvaluator,
    RuleHit,
    RuleSpec,
    builtin_ruleset,
    diff_rulesets,
    lint_ruleset,
    load_generated_ruleset,
    load_ruleset,
    mine_ruleset,
)
from repro.scenarios import (
    AttackWave,
    Campaign,
    CampaignReport,
    CampaignRunner,
    DriftDayReport,
    DriftYearReport,
    DriftYearRunner,
    bundled_campaigns,
    campaign_by_name,
    replay_drift_year,
    run_campaign,
)
from repro.serve import (
    ERROR_CODES,
    ModelRegistry,
    OnlineVettingService,
    QueueFullError,
    RulesetRegistry,
    ShadowPromotionGate,
    ShardRouter,
    ShardUnavailableError,
    SubmissionQueue,
    WrongShardError,
    make_router_server,
    make_server,
    shard_of,
)

__version__ = "1.6.0"

__all__ = [
    "AndroidSdk",
    "ApiChecker",
    "ApiMethod",
    "Apk",
    "AppCorpus",
    "AppObservation",
    "AttackWave",
    "BehaviorReport",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "CorpusGenerator",
    "DaySlice",
    "DriftDayReport",
    "DriftEvent",
    "DriftMonitorBank",
    "DriftTriggeredPolicy",
    "DriftYearReport",
    "DriftYearRunner",
    "DriftingMarket",
    "DriftingMarketStream",
    "DynamicAnalysisEngine",
    "ERROR_CODES",
    "EngineStats",
    "EvolutionLoop",
    "FeatureMode",
    "FeatureSpace",
    "FutureLeakageError",
    "HybridPolicy",
    "KeyApiSelection",
    "MarketStream",
    "MetricsRegistry",
    "MinedRuleset",
    "ModelRegistry",
    "MonthlyPolicy",
    "NeverPolicy",
    "ObservationCache",
    "OnlineVettingService",
    "PsiMonitor",
    "QueueFullError",
    "RandomForest",
    "RetrainDecision",
    "RetrainPolicy",
    "ReviewPipeline",
    "RollingF1Monitor",
    "RuleEvaluator",
    "RuleHit",
    "RuleSpec",
    "RulesetRegistry",
    "SdkSpec",
    "SemesterSlice",
    "ShadowAgreementMonitor",
    "ShadowPromotionGate",
    "ShardRouter",
    "ShardUnavailableError",
    "SpanSink",
    "SubmissionQueue",
    "TMarket",
    "TriageCenter",
    "VetVerdict",
    "VettingPipeline",
    "VettingService",
    "WrongShardError",
    "assert_no_future_leakage",
    "builtin_ruleset",
    "bundled_campaigns",
    "campaign_by_name",
    "chronological_split",
    "default_registry",
    "diff_rulesets",
    "lint_ruleset",
    "load_generated_ruleset",
    "load_ruleset",
    "make_router_server",
    "make_server",
    "mine_ruleset",
    "poison_labels",
    "replay_drift_year",
    "rolling_time_windows",
    "run_campaign",
    "select_key_apis",
    "semester_slices",
    "shard_of",
    "span",
]
