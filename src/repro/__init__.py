"""repro — reproduction of APICHECKER (EuroSys 2020).

"Experiences of Landing Machine Learning onto Market-Scale Mobile
Malware Detection", Gong et al., EuroSys 2020.

Quickstart::

    from repro import AndroidSdk, SdkSpec, CorpusGenerator, ApiChecker

    sdk = AndroidSdk.generate(SdkSpec(n_apis=2000))
    gen = CorpusGenerator(sdk, seed=1)
    train, test = gen.generate(1500), gen.generate(500)

    checker = ApiChecker(sdk).fit(train)
    print(checker.evaluate(test))          # precision/recall/F1
    print(checker.key_api_ids.size)        # the mined key-API set
    print(checker.gini_table(20))          # Fig. 13-style importances

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk, ApiMethod, SdkSpec
from repro.core.checker import ApiChecker, VetVerdict
from repro.core.engine import DynamicAnalysisEngine, EngineStats
from repro.core.evolution import EvolutionLoop
from repro.core.features import AppObservation, FeatureMode, FeatureSpace
from repro.core.pipeline import ObservationCache, VettingPipeline
from repro.core.selection import KeyApiSelection, select_key_apis
from repro.core.triage import TriageCenter
from repro.core.vetting import VettingService
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.corpus.market import (
    MarketStream,
    ReviewPipeline,
    TMarket,
    poison_labels,
)
from repro.ml.forest import RandomForest
from repro.obs import (
    MetricsRegistry,
    SpanSink,
    default_registry,
    span,
)
from repro.rules import (
    BehaviorReport,
    MinedRuleset,
    RuleEvaluator,
    RuleHit,
    RuleSpec,
    builtin_ruleset,
    diff_rulesets,
    lint_ruleset,
    load_generated_ruleset,
    load_ruleset,
    mine_ruleset,
)
from repro.scenarios import (
    AttackWave,
    Campaign,
    CampaignReport,
    CampaignRunner,
    bundled_campaigns,
    campaign_by_name,
    run_campaign,
)
from repro.serve import (
    ERROR_CODES,
    ModelRegistry,
    OnlineVettingService,
    QueueFullError,
    RulesetRegistry,
    ShadowPromotionGate,
    ShardRouter,
    ShardUnavailableError,
    SubmissionQueue,
    WrongShardError,
    make_router_server,
    make_server,
    shard_of,
)

__version__ = "1.5.0"

__all__ = [
    "AndroidSdk",
    "ApiChecker",
    "ApiMethod",
    "Apk",
    "AppCorpus",
    "AppObservation",
    "AttackWave",
    "BehaviorReport",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "CorpusGenerator",
    "DynamicAnalysisEngine",
    "ERROR_CODES",
    "EngineStats",
    "EvolutionLoop",
    "FeatureMode",
    "FeatureSpace",
    "KeyApiSelection",
    "MarketStream",
    "MetricsRegistry",
    "MinedRuleset",
    "ModelRegistry",
    "ObservationCache",
    "OnlineVettingService",
    "QueueFullError",
    "RandomForest",
    "ReviewPipeline",
    "RuleEvaluator",
    "RuleHit",
    "RuleSpec",
    "RulesetRegistry",
    "SdkSpec",
    "ShadowPromotionGate",
    "ShardRouter",
    "ShardUnavailableError",
    "SpanSink",
    "SubmissionQueue",
    "TMarket",
    "TriageCenter",
    "VetVerdict",
    "VettingPipeline",
    "VettingService",
    "WrongShardError",
    "builtin_ruleset",
    "bundled_campaigns",
    "campaign_by_name",
    "default_registry",
    "diff_rulesets",
    "lint_ruleset",
    "load_generated_ruleset",
    "load_ruleset",
    "make_router_server",
    "make_server",
    "mine_ruleset",
    "poison_labels",
    "run_campaign",
    "select_key_apis",
    "shard_of",
    "span",
]
