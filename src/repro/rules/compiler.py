"""Rule compilation: names -> ids, validated against SDK + hook set.

Rules are authored with fully-qualified names; evaluation wants dense
id matrices.  :class:`RuleCompiler` bridges the two at load time:

* every API name must resolve in the target SDK (``sdk.by_name``),
  every permission/intent name must exist in the SDK's registries —
  a typo fails compilation with the full list of offenders;
* API requirements are aligned with the *tracked* hook set (the
  checker's key-API ids): an API the production engine does not hook
  can never appear in an observation, so requiring it would make the
  rule unsatisfiable.  ``on_untracked`` picks the policy: ``"drop"``
  (default) removes the API from the requirement and records it,
  ``"error"`` fails compilation, ``"keep"`` leaves it in (useful for
  offline analysis over full static observations).

The compiled form is a set of requirement matrices over the union of
everything any rule needs, ready for one-matmul batch evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.android.sdk import AndroidSdk
from repro.rules.spec import RuleSpec


class RuleCompileError(ValueError):
    """A ruleset failed validation against the target SDK/hook set."""


@dataclass(frozen=True)
class CompiledRule:
    """One rule bound to a concrete SDK.

    Attributes:
        spec: the source rule.
        api_ids: resolved *tracked* API ids the rule requires.
        api_names: names aligned with ``api_ids``.
        dropped_apis: names resolved in the SDK but absent from the
            tracked hook set (removed under ``on_untracked="drop"``).
    """

    spec: RuleSpec
    api_ids: tuple[int, ...]
    api_names: tuple[str, ...]
    dropped_apis: tuple[str, ...] = ()

    @property
    def behavior(self) -> str:
        return self.spec.behavior


class CompiledRuleset:
    """Requirement matrices for a batch-evaluable set of rules.

    The union axes cover only what some rule requires — evaluation cost
    scales with the ruleset, not the SDK.
    """

    def __init__(
        self,
        rules: Sequence[CompiledRule],
        dropped_rules: Sequence[tuple[str, str]] = (),
    ):
        self.rules: tuple[CompiledRule, ...] = tuple(rules)
        #: Rules removed entirely at compile time: (behavior, reason).
        self.dropped_rules: tuple[tuple[str, str], ...] = tuple(dropped_rules)
        self.api_union: tuple[int, ...] = tuple(
            sorted({i for r in self.rules for i in r.api_ids})
        )
        self.perm_union: tuple[str, ...] = tuple(
            sorted({p for r in self.rules for p in r.spec.permissions})
        )
        self.intent_union: tuple[str, ...] = tuple(
            sorted({i for r in self.rules for i in r.spec.intents})
        )
        self._api_index = {v: i for i, v in enumerate(self.api_union)}
        self._perm_index = {v: i for i, v in enumerate(self.perm_union)}
        self._intent_index = {v: i for i, v in enumerate(self.intent_union)}
        n = len(self.rules)
        self.R_api = np.zeros((n, len(self.api_union)), dtype=bool)
        self.R_perm = np.zeros((n, len(self.perm_union)), dtype=bool)
        self.R_intent = np.zeros((n, len(self.intent_union)), dtype=bool)
        for row, rule in enumerate(self.rules):
            for api_id in rule.api_ids:
                self.R_api[row, self._api_index[api_id]] = True
            for perm in rule.spec.permissions:
                self.R_perm[row, self._perm_index[perm]] = True
            for intent in rule.spec.intents:
                self.R_intent[row, self._intent_index[intent]] = True
        self.n_api_required = self.R_api.sum(axis=1)
        self.n_perm_required = self.R_perm.sum(axis=1)
        self.n_intent_required = self.R_intent.sum(axis=1)
        self.weights = np.array(
            [r.spec.weight for r in self.rules], dtype=float
        )

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def behaviors(self) -> tuple[str, ...]:
        return tuple(r.behavior for r in self.rules)


class RuleCompiler:
    """Binds :class:`RuleSpec` sets to one SDK + tracked hook set."""

    def __init__(
        self,
        sdk: AndroidSdk,
        tracked_api_ids: Iterable[int] | np.ndarray | None = None,
        on_untracked: str = "drop",
    ):
        """Args:
            sdk: the SDK rules resolve against.
            tracked_api_ids: ids the production engine hooks (typically
                ``checker.key_api_ids``); ``None`` treats every SDK API
                as observable.
            on_untracked: ``"drop"`` | ``"error"`` | ``"keep"``.
        """
        if on_untracked not in ("drop", "error", "keep"):
            raise ValueError(
                f"on_untracked must be 'drop', 'error' or 'keep', "
                f"got {on_untracked!r}"
            )
        self.sdk = sdk
        self.tracked: set[int] | None = (
            None
            if tracked_api_ids is None
            else {int(i) for i in np.asarray(list(tracked_api_ids), dtype=int)}
        )
        self.on_untracked = on_untracked

    def compile(self, specs: Sequence[RuleSpec]) -> CompiledRuleset:
        """Resolve and validate a whole ruleset (all errors at once)."""
        errors: list[str] = []
        seen: set[str] = set()
        for spec in specs:
            if spec.behavior in seen:
                errors.append(f"duplicate rule behavior {spec.behavior!r}")
            seen.add(spec.behavior)
        compiled: list[CompiledRule] = []
        dropped_rules: list[tuple[str, str]] = []
        for spec in specs:
            api_ids: list[int] = []
            api_names: list[str] = []
            untracked: list[str] = []
            for name in spec.apis:
                try:
                    api_id = int(self.sdk.by_name(name).api_id)
                except KeyError:
                    errors.append(
                        f"rule {spec.behavior!r}: unknown API {name!r}"
                    )
                    continue
                if self.tracked is not None and api_id not in self.tracked:
                    if self.on_untracked == "error":
                        errors.append(
                            f"rule {spec.behavior!r}: API {name!r} is not "
                            f"in the tracked hook set"
                        )
                        continue
                    if self.on_untracked == "drop":
                        untracked.append(name)
                        continue
                api_ids.append(api_id)
                api_names.append(name)
            for perm in spec.permissions:
                if perm not in self.sdk.permissions:
                    errors.append(
                        f"rule {spec.behavior!r}: unknown permission "
                        f"{perm!r}"
                    )
            for intent in spec.intents:
                if intent not in self.sdk.intents:
                    errors.append(
                        f"rule {spec.behavior!r}: unknown intent {intent!r}"
                    )
            if not api_ids and not errors:
                # Resolvable rule whose every API fell out of the hook
                # set: unsatisfiable past stage 1, drop it whole.
                dropped_rules.append(
                    (
                        spec.behavior,
                        "no required API is tracked by the hook set",
                    )
                )
                continue
            compiled.append(
                CompiledRule(
                    spec=spec,
                    api_ids=tuple(api_ids),
                    api_names=tuple(api_names),
                    dropped_apis=tuple(untracked),
                )
            )
        if errors:
            raise RuleCompileError(
                f"{len(errors)} rule compilation error(s):\n  "
                + "\n  ".join(errors)
            )
        return CompiledRuleset(compiled, dropped_rules)
