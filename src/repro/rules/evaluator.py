"""Vectorized rule evaluation over observation batches.

One matmul per evidence axis: observations are encoded as boolean
membership matrices over the ruleset's union axes (required APIs,
permissions, intents), multiplied against the requirement matrices to
get per-(app, rule) matched counts, then pushed through the five-stage
confidence ladder (see :mod:`repro.rules.spec`).  Each app's result
depends only on its own observation row, which is what makes
evaluation order- and batch-size-invariant by construction — the
property tests pin it anyway.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.android.sdk import AndroidSdk
from repro.core.features import AppObservation
from repro.obs import MetricsRegistry, SpanSink, span
from repro.rules.builtin import builtin_ruleset
from repro.rules.compiler import CompiledRuleset, RuleCompiler
from repro.rules.report import BehaviorReport, RuleHit, make_hit
from repro.rules.spec import RuleSpec

__all__ = ["RuleEvaluator"]


class RuleEvaluator:
    """Scores observation batches against one compiled ruleset.

    Args:
        ruleset: a :class:`CompiledRuleset` (see the ``builtin`` /
            ``from_specs`` constructors for the common paths).
        registry: metrics registry for ``rules_*`` counters (a private
            one is created when omitted).
        sink: optional span sink for evaluation traces.
    """

    def __init__(
        self,
        ruleset: CompiledRuleset,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
    ):
        self.ruleset = ruleset
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[RuleSpec],
        sdk: AndroidSdk,
        tracked_api_ids: Iterable[int] | np.ndarray | None = None,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
        on_untracked: str = "drop",
    ) -> "RuleEvaluator":
        """Compile ``specs`` against ``sdk`` and wrap the result."""
        compiler = RuleCompiler(
            sdk, tracked_api_ids=tracked_api_ids, on_untracked=on_untracked
        )
        return cls(compiler.compile(specs), registry=registry, sink=sink)

    @classmethod
    def builtin(
        cls,
        sdk: AndroidSdk,
        tracked_api_ids: Iterable[int] | np.ndarray | None = None,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
    ) -> "RuleEvaluator":
        """The bundled starter ruleset compiled against ``sdk``."""
        return cls.from_specs(
            builtin_ruleset(),
            sdk,
            tracked_api_ids=tracked_api_ids,
            registry=registry,
            sink=sink,
        )

    @property
    def behaviors(self) -> tuple[str, ...]:
        return self.ruleset.behaviors

    # ------------------------------------------------------------------

    def evaluate(
        self, observations: Sequence[AppObservation]
    ) -> list[BehaviorReport]:
        """Score a batch; one report per observation, input order."""
        if not observations:
            return []
        with span(
            "rules_evaluate",
            registry=self.registry,
            sink=self.sink,
            apps=len(observations),
            rules=len(self.ruleset),
        ):
            reports = self._evaluate(observations)
        self.registry.inc("rules_batches_total")
        self.registry.inc("rules_evaluations_total", len(observations))
        self.registry.inc(
            "rules_hits_total", sum(len(r.hits) for r in reports)
        )
        for report in reports:
            top = report.top_behavior
            if top is not None:
                self.registry.inc("rules_top_behavior_total", behavior=top)
        return reports

    def evaluate_one(self, observation: AppObservation) -> BehaviorReport:
        return self.evaluate([observation])[0]

    def _evaluate(
        self, observations: Sequence[AppObservation]
    ) -> list[BehaviorReport]:
        rs = self.ruleset
        n_apps = len(observations)
        n_rules = len(rs)
        if n_rules == 0:
            return [
                BehaviorReport(obs.apk_md5, hits=(), n_rules=0)
                for obs in observations
            ]
        # Membership matrices over the union axes, built columnar: flat
        # indices are gathered per observation and written with one
        # scatter per axis (same construction as
        # ``FeatureBlock.from_observations``) instead of per-cell
        # assignments.
        A = np.zeros((n_apps, len(rs.api_union)), dtype=bool)
        P = np.zeros((n_apps, len(rs.perm_union)), dtype=bool)
        T = np.zeros((n_apps, len(rs.intent_union)), dtype=bool)
        api_index = rs._api_index
        perm_index = rs._perm_index
        intent_index = rs._intent_index
        api_sets: list[set[int]] = []
        flat_a: list[int] = []
        flat_p: list[int] = []
        flat_t: list[int] = []
        for row, obs in enumerate(observations):
            invoked = {int(i) for i in obs.invoked_api_ids}
            api_sets.append(invoked)
            base_a = row * A.shape[1]
            for api_id in invoked:
                col = api_index.get(api_id)
                if col is not None:
                    flat_a.append(base_a + col)
            base_p = row * P.shape[1]
            for perm in obs.permissions:
                col = perm_index.get(perm)
                if col is not None:
                    flat_p.append(base_p + col)
            base_t = row * T.shape[1]
            for intent in obs.intents:
                col = intent_index.get(intent)
                if col is not None:
                    flat_t.append(base_t + col)
        for matrix, flat in ((A, flat_a), (P, flat_p), (T, flat_t)):
            if flat and matrix.size:
                matrix.ravel()[np.asarray(flat, dtype=np.intp)] = True
        # (n_apps, n_rules) matched counts, then the confidence ladder.
        api_matched = A.astype(np.int32) @ rs.R_api.T.astype(np.int32)
        perm_matched = P.astype(np.int32) @ rs.R_perm.T.astype(np.int32)
        intent_matched = T.astype(np.int32) @ rs.R_intent.T.astype(np.int32)
        s1 = (perm_matched > 0) | (rs.n_perm_required == 0)
        s2 = s1 & (api_matched > 0)
        s3 = s2 & (api_matched == rs.n_api_required)
        s4 = s3 & (perm_matched == rs.n_perm_required)
        # Stage 5 is never vacuous: full confidence requires real intent
        # evidence, so intent-less rules top out at stage 4.
        s5 = (
            s4
            & (rs.n_intent_required > 0)
            & (intent_matched == rs.n_intent_required)
        )
        stages = (
            s1.astype(np.int8)
            + s2.astype(np.int8)
            + s3.astype(np.int8)
            + s4.astype(np.int8)
            + s5.astype(np.int8)
        )
        # A vacuously-true stage 1 without one concrete matched item is
        # not evidence: such rules stay silent.
        has_evidence = (api_matched + perm_matched + intent_matched) > 0
        stages[~has_evidence] = 0
        reports: list[BehaviorReport] = []
        for row, obs in enumerate(observations):
            hits: list[RuleHit] = []
            call_counts = dict(obs.invoked_api_counts)
            for col in np.flatnonzero(stages[row] > 0):
                rule = rs.rules[int(col)]
                invoked = api_sets[row]
                perms = set(obs.permissions)
                intents = set(obs.intents)
                hits.append(
                    make_hit(
                        behavior=rule.behavior,
                        stage=int(stages[row, col]),
                        weight=rule.spec.weight,
                        matched_apis=tuple(
                            name
                            for api_id, name in zip(
                                rule.api_ids, rule.api_names
                            )
                            if api_id in invoked
                        ),
                        matched_permissions=tuple(
                            p for p in rule.spec.permissions if p in perms
                        ),
                        matched_intents=tuple(
                            i for i in rule.spec.intents if i in intents
                        ),
                        missing_apis=tuple(
                            name
                            for api_id, name in zip(
                                rule.api_ids, rule.api_names
                            )
                            if api_id not in invoked
                        ),
                        n_required=(
                            len(rule.api_ids)
                            + len(rule.spec.permissions)
                            + len(rule.spec.intents)
                        ),
                        matched_api_calls=sum(
                            max(1, call_counts.get(api_id, 1))
                            for api_id in rule.api_ids
                            if api_id in invoked
                        ),
                    )
                )
            # Ties on score resolve toward the rule whose requirements
            # the app covered more completely, then by behavior name for
            # determinism.  Call counts are surfaced as evidence but do
            # not rank: they scale with the API's nature (UI loops log
            # orders of magnitude more calls than network or crypto), so
            # ranking on them would bias every tie toward UI behaviors.
            hits.sort(
                key=lambda h: (-h.score, -h.matched_fraction, h.behavior)
            )
            reports.append(
                BehaviorReport(
                    apk_md5=obs.apk_md5,
                    hits=tuple(hits),
                    n_rules=n_rules,
                )
            )
        return reports
