"""Structural diff between two rulesets.

``repro rules diff a.json b.json`` prints which behaviors were added,
removed, or changed between two ruleset files — the review step before
pushing a freshly mined artifact over the currently deployed set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.rules.spec import RuleSpec

__all__ = ["RuleChange", "RulesetDiff", "diff_rulesets"]

#: Spec fields compared for change detection, in display order.
_FIELDS = ("apis", "permissions", "intents", "families", "weight",
           "description")


@dataclass(frozen=True)
class RuleChange:
    """One behavior present in both rulesets with differing fields.

    ``fields`` maps field name to an ``(old, new)`` pair.
    """

    behavior: str
    fields: tuple[tuple[str, tuple[object, object]], ...]

    def format(self) -> str:
        lines = [f"~ {self.behavior}"]
        for name, (old, new) in self.fields:
            if isinstance(old, tuple) and isinstance(new, tuple):
                added = sorted(set(new) - set(old))
                removed = sorted(set(old) - set(new))
                parts = [f"+{v}" for v in added] + [f"-{v}" for v in removed]
                if not parts:  # same members, different order
                    parts = [f"{old!r} -> {new!r}"]
                lines.append(f"    {name}: " + " ".join(parts))
            else:
                lines.append(f"    {name}: {old!r} -> {new!r}")
        return "\n".join(lines)


@dataclass(frozen=True)
class RulesetDiff:
    """Added/removed/changed behaviors between an old and a new ruleset."""

    added: tuple[RuleSpec, ...]
    removed: tuple[RuleSpec, ...]
    changed: tuple[RuleChange, ...]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def format(self) -> str:
        """Human-readable summary, one block per rule."""
        if self.is_empty:
            return "rulesets are identical"
        lines = [
            f"{len(self.added)} added, {len(self.removed)} removed, "
            f"{len(self.changed)} changed"
        ]
        for spec in self.added:
            lines.append(f"+ {spec.behavior}  ({_evidence_summary(spec)})")
        for spec in self.removed:
            lines.append(f"- {spec.behavior}  ({_evidence_summary(spec)})")
        for change in self.changed:
            lines.append(change.format())
        return "\n".join(lines)


def _evidence_summary(spec: RuleSpec) -> str:
    return (
        f"{len(spec.apis)} apis, {len(spec.permissions)} permissions, "
        f"{len(spec.intents)} intents"
    )


def diff_rulesets(
    old: Iterable[RuleSpec] | Sequence[RuleSpec],
    new: Iterable[RuleSpec] | Sequence[RuleSpec],
) -> RulesetDiff:
    """Compare two rulesets by behavior name.

    A behavior present in both with any differing field (evidence
    lists compared as sets, weight/description exactly) is reported as
    changed; otherwise it is added or removed.  Output order follows
    the new ruleset for additions/changes and the old one for
    removals, so diffs are deterministic.
    """
    old_by = {s.behavior: s for s in old}
    new_by = {s.behavior: s for s in new}
    added = tuple(s for b, s in new_by.items() if b not in old_by)
    removed = tuple(s for b, s in old_by.items() if b not in new_by)
    changed = []
    for behavior, new_spec in new_by.items():
        old_spec = old_by.get(behavior)
        if old_spec is None or old_spec == new_spec:
            continue
        fields = []
        for name in _FIELDS:
            old_val = getattr(old_spec, name)
            new_val = getattr(new_spec, name)
            if isinstance(old_val, tuple):
                differs = set(old_val) != set(new_val)
            else:
                differs = old_val != new_val
            if differs:
                fields.append((name, (old_val, new_val)))
        if fields:
            changed.append(RuleChange(behavior, tuple(fields)))
    return RulesetDiff(added=added, removed=removed, changed=tuple(changed))
