"""Evidence-carrying behavior reports: what fired, and why.

A :class:`BehaviorReport` is the analyst-facing answer to "why was this
APK flagged": one :class:`RuleHit` per rule with any concrete evidence,
each naming the exact APIs/permissions/intents that matched and the
stage/confidence reached.  Reports are JSON-round-trippable so the
serving layer can store and replay them (``GET /explain/<md5>``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rules.spec import N_STAGES, STAGE_CONFIDENCE, STAGE_NAMES


@dataclass(frozen=True)
class RuleHit:
    """One rule's evidence against one app."""

    behavior: str
    stage: int
    confidence: float
    score: float
    weight: float
    matched_apis: tuple[str, ...] = ()
    matched_permissions: tuple[str, ...] = ()
    matched_intents: tuple[str, ...] = ()
    missing_apis: tuple[str, ...] = ()
    #: Total requirement items (APIs + permissions + intents) the rule
    #: declares; lets consumers compute coverage without the spec.
    n_required: int = 0
    #: Total logged invocations of the matched APIs (falls back to the
    #: number of matched APIs when the hook log carries no counts);
    #: breaks ranking ties by behavioral intensity.
    matched_api_calls: int = 0

    def __post_init__(self):
        if not 0 <= self.stage <= N_STAGES:
            raise ValueError(f"stage must be in [0, {N_STAGES}]")

    @property
    def stage_name(self) -> str:
        return STAGE_NAMES[self.stage]

    @property
    def n_matched(self) -> int:
        return (
            len(self.matched_apis)
            + len(self.matched_permissions)
            + len(self.matched_intents)
        )

    @property
    def matched_fraction(self) -> float:
        """Share of the rule's requirement items this app covered."""
        if not self.n_required:
            return 0.0
        return self.n_matched / self.n_required

    def to_dict(self) -> dict:
        return {
            "behavior": self.behavior,
            "stage": self.stage,
            "stage_name": self.stage_name,
            "confidence": self.confidence,
            "score": self.score,
            "weight": self.weight,
            "matched_apis": list(self.matched_apis),
            "matched_permissions": list(self.matched_permissions),
            "matched_intents": list(self.matched_intents),
            "missing_apis": list(self.missing_apis),
            "n_required": self.n_required,
            "matched_api_calls": self.matched_api_calls,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RuleHit":
        return cls(
            behavior=raw["behavior"],
            stage=int(raw["stage"]),
            confidence=float(raw["confidence"]),
            score=float(raw["score"]),
            weight=float(raw.get("weight", 1.0)),
            matched_apis=tuple(raw.get("matched_apis", ())),
            matched_permissions=tuple(raw.get("matched_permissions", ())),
            matched_intents=tuple(raw.get("matched_intents", ())),
            missing_apis=tuple(raw.get("missing_apis", ())),
            n_required=int(raw.get("n_required", 0)),
            matched_api_calls=int(raw.get("matched_api_calls", 0)),
        )


@dataclass(frozen=True)
class BehaviorReport:
    """All rule evidence for one app, strongest first.

    Attributes:
        apk_md5: the app.
        hits: rules with any evidence, sorted by descending score then
            behavior name (deterministic ranking).
        n_rules: how many rules were evaluated (hits + silent).
    """

    apk_md5: str
    hits: tuple[RuleHit, ...]
    n_rules: int

    @property
    def top_behavior(self) -> str | None:
        """The strongest-evidence behavior, or None when nothing fired."""
        return self.hits[0].behavior if self.hits else None

    @property
    def max_stage(self) -> int:
        return max((h.stage for h in self.hits), default=0)

    @property
    def total_score(self) -> float:
        return float(sum(h.score for h in self.hits))

    def hit_for(self, behavior: str) -> RuleHit | None:
        for hit in self.hits:
            if hit.behavior == behavior:
                return hit
        return None

    def to_dict(self) -> dict:
        return {
            "md5": self.apk_md5,
            "n_rules": self.n_rules,
            "top_behavior": self.top_behavior,
            "max_stage": self.max_stage,
            "total_score": self.total_score,
            "hits": [hit.to_dict() for hit in self.hits],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "BehaviorReport":
        return cls(
            apk_md5=raw["md5"],
            hits=tuple(RuleHit.from_dict(h) for h in raw.get("hits", ())),
            n_rules=int(raw.get("n_rules", 0)),
        )

    def summary(self) -> str:
        """One analyst-facing line, e.g. for ``repro explain``."""
        if not self.hits:
            return f"{self.apk_md5[:12]}: no behavior evidence"
        top = self.hits[0]
        return (
            f"{self.apk_md5[:12]}: {top.behavior} "
            f"(stage {top.stage}/{N_STAGES}, "
            f"confidence {top.confidence:.0%}, "
            f"{len(self.hits)} rule(s) fired)"
        )


def make_hit(
    behavior: str,
    stage: int,
    weight: float,
    matched_apis: tuple[str, ...],
    matched_permissions: tuple[str, ...],
    matched_intents: tuple[str, ...],
    missing_apis: tuple[str, ...],
    n_required: int,
    matched_api_calls: int = 0,
) -> RuleHit:
    """Build a hit from a ladder stage (confidence/score derived)."""
    confidence = STAGE_CONFIDENCE[stage]
    return RuleHit(
        behavior=behavior,
        stage=stage,
        confidence=confidence,
        score=weight * confidence,
        weight=weight,
        matched_apis=matched_apis,
        matched_permissions=matched_permissions,
        matched_intents=matched_intents,
        missing_apis=missing_apis,
        n_required=n_required,
        matched_api_calls=matched_api_calls,
    )
