"""Declarative rule format: one behavior, its evidence requirements.

A rule names a malicious behavior and lists the manifest permissions,
key-API invocations and intents that together constitute it.  Evidence
is scored on a five-stage confidence ladder (after Quark-engine's
five-stage criteria, adapted to APICHECKER's A+P+I observation space):

1. any required permission is requested;
2. ...and at least one required API was invoked;
3. ...and *all* required APIs were invoked;
4. ...and *all* required permissions are requested;
5. ...and *all* required intents were observed.

Stage 1 is vacuously satisfied for a rule without permissions, but
stage 5 never is: full confidence requires real intent evidence, so an
intent-less rule tops out at stage 4.  A rule that matched *nothing*
concrete never climbs the ladder at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: Number of confidence stages on the ladder.
N_STAGES = 5

#: Confidence assigned to each stage (index 0 = no evidence).
STAGE_CONFIDENCE = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Human-readable stage labels (index 0 = no evidence).
STAGE_NAMES = (
    "no_evidence",
    "permission_requested",
    "api_invoked",
    "all_apis_invoked",
    "apis_and_permissions",
    "full_behavior",
)

#: Keys a rule dict may carry; anything else is a spec error.
_ALLOWED_KEYS = frozenset(
    {
        "behavior",
        "description",
        "families",
        "permissions",
        "apis",
        "intents",
        "weight",
    }
)


def _str_tuple(value, key: str, behavior: str) -> tuple[str, ...]:
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ValueError(
            f"rule {behavior!r}: {key} must be a list of strings"
        )
    out = []
    for item in value:
        if not isinstance(item, str) or not item:
            raise ValueError(
                f"rule {behavior!r}: {key} entries must be non-empty "
                f"strings, got {item!r}"
            )
        out.append(item)
    if len(set(out)) != len(out):
        raise ValueError(f"rule {behavior!r}: duplicate entries in {key}")
    return tuple(out)


@dataclass(frozen=True)
class RuleSpec:
    """One declarative behavior rule.

    Attributes:
        behavior: unique behavior name (e.g. ``sms_fraud``).
        description: one-line analyst-facing summary.
        apis: fully-qualified API names whose *invocation* evidences the
            behavior; at least one is required.
        permissions: manifest permission names that gate the behavior.
        intents: intent actions (received or sent) the full behavior
            observes.
        families: corpus archetype names this rule profiles — used by
            the family-separation tests and ``repro explain`` output,
            not by evaluation.
        weight: score multiplier (``score = weight * confidence``).
    """

    behavior: str
    apis: tuple[str, ...]
    description: str = ""
    permissions: tuple[str, ...] = ()
    intents: tuple[str, ...] = ()
    families: tuple[str, ...] = ()
    weight: float = 1.0

    def __post_init__(self):
        if not self.behavior or not isinstance(self.behavior, str):
            raise ValueError("rule behavior name must be a non-empty string")
        if not self.apis:
            raise ValueError(
                f"rule {self.behavior!r}: needs at least one required API"
            )
        if not (self.weight > 0.0):
            raise ValueError(
                f"rule {self.behavior!r}: weight must be positive, "
                f"got {self.weight}"
            )

    @classmethod
    def from_dict(cls, raw: dict) -> "RuleSpec":
        """Parse one rule dict, rejecting unknown keys loudly."""
        if not isinstance(raw, dict):
            raise ValueError(f"a rule must be a JSON object, got {raw!r}")
        behavior = raw.get("behavior")
        if not isinstance(behavior, str) or not behavior:
            raise ValueError(
                f"rule is missing a 'behavior' name: {sorted(raw)!r}"
            )
        unknown = set(raw) - _ALLOWED_KEYS
        if unknown:
            raise ValueError(
                f"rule {behavior!r}: unknown keys {sorted(unknown)!r} "
                f"(allowed: {sorted(_ALLOWED_KEYS)!r})"
            )
        weight = raw.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or isinstance(weight, bool):
            raise ValueError(f"rule {behavior!r}: weight must be a number")
        return cls(
            behavior=behavior,
            description=str(raw.get("description", "")),
            apis=_str_tuple(raw.get("apis", ()), "apis", behavior),
            permissions=_str_tuple(
                raw.get("permissions", ()), "permissions", behavior
            ),
            intents=_str_tuple(raw.get("intents", ()), "intents", behavior),
            families=_str_tuple(
                raw.get("families", ()), "families", behavior
            ),
            weight=float(weight),
        )

    def to_dict(self) -> dict:
        return {
            "behavior": self.behavior,
            "description": self.description,
            "apis": list(self.apis),
            "permissions": list(self.permissions),
            "intents": list(self.intents),
            "families": list(self.families),
            "weight": self.weight,
        }


def load_ruleset(source: str | Path | list) -> tuple[RuleSpec, ...]:
    """Load a ruleset from a JSON file path, JSON text, or dict list.

    The JSON form is either a bare list of rule objects or
    ``{"version": 1, "rules": [...]}``.
    """
    if isinstance(source, Path):
        raw = json.loads(source.read_text(encoding="utf-8"))
    elif isinstance(source, str):
        text = source
        if not text.lstrip().startswith(("[", "{")):
            text = Path(source).read_text(encoding="utf-8")
        raw = json.loads(text)
    else:
        raw = source
    if isinstance(raw, dict):
        version = raw.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported ruleset version: {version!r}")
        raw = raw.get("rules")
    if not isinstance(raw, list):
        raise ValueError("a ruleset must be a JSON list of rule objects")
    specs = tuple(RuleSpec.from_dict(entry) for entry in raw)
    seen: dict[str, int] = {}
    for spec in specs:
        seen[spec.behavior] = seen.get(spec.behavior, 0) + 1
    dupes = sorted(name for name, n in seen.items() if n > 1)
    if dupes:
        raise ValueError(f"duplicate rule behaviors: {dupes!r}")
    return specs
