"""Bundled starter ruleset covering the corpus malware families.

Every API/permission/intent name below is canonical — guaranteed
present in every generated SDK (`repro.android.sdk` seeds them
unconditionally) — so the bundle compiles against any checker.  The
``families`` lists tie each rule to the corpus archetypes it profiles.
Two deliberate asymmetries: ``overlay_hijack`` and ``ad_flooding``
each profile *both* overlay archetypes, because the corpus generates
them with near-identical A+P+I footprints (both draw system-alert
views on USER_PRESENT; they differ mainly in monetization) — claiming
a clean one-to-one mapping there would be dishonest.  And
``lowkey_spy`` is uncovered by this stock bundle and closed by mined
rules: it barely touches the key APIs (the paper's §5.2 false-negative
analysis), so no hand-authored A+P+I rule here can name its behavior.
The blind spot is preserved deliberately as the stock baseline for the
hardened-vs-stock comparison — ``repro.rules.mining.mine_ruleset``
learns the missing family coverage from a labeled corpus (see
``docs/rule_mining.md``).

Kept as JSON text (not Python literals) so ``repro rules lint`` and the
docs exercise the exact wire format users author.
"""

from __future__ import annotations

from repro.rules.spec import RuleSpec, load_ruleset

BUILTIN_RULESET_JSON = """\
{
  "version": 1,
  "rules": [
    {
      "behavior": "sms_fraud",
      "description": "sends premium SMS and reads the victim's number",
      "apis": [
        "android.telephony.SmsManager.sendTextMessage",
        "android.telephony.TelephonyManager.getLine1Number"
      ],
      "permissions": [
        "android.permission.SEND_SMS",
        "android.permission.READ_SMS"
      ],
      "intents": ["android.provider.Telephony.SMS_RECEIVED"],
      "families": ["sms_fraud"],
      "weight": 1.0
    },
    {
      "behavior": "spyware_exfiltration",
      "description": "harvests identifiers and contacts for upload",
      "apis": [
        "android.telephony.TelephonyManager.getLine1Number",
        "android.net.wifi.WifiInfo.getMacAddress"
      ],
      "permissions": [
        "android.permission.READ_CONTACTS",
        "android.permission.READ_PHONE_STATE"
      ],
      "intents": ["android.net.conn.CONNECTIVITY_CHANGE"],
      "families": ["privacy_stealer"],
      "weight": 1.0
    },
    {
      "behavior": "locker_ransom",
      "description": "encrypts user data and persists across reboots",
      "apis": [
        "javax.crypto.Cipher.doFinal",
        "android.database.sqlite.SQLiteDatabase.insertWithOnConflict"
      ],
      "permissions": [
        "android.permission.RECEIVE_BOOT_COMPLETED",
        "android.permission.WRITE_EXTERNAL_STORAGE"
      ],
      "intents": ["android.app.action.DEVICE_ADMIN_ENABLED"],
      "families": ["ransomware"],
      "weight": 1.0
    },
    {
      "behavior": "overlay_hijack",
      "description": "draws over the foreground task to steal input",
      "apis": [
        "android.view.WindowManager.addView",
        "android.app.ActivityManager.getRunningTasks"
      ],
      "permissions": [
        "android.permission.SYSTEM_ALERT_WINDOW",
        "android.permission.ACCESS_NETWORK_STATE"
      ],
      "intents": ["android.intent.action.USER_PRESENT"],
      "families": ["overlay_attack", "aggressive_adware"],
      "weight": 1.0
    },
    {
      "behavior": "ad_flooding",
      "description": "floods the UI with remotely fetched overlay ads",
      "apis": [
        "android.view.WindowManager.addView",
        "java.net.HttpURLConnection.connect"
      ],
      "permissions": [
        "android.permission.SYSTEM_ALERT_WINDOW",
        "android.permission.ACCESS_NETWORK_STATE"
      ],
      "intents": ["android.intent.action.USER_PRESENT"],
      "families": ["aggressive_adware", "overlay_attack"],
      "weight": 1.0
    },
    {
      "behavior": "botnet_c2",
      "description": "boots with the device and polls a command server",
      "apis": ["java.net.HttpURLConnection.connect"],
      "permissions": [
        "android.permission.RECEIVE_BOOT_COMPLETED",
        "android.permission.WAKE_LOCK",
        "android.permission.ACCESS_NETWORK_STATE"
      ],
      "intents": [
        "android.intent.action.BOOT_COMPLETED",
        "android.net.conn.CONNECTIVITY_CHANGE"
      ],
      "families": ["botnet"],
      "weight": 1.0
    },
    {
      "behavior": "privilege_probing",
      "description": "shells out to probe for root and remount paths",
      "apis": ["java.lang.Runtime.exec"],
      "permissions": [
        "android.permission.WRITE_SECURE_SETTINGS",
        "android.permission.MOUNT_UNMOUNT_FILESYSTEMS"
      ],
      "intents": [],
      "families": ["rooter"],
      "weight": 1.0
    },
    {
      "behavior": "dynamic_code_loading",
      "description": "pulls and loads executable code after install",
      "apis": ["dalvik.system.DexClassLoader.loadClass"],
      "permissions": ["android.permission.INSTALL_PACKAGES"],
      "intents": ["android.intent.action.INSTALL_PACKAGE"],
      "families": ["update_attack"],
      "weight": 1.0
    }
  ]
}
"""


def builtin_ruleset() -> tuple[RuleSpec, ...]:
    """Parse the bundled ruleset (a fresh tuple each call)."""
    return load_ruleset(BUILTIN_RULESET_JSON)
