"""Behavioral rule engine: scored malicious-behavior evidence.

APICHECKER's classifier emits a probability; analysts need a *reason*.
``repro.rules`` reconstructs nameable malicious behaviors from the same
A+P+I observations the classifier consumes, Quark-engine style: a
declarative :class:`RuleSpec` names a behavior and the permissions,
key-API invocations and intents that constitute it; the
:class:`RuleCompiler` resolves names against a concrete SDK and the
tracked hook set at load time; the vectorized :class:`RuleEvaluator`
scores observation batches into staged, evidence-carrying
:class:`BehaviorReport` objects.

See ``docs/rules.md`` for the rule schema and the lint workflow.
"""

from repro.rules.builtin import BUILTIN_RULESET_JSON, builtin_ruleset
from repro.rules.compiler import (
    CompiledRule,
    CompiledRuleset,
    RuleCompileError,
    RuleCompiler,
)
from repro.rules.evaluator import RuleEvaluator
from repro.rules.lint import LintIssue, lint_ruleset
from repro.rules.report import BehaviorReport, RuleHit
from repro.rules.spec import (
    N_STAGES,
    STAGE_CONFIDENCE,
    STAGE_NAMES,
    RuleSpec,
    load_ruleset,
)

__all__ = [
    "BUILTIN_RULESET_JSON",
    "BehaviorReport",
    "CompiledRule",
    "CompiledRuleset",
    "LintIssue",
    "N_STAGES",
    "RuleCompileError",
    "RuleCompiler",
    "RuleEvaluator",
    "RuleHit",
    "RuleSpec",
    "STAGE_CONFIDENCE",
    "STAGE_NAMES",
    "builtin_ruleset",
    "lint_ruleset",
    "load_ruleset",
]
