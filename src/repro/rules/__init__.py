"""Behavioral rule engine: scored malicious-behavior evidence.

APICHECKER's classifier emits a probability; analysts need a *reason*.
``repro.rules`` reconstructs nameable malicious behaviors from the same
A+P+I observations the classifier consumes, Quark-engine style: a
declarative :class:`RuleSpec` names a behavior and the permissions,
key-API invocations and intents that constitute it; the
:class:`RuleCompiler` resolves names against a concrete SDK and the
tracked hook set at load time; the vectorized :class:`RuleEvaluator`
scores observation batches into staged, evidence-carrying
:class:`BehaviorReport` objects.

Rules are not only hand-written: :func:`mine_ruleset` mines candidate
rules from labeled corpus observations (frequent A+P+I itemsets scored
by held-out precision and family lift) and emits a deterministic
generated-ruleset artifact the serving tier hot-swaps in — see
``docs/rule_mining.md``.

See ``docs/rules.md`` for the rule schema and the lint workflow.
"""

from repro.rules.builtin import BUILTIN_RULESET_JSON, builtin_ruleset
from repro.rules.compiler import (
    CompiledRule,
    CompiledRuleset,
    RuleCompileError,
    RuleCompiler,
)
from repro.rules.diff import RuleChange, RulesetDiff, diff_rulesets
from repro.rules.evaluator import RuleEvaluator
from repro.rules.lint import LintIssue, lint_ruleset
from repro.rules.mining import (
    MinedRule,
    MinedRuleset,
    MiningError,
    load_generated_ruleset,
    mine_from_corpus,
    mine_ruleset,
)
from repro.rules.report import BehaviorReport, RuleHit
from repro.rules.spec import (
    N_STAGES,
    STAGE_CONFIDENCE,
    STAGE_NAMES,
    RuleSpec,
    load_ruleset,
)

__all__ = [
    "BUILTIN_RULESET_JSON",
    "BehaviorReport",
    "CompiledRule",
    "CompiledRuleset",
    "LintIssue",
    "MinedRule",
    "MinedRuleset",
    "MiningError",
    "N_STAGES",
    "RuleChange",
    "RuleCompileError",
    "RuleCompiler",
    "RuleEvaluator",
    "RuleHit",
    "RuleSpec",
    "RulesetDiff",
    "STAGE_CONFIDENCE",
    "STAGE_NAMES",
    "builtin_ruleset",
    "diff_rulesets",
    "lint_ruleset",
    "load_generated_ruleset",
    "load_ruleset",
    "mine_from_corpus",
    "mine_ruleset",
]
