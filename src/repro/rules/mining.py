"""Mining candidate behavior rules from labeled corpus observations.

The bundled ruleset is hand-written from family profiles and
deliberately ships with a ``lowkey_spy``-shaped blind spot
(``docs/rules.md``).  This module closes that loop the way the paper's
operators did: mine frequent A+P+I evidence itemsets from a labeled
corpus, score them on a held-out split, keep the precise / high-lift
ones, and emit a versioned *generated ruleset* artifact that the
serving tier can hot-swap in (:class:`repro.serve.RulesetRegistry`).

Pipeline (``docs/rule_mining.md`` walks the algorithm in detail):

1. **Encode** the corpus observations through the production
   :class:`~repro.core.features.FeatureSpace` into one boolean
   apps x (A+P+I) matrix, and split it into a mining half and a
   held-out scoring half with a seeded permutation.
2. **Enumerate** frequent itemsets per malware family with Apriori
   over the columnar block: the item pool is capped to the top-K
   columns by support lift over benign, and level-``k`` candidate
   support is counted with one boolean matmul (``rows @ C == k``),
   never a per-app loop.
3. **Score** every candidate on the held-out half at AND-match
   semantics: precision ``P(malicious | match)`` and family lift
   ``P(family | match) / P(family)``.
4. **Select** with a greedy fire-union set cover per family under the
   evaluator's *actual* hit semantics (a rule with required
   permissions fires at stage 1 when any required permission is
   present), then fill the per-family budget with the top-scored
   remainder.
5. **Deduplicate** against the bundled set and among mined rules
   (evidence subset/superset and Jaccard-overlap collapse), attach an
   anchor API to API-less itemsets (:class:`RuleSpec` requires one),
   lint, and emit a deterministic JSON artifact: same seed + corpus
   => byte-identical bytes, hashed for registry integrity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import combinations
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.features import AppObservation, FeatureSpace
from repro.obs import MetricsRegistry
from repro.rules.builtin import builtin_ruleset
from repro.rules.lint import lint_ruleset
from repro.rules.spec import RuleSpec

__all__ = [
    "GENERATED_FORMAT_VERSION",
    "MinedRule",
    "MinedRuleset",
    "MiningError",
    "load_generated_ruleset",
    "mine_from_corpus",
    "mine_ruleset",
]

#: Schema marker for the ``generated`` block of a mined artifact.
GENERATED_FORMAT_VERSION = 1


class MiningError(ValueError):
    """Rule mining could not produce a valid ruleset."""


@dataclass(frozen=True)
class MinedRule:
    """One mined rule with its held-out evaluation statistics.

    Attributes:
        spec: the emitted rule.
        family: malware family the itemset was mined from.
        support: AND-match support among the family's mining rows.
        precision: ``P(malicious | AND-match)`` on the held-out half.
        lift: ``P(family | AND-match) / P(family)`` on the held-out
            half.
        fire_coverage: fraction of held-out family rows the rule fires
            on under the evaluator's stage-1 hit semantics.
        n_matches: held-out AND-match count the scores are based on.
    """

    spec: RuleSpec
    family: str
    support: float
    precision: float
    lift: float
    fire_coverage: float
    n_matches: int

    def stats_dict(self) -> dict:
        return {
            "family": self.family,
            "support": round(float(self.support), 6),
            "precision": round(float(self.precision), 6),
            "lift": round(float(self.lift), 6),
            "fire_coverage": round(float(self.fire_coverage), 6),
            "n_matches": int(self.n_matches),
        }


@dataclass(frozen=True)
class MinedRuleset:
    """Result of one :func:`mine_ruleset` run.

    ``specs`` is the full serving set (base rules first, mined rules
    after); ``rules`` carries the mined rules with their statistics.
    """

    rules: tuple[MinedRule, ...]
    base: tuple[RuleSpec, ...]
    params: Mapping[str, object]
    families: Mapping[str, Mapping[str, object]]
    n_observations: int
    n_mine: int
    n_holdout: int

    def __len__(self) -> int:
        return len(self.base) + len(self.rules)

    @property
    def specs(self) -> tuple[RuleSpec, ...]:
        """Base rules followed by mined rules — the deployable set."""
        return self.base + tuple(r.spec for r in self.rules)

    @property
    def mined_specs(self) -> tuple[RuleSpec, ...]:
        return tuple(r.spec for r in self.rules)

    # ------------------------------------------------------------------
    # Artifact emission — deterministic by construction
    # ------------------------------------------------------------------

    def to_artifact(self) -> dict:
        """The generated-ruleset wire object.

        Loadable by the stock :func:`repro.rules.load_ruleset` (which
        ignores the ``generated`` block) and round-trippable through
        :func:`load_generated_ruleset`.  Contains no wall-clock or
        other run-dependent state, so the same seed and corpus always
        produce the same object.
        """
        return {
            "version": 1,
            "generated": {
                "format": GENERATED_FORMAT_VERSION,
                "algorithm": "apriori/and-score/fire-cover",
                "params": dict(self.params),
                "families": {k: dict(v) for k, v in self.families.items()},
                "split": {
                    "observations": self.n_observations,
                    "mine": self.n_mine,
                    "holdout": self.n_holdout,
                },
                "base_behaviors": [s.behavior for s in self.base],
                "stats": {
                    r.spec.behavior: r.stats_dict() for r in self.rules
                },
            },
            "rules": [s.to_dict() for s in self.specs],
        }

    def to_json(self) -> str:
        """Canonical serialization (sorted keys, fixed rounding)."""
        return json.dumps(self.to_artifact(), indent=2, sort_keys=True) + "\n"

    @property
    def sha256(self) -> str:
        """Content hash of the canonical artifact bytes."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def save(self, path: str | Path) -> Path:
        """Write the artifact atomically; returns the final path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(self.to_json(), encoding="utf-8")
        tmp.replace(path)
        return path


def load_generated_ruleset(source: str | Path | bytes | dict) -> MinedRuleset:
    """Reload a generated ruleset artifact with its mining statistics.

    Accepts a path, raw JSON text/bytes, or the parsed artifact dict.
    For plain (hand-written) rulesets without a ``generated`` block use
    :func:`repro.rules.load_ruleset` instead.
    """
    if isinstance(source, bytes):
        raw = json.loads(source.decode("utf-8"))
    elif isinstance(source, dict):
        raw = source
    else:
        text = str(source)
        if text.lstrip().startswith("{"):
            raw = json.loads(text)
        else:
            raw = json.loads(Path(text).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or "generated" not in raw:
        raise MiningError(
            "not a generated ruleset artifact (no 'generated' block); "
            "use repro.rules.load_ruleset for plain rulesets"
        )
    gen = raw["generated"]
    if gen.get("format") != GENERATED_FORMAT_VERSION:
        raise MiningError(
            f"unsupported generated-ruleset format: {gen.get('format')!r}"
        )
    specs = [RuleSpec.from_dict(r) for r in raw.get("rules", [])]
    by_behavior = {s.behavior: s for s in specs}
    base_behaviors = list(gen.get("base_behaviors", []))
    stats = gen.get("stats", {})
    missing = [b for b in base_behaviors if b not in by_behavior]
    missing += [b for b in stats if b not in by_behavior]
    if missing:
        raise MiningError(
            f"artifact stats/base reference unknown behaviors: {missing}"
        )
    base = tuple(by_behavior[b] for b in base_behaviors)
    rules = tuple(
        MinedRule(
            spec=by_behavior[behavior],
            family=str(rec["family"]),
            support=float(rec["support"]),
            precision=float(rec["precision"]),
            lift=float(rec["lift"]),
            fire_coverage=float(rec["fire_coverage"]),
            n_matches=int(rec["n_matches"]),
        )
        # mined rules keep artifact order (rules list order, base first)
        for behavior, rec in (
            (s.behavior, stats[s.behavior])
            for s in specs
            if s.behavior in stats
        )
    )
    split = gen.get("split", {})
    return MinedRuleset(
        rules=rules,
        base=base,
        params=dict(gen.get("params", {})),
        families={k: dict(v) for k, v in gen.get("families", {}).items()},
        n_observations=int(split.get("observations", 0)),
        n_mine=int(split.get("mine", 0)),
        n_holdout=int(split.get("holdout", 0)),
    )


# ----------------------------------------------------------------------
# Column bookkeeping
# ----------------------------------------------------------------------


def _column_names(fs: FeatureSpace) -> tuple[list[str], int, int]:
    """Per-column evidence names plus (api_width, bits_per_api)."""
    n_perm = len(fs.permission_names)
    n_intent = len(fs.intent_names)
    api_width = fs.n_features - n_perm - n_intent
    bits = api_width // max(len(fs.api_ids), 1) if api_width else 1
    names: list[str] = []
    for col in range(fs.n_features):
        kind = fs.kind_of_column(col)
        if kind == "api":
            names.append(fs.sdk.api(int(fs.api_ids[col // bits])).name)
        elif kind == "permission":
            names.append(fs.permission_names[col - api_width])
        else:
            names.append(fs.intent_names[col - api_width - n_perm])
    return names, api_width, bits


def _evidence_set(spec: RuleSpec) -> frozenset[tuple[str, str]]:
    return frozenset(
        [("api", a) for a in spec.apis]
        + [("permission", p) for p in spec.permissions]
        + [("intent", i) for i in spec.intents]
    )


def _collapses(
    ev: frozenset, other: frozenset, max_overlap: float
) -> bool:
    """Subset/superset or Jaccard-overlap collapse between evidence sets."""
    if ev <= other or other <= ev:
        return True
    union = len(ev | other)
    if union == 0:
        return True
    return len(ev & other) / union >= max_overlap


def _frequent_itemsets(
    rows: np.ndarray,
    items: Sequence[int],
    min_support: float,
    max_len: int,
) -> list[tuple[int, ...]]:
    """Level-wise Apriori over ``items``; one matmul per level."""
    out: list[tuple[int, ...]] = [(i,) for i in items]
    level = list(out)
    counted = rows.astype(np.int32)
    while level and len(level[0]) < max_len:
        joined = sorted(
            {
                tuple(sorted(set(a) | set(b)))
                for a, b in combinations(level, 2)
                if len(set(a) | set(b)) == len(level[0]) + 1
            }
        )
        if not joined:
            break
        C = np.zeros((rows.shape[1], len(joined)), dtype=np.int32)
        for j, itemset in enumerate(joined):
            C[list(itemset), j] = 1
        k = len(joined[0])
        support = ((counted @ C) == k).mean(axis=0)
        level = [s for s, sv in zip(joined, support) if sv >= min_support]
        out.extend(level)
    return out


def _fire_vector(
    X: np.ndarray, columns: Sequence[int], kinds: Sequence[str]
) -> np.ndarray:
    """Evaluator stage>=1 hit semantics for one candidate rule.

    A rule with required permissions fires when *any* required
    permission is present (stage 1 of the confidence ladder); a rule
    without permissions fires on any API/intent evidence match.
    """
    perm_cols = [c for c, k in zip(columns, kinds) if k == "permission"]
    if perm_cols:
        return X[:, perm_cols].any(axis=1)
    rest = [c for c, k in zip(columns, kinds) if k != "permission"]
    return X[:, rest].any(axis=1)


# ----------------------------------------------------------------------
# The miner
# ----------------------------------------------------------------------


def mine_ruleset(
    observations: Sequence[AppObservation],
    labels: Sequence[bool] | np.ndarray,
    families: Sequence[str],
    feature_space: FeatureSpace,
    *,
    base: Iterable[RuleSpec] | None = None,
    min_support: float = 0.15,
    top_k_items: int = 14,
    max_len: int = 3,
    min_item_lift: float = 0.05,
    min_matches: int = 5,
    min_precision: float = 0.7,
    min_lift: float = 2.0,
    max_rules_per_family: int = 12,
    max_overlap: float = 0.8,
    min_family_rows: int = 8,
    weight: float = 1.0,
    seed: int = 0,
    registry: MetricsRegistry | None = None,
) -> MinedRuleset:
    """Mine a deployable ruleset from labeled observations.

    Args:
        observations: production-engine observations of the corpus.
        labels: per-app malicious flags, aligned with ``observations``.
        families: per-app family names (generator truth; ignored for
            benign apps), aligned with ``observations``.
        feature_space: the fitted production feature space — mining
            over it guarantees every mined API is tracked, so mined
            rules survive ``RuleCompiler(on_untracked="drop")``.
        base: rules to deduplicate against and ship alongside the
            mined ones (default: the bundled ruleset).
        min_support: Apriori support floor on the family's mining rows.
        top_k_items: per-family item-pool cap, ranked by support lift
            over benign (the lever that keeps Apriori from exploding).
        max_len: maximum itemset length.
        min_item_lift: singleton support-over-benign floor for the pool.
        min_matches: minimum held-out AND matches for a score to count.
        min_precision: held-out precision floor for candidates.
        min_lift: held-out family-lift floor for candidates.
        max_rules_per_family: per-family emitted-rule budget.
        max_overlap: Jaccard evidence-overlap collapse threshold.
        min_family_rows: families with fewer mining rows are skipped.
        weight: weight assigned to every mined rule.
        seed: mining/holdout permutation seed — with the same corpus it
            makes the emitted artifact byte-identical.
        registry: metrics registry for ``rules_mined_total``.

    Raises:
        MiningError: on malformed inputs, a split without both classes,
            or a mined set that fails :func:`lint_ruleset` with errors.
    """
    n = len(observations)
    if n == 0:
        raise MiningError("cannot mine from an empty corpus")
    y = np.asarray(labels, dtype=bool)
    fam = np.asarray([str(f) for f in families])
    if len(y) != n or len(fam) != n:
        raise MiningError(
            f"labels/families misaligned with observations: "
            f"{len(y)}/{len(fam)} vs {n}"
        )
    base_specs = tuple(base) if base is not None else builtin_ruleset()

    X = feature_space.encode_block(list(observations)).matrix.astype(bool)
    names, _api_width, _bits = _column_names(feature_space)
    kinds = [feature_space.kind_of_column(c) for c in range(X.shape[1])]

    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    mine_idx, hold_idx = perm[::2], perm[1::2]
    Xm, Xh = X[mine_idx], X[hold_idx]
    ym, yh = y[mine_idx], y[hold_idx]
    fm, fh = fam[mine_idx], fam[hold_idx]
    if not (~ym).any() or not (~yh).any():
        raise MiningError("both split halves need benign apps")
    if not ym.any() or not yh.any():
        raise MiningError("both split halves need malicious apps")
    benign_support = Xm[~ym].mean(axis=0)

    mined_families = sorted(set(fam[y]))
    family_summary: dict[str, dict] = {}
    kept: list[MinedRule] = []
    kept_evidence: list[tuple[frozenset, str]] = []
    base_evidence = [_evidence_set(s) for s in base_specs]

    def collides(ev: frozenset, family: str) -> bool:
        for other in base_evidence:
            if _collapses(ev, other, max_overlap):
                return True
        for other, other_family in kept_evidence:
            if other_family == family:
                if _collapses(ev, other, max_overlap):
                    return True
            elif ev == other:
                return True
        return False

    for family in mined_families:
        rows = Xm[fm == family]
        summary = {"rows": int(rows.shape[0]), "candidates": 0, "kept": 0,
                   "fire_coverage": 0.0}
        family_summary[family] = summary
        if rows.shape[0] < min_family_rows:
            continue
        support = rows.mean(axis=0)
        item_lift = support - benign_support
        order = np.argsort(-item_lift, kind="stable")
        items = [
            int(c)
            for c in order[:top_k_items]
            if support[c] >= min_support and item_lift[c] > min_item_lift
        ]
        if not items:
            continue
        # anchor API: the family's most discriminative API column
        api_cols = [c for c in range(X.shape[1]) if kinds[c] == "api"]
        anchor_col = max(api_cols, key=lambda c: (item_lift[c], -c))
        candidates = _frequent_itemsets(rows, items, min_support, max_len)
        summary["candidates"] = len(candidates)
        if not candidates:
            continue

        # Score every candidate on the holdout at AND semantics with
        # one matmul for the whole family.
        C = np.zeros((X.shape[1], len(candidates)), dtype=np.int32)
        sizes = np.zeros(len(candidates), dtype=np.int32)
        for j, itemset in enumerate(candidates):
            C[list(itemset), j] = 1
            sizes[j] = len(itemset)
        match = (Xh.astype(np.int32) @ C) == sizes[np.newaxis, :]
        n_match = match.sum(axis=0)
        fam_mask = fh == family
        p_family = fam_mask.mean()
        with np.errstate(invalid="ignore", divide="ignore"):
            precision = np.where(
                n_match > 0, (match & yh[:, None]).sum(axis=0) / n_match, 0.0
            )
            lift = np.where(
                (n_match > 0) & (p_family > 0),
                ((match & fam_mask[:, None]).sum(axis=0) / np.maximum(n_match, 1))
                / max(p_family, 1e-12),
                0.0,
            )
        survivors = [
            j
            for j in range(len(candidates))
            if n_match[j] >= min_matches
            and precision[j] >= min_precision
            and lift[j] >= min_lift
        ]
        survivors.sort(
            key=lambda j: (
                -precision[j],
                -lift[j],
                -n_match[j],
                candidates[j],
            )
        )

        # Resolve candidates to evidence sets (anchor API attached to
        # API-less itemsets) and drop collapse collisions up front.
        pool: list[tuple[int, tuple[int, ...], frozenset]] = []
        for j in survivors:
            columns = list(candidates[j])
            if not any(kinds[c] == "api" for c in columns):
                columns = columns + [anchor_col]
            ev = frozenset((kinds[c], names[c]) for c in columns)
            if collides(ev, family):
                continue
            if any(ev == p_ev or _collapses(ev, p_ev, max_overlap)
                   for _, _, p_ev in pool):
                continue
            pool.append((j, tuple(columns), ev))

        # Greedy fire-union cover of the holdout family rows, then fill
        # the remaining budget with the top-scored rest.
        fam_rows = np.where(fam_mask)[0]
        Xh_fam = Xh[fam_rows]
        covered = np.zeros(len(fam_rows), dtype=bool)
        chosen: list[tuple[int, tuple[int, ...], frozenset]] = []
        remaining = list(pool)
        while remaining and len(chosen) < max_rules_per_family:
            gains = [
                (_fire_vector(Xh_fam, cols, kinds) & ~covered).sum()
                for _, cols, _ in remaining
            ]
            best = max(range(len(remaining)), key=lambda i: (gains[i], -i))
            if gains[best] == 0:
                break
            entry = remaining.pop(best)
            covered |= _fire_vector(Xh_fam, entry[1], kinds)
            chosen.append(entry)
        for entry in remaining:
            if len(chosen) >= max_rules_per_family:
                break
            chosen.append(entry)

        for idx, (j, columns, ev) in enumerate(chosen):
            apis = tuple(
                names[c] for c in columns if kinds[c] == "api"
            )
            perms = tuple(
                names[c] for c in columns if kinds[c] == "permission"
            )
            intents = tuple(
                names[c] for c in columns if kinds[c] == "intent"
            )
            evidence = " + ".join(
                names[c] for c in candidates[j]
            )
            spec = RuleSpec(
                behavior=f"mined_{family}_{idx:02d}",
                apis=apis,
                description=(
                    f"mined from {family}: frequent evidence "
                    f"{{{evidence}}} "
                    f"(holdout precision {precision[j]:.2f}, "
                    f"family lift {lift[j]:.1f})"
                ),
                permissions=perms,
                intents=intents,
                families=(family,),
                weight=weight,
            )
            fire = _fire_vector(Xh_fam, columns, kinds)
            # Stats are rounded here (not just at serialization) so a
            # save/load round trip compares equal.
            kept.append(
                MinedRule(
                    spec=spec,
                    family=family,
                    support=round(
                        float(rows[:, list(candidates[j])].all(axis=1).mean()),
                        6,
                    ),
                    precision=round(float(precision[j]), 6),
                    lift=round(float(lift[j]), 6),
                    fire_coverage=round(
                        float(fire.mean()) if len(fam_rows) else 0.0, 6
                    ),
                    n_matches=int(n_match[j]),
                )
            )
            kept_evidence.append((ev, family))
        summary["kept"] = len(chosen)
        summary["fire_coverage"] = (
            round(float(covered.mean()), 6) if len(fam_rows) else 0.0
        )

    result = MinedRuleset(
        rules=tuple(kept),
        base=base_specs,
        params={
            "seed": int(seed),
            "min_support": min_support,
            "top_k_items": int(top_k_items),
            "max_len": int(max_len),
            "min_item_lift": min_item_lift,
            "min_matches": int(min_matches),
            "min_precision": min_precision,
            "min_lift": min_lift,
            "max_rules_per_family": int(max_rules_per_family),
            "max_overlap": max_overlap,
            "min_family_rows": int(min_family_rows),
            "weight": weight,
        },
        families=family_summary,
        n_observations=n,
        n_mine=len(mine_idx),
        n_holdout=len(hold_idx),
    )
    issues = lint_ruleset(result.specs, sdk=feature_space.sdk)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        raise MiningError(
            "mined ruleset failed lint: "
            + "; ".join(str(i) for i in errors)
        )
    if registry is not None:
        registry.inc("rules_mined_total", len(kept))
    return result


def mine_from_corpus(checker, corpus, **kwargs) -> MinedRuleset:
    """Mine from a labeled :class:`~repro.corpus.generator.AppCorpus`.

    Convenience wrapper: observes the corpus with the fitted checker's
    production engine (the same observation path the serving tier
    uses) and mines over its feature space.
    """
    observations = checker.production_engine.observations(corpus)
    return mine_ruleset(
        observations,
        [app.is_malicious for app in corpus],
        [app.family for app in corpus],
        checker.feature_space,
        **kwargs,
    )
