"""Ruleset linting: catch authoring mistakes before deployment.

``repro rules lint`` (and the CI ``rules-lint`` step) run these checks
over a ruleset.  Errors are things compilation would reject or that
make a rule unsatisfiable; warnings flag rules that will evaluate but
probably not the way the author intended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.android.sdk import AndroidSdk
from repro.rules.spec import RuleSpec


@dataclass(frozen=True)
class LintIssue:
    """One finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    behavior: str | None
    message: str

    def __str__(self) -> str:
        where = f" [{self.behavior}]" if self.behavior else ""
        return f"{self.severity}{where}: {self.message}"


def _known_family_names() -> set[str]:
    from repro.corpus.families import BENIGN_ARCHETYPES, MALWARE_ARCHETYPES

    return {a.name for a in MALWARE_ARCHETYPES + BENIGN_ARCHETYPES}


def lint_ruleset(
    specs: Sequence[RuleSpec],
    sdk: AndroidSdk | None = None,
) -> list[LintIssue]:
    """Semantic checks over a parsed ruleset.

    With an ``sdk``, every API/permission/intent name is resolved
    against it (unresolvable names are errors — the same strictness
    compilation applies).  Structural validity (non-empty API list,
    positive weight, no duplicate entries) is already enforced by
    :class:`RuleSpec` parsing.
    """
    issues: list[LintIssue] = []
    if not specs:
        issues.append(LintIssue("error", None, "ruleset is empty"))
        return issues
    seen: set[str] = set()
    families = _known_family_names()
    for spec in specs:
        if spec.behavior in seen:
            issues.append(
                LintIssue(
                    "error", spec.behavior, "duplicate behavior name"
                )
            )
        seen.add(spec.behavior)
        if not spec.permissions and not spec.intents:
            issues.append(
                LintIssue(
                    "warning",
                    spec.behavior,
                    "rule has no permissions and no intents: it rests "
                    "on API evidence alone and reaches full confidence "
                    "from stage 3",
                )
            )
        if not spec.description:
            issues.append(
                LintIssue(
                    "warning",
                    spec.behavior,
                    "missing description (analysts see this text)",
                )
            )
        for fam in spec.families:
            if fam not in families:
                issues.append(
                    LintIssue(
                        "warning",
                        spec.behavior,
                        f"unknown corpus family {fam!r} in families",
                    )
                )
        if sdk is not None:
            for name in spec.apis:
                try:
                    sdk.by_name(name)
                except KeyError:
                    issues.append(
                        LintIssue(
                            "error",
                            spec.behavior,
                            f"unknown API {name!r}",
                        )
                    )
            for perm in spec.permissions:
                if perm not in sdk.permissions:
                    issues.append(
                        LintIssue(
                            "error",
                            spec.behavior,
                            f"unknown permission {perm!r}",
                        )
                    )
            for intent in spec.intents:
                if intent not in sdk.intents:
                    issues.append(
                        LintIssue(
                            "error",
                            spec.behavior,
                            f"unknown intent {intent!r}",
                        )
                    )
    # Two rules requiring the identical API set are probably a paste
    # error; their hits differ only via permissions/intents.
    by_apis: dict[tuple[str, ...], list[str]] = {}
    for spec in specs:
        by_apis.setdefault(tuple(sorted(spec.apis)), []).append(
            spec.behavior
        )
    for names in by_apis.values():
        if len(names) > 1:
            issues.append(
                LintIssue(
                    "warning",
                    None,
                    f"rules {sorted(names)!r} require the identical "
                    f"API set",
                )
            )
    return issues
