"""Xposed-style API hook engine.

The paper intercepts target framework APIs with the Xposed framework:
each invocation of a hooked API is caught before dispatch, its name and
parameters logged, and optionally its return value tampered with (to
bypass login screens or fake device properties).  Interception is not
free — hooking all ~50K APIs inflates mean emulation time from 2.1 to
53.6 minutes (Fig. 3) — so the per-invocation cost here is calibrated
from exactly that gap: (53.6 − 2.1) minutes over ~42.3M invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.sdk import AndroidSdk

#: Seconds of interception overhead per hooked invocation on the
#: reference (Google) emulator: (53.6 - 2.1) * 60 / 42.3e6.
HOOK_COST_SECONDS = (53.6 - 2.1) * 60.0 / 42.3e6

_PARAM_POOL = (
    "content://sms/inbox", "+8613800138000", "http://cdn.example.com/p.bin",
    "TYPE_SYSTEM_ALERT", "AES/CBC/PKCS5Padding", "/data/local/tmp/payload.dex",
    "wifi", "extra_stream", "SELECT * FROM accounts", "su",
)


@dataclass(frozen=True)
class InvocationRecord:
    """Hook log entry for one API over one emulation.

    Attributes:
        api_id: the hooked API.
        api_name: fully qualified name (as logged by Xposed).
        count: number of intercepted invocations.
        sample_params: representative parameter strings captured.
    """

    api_id: int
    api_name: str
    count: int
    sample_params: tuple[str, ...] = ()


class HookEngine:
    """Intercepts a configured set of framework APIs.

    Args:
        sdk: the API registry.
        tracked_ids: APIs to hook (empty = track nothing; tracking
            nothing still runs the app, per Fig. 3's baseline).
        tamper_returns: emulate the callback-interface tricks the paper
            uses (bypassing logins, faking device identity).
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        tracked_ids: np.ndarray | list[int] | None = None,
        tamper_returns: bool = True,
    ):
        self.sdk = sdk
        ids = np.asarray(
            [] if tracked_ids is None else tracked_ids, dtype=int
        )
        if ids.size and (ids.min() < 0 or ids.max() >= len(sdk)):
            raise ValueError("tracked api id out of range for this SDK")
        self._tracked = np.unique(ids)
        self._tracked_set = set(self._tracked.tolist())
        self.tamper_returns = tamper_returns

    @property
    def tracked_ids(self) -> np.ndarray:
        return self._tracked

    @property
    def n_tracked(self) -> int:
        return int(self._tracked.size)

    def is_tracked(self, api_id: int) -> bool:
        return api_id in self._tracked_set

    def intercept(
        self,
        invocation_counts: dict[int, int],
        rng: np.random.Generator | None = None,
    ) -> tuple[list[InvocationRecord], float]:
        """Filter raw invocations through the hooks.

        Args:
            invocation_counts: ground-truth invocation counts for the run
                (api_id -> count).
            rng: source for parameter sampling.

        Returns:
            (records, overhead_seconds): the hook log — only tracked APIs
            appear — and the interception time charged to the emulation.
        """
        rng = rng or np.random.default_rng(0)
        records = []
        hooked_invocations = 0
        for api_id, count in sorted(invocation_counts.items()):
            if count <= 0 or api_id not in self._tracked_set:
                continue
            hooked_invocations += count
            n_params = int(min(3, 1 + rng.integers(0, 3)))
            params = tuple(
                _PARAM_POOL[int(rng.integers(len(_PARAM_POOL)))]
                for _ in range(n_params)
            )
            records.append(
                InvocationRecord(
                    api_id=api_id,
                    api_name=self.sdk.api(api_id).name,
                    count=int(count),
                    sample_params=params,
                )
            )
        overhead = hooked_invocations * HOOK_COST_SECONDS
        return records, overhead
