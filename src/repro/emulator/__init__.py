"""Dynamic-analysis emulation substrate.

Simulates the paper's two emulation stacks — Google's QEMU-based
full-system emulator and the custom lightweight Android-x86 + Intel
Houdini engine (§5.1) — together with the Monkey UI exerciser, the
Xposed-style API hook engine, anti-emulator-detection hardening (§4.2),
and the x86 server cluster that runs 16 emulators per machine.

All durations are *simulated minutes*, computed from a cost model
calibrated against the paper's reported timings (126 s for 5K Monkey
events; 2.1 / 4.3 / 53.6 min mean emulation tracking none / 426 / all
APIs on the Google emulator; 70% reduction on the lightweight engine).
"""

from repro.emulator.adb import AdbSession
from repro.emulator.backends import (
    EmulatorBackend,
    GoogleEmulator,
    LightweightEmulator,
    RealDevice,
)
from repro.emulator.cluster import AnalysisServer, ServerCluster
from repro.emulator.device import DeviceEnvironment
from repro.emulator.evasion import probe_succeeds, successful_probes
from repro.emulator.hooks import HookEngine, InvocationRecord
from repro.emulator.monkey import (
    FuzzingExerciser,
    MonkeyExerciser,
    rac_for_events,
)
from repro.emulator.sensors import SensorTrace, SensorTraceLibrary
from repro.emulator.runtime import EmulationResult, emulate_app
from repro.emulator.translation import BinaryTranslator

__all__ = [
    "AdbSession",
    "AnalysisServer",
    "BinaryTranslator",
    "DeviceEnvironment",
    "EmulationResult",
    "EmulatorBackend",
    "FuzzingExerciser",
    "GoogleEmulator",
    "HookEngine",
    "InvocationRecord",
    "LightweightEmulator",
    "MonkeyExerciser",
    "RealDevice",
    "SensorTrace",
    "SensorTraceLibrary",
    "ServerCluster",
    "emulate_app",
    "probe_succeeds",
    "rac_for_events",
    "successful_probes",
]
