"""App emulation: one run of one APK on one backend.

``emulate_app`` ties the substrate together: Monkey explores the UI,
achieved coverage decides which call sites fire, emulator probes may
silence the malicious behaviour, the hook engine intercepts tracked
invocations (charging interception overhead), and the backend converts
everything into simulated analysis time.

Ground-truth invocation counts are produced vectorized — a 5K-event run
triggers tens of millions of invocations (Fig. 2), far too many to step
through individually.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.emulator.backends import EmulatorBackend, EmulatorCrash
from repro.emulator.device import DeviceEnvironment
from repro.emulator.evasion import app_detects_emulator
from repro.emulator.hooks import HookEngine, InvocationRecord
from repro.emulator.monkey import MonkeyExerciser, MonkeyRun


@dataclass(frozen=True)
class EmulationResult:
    """Everything one emulation run produced.

    Attributes:
        apk_md5: identity of the analyzed APK.
        backend_name: which backend executed the run.
        monkey: UI exploration outcome (RAC etc.).
        invocation_counts: ground-truth api_id -> count for the run
            (what a hypothetical all-API hook would have seen).
        hook_records: the actual hook log (tracked APIs only).
        observed_intents: used intents — runtime-sent actions plus
            manifest receiver filters (§4.5 auxiliary collection).
        analysis_seconds: simulated analysis time for this run.
        suppressed: the app detected the emulator and went quiet.
        sensor_limited: live-sensor-dependent behaviour did not fire.
    """

    apk_md5: str
    backend_name: str
    monkey: MonkeyRun
    invocation_counts: dict[int, int]
    hook_records: tuple[InvocationRecord, ...]
    observed_intents: tuple[str, ...]
    analysis_seconds: float
    suppressed: bool = False
    sensor_limited: bool = False

    @property
    def invoked_api_ids(self) -> tuple[int, ...]:
        """Distinct APIs invoked (ground truth), sorted."""
        return tuple(sorted(k for k, v in self.invocation_counts.items() if v))

    @property
    def hooked_api_ids(self) -> tuple[int, ...]:
        """Distinct APIs the hook engine logged, sorted."""
        return tuple(sorted(r.api_id for r in self.hook_records))

    @property
    def total_invocations(self) -> int:
        return int(sum(self.invocation_counts.values()))

    @property
    def analysis_minutes(self) -> float:
        return self.analysis_seconds / 60.0


def _active_sites(
    apk: Apk,
    sdk: AndroidSdk,
    achieved_rac: float,
    suppressed: bool,
    sensor_limited: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve which call sites fire, returning (api_ids, rates).

    Suppression takes two forms: malware goes quiet on its attack
    behaviour (key-strata sites vanish) while benign emulator-detectors
    — DRM, anti-cheat, banking root checks — refuse to run past their
    entry screens (deep sites vanish).
    """
    sites = apk.dex.call_sites
    if not sites:
        return np.empty(0, dtype=int), np.empty(0)
    api_ids = np.array([s.api_id for s in sites], dtype=int)
    mults = np.array([s.rate_multiplier for s in sites])
    reach = np.array([s.reach_quantile for s in sites])
    active = reach <= achieved_rac
    # Apps built against a newer SDK may call APIs this runtime image
    # does not have; those calls simply never resolve here.
    active &= api_ids < len(sdk)
    if sensor_limited:
        active &= reach <= 0.55
    if suppressed:
        if apk.is_malicious:
            quiet = (
                np.isin(api_ids, sdk.restricted_api_ids)
                | np.isin(api_ids, sdk.sensitive_api_ids)
                | np.isin(api_ids, sdk.discriminative_api_ids)
            )
            active &= ~quiet
        else:
            active &= reach <= 0.35
    api_ids = api_ids[active]
    mults = mults[active]
    return api_ids, sdk.base_rates[api_ids] * mults


def emulate_app(
    apk: Apk,
    sdk: AndroidSdk,
    backend: EmulatorBackend,
    env: DeviceEnvironment,
    hooks: HookEngine,
    monkey: MonkeyExerciser | None = None,
    rng: np.random.Generator | None = None,
    raise_on_crash: bool = True,
) -> EmulationResult:
    """Run one app once.

    Raises:
        IncompatibleAppError: propagated from the backend when the app
            cannot run here (the engine falls back to another backend).
        EmulatorCrash: the run crashed (detected via the customized
            SystemServer exception channel; the engine retries).
    """
    rng = rng or np.random.default_rng(0)
    monkey = monkey or MonkeyExerciser()
    if not backend.compatible(apk):
        from repro.emulator.backends import IncompatibleAppError

        raise IncompatibleAppError(
            f"{apk.package_name} is incompatible with {backend.name}"
        )

    run = monkey.exercise(apk, rng)

    # Evasion: a robotic event stream re-exposes the INPUT_TIMING channel
    # even on an otherwise hardened environment.
    effective_env = env
    if not monkey.humanized and not env.is_real_device:
        effective_env = env.with_flag(input_humanized=False)
    suppressed = app_detects_emulator(
        apk.dex.emulator_probes, effective_env
    )
    sensor_limited = apk.dex.needs_live_sensors and not env.live_sensors

    api_ids, rates = _active_sites(
        apk, sdk, run.achieved_rac, suppressed, sensor_limited
    )
    lam = rates * run.n_events
    noise = rng.lognormal(mean=-0.12**2 / 2, sigma=0.12, size=lam.size)
    counts = np.maximum(np.rint(lam * noise), (lam > 0.5).astype(float))
    invocation_counts = {
        int(a): int(c) for a, c in zip(api_ids, counts) if c > 0
    }

    hook_records, hook_seconds = hooks.intercept(invocation_counts, rng)

    seconds = backend.emulation_seconds(
        apk, run.ui_seconds, hook_seconds, rng
    )
    if raise_on_crash and rng.random() < backend.crash_probability(apk):
        raise EmulatorCrash(
            f"{apk.package_name} crashed on {backend.name} after "
            f"{seconds / 2:.1f}s"
        )

    observed_intents = tuple(
        sorted(
            set(() if suppressed else apk.dex.sent_intents)
            | set(apk.manifest.receiver_intent_actions)
        )
    )
    return EmulationResult(
        apk_md5=apk.md5,
        backend_name=backend.name,
        monkey=run,
        invocation_counts=invocation_counts,
        hook_records=tuple(hook_records),
        observed_intents=observed_intents,
        analysis_seconds=seconds,
        suppressed=suppressed,
        sensor_limited=sensor_limited,
    )
