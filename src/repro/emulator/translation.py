"""ARM→x86 dynamic binary translation (Intel Houdini model).

The lightweight engine runs Android-x86 natively on x86 servers, which
removes the ISA gap for the OS and Dalvik/ART code, but apps shipping
ARM native libraries still need their instructions translated on the fly
(§5.1).  Translation costs a modest, size-dependent overhead, and a
small share of ARM libraries exercises unsupported instruction
extensions and cannot be translated at all — those apps fall back to the
full-system emulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.dex import DexCode, NativeIsa


class TranslationError(RuntimeError):
    """Raised when a native library cannot be binary-translated."""


@dataclass(frozen=True)
class TranslationReport:
    """Outcome of translating one app's native libraries.

    Attributes:
        translated_mb: total ARM code translated.
        overhead_fraction: extra emulation time as a fraction of the
            app's base runtime (warm translation cache amortizes cost).
    """

    translated_mb: float
    overhead_fraction: float


class BinaryTranslator:
    """Translates an app's ARM native libraries for x86 execution.

    The per-megabyte overhead is small because translation results are
    cached after first execution; the dominant term is a fixed warm-up.
    """

    #: Extra runtime fraction per translated megabyte.
    OVERHEAD_PER_MB = 0.006
    #: Fixed warm-up fraction when any translation happens.
    WARMUP_FRACTION = 0.03
    #: Cap: translation never more than ~15% of runtime in practice.
    MAX_OVERHEAD_FRACTION = 0.15

    def translate(self, dex: DexCode) -> TranslationReport:
        """Translate all ARM libraries of an app.

        Raises:
            TranslationError: when any ARM library is Houdini-incompatible.
        """
        arm_libs = [
            lib for lib in dex.native_libs if lib.isa is NativeIsa.ARM
        ]
        if not arm_libs:
            return TranslationReport(0.0, 0.0)
        for lib in arm_libs:
            if not lib.houdini_compatible:
                raise TranslationError(
                    f"library {lib.name} uses instructions Houdini cannot "
                    "translate"
                )
        total_mb = float(sum(lib.size_mb for lib in arm_libs))
        overhead = min(
            self.MAX_OVERHEAD_FRACTION,
            self.WARMUP_FRACTION + self.OVERHEAD_PER_MB * total_mb,
        )
        return TranslationReport(total_mb, overhead)

    def can_translate(self, dex: DexCode) -> bool:
        return not dex.houdini_incompatible
