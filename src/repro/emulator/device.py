"""Device environment: what the app can observe about where it runs.

Malicious apps probe their environment to decide whether to behave
(§4.2).  The paper hardens its emulators four ways: randomized device
identities and network properties, humanized Monkey input timing,
replayed real-device sensor traces, and obfuscated Xposed artifacts.
``DeviceEnvironment`` captures exactly those switches, plus whether
special live sensors (e.g. microphone) can produce real-time data —
the one gap the hardened emulator cannot close (1.4% of apps).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceEnvironment:
    """Observable properties of the execution environment.

    Each ``*_masked``/``*_humanized`` flag records whether the
    corresponding emulator give-away has been hidden from the app.
    On a real device every probe fails by definition.
    """

    name: str
    is_real_device: bool = False
    identifiers_masked: bool = False   # randomized IMEI/IMSI
    build_props_masked: bool = False   # realistic PRODUCT/MODEL strings
    network_props_masked: bool = False  # plausible /proc/net/tcp
    input_humanized: bool = False      # throttle=500ms, pct-touch 50-80%
    sensors_replayed: bool = False     # real accelerometer/gyro traces
    xposed_obfuscated: bool = False    # hook artifacts hidden
    live_sensors: bool = False         # real-time mic/special sensors

    @classmethod
    def real_device(cls) -> "DeviceEnvironment":
        """A physical phone (the paper used Google Nexus 6 handsets)."""
        return cls(
            name="real-device",
            is_real_device=True,
            identifiers_masked=True,
            build_props_masked=True,
            network_props_masked=True,
            input_humanized=True,
            sensors_replayed=True,
            xposed_obfuscated=True,
            live_sensors=True,
        )

    @classmethod
    def stock_emulator(cls) -> "DeviceEnvironment":
        """Google's emulator with default configuration: every probe works."""
        return cls(name="stock-emulator")

    @classmethod
    def hardened_emulator(cls) -> "DeviceEnvironment":
        """The paper's four-fold hardened emulator (§4.2)."""
        return cls(
            name="hardened-emulator",
            identifiers_masked=True,
            build_props_masked=True,
            network_props_masked=True,
            input_humanized=True,
            sensors_replayed=True,
            xposed_obfuscated=True,
        )

    def with_flag(self, **flags: bool) -> "DeviceEnvironment":
        """Copy with individual hardening switches toggled (for ablations)."""
        return replace(self, **flags)
