"""Emulator detection by malware, and what hardening defeats.

Each :class:`~repro.android.dex.EmulatorProbe` checks one class of
emulator give-away; the corresponding :class:`DeviceEnvironment` flag
says whether the hardened emulator has closed that channel.  A probe
that *succeeds* (i.e. detects the emulator) makes the app suppress its
malicious activity, which is exactly the behaviour the paper's
controlled experiment quantifies (§4.2: 86.6% API-count parity on the
stock emulator vs. 98.6% on the hardened one).
"""

from __future__ import annotations

from repro.android.dex import EmulatorProbe
from repro.emulator.device import DeviceEnvironment

#: Which environment flag defeats which probe.
_PROBE_DEFEATED_BY: dict[EmulatorProbe, str] = {
    EmulatorProbe.DEFAULT_IDENTIFIERS: "identifiers_masked",
    EmulatorProbe.BUILD_PROPS: "build_props_masked",
    EmulatorProbe.NETWORK_PROPS: "network_props_masked",
    EmulatorProbe.INPUT_TIMING: "input_humanized",
    EmulatorProbe.SENSOR_LIVENESS: "sensors_replayed",
    EmulatorProbe.XPOSED_PRESENCE: "xposed_obfuscated",
}


def probe_succeeds(probe: EmulatorProbe, env: DeviceEnvironment) -> bool:
    """Whether one probe detects that it runs on an emulator."""
    if env.is_real_device:
        return False
    flag = _PROBE_DEFEATED_BY[probe]
    return not getattr(env, flag)


def successful_probes(
    probes: tuple[EmulatorProbe, ...], env: DeviceEnvironment
) -> list[EmulatorProbe]:
    """All probes of an app that detect the environment as an emulator."""
    return [p for p in probes if probe_succeeds(p, env)]


def app_detects_emulator(
    probes: tuple[EmulatorProbe, ...], env: DeviceEnvironment
) -> bool:
    """An app goes quiet as soon as any one of its probes succeeds."""
    return any(probe_succeeds(p, env) for p in probes)
