"""Sensor trace synthesis and replay (§4.2 hardening, third measure).

The paper replays accelerometer/gyroscope traces collected from real
smartphones on its emulators so sensor-liveness probes see a device
that moves like one in a human hand.  This module synthesizes such
traces with the statistical signature malware probes check: a gravity
component, low-frequency hand tremor, occasional larger gestures, and
realistic sampling jitter.  A flat (all-zeros or constant) feed is what
gives a stock emulator away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Standard gravity, m/s^2.
GRAVITY = 9.81

#: Typical sensor sampling rate (SENSOR_DELAY_GAME), Hz.
SAMPLE_RATE_HZ = 50.0


@dataclass(frozen=True)
class SensorTrace:
    """A replayable 3-axis sensor recording.

    Attributes:
        sensor: "accelerometer" or "gyroscope".
        timestamps: seconds, strictly increasing with realistic jitter.
        samples: (n, 3) axis readings.
    """

    sensor: str
    timestamps: np.ndarray
    samples: np.ndarray

    def __post_init__(self):
        if self.samples.ndim != 2 or self.samples.shape[1] != 3:
            raise ValueError("samples must be (n, 3)")
        if self.timestamps.shape[0] != self.samples.shape[0]:
            raise ValueError("timestamps and samples must align")
        if self.samples.shape[0] >= 2 and not np.all(
            np.diff(self.timestamps) > 0
        ):
            raise ValueError("timestamps must be strictly increasing")

    @property
    def duration_seconds(self) -> float:
        if self.timestamps.size < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def looks_alive(self) -> bool:
        """The liveness heuristic malware probes apply (§4.2).

        A live feed shows per-axis variance (tremor/gestures) and, for
        accelerometers, a plausible gravity magnitude; emulator default
        feeds are flat.
        """
        if self.samples.shape[0] < 10:
            return False
        variance = self.samples.var(axis=0)
        if float(variance.max()) < 1e-4:
            return False
        if self.sensor == "accelerometer":
            magnitude = float(
                np.linalg.norm(self.samples.mean(axis=0))
            )
            return 0.5 * GRAVITY < magnitude < 1.5 * GRAVITY
        return True


class SensorTraceLibrary:
    """Deterministic library of human-handling sensor traces.

    The paper collected traces from a number of real smartphones; here
    they are synthesized per (device, sensor) with a seeded generator so
    every replay is reproducible.
    """

    def __init__(self, n_devices: int = 8, seed: int = 0):
        if n_devices < 1:
            raise ValueError("need at least one recorded device")
        self.n_devices = n_devices
        self._seed = seed

    def _rng(self, device: int, sensor: str) -> np.random.Generator:
        return np.random.default_rng(
            (self._seed, device, hash(sensor) & 0xFFFF)
        )

    def trace(
        self,
        device: int = 0,
        sensor: str = "accelerometer",
        duration_s: float = 10.0,
    ) -> SensorTrace:
        """Synthesize (deterministically) one trace."""
        if sensor not in ("accelerometer", "gyroscope"):
            raise ValueError(f"unknown sensor {sensor!r}")
        if not 0 <= device < self.n_devices:
            raise ValueError(
                f"device index out of range (0..{self.n_devices - 1})"
            )
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = self._rng(device, sensor)
        n = max(10, int(duration_s * SAMPLE_RATE_HZ))
        # Sampling jitter around the nominal period.
        periods = rng.normal(1.0 / SAMPLE_RATE_HZ, 0.0008, size=n)
        timestamps = np.cumsum(np.maximum(periods, 1e-4))
        t = timestamps

        # Low-frequency hand tremor plus occasional gesture bursts.
        tremor_freq = rng.uniform(0.8, 2.5, size=3)
        tremor_phase = rng.uniform(0, 2 * np.pi, size=3)
        tremor_amp = rng.uniform(0.05, 0.25, size=3)
        tremor = tremor_amp * np.sin(
            2 * np.pi * tremor_freq * t[:, None] + tremor_phase
        )
        noise_scale = 0.02 if sensor == "gyroscope" else 0.05
        noise = rng.normal(0.0, noise_scale, size=(n, 3))
        n_gestures = max(1, int(duration_s / 4))
        gestures = np.zeros((n, 3))
        for _ in range(n_gestures):
            center = rng.uniform(0, duration_s)
            width = rng.uniform(0.2, 0.6)
            amp = rng.normal(0.0, 1.2, size=3)
            gestures += amp * np.exp(
                -((t[:, None] - center) ** 2) / (2 * width**2)
            )

        samples = tremor + noise + gestures
        if sensor == "accelerometer":
            # Gravity along a tilted axis (a phone in a hand is never
            # perfectly level).
            tilt = rng.normal(0.0, 0.2, size=3)
            direction = np.array([tilt[0], tilt[1], 1.0])
            direction /= np.linalg.norm(direction)
            samples = samples + GRAVITY * direction
        return SensorTrace(sensor=sensor, timestamps=t, samples=samples)

    def flat_trace(
        self, sensor: str = "accelerometer", duration_s: float = 10.0
    ) -> SensorTrace:
        """What a stock emulator reports: a constant feed."""
        n = max(10, int(duration_s * SAMPLE_RATE_HZ))
        t = np.arange(1, n + 1) / SAMPLE_RATE_HZ
        samples = np.zeros((n, 3))
        if sensor == "accelerometer":
            samples[:, 2] = GRAVITY  # perfectly level, perfectly still
        return SensorTrace(sensor=sensor, timestamps=t, samples=samples)
