"""adb-style session facade over the emulation substrate.

The paper drives each analysis with a fixed adb command sequence:
install the APK, run the Monkey exerciser, pull the logs, uninstall,
and clear residual data (§4.2).  ``AdbSession`` reproduces that command
discipline — every step is recorded in an auditable command log, steps
enforce ordering (no monkey before install), and ``analyze()`` runs the
full recipe the way the production scheduler does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.emulator.backends import EmulatorBackend, GoogleEmulator
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import EmulationResult, emulate_app


class AdbError(RuntimeError):
    """An adb command was issued out of order or against missing state."""


class _State(enum.Enum):
    IDLE = "idle"
    INSTALLED = "installed"
    EXERCISED = "exercised"


@dataclass(frozen=True)
class AdbCommand:
    """One recorded adb invocation."""

    command: str
    target: str
    seconds: float


@dataclass
class AdbSession:
    """One emulator's adb connection.

    Typical use::

        session = AdbSession(sdk, hooks=HookEngine(sdk, key_ids))
        result = session.analyze(apk)      # full §4.2 recipe
        print([c.command for c in session.command_log])
    """

    sdk: AndroidSdk
    backend: EmulatorBackend = field(default_factory=GoogleEmulator)
    env: DeviceEnvironment = field(
        default_factory=DeviceEnvironment.hardened_emulator
    )
    hooks: HookEngine | None = None
    monkey: MonkeyExerciser = field(default_factory=MonkeyExerciser)
    seed: int = 0

    def __post_init__(self):
        if self.hooks is None:
            self.hooks = HookEngine(self.sdk, [])
        self._rng = np.random.default_rng(self.seed)
        self._state = _State.IDLE
        self._installed: Apk | None = None
        self._last_result: EmulationResult | None = None
        self.command_log: list[AdbCommand] = []

    def _record(self, command: str, target: str, seconds: float) -> None:
        self.command_log.append(AdbCommand(command, target, seconds))

    # ------------------------------------------------------------------
    # Individual commands (ordering enforced)
    # ------------------------------------------------------------------

    def install(self, apk: Apk) -> None:
        """``adb install <apk>``"""
        if self._state is not _State.IDLE:
            raise AdbError(
                f"cannot install {apk.package_name}: "
                f"{self._installed.package_name} still present"
            )
        seconds = (
            self.backend.install_overhead_s
            + apk.size_mb / self.backend.install_rate_mb_s
        )
        self._record("install", apk.package_name, seconds)
        self._installed = apk
        self._state = _State.INSTALLED

    def run_monkey(self) -> EmulationResult:
        """``adb shell monkey ...`` — exercise the installed app."""
        if self._state is not _State.INSTALLED:
            raise AdbError("no app installed to exercise")
        result = emulate_app(
            self._installed,
            self.sdk,
            self.backend,
            self.env,
            self.hooks,
            monkey=self.monkey,
            rng=self._rng,
            raise_on_crash=False,
        )
        self._record(
            "shell monkey",
            self._installed.package_name,
            result.analysis_seconds,
        )
        self._last_result = result
        self._state = _State.EXERCISED
        return result

    def pull_logs(self) -> EmulationResult:
        """``adb pull`` — fetch the run's hook log."""
        if self._state is not _State.EXERCISED or self._last_result is None:
            raise AdbError("no emulation logs to pull")
        self._record("pull", self._installed.package_name, 1.0)
        return self._last_result

    def uninstall(self) -> None:
        """``adb uninstall <package>``"""
        if self._installed is None:
            raise AdbError("nothing to uninstall")
        self._record("uninstall", self._installed.package_name, 2.0)
        self._installed = None
        self._state = _State.IDLE

    def clear_data(self) -> None:
        """``adb shell rm -rf`` residual data — always permitted."""
        self._record("shell clear", "*", 1.0)
        self._last_result = None

    # ------------------------------------------------------------------
    # The full recipe
    # ------------------------------------------------------------------

    def analyze(self, apk: Apk) -> EmulationResult:
        """Install → monkey → pull logs → uninstall → clear (§4.2)."""
        self.install(apk)
        try:
            self.run_monkey()
            result = self.pull_logs()
        finally:
            self.uninstall()
            self.clear_data()
        return result

    @property
    def total_seconds(self) -> float:
        """Wall-clock spent across all recorded commands."""
        return sum(c.seconds for c in self.command_log)
