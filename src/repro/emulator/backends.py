"""Emulator backends: Google full-system vs. lightweight Android-x86.

The paper measures a ~70% emulation-time reduction moving from Google's
QEMU-based full-system emulator to a custom Android-x86 + Houdini stack
on the same hardware (Fig. 11: mean per-app analysis 4.3 → 1.3 minutes
when tracking the 426 key APIs), at the cost of <1% of apps being
incompatible and requiring fallback to the full-system emulator.

A backend turns (UI time, hook overhead, app shape) into simulated
wall-clock seconds, decides compatibility, and models crash risk.
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.emulator.translation import BinaryTranslator, TranslationError


class IncompatibleAppError(RuntimeError):
    """The app cannot run on this backend (engine should fall back)."""


class EmulatorCrash(RuntimeError):
    """The app hung or crashed during emulation (SystemServer report)."""


class EmulatorBackend:
    """Base emulation backend.

    Attributes:
        name: backend identifier.
        speed_factor: multiplier on (UI + hook) time relative to the
            reference Google emulator (1.0 = reference).
        install_overhead_s: fixed install/uninstall/cleanup cost.
        install_rate_mb_s: APK install throughput.
        crash_prob: baseline probability an emulation attempt crashes.
        jitter_sigma: lognormal sigma of per-app runtime variation,
            producing the right-skewed time CDFs of Figs. 3/9/11.
    """

    name = "abstract"
    speed_factor = 1.0
    install_overhead_s = 8.0
    install_rate_mb_s = 40.0
    crash_prob = 0.002
    jitter_sigma = 0.35

    def compatible(self, apk: Apk) -> bool:
        """Whether the app can run on this backend at all."""
        return True

    def translation_overhead(self, apk: Apk) -> float:
        """Extra runtime fraction for native-code handling."""
        return 0.0

    def crash_probability(self, apk: Apk) -> float:
        prob = self.crash_prob
        if apk.dex.uses_dynamic_loading:
            prob *= 2.0
        return min(prob, 0.05)

    def emulation_seconds(
        self,
        apk: Apk,
        ui_seconds: float,
        hook_seconds: float,
        rng: np.random.Generator,
    ) -> float:
        """Total simulated analysis time for one attempt."""
        if ui_seconds < 0 or hook_seconds < 0:
            raise ValueError("time components must be non-negative")
        install = self.install_overhead_s + apk.size_mb / self.install_rate_mb_s
        run = (ui_seconds + hook_seconds) * self.speed_factor
        run *= 1.0 + self.translation_overhead(apk)
        jitter = float(rng.lognormal(-self.jitter_sigma**2 / 2, self.jitter_sigma))
        return install * self.speed_factor + run * jitter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} speed={self.speed_factor}>"


class GoogleEmulator(EmulatorBackend):
    """Google's official emulator: QEMU full-system ARM emulation.

    Runs everything (ARM OS image executes ARM native code directly) but
    pays full-system binary-translation cost on every instruction —
    hence the reference ``speed_factor`` of 1.0, which the lightweight
    engine beats by 70%.
    """

    name = "google-emulator"
    speed_factor = 1.0
    crash_prob = 0.002


class LightweightEmulator(EmulatorBackend):
    """Android-x86 + Intel Houdini on commodity x86 servers (§5.1).

    The OS and managed code run natively (no ISA gap); only apps with
    ARM native libraries pay a translation overhead.  Houdini-
    incompatible apps and a small share of Android-x86-incompatible apps
    are rejected so the engine can fall back to :class:`GoogleEmulator`.
    """

    name = "lightweight-emulator"
    speed_factor = 0.30
    crash_prob = 0.004

    #: One in this many apps hits an Android-x86 quirk unrelated to
    #: native code (derived deterministically from the APK hash).
    X86_QUIRK_MODULUS = 400

    def __init__(self, translator: BinaryTranslator | None = None):
        self.translator = translator or BinaryTranslator()

    def _x86_quirk(self, apk: Apk) -> bool:
        return int(apk.md5[:8], 16) % self.X86_QUIRK_MODULUS == 0

    def compatible(self, apk: Apk) -> bool:
        if apk.dex.houdini_incompatible:
            return False
        return not self._x86_quirk(apk)

    def translation_overhead(self, apk: Apk) -> float:
        try:
            report = self.translator.translate(apk.dex)
        except TranslationError as exc:
            raise IncompatibleAppError(str(exc)) from exc
        return report.overhead_fraction


class RealDevice(EmulatorBackend):
    """A physical handset (used in the §4.2 controlled experiment).

    Slightly faster than the reference emulator, never incompatible,
    and — being real hardware — immune to every emulator probe.
    """

    name = "real-device"
    speed_factor = 0.85
    crash_prob = 0.001
