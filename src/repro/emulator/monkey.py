"""Monkey UI exerciser model and the RAC coverage curve.

The paper drives each app with Google's Monkey tool and measures UI
coverage with *Referred Activity Coverage* (RAC): detected activities
over code-referenced activities (§4.2).  Empirically (Fig. 1) RAC rises
steeply within the first ~5K events (76.5% at 126 s) and then saturates
slowly (~86% at 100K events / 35.7 min); APICHECKER picks 5K events as
the efficiency/effectiveness sweet spot.

The average curve here is interpolated through anchor points digitized
from Fig. 1; per-app attainable coverage varies around the 86% ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk

#: (monkey events, average RAC) anchors digitized from Fig. 1.
_RAC_ANCHORS_EVENTS = np.array(
    [0.0, 250.0, 500.0, 1e3, 2e3, 3e3, 5e3, 8e3, 1e4, 2e4, 5e4, 1e5, 2e5]
)
_RAC_ANCHORS_RAC = np.array(
    [0.0, 0.22, 0.38, 0.55, 0.67, 0.73, 0.765, 0.775, 0.78, 0.80, 0.83, 0.86, 0.862]
)

#: Emulation pace on the reference (Google) emulator: 5K events in 126 s.
SECONDS_PER_EVENT = 126.0 / 5000.0

#: The operating point chosen in §4.2.
DEFAULT_MONKEY_EVENTS = 5000

#: Average RAC ceiling across apps (Fig. 1 plateau).
_RAC_CEILING = 0.86


def rac_for_events(n_events: float | np.ndarray) -> float | np.ndarray:
    """Average RAC attained after ``n_events`` Monkey events (Fig. 1)."""
    events = np.asarray(n_events, dtype=float)
    if np.any(events < 0):
        raise ValueError("n_events must be non-negative")
    rac = np.interp(events, _RAC_ANCHORS_EVENTS, _RAC_ANCHORS_RAC)
    if np.isscalar(n_events) or np.ndim(n_events) == 0:
        return float(rac)
    return rac


@dataclass(frozen=True)
class MonkeyRun:
    """Outcome of exercising one app's UI.

    Attributes:
        n_events: events injected.
        achieved_rac: referred-activity coverage reached for this app.
        visited_activities: number of distinct referenced activities hit.
        referenced_activities: the RAC denominator for this app.
        ui_seconds: time spent injecting events (reference emulator pace).
    """

    n_events: int
    achieved_rac: float
    visited_activities: int
    referenced_activities: int
    ui_seconds: float


class MonkeyExerciser:
    """Generates UI event streams and explores an app's activities.

    ``throttle`` and ``pct_touch`` mirror the Monkey parameters the paper
    tunes to humanize input (500 ms inter-event gap, 50–80% touch events
    depending on app type); they matter for the INPUT_TIMING emulator
    probe, not for coverage.
    """

    def __init__(
        self,
        n_events: int = DEFAULT_MONKEY_EVENTS,
        throttle_ms: float = 500.0,
        pct_touch: float = 0.65,
        seed: int = 0,
    ):
        if n_events <= 0:
            raise ValueError("n_events must be positive")
        if throttle_ms < 0:
            raise ValueError("throttle_ms must be non-negative")
        if not 0.0 <= pct_touch <= 1.0:
            raise ValueError("pct_touch must be a fraction")
        self.n_events = n_events
        self.throttle_ms = throttle_ms
        self.pct_touch = pct_touch
        self._rng = np.random.default_rng(seed)

    @property
    def humanized(self) -> bool:
        """Whether the event stream mimics human input (§4.2 tuning)."""
        return 400.0 <= self.throttle_ms <= 700.0 and 0.5 <= self.pct_touch <= 0.8

    def exercise(
        self, apk: Apk, rng: np.random.Generator | None = None
    ) -> MonkeyRun:
        """Explore one app and report the achieved coverage.

        Activities with larger ``reach_weight`` are visited first; apps
        whose UI graph is deeper than average attain slightly lower RAC.
        """
        rng = rng or self._rng
        referenced = apk.manifest.referenced_activities
        n_ref = max(1, len(referenced))
        mean_rac = rac_for_events(self.n_events)
        # Per-app attainable ceiling varies around the average plateau.
        app_ceiling = float(np.clip(rng.normal(_RAC_CEILING, 0.05), 0.5, 1.0))
        rac = float(np.clip(mean_rac / _RAC_CEILING * app_ceiling, 0.0, 1.0))
        visited = int(round(rac * n_ref))
        visited = max(1, min(n_ref, visited))
        return MonkeyRun(
            n_events=self.n_events,
            achieved_rac=visited / n_ref,
            visited_activities=visited,
            referenced_activities=n_ref,
            ui_seconds=self.n_events * SECONDS_PER_EVENT,
        )


class FuzzingExerciser(MonkeyExerciser):
    """Coverage-guided UI exploration (the paper's §6 future work).

    Where Monkey fires events blindly, a fuzzing-style exerciser tracks
    which Activities have been visited and biases input generation
    toward unexplored UI states.  Modelled as an *event-efficiency*
    multiplier: each event is worth ``guidance_factor`` random events in
    coverage terms, at a per-event instrumentation overhead.

    The coverage ceiling also rises slightly: guided input can satisfy
    preconditions (login forms, list scrolling) random events rarely hit.
    """

    #: Coverage-equivalent random events per guided event.
    guidance_factor = 4.0
    #: Per-event slowdown from state tracking and input synthesis.
    instrumentation_overhead = 1.35
    #: Extra attainable coverage over Monkey's per-app ceiling.
    ceiling_bonus = 0.06

    def exercise(
        self, apk: Apk, rng: np.random.Generator | None = None
    ) -> MonkeyRun:
        rng = rng or self._rng
        referenced = apk.manifest.referenced_activities
        n_ref = max(1, len(referenced))
        effective_events = self.n_events * self.guidance_factor
        mean_rac = rac_for_events(min(effective_events, 200_000))
        ceiling = _RAC_CEILING + self.ceiling_bonus
        app_ceiling = float(np.clip(rng.normal(ceiling, 0.04), 0.5, 1.0))
        rac = float(np.clip(mean_rac / _RAC_CEILING * app_ceiling, 0.0, 1.0))
        visited = max(1, min(n_ref, int(round(rac * n_ref))))
        return MonkeyRun(
            n_events=self.n_events,
            achieved_rac=visited / n_ref,
            visited_activities=visited,
            referenced_activities=n_ref,
            ui_seconds=(
                self.n_events * SECONDS_PER_EVENT
                * self.instrumentation_overhead
            ),
        )
