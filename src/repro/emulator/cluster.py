"""Analysis server cluster and emulator scheduling.

The paper's measurement study ran on 16 HP ProLiant DL-380 servers, each
with a 5×4-core Xeon and 256 GB of memory, running 16 emulators pinned
to 16 cores while 4 cores handle task scheduling, status monitoring and
logging (§4.2).  The production APICHECKER deployment uses a *single*
such server and vets ~10K apps per day (§5.2).

Scheduling here is simulated list scheduling: each emulator slot is a
queue; an app is dispatched to the earliest-available slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.obs import DEFAULT_MINUTES_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one app analysis on the cluster."""

    app_index: int
    server: int
    slot: int
    start_minute: float
    end_minute: float


@dataclass
class ScheduleReport:
    """Outcome of scheduling a batch of analyses.

    Attributes:
        tasks: per-app placements.
        makespan_minutes: when the last analysis finishes.
        slot_busy_minutes: total busy time per emulator slot.
    """

    tasks: list[ScheduledTask]
    makespan_minutes: float
    slot_busy_minutes: np.ndarray
    executed: bool = False

    @property
    def utilization(self) -> float:
        """Mean slot utilization over the makespan (0.0 when empty)."""
        if self.makespan_minutes <= 0:
            return 0.0
        return float(
            self.slot_busy_minutes.mean() / self.makespan_minutes
        )

    def throughput_per_day(self) -> float:
        """Apps per 24h at the observed pace (0.0 for empty batches)."""
        if self.makespan_minutes <= 0:
            return 0.0
        return len(self.tasks) * (24 * 60) / self.makespan_minutes

    def register_metrics(
        self, registry: MetricsRegistry, prefix: str = "cluster"
    ) -> None:
        """Record this schedule's slot-occupancy figures into a registry.

        Emits ``<prefix>_tasks_total`` / ``<prefix>_busy_minutes_total``
        counters, per-slot busy-time observations into a
        ``<prefix>_slot_busy_minutes`` histogram, and makespan /
        utilization gauges — the occupancy surface the 16-emulator
        server is operated by.
        """
        registry.inc(f"{prefix}_tasks_total", len(self.tasks))
        registry.inc(
            f"{prefix}_busy_minutes_total",
            float(self.slot_busy_minutes.sum()),
        )
        for slot_busy in self.slot_busy_minutes:
            registry.observe(
                f"{prefix}_slot_busy_minutes",
                float(slot_busy),
                buckets=DEFAULT_MINUTES_BUCKETS,
            )
        registry.set_gauge(
            f"{prefix}_makespan_minutes", self.makespan_minutes
        )
        registry.set_gauge(f"{prefix}_slot_utilization", self.utilization)
        registry.set_gauge(f"{prefix}_slots", len(self.slot_busy_minutes))

    @classmethod
    def from_executed(
        cls,
        tasks: list[ScheduledTask],
        n_slots: int,
        slots_per_server: int,
    ) -> "ScheduleReport":
        """Build a report from tasks as a pipeline *actually* ran them.

        Unlike :meth:`ServerCluster.schedule`, which simulates list
        scheduling over predicted durations, the placements here come
        from real execution order: each task's slot and start/end were
        recorded when a worker completed it.
        """
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        busy = np.zeros(n_slots)
        for t in tasks:
            flat = t.server * slots_per_server + t.slot
            busy[flat] += t.end_minute - t.start_minute
        makespan = max((t.end_minute for t in tasks), default=0.0)
        return cls(list(tasks), makespan, busy, executed=True)


@dataclass(frozen=True)
class AnalysisServer:
    """One x86 analysis server.

    Attributes:
        cores: physical cores (paper: 20 = 5x4-core Xeon @ 2.50 GHz).
        emulator_slots: cores running emulators (paper: 16).
        memory_gb: installed memory (paper: 256).
    """

    cores: int = 20
    emulator_slots: int = 16
    memory_gb: int = 256

    def __post_init__(self):
        if self.emulator_slots >= self.cores:
            raise ValueError(
                "some cores must remain for scheduling/monitoring/logging"
            )
        if self.emulator_slots <= 0:
            raise ValueError("need at least one emulator slot")

    @property
    def service_cores(self) -> int:
        """Cores reserved for scheduling, monitoring and logging."""
        return self.cores - self.emulator_slots


class ServerCluster:
    """A fleet of analysis servers with earliest-slot-first dispatch."""

    def __init__(self, n_servers: int = 1, server: AnalysisServer | None = None):
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        self.n_servers = n_servers
        self.server = server or AnalysisServer()

    @property
    def total_slots(self) -> int:
        return self.n_servers * self.server.emulator_slots

    def schedule(self, durations_minutes: np.ndarray | list[float]) -> ScheduleReport:
        """Dispatch analyses (in submission order) onto emulator slots."""
        durations = np.asarray(durations_minutes, dtype=float)
        if durations.size and durations.min() < 0:
            raise ValueError("durations must be non-negative")
        slots = self.total_slots
        heap: list[tuple[float, int]] = [(0.0, s) for s in range(slots)]
        busy = np.zeros(slots)
        tasks: list[ScheduledTask] = []
        for i, dur in enumerate(durations):
            available_at, slot = heappop(heap)
            end = available_at + float(dur)
            busy[slot] += float(dur)
            tasks.append(
                ScheduledTask(
                    app_index=i,
                    server=slot // self.server.emulator_slots,
                    slot=slot % self.server.emulator_slots,
                    start_minute=available_at,
                    end_minute=end,
                )
            )
            heappush(heap, (end, slot))
        makespan = max((t.end_minute for t in tasks), default=0.0)
        return ScheduleReport(tasks, makespan, busy)
