"""Experiment harness: scaled worlds and table/figure runners.

Every benchmark under ``benchmarks/`` builds on this package: a *world*
(SDK + corpus generator + train/test corpora + cached all-API study
observations) at a chosen :class:`~repro.experiments.config.ScaleProfile`,
plus printing helpers that emit the same rows/series the paper reports.
"""

from repro.experiments.config import ScaleProfile
from repro.experiments.harness import (
    World,
    build_world,
    cdf_stats,
    print_table,
)

__all__ = [
    "ScaleProfile",
    "World",
    "build_world",
    "cdf_stats",
    "print_table",
]
