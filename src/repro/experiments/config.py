"""Scale profiles for experiments.

The paper runs at 500K apps x 50K APIs; that is out of reach for a
laptop benchmark suite, so experiments run at named scaled-down
profiles.  Counts the paper fixes by construction (Set-P = 112,
Set-S = 70, canonical features) are scale-invariant; data-driven counts
(Set-C, key-set size) are calibrated to land near the paper's values at
the BENCH profile; simulated timings are scale-invariant by design
(they depend on per-app invocation volumes, not corpus size).

Select a profile for the benchmark suite with the ``REPRO_SCALE``
environment variable (``smoke``, ``bench`` — default, or ``large``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ScaleProfile:
    """Sizing knobs for one experiment run.

    Attributes:
        name: profile identifier.
        n_apis: synthetic SDK size (paper: ~50K).
        n_train: training corpus size (paper: ~500K).
        n_test: held-out evaluation corpus size.
        rf_trees: random-forest ensemble size.
        seed: world seed.
    """

    name: str
    n_apis: int
    n_train: int
    n_test: int
    rf_trees: int = 60
    seed: int = 7

    def __post_init__(self):
        if min(self.n_apis, self.n_train, self.n_test, self.rf_trees) < 1:
            raise ValueError("all profile sizes must be positive")

    @property
    def scale_note(self) -> str:
        return (
            f"[{self.name}] {self.n_apis} APIs (paper ~50K), "
            f"{self.n_train} train / {self.n_test} test apps (paper ~500K)"
        )


SMOKE = ScaleProfile(name="smoke", n_apis=1200, n_train=500, n_test=250,
                     rf_trees=30)
BENCH = ScaleProfile(name="bench", n_apis=4000, n_train=3000, n_test=1200)
LARGE = ScaleProfile(name="large", n_apis=8000, n_train=8000, n_test=3000,
                     rf_trees=80)

_PROFILES = {p.name: p for p in (SMOKE, BENCH, LARGE)}


def profile_from_env(default: str = "bench") -> ScaleProfile:
    """Resolve the active profile from ``REPRO_SCALE``."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; choose from {sorted(_PROFILES)}"
        ) from None
