"""Shared experiment world and reporting helpers.

A :class:`World` bundles everything most experiments need — the SDK,
the corpus generator, labelled train/test corpora, and lazily computed
all-API study observations (the expensive emulation pass) — memoized
per (profile, seed) so a benchmark session builds each world once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.android.sdk import AndroidSdk, SdkSpec
from repro.core.engine import DynamicAnalysisEngine
from repro.core.features import AppObservation
from repro.core.selection import (
    KeyApiSelection,
    invocation_matrix,
    select_key_apis,
)
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.emulator.backends import GoogleEmulator
from repro.experiments.config import ScaleProfile


@dataclass
class World:
    """One fully generated experiment world."""

    profile: ScaleProfile
    sdk: AndroidSdk
    generator: CorpusGenerator
    train: AppCorpus
    test: AppCorpus
    _train_obs: list[AppObservation] | None = field(default=None, repr=False)
    _test_obs: list[AppObservation] | None = field(default=None, repr=False)
    _selection: KeyApiSelection | None = field(default=None, repr=False)

    def _study(self, corpus: AppCorpus, seed: int) -> list[AppObservation]:
        engine = DynamicAnalysisEngine(
            self.sdk,
            tracked_api_ids=np.arange(len(self.sdk)),
            primary=GoogleEmulator(),
            fallback=None,
            seed=seed,
        )
        return engine.observations(corpus)

    @property
    def train_observations(self) -> list[AppObservation]:
        """All-API study observations for the training corpus (cached)."""
        if self._train_obs is None:
            self._train_obs = self._study(self.train, self.profile.seed + 11)
        return self._train_obs

    @property
    def test_observations(self) -> list[AppObservation]:
        if self._test_obs is None:
            self._test_obs = self._study(self.test, self.profile.seed + 13)
        return self._test_obs

    @property
    def train_api_matrix(self) -> np.ndarray:
        return invocation_matrix(self.train_observations, len(self.sdk))

    @property
    def test_api_matrix(self) -> np.ndarray:
        return invocation_matrix(self.test_observations, len(self.sdk))

    @property
    def selection(self) -> KeyApiSelection:
        """The four-step key-API selection over the training corpus."""
        if self._selection is None:
            self._selection = select_key_apis(
                self.train_api_matrix, self.train.labels, self.sdk
            )
        return self._selection


_WORLD_CACHE: dict[tuple[str, int], World] = {}


def build_world(profile: ScaleProfile) -> World:
    """Build (or fetch the memoized) world for a profile."""
    key = (profile.name, profile.seed)
    if key not in _WORLD_CACHE:
        sdk = AndroidSdk.generate(
            SdkSpec(n_apis=profile.n_apis, seed=profile.seed)
        )
        generator = CorpusGenerator(sdk, seed=profile.seed + 1)
        train = generator.generate(profile.n_train)
        test = generator.generate(profile.n_test)
        _WORLD_CACHE[key] = World(
            profile=profile,
            sdk=sdk,
            generator=generator,
            train=train,
            test=test,
        )
    return _WORLD_CACHE[key]


def clear_world_cache() -> None:
    """Drop memoized worlds (tests use this to bound memory)."""
    _WORLD_CACHE.clear()


# ----------------------------------------------------------------------
# Reporting helpers
# ----------------------------------------------------------------------


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned text table (the bench harness's output format)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def cdf_stats(values) -> dict[str, float]:
    """Min/mean/median/max summary as the paper annotates its CDFs."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cdf_stats needs at least one value")
    return {
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
    }


def print_cdf(title: str, values, unit: str = "min") -> dict[str, float]:
    """Print a CDF summary, decile series, and an ASCII CDF plot."""
    from repro.experiments.figures import ascii_cdf

    stats = cdf_stats(values)
    arr = np.sort(np.asarray(list(values), dtype=float))
    deciles = np.percentile(arr, np.arange(0, 101, 10))
    print(f"\n=== {title} ===")
    print(
        "  ".join(
            f"{k}={v:.2f}{unit}" for k, v in stats.items()
        )
    )
    print(
        "deciles:",
        " ".join(f"{d:.2f}" for d in deciles),
    )
    if arr.size >= 2 and arr.min() < arr.max():
        print(ascii_cdf(arr, width=56, height=8))
    return stats


def print_series(
    title: str, xs, ys, x_label: str = "x", y_label: str = "y",
    log_x: bool = False,
) -> None:
    """Print a series as an ASCII line chart (figure-style output)."""
    from repro.experiments.figures import ascii_chart

    print(f"\n=== {title} ===")
    print(
        ascii_chart(
            xs, ys, width=56, height=10,
            x_label=x_label, y_label=y_label, log_x=log_x,
        )
    )
