"""Terminal figure rendering for the benchmark harness.

The paper's evaluation is figure-heavy; the bench suite regenerates
every series and these helpers render them as ASCII plots so a terminal
run shows the *shape* (knees, plateaus, crossovers) next to the raw
numbers.  Pure string output — no plotting dependencies.
"""

from __future__ import annotations

import numpy as np

_BARS = " .:-=+*#%@"


def _scale(values: np.ndarray, levels: int) -> np.ndarray:
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        return np.zeros(values.size, dtype=int)
    return np.clip(
        ((values - lo) / (hi - lo) * (levels - 1)).round().astype(int),
        0,
        levels - 1,
    )


def sparkline(values) -> str:
    """One-line intensity strip for a series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("sparkline needs at least one value")
    idx = _scale(arr, len(_BARS))
    return "".join(_BARS[i] for i in idx)


def ascii_chart(
    xs,
    ys,
    width: int = 64,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render a line chart as a multi-line string.

    Args:
        xs, ys: the series (equal lengths, at least two points).
        width, height: plot body size in characters.
        x_label, y_label: axis annotations.
        log_x: place x positions on a log scale (Fig. 6-style sweeps).
    """
    xs = np.asarray(list(xs), dtype=float)
    ys = np.asarray(list(ys), dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be 1-D of equal length")
    if xs.size < 2:
        raise ValueError("need at least two points")
    if width < 8 or height < 3:
        raise ValueError("chart too small to render")
    if log_x:
        if xs.min() <= 0:
            raise ValueError("log_x requires positive xs")
        x_pos = np.log(xs)
    else:
        x_pos = xs

    cols = _scale(x_pos, width)
    rows = _scale(ys, height)
    grid = [[" "] * width for _ in range(height)]
    order = np.argsort(cols)
    # Connect consecutive points with interpolated marks.
    for a, b in zip(order[:-1], order[1:]):
        c0, c1 = int(cols[a]), int(cols[b])
        r0, r1 = int(rows[a]), int(rows[b])
        steps = max(abs(c1 - c0), abs(r1 - r0), 1)
        for s in range(steps + 1):
            c = round(c0 + (c1 - c0) * s / steps)
            r = round(r0 + (r1 - r0) * s / steps)
            grid[height - 1 - r][c] = "·"
    for col, row in zip(cols, rows):
        grid[height - 1 - int(row)][int(col)] = "o"

    y_hi, y_lo = ys.max(), ys.min()
    lines = []
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = f"{y_hi:>9.2f} |"
        elif i == height - 1:
            prefix = f"{y_lo:>9.2f} |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row_chars))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 11
        + f"{xs.min():g}".ljust(width // 2)
        + f"{xs.max():g}".rjust(width // 2)
    )
    lines.append(" " * 11 + f"{x_label} -> ({y_label})")
    return "\n".join(lines)


def ascii_cdf(values, width: int = 64, height: int = 10) -> str:
    """Render the empirical CDF of a sample."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size < 2:
        raise ValueError("need at least two values")
    fractions = np.arange(1, arr.size + 1) / arr.size
    return ascii_chart(
        arr, fractions, width=width, height=height,
        x_label="value", y_label="CDF",
    )


def print_figure(title: str, chart: str) -> None:
    """Print a rendered chart under a banner."""
    print(f"\n--- {title} ---")
    print(chart)
