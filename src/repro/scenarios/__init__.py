"""Adversarial campaign simulation over the online serving tier.

``repro.scenarios`` turns the repo's corpus generator and serving stack
into a red-team harness: declarative, seeded :class:`Campaign` specs
describe multi-day attack timelines (repackaging waves, evasion arms
races, hidden loaders, label poisoning, admission floods), and
:class:`CampaignRunner` replays them through the real
:class:`~repro.serve.service.OnlineVettingService` or multi-shard
:class:`~repro.serve.shard.ShardRouter`, producing a structured
:class:`CampaignReport` of per-day precision/recall, latency
percentiles, backpressure counts, rules-explanation coverage, and
model-evolution decisions.
"""

from repro.scenarios.campaign import (
    AttackWave,
    Campaign,
    bundled_campaigns,
    campaign_by_name,
)
from repro.scenarios.driftyear import (
    DriftDayReport,
    DriftYearReport,
    DriftYearRunner,
    replay_drift_year,
)
from repro.scenarios.report import CampaignReport, DayReport
from repro.scenarios.runner import CampaignRunner, run_campaign
from repro.scenarios.traffic import PlannedSubmission, plan_traffic

__all__ = [
    "AttackWave",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "DayReport",
    "DriftDayReport",
    "DriftYearReport",
    "DriftYearRunner",
    "PlannedSubmission",
    "bundled_campaigns",
    "campaign_by_name",
    "plan_traffic",
    "replay_drift_year",
    "run_campaign",
]
