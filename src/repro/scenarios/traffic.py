"""Turn a :class:`~repro.scenarios.campaign.Campaign` into traffic.

The planner is the determinism boundary of the scenario harness: given
a campaign spec and a fresh, seed-matched :class:`CorpusGenerator`, it
produces the *exact same* per-day submission schedule every time.  The
runner can therefore replay one plan against a single in-process
service and a multi-shard router and compare verdict sets byte for
byte.

Planner-level coins (is this baseline draw malicious?  which family
does the wave pick next?) come from a dedicated RNG stream derived from
the campaign seed; app *content* comes from the generator's own
internal stream, so submission order alone fixes every blueprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.corpus.generator import CorpusGenerator
from repro.scenarios.campaign import AttackWave, Campaign

__all__ = ["PlannedSubmission", "plan_traffic"]

#: Offset separating the planner's coin stream from the generator's.
_PLANNER_STREAM_OFFSET = 17


@dataclass(frozen=True)
class PlannedSubmission:
    """One scheduled submission: an app, its lane, and its provenance."""

    apk: Apk
    lane: str
    day: int
    wave: str | None  # None for organic baseline traffic


def _wave_app(
    wave: AttackWave,
    generator: CorpusGenerator,
    day: int,
    index: int,
    coins: np.random.Generator,
) -> Apk:
    """Sample the ``index``-th app of ``wave`` on ``day``."""
    if wave.kind == "repackaged":
        return generator.sample_repackaged(
            host_archetype=wave.host,
            payload_archetype=wave.payload,
            day=day,
        )
    if wave.kind == "family":
        family = wave.families[index % len(wave.families)]
        return generator.sample_evasive(
            family,
            day=day,
            force_probe=wave.force_probes,
            hide_signature=wave.hide_payload,
        )
    # "mixed": background-distribution volume — a flood, not a family.
    malicious = bool(coins.random() < 0.5)
    return generator.sample_app(malicious=malicious, day=day)


def plan_traffic(
    campaign: Campaign, generator: CorpusGenerator
) -> list[list[PlannedSubmission]]:
    """The campaign's full submission schedule, one list per day.

    ``generator`` must be freshly constructed with the campaign's seed
    (and a shared catalog, if verdicts are to be compared against a
    model trained on the same behaviour world) — the plan consumes its
    internal stream, so a reused generator yields a different schedule.

    Within a day, baseline traffic precedes the waves (in spec order):
    the attack arrives on top of the market's steady state.
    """
    coins = np.random.default_rng(campaign.seed + _PLANNER_STREAM_OFFSET)
    schedule: list[list[PlannedSubmission]] = []
    for day in range(campaign.days):
        planned: list[PlannedSubmission] = []
        for _ in range(campaign.baseline_per_day):
            malicious = bool(coins.random() < campaign.malware_rate)
            apk = generator.sample_app(
                malicious=malicious,
                day=day,
                update_prob=campaign.update_fraction,
            )
            planned.append(PlannedSubmission(apk, "bulk", day, None))
        for wave in campaign.waves:
            if not wave.active_on(day):
                continue
            for index in range(wave.per_day):
                apk = _wave_app(wave, generator, day, index, coins)
                planned.append(
                    PlannedSubmission(apk, wave.lane, day, wave.name)
                )
        schedule.append(planned)
    return schedule
