"""Declarative adversarial campaign specs.

A :class:`Campaign` is a named, seeded, JSON-serializable description
of the market under attack: a multi-day timeline of baseline traffic
perturbed by one or more :class:`AttackWave` s.  The spec carries *no*
behaviour — :mod:`repro.scenarios.traffic` turns it into a
deterministic submission schedule and
:class:`~repro.scenarios.runner.CampaignRunner` replays that schedule
through the real online serving tier.

Five campaigns ship bundled (:func:`bundled_campaigns`), one per attack
class the paper's operational experience calls out:

* ``repackaging_wave`` — one malware payload grafted into many cloned
  benign apps, flooding submissions far above steady-state;
* ``evasion_arms_race`` — probe-forced evasive families, meant to be
  replayed with emulator hardening on vs. off (§4.2);
* ``hidden_loader`` — reflection/dynamic-loading families whose API
  behaviour is invisible to hooks, detectable only via the auxiliary
  P+I features (§4.5);
* ``label_noise`` — poisoned triage feedback corrupting the retraining
  loop;
* ``burst_flood`` — a pure volume attack against admission control,
  with an escalated trickle that must not starve.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

__all__ = [
    "AttackWave",
    "Campaign",
    "bundled_campaigns",
    "campaign_by_name",
]

#: Wave kinds: how the wave's apps are sampled.
WAVE_KINDS = ("repackaged", "family", "mixed")


@dataclass(frozen=True)
class AttackWave:
    """One coordinated attack riding the campaign timeline.

    Attributes:
        name: wave identifier (campaign reports group recall by it).
        kind: ``repackaged`` (payload grafted into cloned benign hosts),
            ``family`` (straight family samples, optionally probe-forced
            or reflection-hidden), or ``mixed`` (background-distribution
            volume — a flood, not a family).
        start_day / days: the half-open day window the wave is active.
        per_day: submissions this wave adds on each active day.
        payload / host: malware payload and benign host archetypes
            (``repackaged`` only).
        families: family archetypes cycled through (``family`` only).
        lane: priority lane the wave submits on.
        force_probes: every wave app performs emulator detection.
        hide_payload: signature APIs move behind reflection + dynamic
            loading (only the P+I auxiliary features still see them).
    """

    name: str
    kind: str
    per_day: int
    start_day: int = 0
    days: int = 1
    payload: str | None = None
    host: str | None = None
    families: tuple[str, ...] = ()
    lane: str = "bulk"
    force_probes: bool = False
    hide_payload: bool = False

    def __post_init__(self):
        if self.kind not in WAVE_KINDS:
            raise ValueError(
                f"unknown wave kind {self.kind!r}; expected one of "
                f"{WAVE_KINDS}"
            )
        if self.per_day < 1:
            raise ValueError("per_day must be >= 1")
        if self.start_day < 0 or self.days < 1:
            raise ValueError("wave window must satisfy start_day >= 0, days >= 1")
        if self.kind == "repackaged" and not (self.payload and self.host):
            raise ValueError("repackaged waves need payload and host")
        if self.kind == "family" and not self.families:
            raise ValueError("family waves need at least one family")

    def active_on(self, day: int) -> bool:
        return self.start_day <= day < self.start_day + self.days

    def to_dict(self) -> dict:
        raw = dataclasses.asdict(self)
        raw["families"] = list(self.families)
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "AttackWave":
        raw = dict(raw)
        raw["families"] = tuple(raw.get("families", ()))
        return cls(**raw)


@dataclass(frozen=True)
class Campaign:
    """A named, seeded, serializable adversarial campaign.

    Attributes:
        name / description: identity and intent.
        seed: drives *all* sampling — two runs of the same campaign
            spec produce byte-identical submission schedules, which is
            what makes cross-shard-count verdict determinism testable.
        days: timeline length.
        baseline_per_day: organic submissions per day (the market's
            steady state the attack is super-imposed on).
        malware_rate: malice rate of the baseline traffic.
        update_fraction: share of baseline draws that are updates.
        waves: the attack itself.
        label_flip_rate: share of triage feedback labels adversarially
            inverted before retraining (the poisoning knob).
        hardened: run the serving model's emulators hardened (True,
            production) or stock (False, the §4.2 ablation arm).
        retrain_day: when set, triage feedback on everything served
            through this day is gathered at the day boundary, a
            candidate model is retrained and gated, and — on promotion
            — rolled out to the serving tier before the next day.
        max_depth: admission bound the runner should configure
            (``None`` keeps the service default); flood campaigns set
            it low enough to force 429s.
    """

    name: str
    description: str
    seed: int
    days: int
    baseline_per_day: int
    waves: tuple[AttackWave, ...] = ()
    malware_rate: float = 0.05
    update_fraction: float = 0.5
    label_flip_rate: float = 0.0
    hardened: bool = True
    retrain_day: int | None = None
    max_depth: int | None = None

    def __post_init__(self):
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.baseline_per_day < 0:
            raise ValueError("baseline_per_day must be >= 0")
        for rate in (self.malware_rate, self.update_fraction,
                     self.label_flip_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate out of [0, 1]: {rate}")
        if self.retrain_day is not None and not (
            0 <= self.retrain_day < self.days
        ):
            raise ValueError("retrain_day must fall within the timeline")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None)")

    # -- sizing --------------------------------------------------------

    @property
    def planned_submissions(self) -> int:
        """Upper bound on scheduled submissions (before md5 coalescing)."""
        total = self.days * self.baseline_per_day
        for wave in self.waves:
            active = sum(
                1 for day in range(self.days) if wave.active_on(day)
            )
            total += active * wave.per_day
        return total

    def scaled(self, factor: float) -> "Campaign":
        """The same campaign with per-day volumes scaled by ``factor``.

        Keeps every active wave at >= 1 submission/day so a scaled-down
        smoke run still exercises the attack.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        waves = tuple(
            dataclasses.replace(
                wave, per_day=max(1, int(round(wave.per_day * factor)))
            )
            for wave in self.waves
        )
        return dataclasses.replace(
            self,
            baseline_per_day=max(1, int(round(self.baseline_per_day * factor))),
            waves=waves,
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        raw = dataclasses.asdict(self)
        raw["waves"] = [wave.to_dict() for wave in self.waves]
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "Campaign":
        raw = dict(raw)
        raw["waves"] = tuple(
            AttackWave.from_dict(w) for w in raw.get("waves", ())
        )
        return cls(**raw)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Bundled campaigns
# ----------------------------------------------------------------------


def bundled_campaigns() -> dict[str, Campaign]:
    """The five named campaigns shipped with the simulator."""
    campaigns = (
        Campaign(
            name="repackaging_wave",
            description=(
                "One sms_fraud payload grafted into a flood of cloned "
                "benign game apps, 2x the market's steady state; triage "
                "feedback lands after day 0 and retrains the model."
            ),
            seed=1101,
            days=3,
            baseline_per_day=8,
            malware_rate=0.05,
            retrain_day=0,
            waves=(
                AttackWave(
                    name="repackage",
                    kind="repackaged",
                    per_day=16,
                    start_day=0,
                    days=3,
                    payload="sms_fraud",
                    host="game",
                ),
            ),
        ),
        Campaign(
            name="evasion_arms_race",
            description=(
                "Probe-forced evasive families (botnet, ransomware, "
                "update_attack): every wave app performs emulator "
                "detection and goes quiet when a probe succeeds.  Replay "
                "with hardened=False for the stock-emulator arm."
            ),
            seed=1102,
            days=2,
            baseline_per_day=6,
            malware_rate=0.05,
            waves=(
                AttackWave(
                    name="evasive",
                    kind="family",
                    per_day=10,
                    start_day=0,
                    days=2,
                    families=("botnet", "ransomware", "update_attack"),
                    force_probes=True,
                ),
            ),
        ),
        Campaign(
            name="hidden_loader",
            description=(
                "Reflection/dynamic-loading families (update_attack, "
                "lowkey_spy) with every signature API hidden from the "
                "hooks — only the auxiliary P+I features still see them."
            ),
            seed=1103,
            days=2,
            baseline_per_day=6,
            malware_rate=0.05,
            waves=(
                AttackWave(
                    name="hidden",
                    kind="family",
                    per_day=8,
                    start_day=0,
                    days=2,
                    families=("update_attack", "lowkey_spy"),
                    hide_payload=True,
                ),
            ),
        ),
        Campaign(
            name="label_noise",
            description=(
                "Poisoned triage feedback: 35% of the labels fed back "
                "into day-1 retraining are inverted, corrupting the "
                "evolution loop's candidate gate."
            ),
            seed=1104,
            days=3,
            baseline_per_day=8,
            malware_rate=0.15,
            label_flip_rate=0.35,
            retrain_day=1,
            waves=(
                AttackWave(
                    name="noise_cover",
                    kind="family",
                    per_day=6,
                    start_day=0,
                    days=3,
                    families=("sms_fraud", "privacy_stealer"),
                ),
            ),
        ),
        Campaign(
            name="burst_flood",
            description=(
                "Pure volume: a one-day bulk burst far past the "
                "admission bound (max_depth=16 forces 429 backpressure) "
                "with an escalated trickle that must not starve."
            ),
            seed=1105,
            days=1,
            baseline_per_day=4,
            malware_rate=0.10,
            max_depth=16,
            waves=(
                AttackWave(
                    name="flood",
                    kind="mixed",
                    per_day=64,
                    start_day=0,
                    days=1,
                ),
                AttackWave(
                    name="urgent",
                    kind="mixed",
                    per_day=4,
                    start_day=0,
                    days=1,
                    lane="escalated",
                ),
            ),
        ),
    )
    return {c.name: c for c in campaigns}


def campaign_by_name(name: str) -> Campaign:
    campaigns = bundled_campaigns()
    try:
        return campaigns[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; bundled: {sorted(campaigns)}"
        ) from None
