"""Replay a campaign through the real online serving tier.

:class:`CampaignRunner` is deliberately *not* a simulator shortcut: it
publishes the trained model into a real
:class:`~repro.serve.registry.ModelRegistry`, stands up either a single
in-process :class:`~repro.serve.service.OnlineVettingService`
(``shards=1``) or a multi-process :class:`~repro.serve.shard.ShardRouter`
(``shards>=2``), and pushes every planned submission through the same
admission control, WAL, micro-batch dispatcher, rules evaluator, and
model-lease machinery production traffic takes.  Backpressure is
handled the way a well-behaved client handles it — bounded retry with
backoff on 429/503, never dropping a submission — so the burst_flood
acceptance gate ("zero lost under flood") measures the tier, not the
harness.

Day boundaries are where model evolution happens: when the campaign
sets ``retrain_day``, triage feedback (ground truth, optionally
label-poisoned) on everything served so far is folded into the training
set, a candidate is fitted and gated against the live model, and a
promoted candidate is rolled out — a hot swap in-process, a rolling
kill/replay/restart across shards.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.checker import ApiChecker
from repro.corpus.generator import AppCorpus, CorpusGenerator
from repro.corpus.market import poison_labels
from repro.emulator.device import DeviceEnvironment
from repro.ml.metrics import evaluate
from repro.obs import MetricsRegistry
from repro.scenarios.campaign import Campaign
from repro.scenarios.report import CampaignReport, DayReport, percentile
from repro.scenarios.traffic import PlannedSubmission, plan_traffic
from repro.serve.queue import QueueFullError
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService
from repro.serve.shard import ShardRouter, ShardUnavailableError

__all__ = ["CampaignRunner", "run_campaign"]

#: Statuses that mean a submission has left the queue for good.
_TERMINAL = ("done", "failed")


class _ServiceTarget:
    """Single in-process service behind the common target interface."""

    def __init__(self, runner: "CampaignRunner", models: ModelRegistry):
        self.models = models
        self.service = OnlineVettingService(
            models,
            spool_dir=runner.workdir / "spool",
            workers=runner.workers,
            batch_size=runner.batch_size,
            max_depth=runner.max_depth,
            metrics=models.metrics,
        )
        self.service.start()

    def submit(self, apk, lane: str) -> dict:
        return self.service.submit(apk, lane)

    def result(self, md5: str) -> dict:
        return self.service.result(md5)

    def queue_depth(self) -> int:
        return self.service.queue.depth

    def rollout(self, version: int) -> None:
        self.models.activate(version)  # hot swap; leases serialize it

    def close(self) -> None:
        self.service.close()


class _RouterTarget:
    """Multi-process shard router behind the common target interface."""

    def __init__(self, runner: "CampaignRunner", models: ModelRegistry):
        self.models = models
        self.router = ShardRouter(
            model_dir=models.root,
            spool_dir=runner.workdir / "spool",
            n_shards=runner.shards,
            workers=runner.workers,
            batch_size=runner.batch_size,
            max_depth=runner.max_depth,
            mp_start=runner.mp_start,
        )
        self.router.start()

    def submit(self, apk, lane: str) -> dict:
        return self.router.submit(apk, lane)

    def result(self, md5: str) -> dict:
        return self.router.result(md5)

    def queue_depth(self) -> int:
        return int(self.router.healthz().get("queue_depth", 0))

    def rollout(self, version: int) -> None:
        """Rolling restart: shard workers pin their model at startup.

        Each worker process read the manifest when it spawned, so a
        newly activated version reaches the fleet one shard at a time —
        kill, WAL replay, restart — exactly the operational move the
        shard tests pin.
        """
        self.models.activate(version)
        for shard_id in range(self.router.n_shards):
            self.router.kill_shard(shard_id)
            self.router.restart_shard(shard_id)

    def close(self) -> None:
        self.router.stop()


class CampaignRunner:
    """Replay one :class:`Campaign` and produce a
    :class:`~repro.scenarios.report.CampaignReport`.

    Args:
        campaign: the spec to run.
        checker: a *fitted* checker; its model is published into a fresh
            registry and served (re-homed to the campaign's device
            environment via :meth:`ApiChecker.with_env`).
        catalog: archetype catalog for traffic planning.  Pass the
            catalog the training corpus came from so campaign traffic
            and the trained model share one behaviour world; defaults
            to the fresh generator's own.
        shards: 1 = in-process service, >= 2 = multi-process router.
        workers / batch_size: per-service dispatch configuration.
        max_depth: admission bound; the campaign's own ``max_depth``
            (when set) wins.
        train_corpus / train_labels / train_observations: the original
            training set (and optionally its precomputed study
            observations).  Required for ``retrain_day`` campaigns —
            day-boundary retraining folds triage feedback into this
            base; without it the retrain is recorded as skipped.
        workdir: spool + model-artifact root (a temp dir when None).
        mp_start: multiprocessing start method for shard workers.
        submit_timeout: max seconds to keep retrying one submission
            through 429/503 backpressure before declaring it lost
            (which raises — losing submissions is a harness failure).
        verdict_timeout: max seconds to wait for one day's verdicts.
    """

    def __init__(
        self,
        campaign: Campaign,
        checker: ApiChecker,
        *,
        catalog=None,
        shards: int = 1,
        workers: int = 2,
        batch_size: int = 4,
        max_depth: int | None = None,
        train_corpus: AppCorpus | None = None,
        train_labels: np.ndarray | None = None,
        train_observations: list | None = None,
        workdir: str | Path | None = None,
        mp_start: str = "spawn",
        submit_timeout: float = 60.0,
        verdict_timeout: float = 600.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.campaign = campaign
        self.checker = checker
        self.catalog = catalog
        self.shards = shards
        self.workers = workers
        self.batch_size = batch_size
        self.max_depth = (
            campaign.max_depth
            if campaign.max_depth is not None
            else (max_depth if max_depth is not None else 10_000)
        )
        self.train_corpus = train_corpus
        self.train_labels = (
            np.asarray(train_labels, dtype=bool)
            if train_labels is not None
            else (train_corpus.labels if train_corpus is not None else None)
        )
        self.train_observations = train_observations
        self.workdir = Path(
            workdir
            if workdir is not None
            else tempfile.mkdtemp(prefix=f"campaign-{campaign.name}-")
        )
        self.mp_start = mp_start
        self.submit_timeout = submit_timeout
        self.verdict_timeout = verdict_timeout

    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        campaign = self.campaign
        env = (
            DeviceEnvironment.hardened_emulator()
            if campaign.hardened
            else DeviceEnvironment.stock_emulator()
        )
        serving = self.checker.with_env(env)
        models = ModelRegistry(
            self.workdir / "models", metrics=MetricsRegistry()
        )
        models.publish(
            serving,
            metadata={"campaign": campaign.name, "env": "hardened"
                      if campaign.hardened else "stock"},
            activate=True,
        )

        generator = CorpusGenerator(
            self.checker.sdk, seed=campaign.seed, catalog=self.catalog
        )
        schedule = plan_traffic(campaign, generator)

        report = CampaignReport(
            campaign=campaign.to_dict(), shards=self.shards
        )
        target = (
            _RouterTarget(self, models)
            if self.shards >= 2
            else _ServiceTarget(self, models)
        )
        history: list[PlannedSubmission] = []
        try:
            for day, planned in enumerate(schedule):
                day_report = self._run_day(day, planned, target, report)
                report.days.append(day_report)
                history.extend(planned)
                if campaign.retrain_day == day:
                    decision = self._retrain(
                        day, history, env, models, target, report
                    )
                    report.evolution.append(decision)
        finally:
            target.close()
        return report

    # -- one day -------------------------------------------------------

    def _run_day(
        self,
        day: int,
        planned: list[PlannedSubmission],
        target,
        report: CampaignReport,
    ) -> DayReport:
        day_report = DayReport(day=day, n_submitted=len(planned))
        fresh: list[PlannedSubmission] = []
        for sub in planned:
            md5 = sub.apk.md5
            if md5 in report.truths:
                continue  # resubmission of known content; coalesced
            fresh.append(sub)
            report.truths[md5] = bool(sub.apk.is_malicious)
            report.waves[md5] = sub.wave
            report.first_day[md5] = day
        day_report.n_unique = len(fresh)

        accepted_at: dict[str, float] = {}
        for sub in fresh:
            self._submit_with_backoff(sub, target, day_report)
            accepted_at[sub.apk.md5] = time.perf_counter()
            day_report.peak_queue_depth = max(
                day_report.peak_queue_depth, target.queue_depth()
            )

        outcomes = self._await_verdicts(
            [sub.apk.md5 for sub in fresh], target, day_report, accepted_at,
            report,
        )

        truths, preds = [], []
        wave_hits: dict[str, int] = {}
        wave_totals: dict[str, int] = {}
        for sub in fresh:
            md5 = sub.apk.md5
            outcome = outcomes[md5]
            failed = outcome["status"] == "failed"
            malicious = bool(outcome.get("malicious", False)) and not failed
            report.verdicts[md5] = malicious
            truths.append(report.truths[md5])
            preds.append(malicious)
            if failed:
                day_report.n_failed += 1
            if malicious:
                day_report.n_flagged += 1
                explanation = outcome.get("explanation") or {}
                if explanation.get("hits"):
                    day_report.n_explained += 1
            if sub.wave is not None and report.truths[md5]:
                wave_totals[sub.wave] = wave_totals.get(sub.wave, 0) + 1
                if malicious:
                    wave_hits[sub.wave] = wave_hits.get(sub.wave, 0) + 1

        truth_arr = np.asarray(truths, dtype=bool)
        pred_arr = np.asarray(preds, dtype=bool)
        tp = int(np.sum(truth_arr & pred_arr))
        fp = int(np.sum(~truth_arr & pred_arr))
        fn = int(np.sum(truth_arr & ~pred_arr))
        day_report.precision = tp / (tp + fp) if tp + fp else 1.0
        day_report.recall = tp / (tp + fn) if tp + fn else 1.0
        day_report.wave_recall = {
            wave: wave_hits.get(wave, 0) / total
            for wave, total in wave_totals.items()
        }
        day_latencies = [
            report.latencies_s[sub.apk.md5]
            for sub in fresh
            if sub.apk.md5 in report.latencies_s
        ]
        day_report.latency_p50_s = percentile(day_latencies, 50)
        day_report.latency_p95_s = percentile(day_latencies, 95)
        return day_report

    def _submit_with_backoff(
        self, sub: PlannedSubmission, target, day_report: DayReport
    ) -> None:
        """Submit one app, absorbing 429/503 backpressure via retry.

        Every rejection is counted; giving up raises — a lost
        submission is a harness failure, never silently absorbed into
        the detection numbers.
        """
        deadline = time.monotonic() + self.submit_timeout
        backoff = 0.05
        while True:
            try:
                target.submit(sub.apk, sub.lane)
                return
            except QueueFullError:
                day_report.rejected_429 += 1
            except ShardUnavailableError:
                day_report.unavailable_503 += 1
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"submission {sub.apk.md5} lost: backpressure did "
                    f"not clear within {self.submit_timeout}s"
                )
            time.sleep(backoff)
            backoff = min(backoff * 2, 1.0)

    def _await_verdicts(
        self,
        md5s: list[str],
        target,
        day_report: DayReport,
        accepted_at: dict[str, float],
        report: CampaignReport,
    ) -> dict[str, dict]:
        """Poll every submission to a terminal outcome."""
        outcomes: dict[str, dict] = {}
        outstanding = list(md5s)
        deadline = time.monotonic() + self.verdict_timeout
        while outstanding:
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"day {day_report.day}: {len(outstanding)} "
                    "submissions never reached a terminal outcome"
                )
            day_report.peak_queue_depth = max(
                day_report.peak_queue_depth, target.queue_depth()
            )
            still = []
            for md5 in outstanding:
                outcome = target.result(md5)
                if outcome.get("status") in _TERMINAL:
                    outcomes[md5] = outcome
                    report.latencies_s[md5] = (
                        time.perf_counter() - accepted_at[md5]
                    )
                else:
                    still.append(md5)
            outstanding = still
            if outstanding:
                time.sleep(0.05)
        return outcomes

    # -- model evolution -----------------------------------------------

    def _retrain(
        self,
        day: int,
        history: list[PlannedSubmission],
        env: DeviceEnvironment,
        models: ModelRegistry,
        target,
        report: CampaignReport,
    ) -> dict:
        """Fold triage feedback into a candidate; gate; maybe roll out."""
        campaign = self.campaign
        if self.train_corpus is None:
            return {
                "day": day,
                "decision": "skipped",
                "reason": "no training corpus supplied to the runner",
            }
        seen = set()
        feedback: list[PlannedSubmission] = []
        for sub in history:
            if sub.apk.md5 in seen:
                continue
            seen.add(sub.apk.md5)
            feedback.append(sub)
        truth = np.array(
            [report.truths[s.apk.md5] for s in feedback], dtype=bool
        )
        labels = poison_labels(
            truth,
            campaign.label_flip_rate,
            np.random.default_rng(campaign.seed + 9001),
        )
        n_flipped = int(np.sum(labels != truth))

        feedback_corpus = AppCorpus(
            self.checker.sdk, [s.apk for s in feedback]
        )
        combined = AppCorpus(
            self.checker.sdk,
            list(self.train_corpus) + list(feedback_corpus),
        )
        combined_labels = np.concatenate(
            [self.train_labels.astype(bool), labels]
        )
        candidate = ApiChecker(
            self.checker.sdk,
            feature_mode=self.checker.feature_mode,
            feature_encoding=self.checker.feature_encoding,
            monkey_events=self.checker.monkey_events,
            env=env,
            decision_threshold=self.checker.decision_threshold,
            seed=self.checker.seed,
        )
        study_observations = None
        if self.train_observations is not None:
            study_observations = list(self.train_observations) + list(
                candidate.study_engine().observations(feedback_corpus)
            )
        candidate.fit(
            combined, combined_labels, study_observations=study_observations
        )

        # Gate on the feedback set as the market labelled it: the live
        # model's verdicts came off the serving tier, the candidate's
        # from a local batch — both judged against the same (possibly
        # poisoned) labels, which is exactly the blind spot label_noise
        # probes.
        active_pred = np.array(
            [report.verdicts[s.apk.md5] for s in feedback], dtype=bool
        )
        active_f1 = evaluate(labels, active_pred).f1
        candidate_pred = np.array(
            [v.malicious for v in candidate.vet_batch(feedback_corpus)],
            dtype=bool,
        )
        candidate_f1 = evaluate(labels, candidate_pred).f1

        decision = {
            "day": day,
            "n_feedback": len(feedback),
            "n_flipped": n_flipped,
            "active_f1": active_f1,
            "candidate_f1": candidate_f1,
        }
        if candidate_f1 >= active_f1:
            version = models.publish(
                candidate,
                metadata={"campaign": campaign.name, "feedback_day": day},
            ).version
            target.rollout(version)
            decision["decision"] = "promoted"
            decision["model_version"] = version
        else:
            decision["decision"] = "rejected"
        return decision


def run_campaign(
    campaign: Campaign, checker: ApiChecker, **kwargs
) -> CampaignReport:
    """Convenience wrapper: build a runner, run it, return the report."""
    return CampaignRunner(campaign, checker, **kwargs).run()
