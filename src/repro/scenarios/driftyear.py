"""Replay a drifting year through the live serving tier.

:class:`DriftYearRunner` is the drift counterpart of
:class:`~repro.scenarios.runner.CampaignRunner`: instead of an
adversarial campaign spec it takes a
:class:`~repro.drift.market.DriftingMarket` and pushes its day slices —
SDK releases, signature mutations, emergent families, benign fashion
shifts and all — through a real
:class:`~repro.serve.service.OnlineVettingService` with the online
drift monitors switched on.  Each day's market review labels are fed
back through :meth:`~repro.serve.service.OnlineVettingService.record_feedback`
(the labeled-lag stream), so the rolling-F1 and PSI monitors see
exactly what production would see, and the per-day report snapshots the
``drift`` block that ``/v1/healthz`` serves.

The serving model is deliberately *frozen* at its bootstrap fit: the
runner demonstrates detection of drift, not recovery from it (recovery
is :class:`~repro.core.evolution.EvolutionLoop` with a
:class:`~repro.drift.policy.RetrainPolicy`; see
``benchmarks/bench_drift.py`` for the two side by side).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.checker import ApiChecker
from repro.drift.market import DriftingMarket
from repro.ml.metrics import evaluate
from repro.obs import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.service import OnlineVettingService

__all__ = ["DriftDayReport", "DriftYearReport", "DriftYearRunner",
           "replay_drift_year"]

#: Statuses that mean a submission has left the queue for good.
_TERMINAL = ("done", "failed")


@dataclass
class DriftDayReport:
    """One market day served and fed back."""

    day: int
    n_submitted: int = 0
    n_flagged: int = 0
    precision: float = 1.0
    recall: float = 1.0
    f1: float = 1.0
    drift_score: float = 0.0
    alarmed: bool = False
    events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "day": self.day,
            "n_submitted": self.n_submitted,
            "n_flagged": self.n_flagged,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "drift_score": self.drift_score,
            "alarmed": self.alarmed,
            "events": list(self.events),
        }


@dataclass
class DriftYearReport:
    """Everything one drifting replay produced."""

    days: list = field(default_factory=list)
    drift: dict | None = None
    alarms_total: int = 0
    events: list = field(default_factory=list)

    @property
    def n_days(self) -> int:
        return len(self.days)

    @property
    def first_alarm_day(self) -> int | None:
        """First day the monitor bank was alarmed (None = never)."""
        for record in self.days:
            if record.alarmed:
                return record.day
        return None

    def to_dict(self) -> dict:
        return {
            "n_days": self.n_days,
            "first_alarm_day": self.first_alarm_day,
            "alarms_total": self.alarms_total,
            "drift": self.drift,
            "events": list(self.events),
            "days": [record.to_dict() for record in self.days],
        }


class DriftYearRunner:
    """Replay ``days`` slices of a drifting market through serving.

    Args:
        market: the drifting market to replay.  Must be fresh (its
            bootstrap snapshot is drawn here, before any slice).
        days: how many days to serve, from day 0 (default: the whole
            market horizon).
        bootstrap: bootstrap corpus size for the frozen serving model.
        workers / batch_size: service dispatch configuration.
        checker_seed: seed for the bootstrap fit.
        workdir: spool + model root (a temp dir when None).
        verdict_timeout: max seconds to wait for one day's verdicts.
    """

    def __init__(
        self,
        market: DriftingMarket,
        *,
        days: int | None = None,
        bootstrap: int = 300,
        workers: int = 2,
        batch_size: int = 8,
        checker_seed: int = 0,
        workdir: str | Path | None = None,
        verdict_timeout: float = 300.0,
    ):
        self.market = market
        self.days = market.days if days is None else int(days)
        if not 1 <= self.days <= market.days:
            raise ValueError(
                f"days must be in [1, {market.days}], got {self.days}"
            )
        self.bootstrap = bootstrap
        self.workers = workers
        self.batch_size = batch_size
        self.checker_seed = checker_seed
        self.workdir = Path(
            workdir
            if workdir is not None
            else tempfile.mkdtemp(prefix="drift-year-")
        )
        self.verdict_timeout = verdict_timeout

    def run(self) -> DriftYearReport:
        boot = self.market.bootstrap(self.bootstrap)
        checker = ApiChecker(
            self.market.sdk, seed=self.checker_seed
        ).fit(boot)
        models = ModelRegistry(
            self.workdir / "models", metrics=MetricsRegistry()
        )
        models.publish(
            checker, metadata={"source": "drift-year"}, activate=True
        )
        service = OnlineVettingService(
            models,
            spool_dir=self.workdir / "spool",
            workers=self.workers,
            batch_size=self.batch_size,
            metrics=models.metrics,
            drift_monitors=True,
        ).start()
        report = DriftYearReport()
        try:
            for day in range(self.days):
                report.days.append(self._run_day(day, service))
            health = service.healthz()
            report.drift = health.get("drift")
            if report.drift is not None:
                report.alarms_total = int(report.drift["alarms_total"])
            report.events = [
                {"day": e.day, "kind": e.kind, "detail": e.detail}
                for e in self.market.events
            ]
        finally:
            service.close()
        return report

    def _run_day(
        self, day: int, service: OnlineVettingService
    ) -> DriftDayReport:
        """Serve one day slice, then feed its review labels back."""
        sl = self.market.day_slice(day)
        record = DriftDayReport(
            day=day,
            events=[
                {"kind": e.kind, "detail": e.detail} for e in sl.events
            ],
        )
        truth: dict[str, bool] = {}
        for apk, label in zip(sl.corpus, sl.market_labels):
            if apk.md5 in truth:
                continue  # duplicate content coalesces in the queue
            truth[apk.md5] = bool(label)
            service.submit(apk)
        record.n_submitted = len(truth)
        outcomes = self._await_verdicts(list(truth), service, day)

        truths, preds = [], []
        for md5, actual in truth.items():
            outcome = outcomes[md5]
            malicious = (
                bool(outcome.get("malicious", False))
                and outcome["status"] == "done"
            )
            truths.append(actual)
            preds.append(malicious)
            if malicious:
                record.n_flagged += 1
            # Labeled-lag feedback: the market's review label lands
            # once the day closes, updating the rolling-F1 monitor.
            service.record_feedback(md5, actual)
        day_report = evaluate(
            np.asarray(truths, dtype=bool), np.asarray(preds, dtype=bool)
        )
        record.precision = day_report.precision
        record.recall = day_report.recall
        record.f1 = day_report.f1
        drift = service.healthz().get("drift")
        if drift is not None:
            record.alarmed = bool(drift["alarmed"])
            record.drift_score = max(
                (m["drift_score"] for m in drift["monitors"].values()),
                default=0.0,
            )
        return record

    def _await_verdicts(
        self, md5s: list[str], service: OnlineVettingService, day: int
    ) -> dict[str, dict]:
        outcomes: dict[str, dict] = {}
        outstanding = list(md5s)
        deadline = time.monotonic() + self.verdict_timeout
        while outstanding:
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"day {day}: {len(outstanding)} submissions never "
                    "reached a terminal outcome"
                )
            still = []
            for md5 in outstanding:
                outcome = service.result(md5)
                if outcome.get("status") in _TERMINAL:
                    outcomes[md5] = outcome
                else:
                    still.append(md5)
            outstanding = still
            if outstanding:
                time.sleep(0.02)
        return outcomes


def replay_drift_year(
    market: DriftingMarket, **kwargs
) -> DriftYearReport:
    """Convenience wrapper: build a runner, run it, return the report."""
    return DriftYearRunner(market, **kwargs).run()
