"""Structured results of a campaign replay.

A :class:`CampaignReport` is what the runner hands back: per-day
detection quality and serving health, the model-evolution decisions
taken at day boundaries, and the raw verdict map the determinism test
compares across shard counts.  Everything is plain data —
``to_dict()``/``to_json()`` round the whole report into the JSON the
bench gate and the CLI ``--out`` flag write.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DayReport", "CampaignReport", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """``q``-th percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def _precision_recall(
    truths: list[bool], predictions: list[bool]
) -> tuple[float, float]:
    truth = np.asarray(truths, dtype=bool)
    pred = np.asarray(predictions, dtype=bool)
    tp = int(np.sum(truth & pred))
    fp = int(np.sum(~truth & pred))
    fn = int(np.sum(truth & ~pred))
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return precision, recall


@dataclass
class DayReport:
    """Detection quality and serving health for one campaign day."""

    day: int
    n_submitted: int = 0
    n_unique: int = 0
    rejected_429: int = 0
    unavailable_503: int = 0
    peak_queue_depth: int = 0
    n_flagged: int = 0
    n_explained: int = 0
    n_failed: int = 0
    precision: float = 1.0
    recall: float = 1.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    wave_recall: dict[str, float] = field(default_factory=dict)

    @property
    def explanation_coverage(self) -> float:
        """Share of flagged apps carrying a non-empty rules explanation."""
        return self.n_explained / self.n_flagged if self.n_flagged else 1.0

    def to_dict(self) -> dict:
        return {
            "day": self.day,
            "n_submitted": self.n_submitted,
            "n_unique": self.n_unique,
            "rejected_429": self.rejected_429,
            "unavailable_503": self.unavailable_503,
            "peak_queue_depth": self.peak_queue_depth,
            "n_flagged": self.n_flagged,
            "n_explained": self.n_explained,
            "n_failed": self.n_failed,
            "precision": self.precision,
            "recall": self.recall,
            "explanation_coverage": self.explanation_coverage,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "wave_recall": dict(self.wave_recall),
        }


@dataclass
class CampaignReport:
    """Everything a campaign replay produced.

    Attributes:
        campaign: the spec that ran, as a plain dict.
        shards: serving topology (0 = single in-process service).
        days: one :class:`DayReport` per campaign day.
        evolution: model-evolution decisions taken at day boundaries
            (each a dict with at least ``day``/``decision``).
        verdicts: md5 -> served malicious verdict (failed analyses are
            recorded as ``False`` — a lost detection, not a lost app).
        truths: md5 -> ground-truth malice.
        waves: md5 -> wave name (None for baseline traffic).
        first_day: md5 -> the day the app was first submitted.
        latencies_s: md5 -> client-observed submit-to-terminal seconds.
    """

    campaign: dict
    shards: int
    days: list[DayReport] = field(default_factory=list)
    evolution: list[dict] = field(default_factory=list)
    verdicts: dict[str, bool] = field(default_factory=dict)
    truths: dict[str, bool] = field(default_factory=dict)
    waves: dict[str, str | None] = field(default_factory=dict)
    first_day: dict[str, int] = field(default_factory=dict)
    latencies_s: dict[str, float] = field(default_factory=dict)
    lost: int = 0

    # -- aggregate views ----------------------------------------------

    def verdict_set(self) -> tuple[tuple[str, bool], ...]:
        """Canonical (md5, malicious) set for determinism comparisons."""
        return tuple(sorted(self.verdicts.items()))

    def wave_recall(self, wave: str, min_day: int = 0) -> float:
        """Recall over one wave's submissions from ``min_day`` onward.

        ``min_day`` lets gates measure post-feedback detection: e.g.
        repackaging_wave retrains after day 0, so the acceptance gate
        asks for recall over the wave's day >= 1 submissions only.
        """
        hits = total = 0
        for md5, wave_name in self.waves.items():
            if wave_name != wave:
                continue
            if self.first_day.get(md5, 0) < min_day:
                continue
            if not self.truths.get(md5, False):
                continue
            total += 1
            if self.verdicts.get(md5, False):
                hits += 1
        return hits / total if total else 1.0

    @property
    def overall_precision(self) -> float:
        truths = [self.truths[m] for m in self.verdicts]
        preds = [self.verdicts[m] for m in self.verdicts]
        return _precision_recall(truths, preds)[0]

    @property
    def overall_recall(self) -> float:
        truths = [self.truths[m] for m in self.verdicts]
        preds = [self.verdicts[m] for m in self.verdicts]
        return _precision_recall(truths, preds)[1]

    @property
    def latency_p50_s(self) -> float:
        return percentile(list(self.latencies_s.values()), 50)

    @property
    def latency_p95_s(self) -> float:
        return percentile(list(self.latencies_s.values()), 95)

    @property
    def rejected_429(self) -> int:
        return sum(d.rejected_429 for d in self.days)

    @property
    def unavailable_503(self) -> int:
        return sum(d.unavailable_503 for d in self.days)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "shards": self.shards,
            "days": [d.to_dict() for d in self.days],
            "evolution": list(self.evolution),
            "totals": {
                "n_unique": len(self.verdicts),
                "lost": self.lost,
                "rejected_429": self.rejected_429,
                "unavailable_503": self.unavailable_503,
                "precision": self.overall_precision,
                "recall": self.overall_recall,
                "latency_p50_s": self.latency_p50_s,
                "latency_p95_s": self.latency_p95_s,
            },
            "verdicts": dict(self.verdicts),
            "truths": dict(self.truths),
            "waves": dict(self.waves),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
