"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — train APICHECKER on a synthetic market and vet fresh
  submissions, printing the headline metrics.
* ``vet`` — train, vet, and write the analysis log (JSON lines) for
  offline auditing/retraining; ``--metrics-out`` snapshots the run's
  metrics registry as JSON and ``--trace-out`` streams span events.
* ``evolve`` — run N months of monthly retraining and print the
  Fig. 12 / Fig. 14 series.
* ``metrics`` — render a metrics snapshot (or a fresh instrumented
  demo run) as JSON or Prometheus text exposition.
* ``serve`` — run the online vetting service: durable submission
  queue (WAL in ``--spool``), versioned model registry with hot swap
  (``--model-dir``), and the versioned HTTP JSON API (``/v1/submit``,
  ``/v1/result/<md5>``, ``/v1/explain/<md5>``, ``/v1/healthz``,
  ``/v1/metrics``).  ``--shards N`` runs the sharded tier instead:
  N worker processes with per-shard WAL segments behind an md5-routing
  scatter/gather front door.  See ``docs/serving.md``.
* ``explain`` — train, vet a fresh day with behavior rules enabled,
  and print each flagged app's rule-evidence summary.  See
  ``docs/rules.md``.
* ``rules lint`` — check a behavior ruleset (default: the bundled one)
  for authoring mistakes; exits 1 on errors.
* ``rules mine`` — mine candidate rules from a family-balanced labeled
  corpus (Apriori itemsets scored on a held-out split) and write the
  generated ruleset artifact.  See ``docs/rule_mining.md``.
* ``rules diff OLD NEW`` — print added/removed/changed rules between
  two ruleset files.
* ``rules push RULESET --url URL`` — hot-swap a ruleset into a running
  serving tier (single service or shard router) over
  ``POST /v1/admin/ruleset``.
* ``scenarios list`` / ``scenarios run NAME`` — the adversarial
  campaign simulator: replay a bundled attack campaign (repackaging
  wave, evasion arms race, hidden loaders, label poisoning, admission
  flood) through the real serving tier and print the per-day report.
  ``--shards N`` serves it through the multi-process shard router.
  See ``docs/scenarios.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--apis", type=int, default=2000,
                        help="synthetic SDK size (default 2000)")
    parser.add_argument("--train", type=int, default=1200,
                        help="training corpus size (default 1200)")
    parser.add_argument("--seed", type=int, default=7)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="APICHECKER (EuroSys 2020) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train and vet a synthetic market")
    _add_common(demo)
    demo.add_argument("--fresh", type=int, default=400,
                      help="fresh submissions to vet (default 400)")

    vet = sub.add_parser("vet", help="vet and write an analysis log")
    _add_common(vet)
    vet.add_argument("--fresh", type=int, default=400)
    vet.add_argument("--log", required=True,
                     help="output JSON-lines analysis log")
    vet.add_argument("--workers", type=int, default=None,
                     help="pipeline worker pool size "
                          "(default: every emulator slot)")
    vet.add_argument("--cache", default=None,
                     help="JSON-lines observation cache; resubmitted "
                          "md5s skip re-emulation")
    vet.add_argument("--metrics-out", default=None,
                     help="write the run's metrics-registry snapshot "
                          "to this JSON file")
    vet.add_argument("--trace-out", default=None,
                     help="write structured span events (JSON lines) "
                          "to this file")

    evolve = sub.add_parser("evolve", help="monthly model evolution")
    _add_common(evolve)
    evolve.add_argument("--months", type=int, default=6)
    evolve.add_argument("--per-month", type=int, default=250)

    metrics = sub.add_parser(
        "metrics",
        help="render a metrics snapshot as JSON or Prometheus text",
    )
    metrics.add_argument(
        "snapshot", nargs="?", default=None,
        help="a --metrics-out JSON snapshot to render; omitted: run a "
             "small instrumented vetting pass and render its registry",
    )
    metrics.add_argument("--format", choices=("json", "prom"),
                         default="json")
    _add_common(metrics)
    metrics.add_argument("--fresh", type=int, default=120,
                         help="submissions for the built-in demo run "
                              "(ignored with a snapshot file)")
    # The built-in demo run only needs to populate a registry; keep it
    # an order of magnitude lighter than a real vet run.
    metrics.set_defaults(apis=1000, train=300)

    serve = sub.add_parser(
        "serve",
        help="run the online vetting service (queue + registry + HTTP)",
    )
    _add_common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8351,
                       help="HTTP port (0 picks a free one; default 8351)")
    serve.add_argument("--spool", required=True,
                       help="spool directory for the submission WAL")
    serve.add_argument("--model-dir", required=True,
                       help="model registry directory; an existing "
                            "registry with an active version is reused, "
                            "otherwise a bootstrap model is trained and "
                            "published")
    serve.add_argument("--workers", type=int, default=4,
                       help="pipeline workers per micro-batch (default 4)")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="max submissions per dispatch cycle (default 8)")
    serve.add_argument("--max-depth", type=int, default=10_000,
                       help="admission bound on queue depth (default 10000)")
    serve.add_argument("--cache", default=None,
                       help="persistent observation-cache file "
                            "(default: in-memory)")
    serve.add_argument("--shards", type=int, default=1,
                       help="worker processes; >1 runs the sharded tier "
                            "(md5-routed, per-shard WAL segments) behind "
                            "a scatter/gather front door (default 1)")
    serve.add_argument("--pace", type=float, default=0.0, metavar="SECONDS",
                       help="slot-occupancy pacing: wall seconds slept "
                            "per simulated emulation minute (default 0)")
    # Bootstrap training should be light: the service exists to serve,
    # not to reproduce the full study.
    serve.set_defaults(apis=1000, train=300)

    explain = sub.add_parser(
        "explain",
        help="vet a fresh day and print flagged apps' behavior evidence",
    )
    _add_common(explain)
    explain.add_argument("--fresh", type=int, default=150,
                         help="fresh submissions to vet (default 150)")
    explain.add_argument("--ruleset", default=None,
                         help="JSON ruleset file (default: bundled rules)")
    explain.add_argument("--json", action="store_true",
                         help="emit full behavior reports as JSON")
    explain.set_defaults(apis=1000, train=300)

    rules = sub.add_parser("rules", help="behavior-ruleset tooling")
    rules_sub = rules.add_subparsers(dest="rules_command", required=True)
    lint = rules_sub.add_parser(
        "lint",
        help="check a ruleset for authoring mistakes (exit 1 on errors)",
    )
    lint.add_argument("ruleset", nargs="?", default=None,
                      help="JSON ruleset file (default: the bundled rules)")
    lint.add_argument("--apis", type=int, default=1000,
                      help="synthetic SDK size used to resolve names "
                           "(default 1000)")
    lint.add_argument("--seed", type=int, default=7)

    mine = rules_sub.add_parser(
        "mine",
        help="mine candidate rules from a labeled synthetic corpus "
             "and write a generated ruleset artifact",
    )
    _add_common(mine)
    mine.add_argument("--per-family", type=int, default=60,
                      help="apps sampled per malware family for the "
                           "mining corpus (default 60)")
    mine.add_argument("--benign", type=int, default=700,
                      help="benign apps in the mining corpus "
                           "(default 700)")
    mine.add_argument("--min-support", type=float, default=0.15,
                      help="minimum within-family itemset support "
                           "(default 0.15)")
    mine.add_argument("--min-precision", type=float, default=0.7,
                      help="minimum holdout precision to keep a rule "
                           "(default 0.7)")
    mine.add_argument("--min-lift", type=float, default=2.0,
                      help="minimum holdout family lift to keep a rule "
                           "(default 2.0)")
    mine.add_argument("--max-rules-per-family", type=int, default=12,
                      help="per-family rule budget (default 12)")
    mine.add_argument("--mine-seed", type=int, default=0,
                      help="mine/holdout split seed (default 0)")
    mine.add_argument("--out", default="mined_rules.json",
                      help="artifact path (default mined_rules.json)")

    rdiff = rules_sub.add_parser(
        "diff",
        help="print added/removed/changed rules between two ruleset "
             "files",
    )
    rdiff.add_argument("old", help="baseline ruleset JSON file")
    rdiff.add_argument("new", help="candidate ruleset JSON file")

    push = rules_sub.add_parser(
        "push",
        help="hot-swap a ruleset into a running serving tier "
             "(POST /v1/admin/ruleset)",
    )
    push.add_argument("ruleset", help="JSON ruleset file to push")
    push.add_argument("--url", required=True,
                      help="base URL of the service or shard router, "
                           "e.g. http://127.0.0.1:8300")
    push.add_argument("--timeout", type=float, default=30.0,
                      help="HTTP timeout in seconds (default 30)")

    scenarios = sub.add_parser(
        "scenarios",
        help="adversarial campaign simulator over the serving tier",
    )
    scen_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )
    scen_sub.add_parser("list", help="list the bundled campaigns")
    run = scen_sub.add_parser(
        "run", help="replay one campaign through a live serving tier"
    )
    run.add_argument("name", help="bundled campaign name, or a JSON "
                                  "campaign-spec file")
    _add_common(run)
    run.add_argument("--shards", type=int, default=1,
                     help=">1 serves the campaign through the "
                          "multi-process shard router (default 1: "
                          "in-process service)")
    run.add_argument("--scale", type=float, default=1.0,
                     help="scale per-day volumes (e.g. 0.5 halves the "
                          "campaign; default 1.0)")
    run.add_argument("--workers", type=int, default=2,
                     help="pipeline workers per service (default 2)")
    run.add_argument("--batch-size", type=int, default=4,
                     help="dispatch micro-batch size (default 4)")
    run.add_argument("--out", default=None,
                     help="write the full campaign report JSON here")
    # Bootstrap training is a means, not the experiment.
    run.set_defaults(apis=1000, train=300)
    return parser


def _build_and_fit(args, registry=None, sink=None):
    from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec

    sdk = AndroidSdk.generate(SdkSpec(n_apis=args.apis, seed=args.seed))
    generator = CorpusGenerator(sdk, seed=args.seed + 1)
    train = generator.generate(args.train)
    checker = ApiChecker(
        sdk, seed=args.seed + 2, registry=registry, sink=sink
    ).fit(train)
    return sdk, generator, checker


def cmd_demo(args) -> int:
    from repro.ml.metrics import evaluate

    sdk, generator, checker = _build_and_fit(args)
    fresh = generator.generate(args.fresh)
    verdicts = checker.vet_batch(fresh)
    pred = np.array([v.malicious for v in verdicts])
    report = evaluate(fresh.labels, pred)
    minutes = np.array([v.analysis_minutes for v in verdicts])
    print(f"key APIs: {checker.key_api_ids.size}")
    print(
        f"precision={report.precision:.3f} recall={report.recall:.3f} "
        f"f1={report.f1:.3f}"
    )
    print(f"mean scan: {minutes.mean():.2f} simulated minutes")
    return 0


def cmd_vet(args) -> int:
    from pathlib import Path

    from repro.core.pipeline import ObservationCache, VettingPipeline
    from repro.core.reporting import write_log
    from repro.obs import MetricsRegistry, SpanSink

    registry = MetricsRegistry()
    sink = SpanSink(args.trace_out) if args.trace_out else None
    sdk, generator, checker = _build_and_fit(args, registry, sink)
    fresh = generator.generate(args.fresh)
    cache = ObservationCache(args.cache) if args.cache else None
    pipeline = VettingPipeline(
        checker.production_engine, workers=args.workers, cache=cache,
        registry=registry, sink=sink,
    )
    result = pipeline.run(fresh)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            registry.to_json(), encoding="utf-8"
        )
    if result.failures:
        print(f"{len(result.failures)} apps failed every backend",
              file=sys.stderr)
        return 1
    observations = [a.observation for a in result.analyses]
    verdicts = [
        checker.verdict_from_observation(
            a.observation,
            analysis_minutes=a.total_minutes,
            fell_back=a.fell_back,
        )
        for a in result.analyses
    ]
    n = write_log(args.log, observations, verdicts)
    flagged = sum(v.malicious for v in verdicts)
    print(f"wrote {n} analysis records to {args.log} ({flagged} flagged)")
    print(f"pipeline: {result.summary()}")
    if args.metrics_out:
        print(f"metrics snapshot: {args.metrics_out}")
    if args.trace_out:
        print(f"span trace: {args.trace_out} ({sink.emitted} events)")
    return 0


def cmd_evolve(args) -> int:
    from repro import AndroidSdk, EvolutionLoop, MarketStream, SdkSpec

    sdk = AndroidSdk.generate(SdkSpec(n_apis=args.apis, seed=args.seed))
    stream = MarketStream(
        sdk, apps_per_month=args.per_month, seed=args.seed + 1
    )
    initial = stream.bootstrap_corpus(args.train)
    loop = EvolutionLoop(
        stream,
        initial,
        max_pool=args.train + args.months * args.per_month,
        checker_seed=args.seed + 2,
    )
    print(f"{'month':>5} {'prec':>6} {'recall':>7} {'#keys':>6} {'SDK':>6}")
    for _ in range(args.months):
        rec = loop.run_month()
        print(
            f"{rec.month:>5} {rec.report.precision:>6.3f} "
            f"{rec.report.recall:>7.3f} {rec.n_key_apis:>6} "
            f"{rec.sdk_size:>6}"
        )
    return 0


def cmd_metrics(args) -> int:
    from pathlib import Path

    from repro.core.pipeline import VettingPipeline
    from repro.obs import MetricsRegistry

    if args.snapshot is not None:
        registry = MetricsRegistry.from_json(
            Path(args.snapshot).read_text(encoding="utf-8")
        )
    else:
        # No snapshot: run a small instrumented vetting pass so the
        # exposition shows the full engine/pipeline/cluster/ML surface.
        registry = MetricsRegistry()
        sdk, generator, checker = _build_and_fit(args, registry)
        fresh = generator.generate(args.fresh)
        pipeline = VettingPipeline(
            checker.production_engine, workers=args.workers
            if hasattr(args, "workers") else None, registry=registry,
        )
        result = pipeline.run(fresh)
        if result.failures:
            print(f"{len(result.failures)} apps failed every backend",
                  file=sys.stderr)
            return 1
    if args.format == "prom":
        sys.stdout.write(registry.to_prometheus())
    else:
        print(registry.to_json())
    return 0


def cmd_serve(args) -> int:
    import threading

    from repro.obs import MetricsRegistry
    from repro.serve import ModelRegistry, OnlineVettingService, make_server

    metrics = MetricsRegistry()
    models = ModelRegistry(args.model_dir, metrics=metrics)
    if models.active_version is None:
        print("no active model in registry; training bootstrap model...")
        _sdk, _generator, checker = _build_and_fit(args, metrics)
        version = models.publish(
            checker,
            metadata={
                "source": "serve-bootstrap",
                "apis": args.apis,
                "train": args.train,
                "seed": args.seed,
            },
            activate=True,
        ).version
        print(f"published and activated model v{version}")
    if args.shards > 1:
        return _serve_sharded(args, metrics)
    service = OnlineVettingService(
        models,
        spool_dir=args.spool,
        workers=args.workers,
        batch_size=args.batch_size,
        max_depth=args.max_depth,
        cache=args.cache if args.cache else True,
        metrics=metrics,
        pace_seconds_per_minute=args.pace,
    )
    service.start()
    server = make_server(service, args.host, args.port)
    server.start_background()
    replayed = int(metrics.value("serve_wal_replayed_total"))
    if replayed:
        print(f"replayed {replayed} uncompleted submissions from the WAL")
    print(
        f"serving on http://{args.host}:{server.port} "
        f"(model v{models.active_version}, spool {args.spool}, "
        f"{args.workers} workers)"
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down...")
    finally:
        server.stop()
        abandoned = service.close()
        if abandoned:
            print(
                f"abandoned {len(abandoned)} pending submission(s); "
                "they replay from the WAL on restart"
            )
    return 0


def _serve_sharded(args, metrics) -> int:
    """``repro serve --shards N``: the multi-process sharded tier."""
    import threading

    from repro.serve import ShardRouter, make_router_server

    router = ShardRouter(
        args.model_dir,
        args.spool,
        n_shards=args.shards,
        host=args.host,
        workers=args.workers,
        batch_size=args.batch_size,
        max_depth=args.max_depth,
        cache=args.cache if args.cache else True,
        pace_seconds_per_minute=args.pace,
        metrics=metrics,
    )
    router.start()
    server = make_router_server(router, args.host, args.port)
    server.start_background()
    replayed = sum(h.replayed for h in router.shards.values())
    if replayed:
        print(
            f"replayed {replayed} uncompleted submissions "
            "from per-shard WALs"
        )
    ports = ", ".join(
        str(router.shards[k].port) for k in sorted(router.shards)
    )
    print(
        f"routing on http://{args.host}:{server.port} -> "
        f"{args.shards} shard(s) on ports [{ports}] "
        f"(spool {args.spool}, {args.workers} workers/shard)"
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down...")
    finally:
        server.stop()
        abandoned = router.stop()
        total = sum(len(v) for v in abandoned.values())
        if total:
            print(
                f"abandoned {total} pending submission(s) across shards; "
                "they replay from the per-shard WALs on restart"
            )
    return 0


def cmd_explain(args) -> int:
    import json as json_mod

    from repro.core.vetting import VettingService
    from repro.rules import RuleEvaluator, load_ruleset

    sdk, generator, checker = _build_and_fit(args)
    rules: "RuleEvaluator | bool" = True
    if args.ruleset:
        rules = RuleEvaluator.from_specs(
            load_ruleset(args.ruleset),
            sdk,
            tracked_api_ids=checker.key_api_ids,
        )
    service = VettingService(checker, rules=rules)
    fresh = generator.generate(args.fresh)
    report = service.process_day(fresh, true_labels=fresh.labels)
    if args.json:
        print(json_mod.dumps(
            [r.to_dict() for r in report.behavior_reports], indent=2
        ))
        return 0
    print(f"{report.n_flagged} of {report.n_apps} submissions flagged")
    for behavior_report in report.behavior_reports:
        print(f"  {behavior_report.summary()}")
        top = behavior_report.hits[0] if behavior_report.hits else None
        if top is not None:
            evidence = list(top.matched_apis) + list(
                top.matched_permissions
            ) + list(top.matched_intents)
            print(f"    evidence: {', '.join(evidence)}")
    return 0


def cmd_rules(args) -> int:
    if args.rules_command == "mine":
        return _cmd_rules_mine(args)
    if args.rules_command == "diff":
        return _cmd_rules_diff(args)
    if args.rules_command == "push":
        return _cmd_rules_push(args)

    from repro import AndroidSdk, SdkSpec
    from repro.rules import builtin_ruleset, lint_ruleset, load_ruleset

    specs = (
        load_ruleset(args.ruleset) if args.ruleset else builtin_ruleset()
    )
    sdk = AndroidSdk.generate(SdkSpec(n_apis=args.apis, seed=args.seed))
    issues = lint_ruleset(specs, sdk=sdk)
    for issue in issues:
        print(issue)
    n_errors = sum(1 for i in issues if i.severity == "error")
    n_warnings = len(issues) - n_errors
    print(
        f"{len(specs)} rule(s): {n_errors} error(s), "
        f"{n_warnings} warning(s)"
    )
    return 1 if n_errors else 0


def _cmd_rules_mine(args) -> int:
    from repro.obs import MetricsRegistry
    from repro.rules import MiningError, mine_from_corpus

    registry = MetricsRegistry()
    sdk, generator, checker = _build_and_fit(args, registry)
    corpus = generator.generate_family_balanced(
        args.per_family, args.benign
    )
    try:
        mined = mine_from_corpus(
            checker,
            corpus,
            min_support=args.min_support,
            min_precision=args.min_precision,
            min_lift=args.min_lift,
            max_rules_per_family=args.max_rules_per_family,
            seed=args.mine_seed,
            registry=registry,
        )
    except MiningError as exc:
        print(f"mining failed: {exc}", file=sys.stderr)
        return 1
    path = mined.save(args.out)
    print(
        f"mined {len(mined.rules)} rule(s) over {len(mined.base)} "
        f"base rule(s) from {mined.n_observations} observations"
    )
    for family in sorted(mined.families):
        stats = mined.families[family]
        print(f"  {family}: rows={stats['rows']} "
              f"candidates={stats['candidates']} kept={stats['kept']} "
              f"fire_coverage={stats['fire_coverage']:.2f}")
    print(f"artifact: {path} (sha256 {mined.sha256[:16]}…)")
    return 0


def _cmd_rules_diff(args) -> int:
    from pathlib import Path

    from repro.rules import diff_rulesets, load_ruleset

    for name in (args.old, args.new):
        if not Path(name).is_file():
            print(f"no such ruleset file: {name}", file=sys.stderr)
            return 2
    diff = diff_rulesets(load_ruleset(args.old), load_ruleset(args.new))
    print(diff.format())
    return 0


def _cmd_rules_push(args) -> int:
    import json as json_mod
    from pathlib import Path
    from urllib.error import HTTPError, URLError
    from urllib.request import Request, urlopen

    path = Path(args.ruleset)
    if not path.is_file():
        print(f"no such ruleset file: {args.ruleset}", file=sys.stderr)
        return 2
    url = args.url.rstrip("/") + "/v1/admin/ruleset"
    request = Request(
        url,
        data=path.read_bytes(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urlopen(request, timeout=args.timeout) as response:
            receipt = json_mod.loads(response.read())
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        print(f"push rejected ({exc.code}): {detail}", file=sys.stderr)
        return 1
    except (URLError, OSError) as exc:
        print(f"push failed: {exc}", file=sys.stderr)
        return 1
    print(f"ruleset v{receipt['ruleset_version']} live "
          f"({receipt['n_rules']} rules)")
    for shard_id, shard_receipt in sorted(
        receipt.get("shards", {}).items()
    ):
        print(f"  shard {shard_id}: "
              f"v{shard_receipt['ruleset_version']}")
    return 0


def cmd_scenarios(args) -> int:
    from repro.scenarios import Campaign, bundled_campaigns

    if args.scenarios_command == "list":
        for name, campaign in sorted(bundled_campaigns().items()):
            print(f"{name}: {campaign.days} day(s), "
                  f"~{campaign.planned_submissions} submissions")
            print(f"    {campaign.description}")
        return 0

    from pathlib import Path

    from repro.scenarios import CampaignRunner

    bundled = bundled_campaigns()
    if args.name in bundled:
        campaign = bundled[args.name]
    elif Path(args.name).is_file():
        campaign = Campaign.from_json(Path(args.name).read_text())
    else:
        print(f"unknown campaign {args.name!r}; bundled: "
              f"{', '.join(sorted(bundled))}", file=sys.stderr)
        return 2
    if args.scale != 1.0:
        campaign = campaign.scaled(args.scale)

    print(f"campaign {campaign.name}: {campaign.days} day(s), "
          f"~{campaign.planned_submissions} submissions, "
          f"shards={args.shards}")
    # Not _build_and_fit: retraining campaigns need the bootstrap
    # corpus back as the feedback-retrain base, so keep it.
    from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec

    sdk = AndroidSdk.generate(SdkSpec(n_apis=args.apis, seed=args.seed))
    generator = CorpusGenerator(sdk, seed=args.seed + 1)
    train = generator.generate(args.train)
    checker = ApiChecker(sdk, seed=args.seed + 2).fit(train)
    runner = CampaignRunner(
        campaign,
        checker,
        catalog=generator.catalog,
        shards=args.shards,
        workers=args.workers,
        batch_size=args.batch_size,
        train_corpus=train,
    )
    report = runner.run()
    for day in report.days:
        d = day.to_dict()
        print(f"day {d['day']}: unique={d['n_unique']} "
              f"precision={d['precision']:.3f} recall={d['recall']:.3f} "
              f"p50={d['latency_p50_s']*1000:.0f}ms "
              f"p95={d['latency_p95_s']*1000:.0f}ms "
              f"429s={d['rejected_429']} 503s={d['unavailable_503']} "
              f"peak_depth={d['peak_queue_depth']} "
              f"explained={d['n_explained']}/{d['n_flagged']}")
        for wave, recall in d["wave_recall"].items():
            print(f"    wave {wave}: recall={recall:.3f}")
    for decision in report.evolution:
        print(f"retrain day {decision['day']}: {decision['decision']} "
              f"(active_f1={decision.get('active_f1', 0):.3f} "
              f"candidate_f1={decision.get('candidate_f1', 0):.3f})")
    totals = report.to_dict()["totals"]
    print(f"totals: precision={totals['precision']:.3f} "
          f"recall={totals['recall']:.3f} lost={totals['lost']} "
          f"429s={totals['rejected_429']}")
    if args.out:
        Path(args.out).write_text(report.to_json())
        print(f"report written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "vet": cmd_vet,
        "evolve": cmd_evolve,
        "metrics": cmd_metrics,
        "serve": cmd_serve,
        "explain": cmd_explain,
        "rules": cmd_rules,
        "scenarios": cmd_scenarios,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
