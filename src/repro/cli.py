"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — train APICHECKER on a synthetic market and vet fresh
  submissions, printing the headline metrics.
* ``vet`` — train, vet, and write the analysis log (JSON lines) for
  offline auditing/retraining.
* ``evolve`` — run N months of monthly retraining and print the
  Fig. 12 / Fig. 14 series.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--apis", type=int, default=2000,
                        help="synthetic SDK size (default 2000)")
    parser.add_argument("--train", type=int, default=1200,
                        help="training corpus size (default 1200)")
    parser.add_argument("--seed", type=int, default=7)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="APICHECKER (EuroSys 2020) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train and vet a synthetic market")
    _add_common(demo)
    demo.add_argument("--fresh", type=int, default=400,
                      help="fresh submissions to vet (default 400)")

    vet = sub.add_parser("vet", help="vet and write an analysis log")
    _add_common(vet)
    vet.add_argument("--fresh", type=int, default=400)
    vet.add_argument("--log", required=True,
                     help="output JSON-lines analysis log")
    vet.add_argument("--workers", type=int, default=None,
                     help="pipeline worker pool size "
                          "(default: every emulator slot)")
    vet.add_argument("--cache", default=None,
                     help="JSON-lines observation cache; resubmitted "
                          "md5s skip re-emulation")

    evolve = sub.add_parser("evolve", help="monthly model evolution")
    _add_common(evolve)
    evolve.add_argument("--months", type=int, default=6)
    evolve.add_argument("--per-month", type=int, default=250)
    return parser


def _build_and_fit(args):
    from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec

    sdk = AndroidSdk.generate(SdkSpec(n_apis=args.apis, seed=args.seed))
    generator = CorpusGenerator(sdk, seed=args.seed + 1)
    train = generator.generate(args.train)
    checker = ApiChecker(sdk, seed=args.seed + 2).fit(train)
    return sdk, generator, checker


def cmd_demo(args) -> int:
    from repro.ml.metrics import evaluate

    sdk, generator, checker = _build_and_fit(args)
    fresh = generator.generate(args.fresh)
    verdicts = checker.vet_batch(fresh)
    pred = np.array([v.malicious for v in verdicts])
    report = evaluate(fresh.labels, pred)
    minutes = np.array([v.analysis_minutes for v in verdicts])
    print(f"key APIs: {checker.key_api_ids.size}")
    print(
        f"precision={report.precision:.3f} recall={report.recall:.3f} "
        f"f1={report.f1:.3f}"
    )
    print(f"mean scan: {minutes.mean():.2f} simulated minutes")
    return 0


def cmd_vet(args) -> int:
    from repro.core.pipeline import ObservationCache, VettingPipeline
    from repro.core.reporting import write_log

    sdk, generator, checker = _build_and_fit(args)
    fresh = generator.generate(args.fresh)
    cache = ObservationCache(args.cache) if args.cache else None
    pipeline = VettingPipeline(
        checker.production_engine, workers=args.workers, cache=cache
    )
    result = pipeline.run(fresh)
    if result.failures:
        print(f"{len(result.failures)} apps failed every backend",
              file=sys.stderr)
        return 1
    observations = [a.observation for a in result.analyses]
    verdicts = [
        checker.verdict_from_observation(
            a.observation,
            analysis_minutes=a.total_minutes,
            fell_back=a.fell_back,
        )
        for a in result.analyses
    ]
    n = write_log(args.log, observations, verdicts)
    flagged = sum(v.malicious for v in verdicts)
    print(f"wrote {n} analysis records to {args.log} ({flagged} flagged)")
    print(
        f"pipeline: {result.workers} workers, "
        f"makespan {result.schedule.makespan_minutes:.1f} simulated min, "
        f"{result.requeues} requeues, "
        f"{result.cache_hits} cache hits / {result.cache_misses} misses"
    )
    return 0


def cmd_evolve(args) -> int:
    from repro import AndroidSdk, EvolutionLoop, MarketStream, SdkSpec

    sdk = AndroidSdk.generate(SdkSpec(n_apis=args.apis, seed=args.seed))
    stream = MarketStream(
        sdk, apps_per_month=args.per_month, seed=args.seed + 1
    )
    initial = stream.bootstrap_corpus(args.train)
    loop = EvolutionLoop(
        stream,
        initial,
        max_pool=args.train + args.months * args.per_month,
        checker_seed=args.seed + 2,
    )
    print(f"{'month':>5} {'prec':>6} {'recall':>7} {'#keys':>6} {'SDK':>6}")
    for _ in range(args.months):
        rec = loop.run_month()
        print(
            f"{rec.month:>5} {rec.report.precision:>6.3f} "
            f"{rec.report.recall:>7.3f} {rec.n_key_apis:>6} "
            f"{rec.sdk_size:>6}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"demo": cmd_demo, "vet": cmd_vet, "evolve": cmd_evolve}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
