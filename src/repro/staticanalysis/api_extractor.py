"""Static API usage extraction from the Dex code model.

What a static analyzer (Drebin, DroidAPIMiner, …) sees: every direct
call site in the bytecode, regardless of whether any execution path
reaches it — but *not* calls made through reflection or hidden APIs,
and nothing loaded dynamically at runtime.  This asymmetry against
dynamic analysis is exactly the trade-off Table 1 is about.
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk


class StaticApiExtractor:
    """Extracts statically visible API usage and manifest features."""

    def __init__(self, sdk: AndroidSdk):
        self.sdk = sdk

    def api_ids(self, apk: Apk) -> tuple[int, ...]:
        """All directly referenced framework APIs (code-reachable or not).

        Reflection-hidden calls are invisible; dynamically loaded code
        contributes nothing either.
        """
        return apk.dex.direct_api_ids

    def usage_matrix(self, apps, api_ids: np.ndarray) -> np.ndarray:
        """Binary (n_apps, len(api_ids)) static-usage matrix."""
        api_ids = np.asarray(api_ids, dtype=int)
        col = {int(a): i for i, a in enumerate(api_ids)}
        X = np.zeros((len(apps), api_ids.size), dtype=np.uint8)
        for i, apk in enumerate(apps):
            for api_id in self.api_ids(apk):
                j = col.get(int(api_id))
                if j is not None:
                    X[i, j] = 1
        return X

    def permission_matrix(self, apps) -> np.ndarray:
        """Binary requested-permission matrix over the SDK registry."""
        names = self.sdk.permissions.names
        col = {name: i for i, name in enumerate(names)}
        X = np.zeros((len(apps), len(names)), dtype=np.uint8)
        for i, apk in enumerate(apps):
            for name in apk.manifest.requested_permissions:
                j = col.get(name)
                if j is not None:
                    X[i, j] = 1
        return X

    def intent_matrix(self, apps) -> np.ndarray:
        """Binary statically-declared intent matrix (receiver filters
        plus intents sent from code)."""
        names = self.sdk.intents.names
        col = {name: i for i, name in enumerate(names)}
        X = np.zeros((len(apps), len(names)), dtype=np.uint8)
        for i, apk in enumerate(apps):
            used = set(apk.manifest.receiver_intent_actions) | set(
                apk.dex.sent_intents
            )
            for name in used:
                j = col.get(name)
                if j is not None:
                    X[i, j] = 1
        return X
