"""Static analysis substrate.

Three static tools the paper relies on:

* the referenced-Activity scan over non-obfuscated APKs that motivates
  the RAC metric (§4.2 — on average only 88% of declared Activities are
  referenced by code);
* static API extraction from ``classes.dex`` (what the static baselines
  of Table 1 consume);
* the SDK-source coverage scan of §5.4 showing ~9.6% of the other
  framework APIs internally rely on the 426 key APIs.
"""

from repro.staticanalysis.api_extractor import StaticApiExtractor
from repro.staticanalysis.coverage import KeyApiCoverage, dependency_coverage
from repro.staticanalysis.manifest_scanner import (
    ReferencedActivityScan,
    scan_corpus_referenced_fraction,
    scan_referenced_activities,
)

__all__ = [
    "KeyApiCoverage",
    "ReferencedActivityScan",
    "StaticApiExtractor",
    "dependency_coverage",
    "scan_corpus_referenced_fraction",
    "scan_referenced_activities",
]
