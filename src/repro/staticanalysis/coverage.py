"""Key-API dependency coverage over the SDK source (§5.4).

The paper scans the Android SDK (level 27) source and finds that while
the 426 key APIs are only 0.85% of the ~50K framework APIs, another
4,816 APIs (9.6%) are implemented *in terms of* them — so an attacker
re-implementing around the key set would have to replace 10.5% of the
framework.  Here the scan walks the registry's internal call graph with
networkx.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.android.sdk import AndroidSdk


@dataclass(frozen=True)
class KeyApiCoverage:
    """Result of the dependency scan.

    Attributes:
        n_keys: size of the key set.
        n_dependent: other APIs that (transitively) call a key API.
        n_total: SDK size.
    """

    n_keys: int
    n_dependent: int
    n_total: int

    @property
    def key_fraction(self) -> float:
        return self.n_keys / self.n_total

    @property
    def dependent_fraction(self) -> float:
        return self.n_dependent / self.n_total

    @property
    def covered_fraction(self) -> float:
        """Keys plus dependents, as a fraction of the SDK (paper: 10.5%)."""
        return (self.n_keys + self.n_dependent) / self.n_total


def build_call_graph(sdk: AndroidSdk) -> nx.DiGraph:
    """The framework-internal call graph as a networkx digraph."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(sdk)))
    for caller, callees in sdk.internal_calls.items():
        for callee in callees:
            graph.add_edge(caller, callee)
    return graph


def dependency_coverage(
    sdk: AndroidSdk, key_api_ids: np.ndarray
) -> KeyApiCoverage:
    """Count non-key APIs whose implementation reaches a key API.

    Walks the reversed call graph from the key set, so one traversal
    covers all transitive callers.
    """
    keys = set(int(i) for i in np.asarray(key_api_ids, dtype=int))
    if not keys:
        raise ValueError("key set must be non-empty")
    out_of_range = [k for k in keys if k < 0 or k >= len(sdk)]
    if out_of_range:
        raise ValueError(f"key ids out of range: {out_of_range[:5]}")
    graph = build_call_graph(sdk).reverse(copy=False)
    reachable: set[int] = set()
    for key in keys:
        reachable.update(nx.descendants(graph, key))
    dependent = reachable - keys
    return KeyApiCoverage(
        n_keys=len(keys),
        n_dependent=len(dependent),
        n_total=len(sdk),
    )
