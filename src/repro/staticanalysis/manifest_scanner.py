"""Referenced-Activity scan (§4.2).

The paper's first UI-coverage metric counted all Activities declared in
``AndroidManifest.xml``, but that over-counts: some declared Activities
are never referenced by code.  A script scanning the manifest and code
of every *non-obfuscated* APK found that on average only 88% of declared
Activities are actually referenced — motivating Referred Activity
Coverage (RAC) as the denominator-corrected metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.apk import Apk


class ObfuscatedApkError(RuntimeError):
    """Identifier obfuscation defeats the static reference scan."""


@dataclass(frozen=True)
class ReferencedActivityScan:
    """Scan result for one APK."""

    apk_md5: str
    declared: int
    referenced: int

    @property
    def referenced_fraction(self) -> float:
        return self.referenced / self.declared if self.declared else 0.0


def scan_referenced_activities(apk: Apk) -> ReferencedActivityScan:
    """Statically resolve which declared Activities the code references.

    Raises:
        ObfuscatedApkError: for obfuscated APKs, whose identifiers
            cannot be matched between manifest and code.
    """
    if apk.dex.obfuscated:
        raise ObfuscatedApkError(
            f"{apk.package_name} is obfuscated; reference scan impossible"
        )
    declared = apk.manifest.declared_activity_count
    referenced = len(apk.manifest.referenced_activities)
    return ReferencedActivityScan(apk.md5, declared, referenced)


def scan_corpus_referenced_fraction(apps) -> tuple[float, int, int]:
    """Average referenced fraction over all non-obfuscated apps.

    Returns:
        (average_fraction, n_scanned, n_skipped_obfuscated).
    """
    fractions = []
    skipped = 0
    for apk in apps:
        try:
            scan = scan_referenced_activities(apk)
        except ObfuscatedApkError:
            skipped += 1
            continue
        if scan.declared:
            fractions.append(scan.referenced_fraction)
    if not fractions:
        raise ValueError("no scannable apps in the corpus")
    return sum(fractions) / len(fractions), len(fractions), skipped
