"""repro.drift: drifting markets, drift detection, continuous evolution.

The subsystem spans corpus → validation → detection → serving (see
docs/drift.md):

- :mod:`repro.drift.market` — :class:`DriftingMarket`, a seeded
  day-granular submission stream with a deterministic drift model, and
  :class:`DriftingMarketStream`, its evolution-loop adapter.
- :mod:`repro.drift.detectors` — online drift monitors
  (shadow agreement, labeled-lag rolling F1, PSI over feature-column
  frequencies) bundled into a :class:`DriftMonitorBank`.
- :mod:`repro.drift.policy` — pluggable
  :class:`~repro.drift.policy.RetrainPolicy` implementations driving
  :class:`~repro.core.evolution.EvolutionLoop`.

Time-aware train/test splitting lives with the other validation tools
in :mod:`repro.ml.validation`.
"""

from repro.drift.detectors import (
    DriftMonitorBank,
    PsiMonitor,
    RollingF1Monitor,
    ShadowAgreementMonitor,
)
from repro.drift.market import (
    DaySlice,
    DriftEvent,
    DriftingMarket,
    DriftingMarketStream,
    SemesterSlice,
)
from repro.drift.policy import (
    DriftTriggeredPolicy,
    HybridPolicy,
    MonthlyPolicy,
    NeverPolicy,
    RetrainDecision,
    RetrainPolicy,
)

__all__ = [
    "DaySlice",
    "DriftEvent",
    "DriftMonitorBank",
    "DriftTriggeredPolicy",
    "DriftingMarket",
    "DriftingMarketStream",
    "HybridPolicy",
    "MonthlyPolicy",
    "NeverPolicy",
    "PsiMonitor",
    "RetrainDecision",
    "RetrainPolicy",
    "RollingF1Monitor",
    "SemesterSlice",
    "ShadowAgreementMonitor",
]
