"""Time-sliced drifting market: a seeded, deterministic drift model.

The evolution experiments (§6) and every post-hoc study of Android
malware detectors (ELSA, Muzaffar et al.) agree on the failure mode:
feature-based detectors decay because the *world* moves — the SDK
gains APIs and families adopt them, families rotate their playbooks,
new families appear, and benign API fashion shifts underneath
everything.  :class:`DriftingMarket` generates that world as a
day-granular submission stream with three seeded drift mechanisms:

1. **Per-SDK-release mutation within families** — every
   ``sdk_release_every`` days the SDK gains ``sdk_growth`` APIs, new
   malware-leaning APIs join some family signatures, and a few
   existing families *rotate* a fraction of their signature onto fresh
   discriminative APIs (:meth:`ArchetypeCatalog.mutate_signature`).
2. **Scheduled new-family introduction** — at each day in
   ``new_family_days`` an ``emergent_<k>`` family is registered whose
   signature prefers discriminative APIs no existing family uses, so a
   model trained before its debut is nearly blind to it.
3. **Benign API fashion shift** — every ``fashion_shift_every`` days
   the generator's Zipf-like breadth popularity is re-drawn
   (:meth:`CorpusGenerator.refresh_breadth_pools`), moving the popular
   head of ordinary-API usage.

Everything is driven by ``numpy`` generators seeded from one ``seed``,
and days are generated strictly in order (later requests are served
from a cache), so slices are **byte-deterministic**: the same seed
yields the same md5 sequence per day regardless of access order,
re-runs, or how many workers later consume the slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.sdk import AndroidSdk
from repro.corpus.families import BehaviorArchetype
from repro.corpus.generator import (
    AppCorpus,
    CorpusGenerator,
    PAPER_MALWARE_RATE,
)
from repro.corpus.market import MonthBatch, ReviewPipeline

__all__ = [
    "DaySlice",
    "DriftEvent",
    "DriftingMarket",
    "DriftingMarketStream",
    "SemesterSlice",
]


@dataclass(frozen=True)
class DriftEvent:
    """One drift-model action, applied at the start of ``day``."""

    day: int
    kind: str  # "sdk_release" | "signature_mutation" | "new_family" | "fashion_shift"
    detail: str


@dataclass(frozen=True)
class DaySlice:
    """One reviewed day of submissions.

    Attributes:
        day: 0-based day index; every app's ``submitted_day`` equals it.
        corpus: the day's submissions.
        market_labels: the review pipeline's (near ground truth) labels.
        sdk: the SDK in force that day.
        events: drift events applied at the start of this day.
    """

    day: int
    corpus: AppCorpus
    market_labels: np.ndarray
    sdk: AndroidSdk
    events: tuple[DriftEvent, ...]


@dataclass(frozen=True)
class SemesterSlice:
    """A contiguous half-year (or ``semester_days``) of reviewed traffic."""

    index: int
    first_day: int
    last_day: int
    corpus: AppCorpus
    market_labels: np.ndarray
    sdk: AndroidSdk


class DriftingMarket:
    """Day-granular drifting submission stream with deterministic slices.

    Args:
        sdk: the launch SDK (grows over the horizon).
        seed: master seed; fixes the whole horizon byte-for-byte.
        apps_per_day: submissions per day slice.
        days: horizon length in days.
        malware_rate: share of malicious submissions (paper: ~7.7%).
        update_fraction: probability a draw updates an earlier package.
        sdk_release_every: days between SDK releases (0 disables).
        sdk_growth: APIs added per release.
        mutation_fraction: share of a family's non-canonical signature
            rotated onto fresh APIs at each release.
        mutated_families: malware families rotated per release.
        new_family_days: days on which an emergent family debuts
            (default: one debut at ~40% of the horizon).
        new_family_weight: market weight of each emergent family
            (existing malware weights sum to ~14).
        fashion_shift_every: days between benign popularity re-draws
            (0 disables; releases always refresh the pools).
        semester_days: days per :meth:`semester` slice.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        seed: int = 0,
        apps_per_day: int = 40,
        days: int = 360,
        malware_rate: float = PAPER_MALWARE_RATE,
        update_fraction: float = 0.85,
        sdk_release_every: int = 90,
        sdk_growth: int = 60,
        mutation_fraction: float = 0.35,
        mutated_families: int = 3,
        new_family_days: tuple[int, ...] | None = None,
        new_family_weight: float = 4.0,
        fashion_shift_every: int = 120,
        semester_days: int = 180,
    ):
        if apps_per_day <= 0:
            raise ValueError("apps_per_day must be positive")
        if days <= 0:
            raise ValueError("days must be positive")
        if semester_days <= 0:
            raise ValueError("semester_days must be positive")
        if not 0.0 <= mutation_fraction <= 1.0:
            raise ValueError("mutation_fraction must be in [0, 1]")
        self.sdk = sdk
        self.apps_per_day = apps_per_day
        self.days = days
        self.malware_rate = malware_rate
        self.update_fraction = update_fraction
        self.sdk_release_every = sdk_release_every
        self.sdk_growth = sdk_growth
        self.mutation_fraction = mutation_fraction
        self.mutated_families = mutated_families
        if new_family_days is None:
            new_family_days = (max(1, int(days * 0.4)),)
        self.new_family_days = tuple(sorted(int(d) for d in new_family_days))
        if any(d < 1 or d >= days for d in self.new_family_days):
            raise ValueError("new_family_days must fall inside (0, days)")
        self.new_family_weight = new_family_weight
        self.fashion_shift_every = fashion_shift_every
        self.semester_days = semester_days
        self.generator = CorpusGenerator(sdk, seed=seed)
        self.review = ReviewPipeline(seed=seed + 1)
        self._drift_rng = np.random.default_rng(seed + 2)
        self._slices: list[DaySlice] = []
        self.events: list[DriftEvent] = []
        self._n_emergent = 0

    # ------------------------------------------------------------------
    # Slice access
    # ------------------------------------------------------------------

    def bootstrap(self, n_apps: int) -> AppCorpus:
        """Pre-deployment (day 0, pre-drift) training corpus.

        Shares the market's generator so training data and live traffic
        come from the same behaviour world.  Must be drawn before any
        day slice is generated — the bootstrap is part of the single
        deterministic stream, so drawing it later would change every
        subsequent slice.
        """
        if self._slices:
            raise RuntimeError(
                "bootstrap() must be called before any day slice is "
                "generated (the market is one deterministic stream)"
            )
        rng = self.generator._rng  # noqa: SLF001 - shared stream by design
        apps = []
        for _ in range(n_apps):
            malicious = bool(rng.random() < self.malware_rate)
            apps.append(
                self.generator.sample_app(
                    malicious=malicious,
                    day=0,
                    update_prob=self.update_fraction,
                )
            )
        return AppCorpus(self.sdk, apps)

    def day_slice(self, day: int) -> DaySlice:
        """The reviewed slice for one day (generated on demand).

        Days are always generated in order and cached, so any access
        pattern — sequential, random, repeated — observes the same
        byte-identical slices.
        """
        if not 0 <= day < self.days:
            raise ValueError(f"day {day} outside horizon [0, {self.days})")
        while len(self._slices) <= day:
            self._generate_day(len(self._slices))
        return self._slices[day]

    def day_slices(self, first_day: int, last_day: int) -> list[DaySlice]:
        """Slices for ``[first_day, last_day]`` inclusive."""
        if first_day > last_day:
            raise ValueError("first_day must be <= last_day")
        return [self.day_slice(d) for d in range(first_day, last_day + 1)]

    @property
    def n_semesters(self) -> int:
        return (self.days + self.semester_days - 1) // self.semester_days

    def semester(self, index: int) -> SemesterSlice:
        """Concatenate one semester's day slices (ELSA-style test sets)."""
        if not 0 <= index < self.n_semesters:
            raise ValueError(
                f"semester {index} outside [0, {self.n_semesters})"
            )
        first = index * self.semester_days
        last = min(self.days, first + self.semester_days) - 1
        slices = self.day_slices(first, last)
        apps = [apk for s in slices for apk in s.corpus]
        labels = np.concatenate([s.market_labels for s in slices])
        return SemesterSlice(
            index=index,
            first_day=first,
            last_day=last,
            corpus=AppCorpus(self.sdk, apps),
            market_labels=labels,
            sdk=slices[-1].sdk,
        )

    # ------------------------------------------------------------------
    # The drift model
    # ------------------------------------------------------------------

    def _generate_day(self, day: int) -> None:
        events = self._apply_drift(day)
        rng = self.generator._rng  # noqa: SLF001 - shared stream by design
        apps = []
        for _ in range(self.apps_per_day):
            malicious = bool(rng.random() < self.malware_rate)
            apps.append(
                self.generator.sample_app(
                    malicious=malicious,
                    day=day,
                    update_prob=self.update_fraction,
                )
            )
        corpus = AppCorpus(self.sdk, apps)
        labels = self.review.label_corpus(corpus)
        self._slices.append(
            DaySlice(day, corpus, labels, self.sdk, events)
        )

    def _apply_drift(self, day: int) -> tuple[DriftEvent, ...]:
        events: list[DriftEvent] = []
        released = (
            self.sdk_release_every > 0
            and day > 0
            and day % self.sdk_release_every == 0
        )
        if released:
            events.extend(self._release_sdk(day))
        if day in self.new_family_days:
            events.append(self._introduce_family(day))
        if (
            not released
            and self.fashion_shift_every > 0
            and day > 0
            and day % self.fashion_shift_every == 0
        ):
            self.generator.refresh_breadth_pools(self._drift_rng)
            events.append(
                DriftEvent(day, "fashion_shift", "benign popularity re-drawn")
            )
        self.events.extend(events)
        return tuple(events)

    def _release_sdk(self, day: int) -> list[DriftEvent]:
        """New SDK level: growth, adoption, and within-family rotation."""
        rng = self._drift_rng
        old_n = len(self.sdk)
        new_sdk = self.sdk.extend(self.sdk_growth)
        self.sdk = new_sdk
        gen = self.generator
        gen.sdk = new_sdk
        gen.catalog.sdk = new_sdk
        events = [
            DriftEvent(
                day, "sdk_release",
                f"SDK grew {old_n} -> {len(new_sdk)} APIs",
            )
        ]
        # Newly added malware-leaning APIs join some family signatures.
        new_disc = new_sdk.discriminative_api_ids[
            new_sdk.discriminative_api_ids >= old_n
        ]
        malware_names = gen.catalog.malware_names
        for api_id in new_disc:
            name = malware_names[int(rng.integers(len(malware_names)))]
            gen.catalog.extend_signature(name, [int(api_id)])
        # Within-family rotation: a few families move a slice of their
        # playbook onto fresh APIs, eroding a stale model's key set.
        n_mutate = min(self.mutated_families, len(malware_names))
        if n_mutate and self.mutation_fraction > 0:
            chosen = rng.choice(
                len(malware_names), size=n_mutate, replace=False
            )
            for idx in sorted(int(i) for i in chosen):
                name = malware_names[idx]
                before = gen.catalog.signature_of(name).size
                gen.catalog.mutate_signature(
                    name, rng, fraction=self.mutation_fraction
                )
                events.append(
                    DriftEvent(
                        day, "signature_mutation",
                        f"{name}: rotated ~{self.mutation_fraction:.0%} of "
                        f"{before} signature APIs",
                    )
                )
        # A release always reshuffles the ordinary-API fashion too.
        gen.refresh_breadth_pools(rng)
        return events

    def _introduce_family(self, day: int) -> DriftEvent:
        """Register an emergent malware family the old world never saw.

        Its signature prefers discriminative APIs *unused* by every
        existing family, so a model trained before the debut has those
        columns dominated by benign traffic — the family lands almost
        entirely as false negatives until a retrain re-mines the key
        set over post-debut data.
        """
        rng = self._drift_rng
        self._n_emergent += 1
        name = f"emergent_{self._n_emergent}"
        catalog = self.generator.catalog
        pool = self.sdk.discriminative_api_ids
        used = np.unique(np.concatenate(list(catalog.signatures.values())))
        fresh = pool[~np.isin(pool, used)]
        size = 16
        take = min(size, fresh.size)
        signature = (
            rng.choice(fresh, size=take, replace=False)
            if take else np.array([], dtype=int)
        )
        if take < size:
            rest = pool[~np.isin(pool, signature)]
            extra = rng.choice(
                rest, size=min(size - take, rest.size), replace=False
            )
            signature = np.concatenate([signature, extra])
        archetype = BehaviorArchetype(
            name=name,
            malicious=True,
            weight=self.new_family_weight,
            signature_size=size,
            signature_use_prob=0.85,
            signature_use_jitter=0.2,
            restricted_draw=(2, 0.35),
            sensitive_draw=(2, 0.35),
            breadth_mean=90.0,
            rate_intensity=1.2,
            probe_prob=0.1,
            dynamic_loading_prob=0.2,
            native_prob=0.3,
            obfuscation_prob=0.3,
            n_activities_mean=8.0,
            size_mb_mean=14.0,
        )
        catalog.register(archetype, signature=signature)
        return DriftEvent(
            day, "new_family",
            f"{name} debuts with {int(signature.size)} signature APIs",
        )


class DriftingMarketStream:
    """Adapter: a :class:`DriftingMarket` as an evolution-loop stream.

    Presents the ``MarketStream`` protocol
    (:meth:`bootstrap_corpus` / :meth:`next_month` / ``.sdk``) over
    consecutive ``period_days``-day windows of the drifting market, so
    :class:`~repro.core.evolution.EvolutionLoop` — and any
    :class:`~repro.drift.policy.RetrainPolicy` plugged into it — can
    replay a drifting year without knowing about day slices.
    """

    def __init__(self, market: DriftingMarket, period_days: int = 30):
        if period_days <= 0:
            raise ValueError("period_days must be positive")
        self.market = market
        self.period_days = period_days
        self._period = 0
        self.last_events: tuple[DriftEvent, ...] = ()

    @property
    def sdk(self) -> AndroidSdk:
        return self.market.sdk

    @property
    def n_periods(self) -> int:
        return self.market.days // self.period_days

    def bootstrap_corpus(self, n_apps: int) -> AppCorpus:
        return self.market.bootstrap(n_apps)

    def next_month(self) -> MonthBatch:
        """The next period's reviewed traffic as one batch."""
        if self._period >= self.n_periods:
            raise StopIteration(
                f"drifting horizon exhausted after {self.n_periods} periods"
            )
        first = self._period * self.period_days
        slices = self.market.day_slices(first, first + self.period_days - 1)
        self._period += 1
        apps = [apk for s in slices for apk in s.corpus]
        labels = np.concatenate([s.market_labels for s in slices])
        self.last_events = tuple(e for s in slices for e in s.events)
        return MonthBatch(
            self._period, AppCorpus(self.sdk, apps), labels, self.sdk
        )
