"""Online drift detectors over the serving tier.

Three small stateful monitors, each answering "has the world moved
under the serving model?" from a different vantage point:

- :class:`ShadowAgreementMonitor` — rolling agreement between the
  active and shadow models.  A freshly retrained candidate diverging
  from the incumbent on *live* traffic is the earliest signal that the
  traffic no longer looks like the incumbent's training data.
- :class:`RollingF1Monitor` — rolling F1 over a labeled-lag feedback
  stream.  Market review labels arrive hours-to-days after the verdict
  (§2); replaying them against the recorded verdicts measures realized
  accuracy decay directly, just late.
- :class:`PsiMonitor` — a population-stability-index monitor over
  :class:`~repro.core.features.FeatureBlock` column frequencies.
  Label-free and earliest of all: it fires when the *input*
  distribution (which APIs/permissions/intents fire, per column)
  shifts from the training reference, before accuracy visibly moves.

Every monitor exposes ``drift_score`` (0 = stable, higher = drifted),
an ``alarmed`` flag with edge-triggered alarm counting, and publishes
``drift_score{monitor=...}`` gauges plus a ``drift_alarms_total``
counter to a :class:`~repro.obs.MetricsRegistry`.
:class:`DriftMonitorBank` bundles them behind the update surface the
serving tier and the evolution loop call.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.ml.metrics import evaluate
from repro.obs import MetricsRegistry

__all__ = [
    "DriftMonitorBank",
    "PsiMonitor",
    "RollingF1Monitor",
    "ShadowAgreementMonitor",
]


class _BaseMonitor:
    """Shared state machine: score gauge + edge-triggered alarms."""

    def __init__(
        self,
        name: str,
        threshold: float,
        min_samples: int,
        registry: MetricsRegistry | None,
    ):
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.name = name
        self.threshold = threshold
        self.min_samples = min_samples
        self.registry = registry
        self.alarms = 0
        self._alarmed = False

    @property
    def samples(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def drift_score(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def alarmed(self) -> bool:
        return self._alarmed

    def _publish(self) -> None:
        """Re-evaluate the alarm state after an update."""
        score = self.drift_score()
        firing = (
            self.samples >= self.min_samples and score > self.threshold
        )
        if firing and not self._alarmed:
            self.alarms += 1
            if self.registry is not None:
                self.registry.inc("drift_alarms_total", monitor=self.name)
        self._alarmed = firing
        if self.registry is not None:
            self.registry.set_gauge("drift_score", score, monitor=self.name)

    def reset(self) -> None:
        """Clear the rolling window (e.g. right after a retrain)."""
        self._clear_window()
        self._alarmed = False
        if self.registry is not None:
            self.registry.set_gauge(
                "drift_score", self.drift_score(), monitor=self.name
            )

    def _clear_window(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def status(self) -> dict:
        """Healthz-ready summary."""
        return {
            "drift_score": round(self.drift_score(), 4),
            "alarmed": self.alarmed,
            "alarms": self.alarms,
            "samples": self.samples,
        }


class ShadowAgreementMonitor(_BaseMonitor):
    """Rolling active-vs-shadow verdict agreement.

    ``drift_score`` is one minus the rolling agreement rate over the
    last ``window`` shadow-scored submissions; the alarm fires when
    agreement drops below ``1 - threshold`` with at least
    ``min_samples`` in the window.  With no shadow staged the monitor
    simply sees no updates and stays quiet.
    """

    def __init__(
        self,
        window: int = 200,
        threshold: float = 0.1,
        min_samples: int = 20,
        registry: MetricsRegistry | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__("shadow_agreement", threshold, min_samples, registry)
        self._window: deque[bool] = deque(maxlen=window)

    @property
    def samples(self) -> int:
        return len(self._window)

    def rolling_agreement(self) -> float | None:
        """Agreement rate over the window (None while empty)."""
        if not self._window:
            return None
        return sum(self._window) / len(self._window)

    def drift_score(self) -> float:
        rate = self.rolling_agreement()
        return 0.0 if rate is None else 1.0 - rate

    def update(self, agreed: bool) -> None:
        self._window.append(bool(agreed))
        if self.registry is not None:
            self.registry.set_gauge(
                "serve_shadow_agreement_rolling", self.rolling_agreement()
            )
        self._publish()

    def _clear_window(self) -> None:
        self._window.clear()


class RollingF1Monitor(_BaseMonitor):
    """Rolling F1 over (predicted, actual) labeled-lag feedback pairs.

    ``drift_score`` is one minus the rolling F1; the alarm fires when
    F1 drops below ``1 - threshold``.  Windows without a single
    positive ground-truth label are treated as score 0 (nothing to
    decay against) rather than as total failure.
    """

    def __init__(
        self,
        window: int = 500,
        threshold: float = 0.2,
        min_samples: int = 30,
        registry: MetricsRegistry | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__("rolling_f1", threshold, min_samples, registry)
        self._window: deque[tuple[bool, bool]] = deque(maxlen=window)

    @property
    def samples(self) -> int:
        return len(self._window)

    def rolling_f1(self) -> float | None:
        """F1 over the window (None while empty or all-benign)."""
        if not self._window:
            return None
        pred = np.fromiter(
            (p for p, _ in self._window), dtype=bool, count=len(self._window)
        )
        actual = np.fromiter(
            (a for _, a in self._window), dtype=bool, count=len(self._window)
        )
        if not actual.any():
            return None
        return evaluate(actual, pred).f1

    def drift_score(self) -> float:
        f1 = self.rolling_f1()
        return 0.0 if f1 is None else 1.0 - f1

    def update(self, predicted: bool, actual: bool) -> None:
        self._window.append((bool(predicted), bool(actual)))
        self._publish()

    def update_many(self, predicted, actual) -> None:
        for p, a in zip(predicted, actual):
            self._window.append((bool(p), bool(a)))
        self._publish()

    def _clear_window(self) -> None:
        self._window.clear()


class PsiMonitor(_BaseMonitor):
    """Population stability index over feature-column frequencies.

    The reference distribution is the per-column activation frequency
    of the training :class:`~repro.core.features.FeatureBlock`
    (``matrix.mean(axis=0)``); live batches accumulate into a rolling
    window of the last ``window`` rows.  ``drift_score`` is the PSI

        ``sum((p - q) * ln(p / q))``

    over smoothed frequencies — by convention < 0.1 is stable,
    0.1–0.25 moderate, > 0.25 (the default threshold) a major shift.
    """

    def __init__(
        self,
        window: int = 1000,
        threshold: float = 0.25,
        min_samples: int = 50,
        smoothing: float = 1e-3,
        registry: MetricsRegistry | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        super().__init__("psi", threshold, min_samples, registry)
        self.window = window
        self.smoothing = smoothing
        self._reference: np.ndarray | None = None
        self._batches: deque[tuple[np.ndarray, int]] = deque()
        self._rows = 0

    @property
    def samples(self) -> int:
        return self._rows

    def set_reference(self, block_or_freqs) -> None:
        """Fix the training-time column frequencies to compare against.

        Accepts a :class:`FeatureBlock`, a 2-D 0/1 matrix, or a 1-D
        frequency vector.  Resets the live window — a new reference
        means a new model generation.
        """
        self._reference = self._frequencies_of(block_or_freqs)
        self.reset()

    @staticmethod
    def _frequencies_of(block_or_freqs) -> np.ndarray:
        matrix = getattr(block_or_freqs, "matrix", block_or_freqs)
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim == 2:
            if matrix.shape[0] == 0:
                raise ValueError("cannot take frequencies of an empty block")
            return matrix.mean(axis=0)
        if matrix.ndim == 1:
            return matrix
        raise ValueError("expected a FeatureBlock, matrix, or vector")

    def update(self, block_or_matrix) -> None:
        """Fold one live batch's rows into the rolling window."""
        if self._reference is None:
            raise RuntimeError(
                "PsiMonitor.set_reference must be called before update"
            )
        matrix = getattr(block_or_matrix, "matrix", block_or_matrix)
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("expected a FeatureBlock or 2-D matrix")
        if matrix.shape[1] != self._reference.size:
            raise ValueError(
                f"column count {matrix.shape[1]} does not match the "
                f"reference ({self._reference.size}); did the feature "
                "space change without set_reference?"
            )
        if matrix.shape[0] == 0:
            return
        self._batches.append(
            (matrix.sum(axis=0, dtype=np.int64), matrix.shape[0])
        )
        self._rows += matrix.shape[0]
        while self._rows - self._batches[0][1] >= self.window:
            _, n = self._batches.popleft()
            self._rows -= n
        self._publish()

    def psi(self) -> float:
        """The index over the current window (0 while empty)."""
        if self._reference is None or self._rows == 0:
            return 0.0
        counts = np.sum([c for c, _ in self._batches], axis=0)
        live = counts / self._rows
        eps = self.smoothing
        p = np.clip(self._reference, eps, 1.0 - eps)
        q = np.clip(live, eps, 1.0 - eps)
        # Each binary column is a two-bucket distribution (on/off);
        # sum the PSI contribution of both buckets over all columns.
        on = (q - p) * np.log(q / p)
        off = ((1 - q) - (1 - p)) * np.log((1 - q) / (1 - p))
        return float(np.mean(on + off))

    def drift_score(self) -> float:
        return self.psi()

    def _clear_window(self) -> None:
        self._batches.clear()
        self._rows = 0


class DriftMonitorBank:
    """The serving tier's drift surface: update fan-out + healthz status.

    Args:
        shadow: rolling shadow-agreement monitor (None disables).
        f1: rolling labeled-lag F1 monitor (None disables).
        psi: feature-frequency stability monitor (None disables).
        registry: metrics registry injected into monitors built by
            :meth:`default`.
    """

    def __init__(
        self,
        shadow: ShadowAgreementMonitor | None = None,
        f1: RollingF1Monitor | None = None,
        psi: PsiMonitor | None = None,
    ):
        self.shadow = shadow
        self.f1 = f1
        self.psi = psi
        if not any((shadow, f1, psi)):
            raise ValueError("a DriftMonitorBank needs at least one monitor")

    @classmethod
    def default(
        cls, registry: MetricsRegistry | None = None
    ) -> "DriftMonitorBank":
        """All three monitors at their default calibration."""
        return cls(
            shadow=ShadowAgreementMonitor(registry=registry),
            f1=RollingF1Monitor(registry=registry),
            psi=PsiMonitor(registry=registry),
        )

    @property
    def monitors(self) -> list[_BaseMonitor]:
        return [m for m in (self.shadow, self.f1, self.psi) if m is not None]

    # -- update fan-out -------------------------------------------------

    def record_shadow(self, agreed: bool) -> None:
        if self.shadow is not None:
            self.shadow.update(agreed)

    def record_feedback(self, predicted: bool, actual: bool) -> None:
        if self.f1 is not None:
            self.f1.update(predicted, actual)

    def record_block(self, block_or_matrix) -> None:
        """PSI update; a no-op until a reference is set."""
        if self.psi is not None and self.psi._reference is not None:
            self.psi.update(block_or_matrix)

    def set_psi_reference(self, block_or_freqs) -> None:
        if self.psi is not None:
            self.psi.set_reference(block_or_freqs)

    def reset(self) -> None:
        """Clear every window (a new model generation took over)."""
        for monitor in self.monitors:
            monitor.reset()

    # -- read side ------------------------------------------------------

    @property
    def alarmed(self) -> bool:
        return any(m.alarmed for m in self.monitors)

    @property
    def alarms_total(self) -> int:
        return sum(m.alarms for m in self.monitors)

    def worst(self) -> tuple[str, float]:
        """(monitor name, drift score) of the most drifted monitor."""
        scored = [(m.name, m.drift_score()) for m in self.monitors]
        return max(scored, key=lambda pair: pair[1])

    def status(self) -> dict:
        """Healthz payload: per-monitor status plus the rollup."""
        return {
            "alarmed": self.alarmed,
            "alarms_total": self.alarms_total,
            "monitors": {m.name: m.status() for m in self.monitors},
        }
