"""Pluggable retrain policies for the evolution loop.

The paper retrains monthly (§5.3) — a calendar policy.  Calendar
retraining burns a full study-and-refit cycle whether or not the world
moved, and still reacts a half-period late when it moves mid-month.
A :class:`RetrainPolicy` decides *when* the
:class:`~repro.core.evolution.EvolutionLoop` fires its
retrain-and-promote step instead:

- :class:`MonthlyPolicy` — the paper's cadence (every ``every``
  periods); the loop's default behaviour, now explicit.
- :class:`DriftTriggeredPolicy` — retrain only when a
  :class:`~repro.drift.detectors.DriftMonitorBank` alarms, with a
  cooldown so one drawn-out drift episode triggers one retrain.
- :class:`HybridPolicy` — drift-triggered plus a max-staleness
  backstop: even a quiet world gets a retrain every
  ``max_staleness`` periods.
- :class:`NeverPolicy` — the no-evolution baseline the decay figure
  is measured against.

Policies are deliberately tiny state machines over
``should_retrain(...)`` / ``record_retrain(...)`` so the loop, the
serving tier, and the bench can share them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drift.detectors import DriftMonitorBank

__all__ = [
    "DriftTriggeredPolicy",
    "HybridPolicy",
    "MonthlyPolicy",
    "NeverPolicy",
    "RetrainDecision",
    "RetrainPolicy",
]


@dataclass(frozen=True)
class RetrainDecision:
    """One policy verdict for one period."""

    retrain: bool
    reason: str
    drift_score: float = 0.0


class RetrainPolicy:
    """Decides whether the loop retrains after a period's traffic.

    Subclasses override :meth:`should_retrain`; the loop reports each
    actually-executed retrain back via :meth:`record_retrain` so
    cooldowns and staleness counters track reality (a gate-rejected
    candidate still counts — the *work* was spent).
    """

    name = "base"

    def should_retrain(
        self,
        period: int,
        monitors: DriftMonitorBank | None = None,
    ) -> RetrainDecision:
        raise NotImplementedError

    def record_retrain(self, period: int) -> None:
        """Hook: the loop retrained at the end of ``period``."""


class MonthlyPolicy(RetrainPolicy):
    """The paper's calendar cadence: retrain every ``every`` periods."""

    name = "monthly"

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every

    def should_retrain(
        self,
        period: int,
        monitors: DriftMonitorBank | None = None,
    ) -> RetrainDecision:
        due = period % self.every == 0
        return RetrainDecision(
            retrain=due,
            reason=f"calendar: every {self.every} period(s)"
            if due else "calendar: not due",
        )


class NeverPolicy(RetrainPolicy):
    """No evolution: the initial model serves forever (decay baseline)."""

    name = "never"

    def should_retrain(
        self,
        period: int,
        monitors: DriftMonitorBank | None = None,
    ) -> RetrainDecision:
        return RetrainDecision(retrain=False, reason="no-evolution baseline")


class DriftTriggeredPolicy(RetrainPolicy):
    """Retrain only when the monitor bank alarms.

    Args:
        cooldown: minimum periods between retrains — a drift episode
            that outlives one retrain's recovery window should not
            stack a second retrain onto an unrecovered model.
    """

    name = "drift_triggered"

    def __init__(self, cooldown: int = 1):
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.cooldown = cooldown
        self._last_retrain: int | None = None

    def _cooling(self, period: int) -> bool:
        return (
            self._last_retrain is not None
            and period - self._last_retrain <= self.cooldown
        )

    def should_retrain(
        self,
        period: int,
        monitors: DriftMonitorBank | None = None,
    ) -> RetrainDecision:
        if monitors is None:
            raise ValueError(
                "DriftTriggeredPolicy needs a DriftMonitorBank"
            )
        name, score = monitors.worst()
        if monitors.alarmed and not self._cooling(period):
            return RetrainDecision(
                retrain=True,
                reason=f"drift alarm: {name} score {score:.3f}",
                drift_score=score,
            )
        if monitors.alarmed:
            return RetrainDecision(
                retrain=False,
                reason=f"drift alarm in cooldown ({name})",
                drift_score=score,
            )
        return RetrainDecision(
            retrain=False, reason="no drift alarm", drift_score=score
        )

    def record_retrain(self, period: int) -> None:
        self._last_retrain = period


class HybridPolicy(DriftTriggeredPolicy):
    """Drift-triggered with a calendar backstop.

    Fires on a drift alarm like :class:`DriftTriggeredPolicy`, and
    additionally whenever ``max_staleness`` periods have passed since
    the last retrain — bounding how stale the model can get when the
    detectors stay quiet (e.g. slow drift below every threshold).
    """

    name = "hybrid"

    def __init__(self, cooldown: int = 1, max_staleness: int = 6):
        super().__init__(cooldown=cooldown)
        if max_staleness < 1:
            raise ValueError("max_staleness must be >= 1")
        self.max_staleness = max_staleness

    def should_retrain(
        self,
        period: int,
        monitors: DriftMonitorBank | None = None,
    ) -> RetrainDecision:
        decision = super().should_retrain(period, monitors)
        if decision.retrain:
            return decision
        last = self._last_retrain if self._last_retrain is not None else 0
        if period - last >= self.max_staleness:
            return RetrainDecision(
                retrain=True,
                reason=f"staleness backstop: {period - last} periods "
                f"since last retrain",
                drift_score=decision.drift_score,
            )
        return decision
