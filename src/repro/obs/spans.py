"""Nested timing spans with a structured JSONL event sink.

``with span("engine_analyze", md5=apk.md5):`` times a region on the
wall clock, records the duration into a registry histogram named
``<name>_seconds``, and (when a sink is attached) emits one structured
:class:`SpanEvent` per exit.  Spans nest per thread: each event carries
its parent span's name and its depth, so the JSONL stream reconstructs
the call tree of a vetting day.

The pipeline also deals in *simulated* minutes (emulator occupancy
time), which no wall clock can measure; :func:`record_span` emits the
same event shape for an explicitly-timed interval with
``clock="sim"``, feeding a ``<name>_minutes`` histogram instead.  The
executed slot timeline of a pipeline run is recorded this way, which
is what lets throughput and crash-waste figures be *derived from
recorded spans* rather than re-estimated.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.registry import (
    DEFAULT_MINUTES_BUCKETS,
    MetricsRegistry,
    default_registry,
)

__all__ = ["SpanEvent", "SpanSink", "span", "record_span"]


@dataclass(frozen=True)
class SpanEvent:
    """One completed span.

    Attributes:
        name: span name (also the histogram prefix).
        start: start time — ``time.time()`` epoch seconds for wall
            spans, simulated minutes for ``clock="sim"`` spans.
        duration: seconds (wall) or minutes (sim).
        clock: ``"wall"`` or ``"sim"``.
        parent: enclosing span's name ("" at the root).
        depth: nesting depth (0 at the root).
        thread: name of the recording thread.
        attrs: free-form attributes supplied at span creation.
    """

    name: str
    start: float
    duration: float
    clock: str = "wall"
    parent: str = ""
    depth: int = 0
    thread: str = ""
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "clock": self.clock,
            "parent": self.parent,
            "depth": self.depth,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SpanEvent":
        return cls(
            name=record["name"],
            start=float(record["start"]),
            duration=float(record["duration"]),
            clock=record.get("clock", "wall"),
            parent=record.get("parent", ""),
            depth=int(record.get("depth", 0)),
            thread=record.get("thread", ""),
            attrs=dict(record.get("attrs", {})),
        )


class SpanSink:
    """Collects span events in memory and optionally appends JSONL.

    Thread-safe.  The in-memory buffer is bounded (``capacity``) so a
    long-running service cannot grow without limit; the JSONL file, when
    given, receives every event.
    """

    def __init__(
        self, path: str | Path | None = None, capacity: int = 4096
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.path = Path(path) if path is not None else None
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.emitted = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)
            self.emitted += 1
            if self.path is not None:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(json.dumps(event.to_dict(), sort_keys=True))
                    fh.write("\n")

    def __getstate__(self) -> dict:
        """Pickle support (mirrors :meth:`MetricsRegistry.__getstate__`)."""
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def events(self, name: str | None = None) -> list[SpanEvent]:
        """Buffered events, optionally filtered by span name."""
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [e for e in events if e.name == name]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @staticmethod
    def read(path: str | Path) -> list[SpanEvent]:
        """Load span events back from a JSONL trace file."""
        events = []
        with Path(path).open("r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{line_no}: malformed span line"
                    ) from exc
                events.append(SpanEvent.from_dict(record))
        return events


_stack = threading.local()


def _current_stack() -> list[str]:
    stack = getattr(_stack, "names", None)
    if stack is None:
        stack = _stack.names = []
    return stack


class span:
    """Context manager timing one region on the wall clock.

    Args:
        name: metric/span name; the duration lands in a histogram
            called ``<name>_seconds``.
        registry: registry to record into (default: the process-wide
            default registry).
        sink: optional :class:`SpanSink` receiving the structured event.
        **attrs: attributes attached to the emitted event (not used as
            histogram labels, to keep metric cardinality bounded).
    """

    __slots__ = ("name", "registry", "sink", "attrs", "_t0", "_wall0")

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
        **attrs,
    ):
        self.name = name
        self.registry = registry
        self.sink = sink
        self.attrs = attrs
        self._t0 = 0.0
        self._wall0 = 0.0

    def __enter__(self) -> "span":
        _current_stack().append(self.name)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        stack = _current_stack()
        stack.pop()
        registry = self.registry if self.registry is not None \
            else default_registry()
        registry.observe(f"{self.name}_seconds", duration)
        if self.sink is not None:
            attrs = dict(self.attrs)
            if exc_type is not None:
                attrs["error"] = exc_type.__name__
            self.sink.emit(
                SpanEvent(
                    name=self.name,
                    start=self._wall0,
                    duration=duration,
                    clock="wall",
                    parent=stack[-1] if stack else "",
                    depth=len(stack),
                    thread=threading.current_thread().name,
                    attrs=attrs,
                )
            )


def record_span(
    name: str,
    start: float,
    end: float,
    registry: MetricsRegistry | None = None,
    sink: SpanSink | None = None,
    clock: str = "sim",
    **attrs,
) -> SpanEvent:
    """Record an explicitly-timed span (simulated clocks, replays).

    The duration lands in a ``<name>_minutes`` histogram for
    ``clock="sim"`` spans (the pipeline's simulated emulator-occupancy
    timeline) and in ``<name>_seconds`` otherwise.
    """
    if end < start:
        raise ValueError("span must end at or after its start")
    duration = end - start
    registry = registry if registry is not None else default_registry()
    unit = "minutes" if clock == "sim" else "seconds"
    buckets = DEFAULT_MINUTES_BUCKETS if clock == "sim" else None
    registry.observe(f"{name}_{unit}", duration, buckets=buckets)
    event = SpanEvent(
        name=name,
        start=start,
        duration=duration,
        clock=clock,
        thread=threading.current_thread().name,
        attrs=dict(attrs),
    )
    if sink is not None:
        sink.emit(event)
    return event
