"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the single stats surface for a running
system (engine + pipeline + cluster + service + models all register into
the same instance).  It is dependency-free by design — plain stdlib —
so every layer can import it without pulling in the analysis stack.

Metric identity is ``(name, labels)``: the same metric name may carry
several label sets (e.g. ``engine_emulation_minutes{backend="..."}``),
mirroring the Prometheus data model.  Snapshots round-trip through
:meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.from_dict`
(the ``--metrics-out`` JSON file), and :meth:`to_prometheus` renders
the standard text exposition format for scraping.

A process-wide default registry (:func:`default_registry`) exists for
code that does not thread an explicit registry through its
constructors; components that need isolated counts (tests, multiple
engines in one process) create their own.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "HistogramSnapshot",
    "default_registry",
    "set_default_registry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_MINUTES_BUCKETS",
]

#: Default histogram buckets for wall-clock durations (seconds).
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0
)

#: Default histogram buckets for simulated analysis time (minutes).
DEFAULT_MINUTES_BUCKETS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0
)

_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in key
    )
    return "{" + inner + "}"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram series.

    Attributes:
        buckets: upper bounds (an implicit +Inf bucket follows).
        counts: cumulative-free per-bucket counts, one per bound plus a
            final overflow slot.
        sum: total of observed values.
        count: number of observations.
    """

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass
class _Histogram:
    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.n += 1

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(self.counts),
            sum=self.total,
            count=self.n,
        )


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms behind one lock.

    All mutation methods are safe to call concurrently from pipeline
    workers.  Histogram buckets are fixed at first observation (pass
    ``buckets=`` on the first :meth:`observe` to override the default
    seconds buckets); later calls reuse the established bounds.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, _Histogram]] = {}
        self._bucket_spec: dict[str, tuple[float, ...]] = {}

    # -- mutation ------------------------------------------------------

    def inc(self, name: str, by: float = 1.0, **labels: str) -> None:
        """Increment a counter (created at 0 on first touch)."""
        if by < 0:
            raise ValueError("counters only go up; use a gauge")
        _check_name(name)
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + by

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge to an absolute value."""
        _check_name(name)
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def add_gauge(self, name: str, delta: float, **labels: str) -> None:
        """Move a gauge by a (possibly negative) delta."""
        _check_name(name)
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(delta)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> None:
        """Record one histogram observation."""
        _check_name(name)
        key = _label_key(labels)
        with self._lock:
            spec = self._bucket_spec.get(name)
            if spec is None:
                spec = tuple(
                    sorted(buckets or DEFAULT_SECONDS_BUCKETS)
                )
                if not spec:
                    raise ValueError("histogram needs at least one bucket")
                self._bucket_spec[name] = spec
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = _Histogram(buckets=spec)
            hist.observe(float(value))

    def reset(self) -> None:
        """Drop every series (tests and process restarts)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._bucket_spec.clear()

    # -- pickling ------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle support: the lock is dropped and re-created on load.

        Model artifacts (a fitted ``ApiChecker`` and its engines) hold a
        registry reference, and the serving layer persists those
        artifacts to disk; a plain ``threading.Lock`` would make them
        unpicklable.
        """
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- reads ---------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter or gauge (0.0 when absent)."""
        key = _label_key(labels)
        with self._lock:
            if name in self._counters:
                return self._counters[name].get(key, 0.0)
            if name in self._gauges:
                return self._gauges[name].get(key, 0.0)
        return 0.0

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all of its label sets."""
        with self._lock:
            series = self._counters.get(name) or self._gauges.get(name) or {}
            return float(sum(series.values()))

    def histogram(
        self, name: str, **labels: str
    ) -> HistogramSnapshot | None:
        """Snapshot one histogram series (None when absent)."""
        key = _label_key(labels)
        with self._lock:
            hist = self._histograms.get(name, {}).get(key)
            return hist.snapshot() if hist is not None else None

    def histogram_count(self, name: str) -> int:
        """Total observations of a histogram across all label sets."""
        with self._lock:
            return sum(
                h.n for h in self._histograms.get(name, {}).values()
            )

    def histogram_sum(self, name: str) -> float:
        """Total of observed values across all label sets."""
        with self._lock:
            return float(
                sum(h.total for h in self._histograms.get(name, {}).values())
            )

    def counters(self) -> dict[str, float]:
        """Flat ``{name: cross-label total}`` view of every counter."""
        with self._lock:
            return {
                name: float(sum(series.values()))
                for name, series in sorted(self._counters.items())
            }

    # -- exposition ----------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every series."""
        with self._lock:
            return {
                "counters": [
                    {"name": n, "labels": dict(k), "value": v}
                    for n, series in sorted(self._counters.items())
                    for k, v in sorted(series.items())
                ],
                "gauges": [
                    {"name": n, "labels": dict(k), "value": v}
                    for n, series in sorted(self._gauges.items())
                    for k, v in sorted(series.items())
                ],
                "histograms": [
                    {
                        "name": n,
                        "labels": dict(k),
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.n,
                    }
                    for n, series in sorted(self._histograms.items())
                    for k, h in sorted(series.items())
                ],
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        reg = cls()
        for entry in snapshot.get("counters", []):
            reg.inc(entry["name"], entry["value"], **entry.get("labels", {}))
        for entry in snapshot.get("gauges", []):
            reg.set_gauge(
                entry["name"], entry["value"], **entry.get("labels", {})
            )
        for entry in snapshot.get("histograms", []):
            name = entry["name"]
            key = _label_key(entry.get("labels", {}))
            buckets = tuple(entry["buckets"])
            with reg._lock:
                reg._bucket_spec.setdefault(name, buckets)
                hist = _Histogram(
                    buckets=buckets,
                    counts=list(entry["counts"]),
                    total=float(entry["sum"]),
                    n=int(entry["count"]),
                )
                reg._histograms.setdefault(name, {})[key] = hist
        return reg

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_dict(json.loads(text))

    def absorb(self, snapshot: dict, **extra_labels: str) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        Every absorbed series gains ``extra_labels`` on top of its own
        (the shard router absorbs each worker's snapshot with
        ``shard="<k>"``, producing one shard-labelled exposition whose
        cross-label sums are the tier totals).  Counters add, gauges
        set (the extra labels keep sources distinct), histograms merge
        bucket-wise when the bounds agree.
        """
        for entry in snapshot.get("counters", []):
            self.inc(
                entry["name"],
                float(entry["value"]),
                **{**entry.get("labels", {}), **extra_labels},
            )
        for entry in snapshot.get("gauges", []):
            self.set_gauge(
                entry["name"],
                float(entry["value"]),
                **{**entry.get("labels", {}), **extra_labels},
            )
        for entry in snapshot.get("histograms", []):
            name = _check_name(entry["name"])
            key = _label_key({**entry.get("labels", {}), **extra_labels})
            buckets = tuple(entry["buckets"])
            with self._lock:
                spec = self._bucket_spec.setdefault(name, buckets)
                series = self._histograms.setdefault(name, {})
                hist = series.get(key)
                if hist is None:
                    hist = series[key] = _Histogram(buckets=spec)
                if buckets != hist.buckets:
                    raise ValueError(
                        f"histogram {name}: bucket bounds differ; "
                        "cannot merge"
                    )
                for i, count in enumerate(entry["counts"]):
                    hist.counts[i] += int(count)
                hist.total += float(entry["sum"])
                hist.n += int(entry["count"])

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name, series in sorted(self._counters.items()):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_render_labels(key)} {value:g}")
            for name, series in sorted(self._gauges.items()):
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_render_labels(key)} {value:g}")
            for name, series in sorted(self._histograms.items()):
                lines.append(f"# TYPE {name} histogram")
                for key, hist in sorted(series.items()):
                    cumulative = 0
                    for bound, count in zip(hist.buckets, hist.counts):
                        cumulative += count
                        le = _label_key({"le": f"{bound:g}"})
                        lines.append(
                            f"{name}_bucket{_render_labels(key + le)} "
                            f"{cumulative}"
                        )
                    cumulative += hist.counts[-1]
                    le = _label_key({"le": "+Inf"})
                    lines.append(
                        f"{name}_bucket{_render_labels(key + le)} "
                        f"{cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} {hist.total:g}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {hist.n}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>"
            )


class NullRegistry(MetricsRegistry):
    """A registry that records nothing.

    Used by overhead benchmarks as the uninstrumented baseline, and by
    callers that want to switch telemetry off without branching at
    every call site.
    """

    def inc(self, name, by=1.0, **labels):  # noqa: D102
        pass

    def set_gauge(self, name, value, **labels):  # noqa: D102
        pass

    def add_gauge(self, name, delta, **labels):  # noqa: D102
        pass

    def observe(self, name, value, buckets=None, **labels):  # noqa: D102
        pass


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (for code without an explicit one)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
