"""repro.obs — dependency-free observability substrate.

The measurement backbone for the production-scale deployment story
(§5–6 of the paper): a thread-safe :class:`MetricsRegistry` (counters,
gauges, fixed-bucket histograms) with JSON and Prometheus text
exposition, plus :class:`span` timing context managers feeding a
structured JSONL :class:`SpanSink`.

Every instrumented layer (engine, pipeline, cluster, vetting service,
classifiers) registers into one registry threaded through its
constructor, defaulting to a per-component private registry so counts
stay exact in isolation; :func:`default_registry` provides the
process-wide instance the CLI exposes via ``repro metrics``.
"""

from repro.obs.registry import (
    DEFAULT_MINUTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.spans import SpanEvent, SpanSink, record_span, span

__all__ = [
    "DEFAULT_MINUTES_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullRegistry",
    "SpanEvent",
    "SpanSink",
    "default_registry",
    "record_span",
    "set_default_registry",
    "span",
]
