"""ApiChecker: the end-to-end train/vet pipeline.

Training runs the *study* configuration of §4 — every SDK API tracked on
the reference emulator — to mine the key-API set, then fits the
classifier (random forest by default) on the production feature vector
(key APIs + permissions + intents).  Vetting runs the *production*
configuration of §5 — only the key APIs tracked, on the lightweight
emulator with Google-emulator fallback — and classifies each submitted
APK in ~1.3 simulated minutes.
"""

from __future__ import annotations

import copy
import functools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.core.engine import DynamicAnalysisEngine
from repro.core.features import (
    AppObservation,
    FeatureBlock,
    FeatureMode,
    FeatureSpace,
)
from repro.core.selection import (
    KeyApiSelection,
    invocation_matrix,
    select_key_apis,
)
from repro.corpus.generator import AppCorpus
from repro.emulator.backends import GoogleEmulator, LightweightEmulator
from repro.emulator.device import DeviceEnvironment
from repro.ml.base import Classifier
from repro.ml.forest import RandomForest
from repro.ml.metrics import ClassificationReport, evaluate
from repro.obs import MetricsRegistry, SpanSink


@dataclass(frozen=True)
class VetVerdict:
    """Vetting outcome for one submitted APK."""

    apk_md5: str
    malicious: bool
    probability: float
    analysis_minutes: float
    fell_back: bool


class ApiChecker:
    """The deployed malware-detection system.

    Args:
        sdk: API registry the system is built against.
        classifier_factory: zero-arg factory for the model (default:
            random forest, the paper's choice).
        feature_mode: feature families to use (default A+P+I).
        feature_encoding: "binary" (deployed) or "histogram" (the §6
            future-work encoding retaining invocation frequencies).
        monkey_events: UI events per analysis (paper: 5K).
        env: device environment (default: hardened emulator).
        decision_threshold: probability above which an app is flagged.
        seed: seed for engines and model.
        registry: when given, every engine this checker builds and the
            fitted classifier record their telemetry into this one
            registry (the unified stats surface the CLI snapshots);
            when None each engine keeps a private registry.
        sink: optional span sink threaded through to the engines.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        classifier_factory: Callable[[], Classifier] | None = None,
        feature_mode: FeatureMode = FeatureMode.API,
        feature_encoding: str = "binary",
        monkey_events: int = 5000,
        env: DeviceEnvironment | None = None,
        decision_threshold: float = 0.5,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
    ):
        if not 0.0 < decision_threshold < 1.0:
            raise ValueError("decision_threshold must be in (0, 1)")
        self.sdk = sdk
        # partial, not a lambda: checkers must stay picklable so the
        # serve-layer model registry can persist fitted artifacts.
        self.classifier_factory = classifier_factory or functools.partial(
            RandomForest, seed=seed
        )
        self.feature_mode = feature_mode
        self.feature_encoding = feature_encoding
        self.monkey_events = monkey_events
        self.env = env or DeviceEnvironment.hardened_emulator()
        self.decision_threshold = decision_threshold
        self.seed = seed
        self.registry = registry
        self.sink = sink
        self.selection: KeyApiSelection | None = None
        self.feature_space: FeatureSpace | None = None
        self.classifier: Classifier | None = None
        self._prod_engine: DynamicAnalysisEngine | None = None

    # ------------------------------------------------------------------
    # Training (the §4 study pipeline)
    # ------------------------------------------------------------------

    def study_engine(self) -> DynamicAnalysisEngine:
        """Engine in study configuration: all APIs, reference emulator."""
        return DynamicAnalysisEngine(
            self.sdk,
            tracked_api_ids=np.arange(len(self.sdk)),
            primary=GoogleEmulator(),
            fallback=None,
            env=self.env,
            monkey_events=self.monkey_events,
            seed=self.seed,
            registry=self.registry,
            sink=self.sink,
        )

    def fit(
        self,
        corpus: AppCorpus,
        labels: np.ndarray | None = None,
        study_observations: list[AppObservation] | None = None,
        key_api_ids: np.ndarray | None = None,
    ) -> "ApiChecker":
        """Mine key APIs and train the classifier.

        Args:
            corpus: training apps.
            labels: market labels (defaults to corpus ground truth).
            study_observations: precomputed all-API observations for the
                corpus, to avoid re-running the study emulation.
            key_api_ids: skip SRC mining and use this key set (for
                ablations such as Fig. 7's top-n sweeps).
        """
        labels = corpus.labels if labels is None else np.asarray(labels)
        if len(labels) != len(corpus):
            raise ValueError("labels must align with the corpus")
        if study_observations is None:
            study_observations = self.study_engine().observations(corpus)
        if len(study_observations) != len(corpus):
            raise ValueError("observations must align with the corpus")

        X_api = invocation_matrix(study_observations, len(self.sdk))
        if key_api_ids is None:
            self.selection = select_key_apis(X_api, labels, self.sdk)
            key_api_ids = self.selection.key_api_ids
        else:
            key_api_ids = np.unique(np.asarray(key_api_ids, dtype=int))
            self.selection = None
        self.feature_space = FeatureSpace(
            self.sdk,
            key_api_ids,
            self.feature_mode,
            encoding=self.feature_encoding,
        )
        X = self.feature_space.encode_batch(study_observations)
        self.classifier = self.classifier_factory()
        if self.registry is not None and hasattr(
            self.classifier, "bind_registry"
        ):
            self.classifier.bind_registry(self.registry)
        self.classifier.fit(X, labels.astype(np.int8))
        self._prod_engine = DynamicAnalysisEngine(
            self.sdk,
            tracked_api_ids=(
                key_api_ids if self.feature_mode.uses_apis else []
            ),
            primary=LightweightEmulator(),
            fallback=GoogleEmulator(),
            env=self.env,
            monkey_events=self.monkey_events,
            seed=self.seed + 1,
            registry=self.registry,
            sink=self.sink,
        )
        return self

    def with_env(self, env: DeviceEnvironment) -> "ApiChecker":
        """A copy of this checker whose engines run in ``env``.

        Model state (feature space, classifier, key-API selection) is
        shared with the original — only the environment changes, and a
        fitted checker gets its production engine rebuilt against the
        new device flags.  This is how the adversarial-scenario harness
        replays the same trained model with emulator hardening on vs.
        off without paying for a refit.
        """
        clone = copy.copy(self)
        clone.env = env
        if self._prod_engine is not None:
            clone._prod_engine = DynamicAnalysisEngine(
                self.sdk,
                tracked_api_ids=(
                    self.key_api_ids if self.feature_mode.uses_apis else []
                ),
                primary=LightweightEmulator(),
                fallback=GoogleEmulator(),
                env=env,
                monkey_events=self.monkey_events,
                seed=self.seed + 1,
                registry=self.registry,
                sink=self.sink,
            )
        return clone

    @property
    def key_api_ids(self) -> np.ndarray:
        self._require_fitted()
        return self.feature_space.api_ids

    @property
    def production_engine(self) -> DynamicAnalysisEngine:
        """The fitted production engine (lightweight + fallback)."""
        self._require_fitted()
        return self._prod_engine

    def _require_fitted(self) -> None:
        if self.feature_space is None or self.classifier is None:
            raise RuntimeError("ApiChecker must be fitted before use")

    # ------------------------------------------------------------------
    # Vetting (the §5 production pipeline)
    # ------------------------------------------------------------------

    def score_observation(self, observation: AppObservation) -> float:
        """Malice probability for one (possibly cached) observation."""
        self._require_fitted()
        X = self.feature_space.encode(observation)[None, :]
        return float(self.classifier.predict_proba(X)[0])

    def score_block(self, block: FeatureBlock) -> np.ndarray:
        """Malice probabilities for a whole feature block at once."""
        self._require_fitted()
        return self.classifier.predict_proba_batch(block)

    def score_observations(
        self, observations: Sequence[AppObservation]
    ) -> np.ndarray:
        """Batch-score observations: one columnar encode, one blocked
        classifier call.  Bitwise identical to scoring each observation
        alone (the batch equivalence battery pins this)."""
        self._require_fitted()
        return self.score_block(
            self.feature_space.encode_block(observations)
        )

    def verdict_from_observation(
        self,
        observation: AppObservation,
        analysis_minutes: float | None = None,
        fell_back: bool = False,
    ) -> VetVerdict:
        """Classify an observation produced elsewhere (pipeline, cache,
        replayed log).  The verdict depends only on the observation's
        features, so a cache hit yields the same malicious/probability
        pair as the original emulation did.
        """
        prob = self.score_observation(observation)
        return VetVerdict(
            apk_md5=observation.apk_md5,
            malicious=prob >= self.decision_threshold,
            probability=prob,
            analysis_minutes=(
                observation.analysis_minutes
                if analysis_minutes is None
                else analysis_minutes
            ),
            fell_back=fell_back,
        )

    def verdicts_from_observations(
        self,
        observations: Sequence[AppObservation],
        analysis_minutes: Sequence[float] | None = None,
        fell_back: Sequence[bool] | None = None,
    ) -> list[VetVerdict]:
        """Batched :meth:`verdict_from_observation`: the whole batch is
        scored with one blocked classifier call.

        Args:
            observations: observations to classify (may be empty).
            analysis_minutes: optional per-app wall-clock overrides,
                aligned with ``observations``.
            fell_back: optional per-app fallback flags, aligned with
                ``observations``.
        """
        observations = list(observations)
        probs = self.score_observations(observations)
        verdicts = []
        for i, obs in enumerate(observations):
            prob = float(probs[i])
            verdicts.append(
                VetVerdict(
                    apk_md5=obs.apk_md5,
                    malicious=prob >= self.decision_threshold,
                    probability=prob,
                    analysis_minutes=(
                        obs.analysis_minutes
                        if analysis_minutes is None
                        else float(analysis_minutes[i])
                    ),
                    fell_back=(
                        False if fell_back is None else bool(fell_back[i])
                    ),
                )
            )
        return verdicts

    def vet(self, apk: Apk) -> VetVerdict:
        """Analyze and classify one submitted APK."""
        self._require_fitted()
        analysis = self._prod_engine.analyze(apk)
        return self.verdict_from_observation(
            analysis.observation,
            analysis_minutes=analysis.total_minutes,
            fell_back=analysis.fell_back,
        )

    def vet_batch(self, corpus: AppCorpus | list[Apk]) -> list[VetVerdict]:
        """Analyze each APK, then score the whole batch in one block.

        Emulation is inherently per-app; classification is not, so the
        scoring hot path runs once over the full batch.  Empty input
        yields an empty verdict list.
        """
        self._require_fitted()
        analyses = [self._prod_engine.analyze(apk) for apk in corpus]
        return self.verdicts_from_observations(
            [a.observation for a in analyses],
            analysis_minutes=[a.total_minutes for a in analyses],
            fell_back=[a.fell_back for a in analyses],
        )

    def evaluate(
        self, corpus: AppCorpus, labels: np.ndarray | None = None
    ) -> ClassificationReport:
        """Vet a labelled corpus and report precision/recall/F1."""
        labels = corpus.labels if labels is None else np.asarray(labels)
        verdicts = self.vet_batch(corpus)
        predicted = np.array([v.malicious for v in verdicts])
        return evaluate(labels, predicted)

    # ------------------------------------------------------------------
    # Interpretability
    # ------------------------------------------------------------------

    def gini_table(self, k: int = 20) -> list[tuple[str, float]]:
        """Top-k features by Gini importance (Fig. 13)."""
        self._require_fitted()
        importances = getattr(self.classifier, "feature_importances_", None)
        if importances is None:
            raise RuntimeError(
                f"{type(self.classifier).__name__} exposes no Gini importances"
            )
        names = self.feature_space.feature_names
        order = np.argsort(importances)[::-1][:k]
        return [(names[i], float(importances[i])) for i in order]
