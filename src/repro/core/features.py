"""Feature construction: one-hot vectors over APIs, permissions, intents.

The paper encodes each app as a bit vector: one bit per tracked API
("was it invoked during emulation"), optionally extended with one bit
per requested permission and one per used intent — the two auxiliary
feature families that expose reflection- and IPC-hidden behaviour
(§4.5).  Figure 10's ablation compares the five combinations, captured
here as :class:`FeatureMode`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk


class FeatureMode(enum.Enum):
    """Which feature families are enabled (Fig. 10's A/P/I ablation)."""

    A = "A"           # key APIs only
    AP = "A+P"        # key APIs + permissions
    AI = "A+I"        # key APIs + intents
    PI = "P+I"        # permissions + intents only
    API = "A+P+I"     # everything (the production configuration)

    @property
    def uses_apis(self) -> bool:
        return self in (FeatureMode.A, FeatureMode.AP, FeatureMode.AI,
                        FeatureMode.API)

    @property
    def uses_permissions(self) -> bool:
        return self in (FeatureMode.AP, FeatureMode.PI, FeatureMode.API)

    @property
    def uses_intents(self) -> bool:
        return self in (FeatureMode.AI, FeatureMode.PI, FeatureMode.API)


@dataclass(frozen=True)
class AppObservation:
    """What one analyzed app exposes to the feature encoder.

    Attributes:
        apk_md5: app identity.
        invoked_api_ids: APIs the hook engine logged.
        permissions: permissions requested in the manifest.
        intents: used intents (runtime-sent plus receiver filters).
        analysis_minutes: simulated analysis time (bookkeeping).
        invoked_api_counts: (api_id, invocation count) pairs from the
            hook log — consumed by the histogram encoding the paper
            sketches as future work (§6); the plain bit-vector encoding
            ignores them.
    """

    apk_md5: str
    invoked_api_ids: tuple[int, ...]
    permissions: tuple[str, ...]
    intents: tuple[str, ...]
    analysis_minutes: float = 0.0
    invoked_api_counts: tuple[tuple[int, int], ...] = ()

    @classmethod
    def static_only(cls, apk: Apk) -> "AppObservation":
        """Observation without any dynamic analysis (P+I mode)."""
        return cls(
            apk_md5=apk.md5,
            invoked_api_ids=(),
            permissions=apk.manifest.requested_permissions,
            intents=tuple(
                sorted(
                    set(apk.dex.sent_intents)
                    | set(apk.manifest.receiver_intent_actions)
                )
            ),
        )


#: Invocation-count thresholds for the histogram encoding's extra
#: buckets ("used at all" / "used heavily" / "used pervasively").
HISTOGRAM_BUCKETS = (1_000, 100_000)


class FeatureSpace:
    """Maps observations to fixed-width one-hot vectors.

    Column layout: [tracked APIs | permissions | intents], with the
    permission and intent blocks present only when the mode uses them.

    Two API encodings are supported (§6 future work):

    * ``"binary"`` — one bit per API: invoked or not (the deployed
      APICHECKER encoding);
    * ``"histogram"`` — three bits per API, thresholding the invocation
      count at 1 / 1K / 100K, retaining coarse frequency information
      while keeping every feature binary.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        tracked_api_ids: np.ndarray | list[int],
        mode: FeatureMode = FeatureMode.API,
        encoding: str = "binary",
    ):
        if encoding not in ("binary", "histogram"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.sdk = sdk
        self.mode = mode
        self.encoding = encoding
        ids = np.unique(np.asarray(tracked_api_ids, dtype=int))
        if ids.size and (ids.min() < 0 or ids.max() >= len(sdk)):
            raise ValueError("tracked api id out of range for this SDK")
        if mode.uses_apis and ids.size == 0:
            raise ValueError(f"mode {mode.value} needs a non-empty API set")
        self.api_ids = ids if mode.uses_apis else np.empty(0, dtype=int)
        self._bits_per_api = (
            1 + len(HISTOGRAM_BUCKETS) if encoding == "histogram" else 1
        )
        self._api_col = {
            int(a): i * self._bits_per_api
            for i, a in enumerate(self.api_ids)
        }
        api_width = len(self.api_ids) * self._bits_per_api
        self.permission_names = (
            list(sdk.permissions.names) if mode.uses_permissions else []
        )
        self._perm_col = {
            name: api_width + i
            for i, name in enumerate(self.permission_names)
        }
        self.intent_names = (
            list(sdk.intents.names) if mode.uses_intents else []
        )
        base = api_width + len(self.permission_names)
        self._intent_col = {
            name: base + i for i, name in enumerate(self.intent_names)
        }

    @property
    def n_features(self) -> int:
        return (
            len(self.api_ids) * self._bits_per_api
            + len(self.permission_names)
            + len(self.intent_names)
        )

    @property
    def feature_names(self) -> list[str]:
        """Human-readable column names (``API:``/``Permission:``/``Intent:``)."""
        names = []
        for a in self.api_ids:
            short = self.sdk.api(int(a)).short_name
            names.append(f"API: {short}")
            if self.encoding == "histogram":
                names.extend(
                    f"API: {short} (>={b:,} calls)"
                    for b in HISTOGRAM_BUCKETS
                )
        names += [
            f"Permission: {name.rsplit('.', 1)[-1]}"
            for name in self.permission_names
        ]
        names += [
            f"Intent: {name.rsplit('.', 1)[-1]}" for name in self.intent_names
        ]
        return names

    def kind_of_column(self, col: int) -> str:
        """'api', 'permission' or 'intent' for a column index."""
        if col < 0 or col >= self.n_features:
            raise IndexError(f"column {col} out of range")
        api_width = len(self.api_ids) * self._bits_per_api
        if col < api_width:
            return "api"
        if col < api_width + len(self.permission_names):
            return "permission"
        return "intent"

    def encode(self, obs: AppObservation) -> np.ndarray:
        """One observation -> uint8 vector."""
        vec = np.zeros(self.n_features, dtype=np.uint8)
        if self.mode.uses_apis:
            for api_id in obs.invoked_api_ids:
                col = self._api_col.get(int(api_id))
                if col is not None:
                    vec[col] = 1
            if self.encoding == "histogram":
                for api_id, count in obs.invoked_api_counts:
                    col = self._api_col.get(int(api_id))
                    if col is None:
                        continue
                    vec[col] = 1
                    for j, bucket in enumerate(HISTOGRAM_BUCKETS):
                        if count >= bucket:
                            vec[col + 1 + j] = 1
        if self.mode.uses_permissions:
            for name in obs.permissions:
                col = self._perm_col.get(name)
                if col is not None:
                    vec[col] = 1
        if self.mode.uses_intents:
            for name in obs.intents:
                col = self._intent_col.get(name)
                if col is not None:
                    vec[col] = 1
        return vec

    def encode_batch(self, observations: list[AppObservation]) -> np.ndarray:
        """Observations -> (n, n_features) uint8 matrix."""
        if not observations:
            raise ValueError("cannot encode an empty batch")
        X = np.zeros((len(observations), self.n_features), dtype=np.uint8)
        for i, obs in enumerate(observations):
            X[i] = self.encode(obs)
        return X
