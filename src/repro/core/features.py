"""Feature construction: one-hot vectors over APIs, permissions, intents.

The paper encodes each app as a bit vector: one bit per tracked API
("was it invoked during emulation"), optionally extended with one bit
per requested permission and one per used intent — the two auxiliary
feature families that expose reflection- and IPC-hidden behaviour
(§4.5).  Figure 10's ablation compares the five combinations, captured
here as :class:`FeatureMode`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk


class FeatureMode(enum.Enum):
    """Which feature families are enabled (Fig. 10's A/P/I ablation)."""

    A = "A"           # key APIs only
    AP = "A+P"        # key APIs + permissions
    AI = "A+I"        # key APIs + intents
    PI = "P+I"        # permissions + intents only
    API = "A+P+I"     # everything (the production configuration)

    @property
    def uses_apis(self) -> bool:
        return self in (FeatureMode.A, FeatureMode.AP, FeatureMode.AI,
                        FeatureMode.API)

    @property
    def uses_permissions(self) -> bool:
        return self in (FeatureMode.AP, FeatureMode.PI, FeatureMode.API)

    @property
    def uses_intents(self) -> bool:
        return self in (FeatureMode.AI, FeatureMode.PI, FeatureMode.API)


@dataclass(frozen=True)
class AppObservation:
    """What one analyzed app exposes to the feature encoder.

    Attributes:
        apk_md5: app identity.
        invoked_api_ids: APIs the hook engine logged.
        permissions: permissions requested in the manifest.
        intents: used intents (runtime-sent plus receiver filters).
        analysis_minutes: simulated analysis time (bookkeeping).
        invoked_api_counts: (api_id, invocation count) pairs from the
            hook log — consumed by the histogram encoding the paper
            sketches as future work (§6); the plain bit-vector encoding
            ignores them.
    """

    apk_md5: str
    invoked_api_ids: tuple[int, ...]
    permissions: tuple[str, ...]
    intents: tuple[str, ...]
    analysis_minutes: float = 0.0
    invoked_api_counts: tuple[tuple[int, int], ...] = ()

    @classmethod
    def static_only(cls, apk: Apk) -> "AppObservation":
        """Observation without any dynamic analysis (P+I mode)."""
        return cls(
            apk_md5=apk.md5,
            invoked_api_ids=(),
            permissions=apk.manifest.requested_permissions,
            intents=tuple(
                sorted(
                    set(apk.dex.sent_intents)
                    | set(apk.manifest.receiver_intent_actions)
                )
            ),
        )


#: Invocation-count thresholds for the histogram encoding's extra
#: buckets ("used at all" / "used heavily" / "used pervasively").
HISTOGRAM_BUCKETS = (1_000, 100_000)


class FeatureSpace:
    """Maps observations to fixed-width one-hot vectors.

    Column layout: [tracked APIs | permissions | intents], with the
    permission and intent blocks present only when the mode uses them.

    Two API encodings are supported (§6 future work):

    * ``"binary"`` — one bit per API: invoked or not (the deployed
      APICHECKER encoding);
    * ``"histogram"`` — three bits per API, thresholding the invocation
      count at 1 / 1K / 100K, retaining coarse frequency information
      while keeping every feature binary.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        tracked_api_ids: np.ndarray | list[int],
        mode: FeatureMode = FeatureMode.API,
        encoding: str = "binary",
    ):
        if encoding not in ("binary", "histogram"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.sdk = sdk
        self.mode = mode
        self.encoding = encoding
        ids = np.unique(np.asarray(tracked_api_ids, dtype=int))
        if ids.size and (ids.min() < 0 or ids.max() >= len(sdk)):
            raise ValueError("tracked api id out of range for this SDK")
        if mode.uses_apis and ids.size == 0:
            raise ValueError(f"mode {mode.value} needs a non-empty API set")
        self.api_ids = ids if mode.uses_apis else np.empty(0, dtype=int)
        self._bits_per_api = (
            1 + len(HISTOGRAM_BUCKETS) if encoding == "histogram" else 1
        )
        self._api_col = {
            int(a): i * self._bits_per_api
            for i, a in enumerate(self.api_ids)
        }
        api_width = len(self.api_ids) * self._bits_per_api
        self.permission_names = (
            list(sdk.permissions.names) if mode.uses_permissions else []
        )
        self._perm_col = {
            name: api_width + i
            for i, name in enumerate(self.permission_names)
        }
        self.intent_names = (
            list(sdk.intents.names) if mode.uses_intents else []
        )
        base = api_width + len(self.permission_names)
        self._intent_col = {
            name: base + i for i, name in enumerate(self.intent_names)
        }

    @property
    def n_features(self) -> int:
        return (
            len(self.api_ids) * self._bits_per_api
            + len(self.permission_names)
            + len(self.intent_names)
        )

    @property
    def feature_names(self) -> list[str]:
        """Human-readable column names (``API:``/``Permission:``/``Intent:``)."""
        names = []
        for a in self.api_ids:
            short = self.sdk.api(int(a)).short_name
            names.append(f"API: {short}")
            if self.encoding == "histogram":
                names.extend(
                    f"API: {short} (>={b:,} calls)"
                    for b in HISTOGRAM_BUCKETS
                )
        names += [
            f"Permission: {name.rsplit('.', 1)[-1]}"
            for name in self.permission_names
        ]
        names += [
            f"Intent: {name.rsplit('.', 1)[-1]}" for name in self.intent_names
        ]
        return names

    def kind_of_column(self, col: int) -> str:
        """'api', 'permission' or 'intent' for a column index."""
        if col < 0 or col >= self.n_features:
            raise IndexError(f"column {col} out of range")
        api_width = len(self.api_ids) * self._bits_per_api
        if col < api_width:
            return "api"
        if col < api_width + len(self.permission_names):
            return "permission"
        return "intent"

    def _obs_columns(self, obs: AppObservation) -> list[int]:
        """Set columns for one observation (duplicates permitted).

        The single source of truth for the observation → column
        mapping: :meth:`encode` and the columnar
        :meth:`FeatureBlock.from_observations` both scatter exactly
        these indices, which is what makes the two representations
        bit-identical by construction.
        """
        cols: list[int] = []
        if self.mode.uses_apis:
            api_col = self._api_col
            for api_id in obs.invoked_api_ids:
                col = api_col.get(int(api_id))
                if col is not None:
                    cols.append(col)
            if self.encoding == "histogram":
                for api_id, count in obs.invoked_api_counts:
                    col = api_col.get(int(api_id))
                    if col is None:
                        continue
                    cols.append(col)
                    for j, bucket in enumerate(HISTOGRAM_BUCKETS):
                        if count >= bucket:
                            cols.append(col + 1 + j)
        if self.mode.uses_permissions:
            perm_col = self._perm_col
            for name in obs.permissions:
                col = perm_col.get(name)
                if col is not None:
                    cols.append(col)
        if self.mode.uses_intents:
            intent_col = self._intent_col
            for name in obs.intents:
                col = intent_col.get(name)
                if col is not None:
                    cols.append(col)
        return cols

    def encode(self, obs: AppObservation) -> np.ndarray:
        """One observation -> uint8 vector."""
        vec = np.zeros(self.n_features, dtype=np.uint8)
        vec[self._obs_columns(obs)] = 1
        return vec

    def encode_block(
        self, observations: Sequence[AppObservation]
    ) -> "FeatureBlock":
        """Observations -> columnar :class:`FeatureBlock` (0 rows legal)."""
        return FeatureBlock.from_observations(self, observations)

    def encode_batch(self, observations: list[AppObservation]) -> np.ndarray:
        """Observations -> (n, n_features) uint8 matrix."""
        if not observations:
            raise ValueError("cannot encode an empty batch")
        return self.encode_block(observations).matrix

    def mode_columns(self, mode: FeatureMode) -> np.ndarray:
        """Column indices of this layout belonging to a sub-mode.

        ``mode`` may only use feature families this space has; the API
        block keeps its histogram bits when that encoding is active.
        """
        for family, present in (
            ("apis", not mode.uses_apis or self.mode.uses_apis),
            (
                "permissions",
                not mode.uses_permissions or self.mode.uses_permissions,
            ),
            ("intents", not mode.uses_intents or self.mode.uses_intents),
        ):
            if not present:
                raise ValueError(
                    f"mode {mode.value} needs {family} but this space "
                    f"was built as {self.mode.value}"
                )
        api_width = len(self.api_ids) * self._bits_per_api
        perm_width = len(self.permission_names)
        pieces = []
        if mode.uses_apis:
            pieces.append(np.arange(api_width))
        if mode.uses_permissions:
            pieces.append(np.arange(api_width, api_width + perm_width))
        if mode.uses_intents:
            base = api_width + perm_width
            pieces.append(np.arange(base, self.n_features))
        return (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=int)
        )


class FeatureBlock:
    """Columnar apps × features batch: one contiguous uint8 matrix.

    The unit of the batched scoring hot path: built straight from
    (cached) observations, indexed by apk md5, handed whole to
    :meth:`repro.ml.base.Classifier.predict_proba_batch`.  Row ``i``
    is exactly ``space.encode(observations[i])`` — the pipeline
    property tests pin the round trip.

    Args:
        matrix: (n_apps, n_features) uint8 matrix (copied to a
            C-contiguous uint8 array when needed).
        md5s: per-row apk md5s, aligned with the matrix.
        space: the :class:`FeatureSpace` that defined the columns
            (optional for derived blocks, e.g. column slices).
    """

    __slots__ = ("matrix", "md5s", "space", "_row_index")

    def __init__(
        self,
        matrix: np.ndarray,
        md5s: Sequence[str],
        space: "FeatureSpace | None" = None,
    ):
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError(
                f"feature matrix must be 2-D, got shape {matrix.shape}"
            )
        md5s = tuple(md5s)
        if len(md5s) != matrix.shape[0]:
            raise ValueError(
                f"{len(md5s)} md5s for {matrix.shape[0]} matrix rows"
            )
        self.matrix = matrix
        self.md5s = md5s
        self.space = space
        self._row_index: dict[str, int] | None = None

    @classmethod
    def from_observations(
        cls,
        space: "FeatureSpace",
        observations: Sequence[AppObservation],
    ) -> "FeatureBlock":
        """Columnar construction: one scatter into the whole matrix.

        Column indices are gathered per observation (cheap dict
        lookups) and written with a single flat fancy-index
        assignment, instead of materializing one encoded vector per
        app.  Zero observations yield a legal 0-row block.
        """
        n_features = space.n_features
        matrix = np.zeros((len(observations), n_features), dtype=np.uint8)
        flat: list[int] = []
        for row, obs in enumerate(observations):
            base = row * n_features
            flat.extend(base + col for col in space._obs_columns(obs))
        if flat:
            matrix.ravel()[np.asarray(flat, dtype=np.intp)] = 1
        return cls(
            matrix, tuple(obs.apk_md5 for obs in observations), space
        )

    @property
    def n_apps(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def __getitem__(self, row: int) -> np.ndarray:
        """The feature vector of one row."""
        return self.matrix[row]

    def row_of(self, md5: str) -> int:
        """Row index of an md5 (first occurrence wins on resubmission)."""
        if self._row_index is None:
            index: dict[str, int] = {}
            for row, md5_ in enumerate(self.md5s):
                index.setdefault(md5_, row)
            self._row_index = index
        try:
            return self._row_index[md5]
        except KeyError:
            raise KeyError(f"md5 {md5!r} not in this block") from None

    def take(self, rows) -> "FeatureBlock":
        """Sub-block of the given rows (any integer index array)."""
        rows = np.asarray(rows, dtype=np.intp)
        return FeatureBlock(
            self.matrix[rows],
            tuple(self.md5s[int(r)] for r in rows),
            self.space,
        )

    def select(self, md5s: Sequence[str]) -> "FeatureBlock":
        """Sub-block for the given md5s, in the given order."""
        return self.take([self.row_of(md5) for md5 in md5s])

    def slice_mode(self, mode: FeatureMode) -> "FeatureBlock":
        """Columns of a sub-mode (Fig. 10's A/P/I ablation axis).

        The returned block carries no :class:`FeatureSpace` — its
        column layout no longer matches the parent space.
        """
        if self.space is None:
            raise ValueError("cannot slice a block without a FeatureSpace")
        cols = self.space.mode_columns(mode)
        return FeatureBlock(
            np.ascontiguousarray(self.matrix[:, cols]), self.md5s, None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FeatureBlock {self.n_apps} apps x "
            f"{self.n_features} features>"
        )
